#!/usr/bin/env python
"""Domain scenario: memory pressure under a bursty workload.

The paper's warm-pool adjustment (Fig. 6/11) matters when keep-alive memory
is scarce. This example builds a deliberately bursty Azure-shaped trace,
squeezes the warm pools, and shows what the adjustment mechanism buys over
(a) EcoLife without it and (b) the OpenWhisk-style fixed policy.

Run with::

    python examples/bursty_workload.py
"""

from repro.analysis import ascii_table
from repro.baselines import new_only
from repro.carbon import region_trace_for
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments.common import Scenario, run_scheduler
from repro.hardware import get_pair
from repro.simulator import SimulationConfig
from repro.workloads import AzureTraceConfig, generate_azure_trace


def main() -> None:
    # A trace where every second function bursts to 25x its base rate.
    trace, specs = generate_azure_trace(
        AzureTraceConfig(
            n_functions=24,
            duration_s=2 * 3600.0,
            seed=13,
            burst_probability=0.5,
            burst_rate_multiplier=25.0,
        )
    )
    bursty = sum(1 for s in specs if s.bursty)
    print(
        f"trace: {len(trace)} invocations, {bursty}/{len(specs)} bursty "
        f"functions, total warm footprint "
        f"{sum(f.mem_gb for f in trace.functions.values()):.1f} GB"
    )

    scenario = Scenario(
        pair=get_pair("A"),
        trace=trace,
        ci_trace=region_trace_for("CAL", trace.duration_s + 3600.0, seed=13),
        sim_config=SimulationConfig(
            pool_capacity_old_gb=6.0, pool_capacity_new_gb=6.0
        ),
        label="bursty-tight-memory",
    )

    rows = []
    for label, factory in (
        ("ecolife", lambda: EcoLifeScheduler(EcoLifeConfig(seed=9))),
        ("ecolife w/o adjustment", lambda: EcoLifeScheduler.without_adjustment(
            EcoLifeConfig(seed=9)
        )),
        ("new-only (10 min fixed)", new_only),
    ):
        r = run_scheduler(factory, scenario)
        rows.append(
            [
                label,
                r.mean_service_s,
                r.total_carbon_g,
                r.warm_ratio * 100.0,
                r.evicted_count + r.dropped_count,
                r.spilled_count,
            ]
        )

    print(
        ascii_table(
            ["scheduler", "svc (s)", "co2 (g)", "warm %", "evicted", "spilled"],
            rows,
            title="bursty workload, 6/6 GB warm pools",
        )
    )
    print(
        "\nReading: under memory pressure the adjustment mechanism re-ranks "
        "the pool by warm-vs-cold benefit and spills lower-value containers "
        "to the other generation instead of dropping them."
    )


if __name__ == "__main__":
    main()
