#!/usr/bin/env python
"""Domain scenario: evaluate EcoLife on *your own* hardware generations.

The paper argues hardware refresh cycles leave every datacenter with
multi-generation fleets. This example shows how to describe a custom
old/new pair (an ARM-style efficiency part vs a high-power x86 part),
plug it into the simulator, and measure whether EcoLife can exploit it.

Run with::

    python examples/custom_hardware_pair.py
"""

from repro.analysis import relative_to_opts, scatter_table
from repro.baselines import co2_opt, oracle, service_time_opt
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import default_scenario, run_suite
from repro.hardware import CPUSpec, DRAMSpec, Generation, HardwarePair, ServerSpec

# -- describe the fleet -------------------------------------------------------

GRAVITON_STYLE_2019 = ServerSpec(
    key="efficiency-2019",
    generation=Generation.OLD,
    cpu=CPUSpec(
        name="Efficiency ARM 64c",
        year=2019,
        cores=64,
        full_power_w=220.0,  # efficiency-oriented part
        idle_power_w=28.0,  # 0.44 W/core keep-alive
        embodied_kg=180.0,
    ),
    dram=DRAMSpec(
        name="DDR4-256",
        year=2019,
        capacity_gb=256.0,
        embodied_kg_per_gb=1.3,
        power_w_per_gb=0.35,
    ),
    perf_index=0.8,  # slower per-core than the new x86 part
)

X86_2022 = ServerSpec(
    key="performance-2022",
    generation=Generation.NEW,
    cpu=CPUSpec(
        name="Performance x86 32c",
        year=2022,
        cores=32,
        full_power_w=350.0,
        idle_power_w=45.0,  # 1.4 W/core keep-alive
        embodied_kg=260.0,
    ),
    dram=DRAMSpec(
        name="DDR5-256",
        year=2022,
        capacity_gb=256.0,
        embodied_kg_per_gb=1.0,
        power_w_per_gb=0.30,
    ),
    perf_index=1.0,
)

CUSTOM_PAIR = HardwarePair(
    name="custom",
    old=GRAVITON_STYLE_2019,
    new=X86_2022,
    description="efficiency ARM (2019) vs performance x86 (2022)",
)


def main() -> None:
    scenario = default_scenario(n_functions=30, hours=2.0, seed=21).with_pair(
        CUSTOM_PAIR
    )
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": lambda: EcoLifeScheduler(EcoLifeConfig(seed=4)),
    }
    results = run_suite(schemes, scenario)
    print(
        scatter_table(
            relative_to_opts(results),
            title=f"custom pair: {CUSTOM_PAIR.description}",
        )
    )
    eco = results["ecolife"]
    old_execs = eco.location_counts()[Generation.OLD]
    print(
        f"\nEcoLife executed {old_execs}/{len(eco)} invocations on the "
        f"efficiency generation and kept the rest on the fast generation -- "
        f"the keep-alive/pool split is what turns the old fleet into a "
        f"carbon asset instead of e-waste."
    )


if __name__ == "__main__":
    main()
