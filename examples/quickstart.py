#!/usr/bin/env python
"""Quickstart: run EcoLife on an Azure-shaped trace and compare baselines.

This walks the public API end to end:

1. build a scenario (hardware pair, invocation trace, carbon intensity);
2. run the EcoLife scheduler;
3. run the fixed baselines and the ORACLE;
4. print the paper-style comparison.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import relative_to_opts, scatter_table
from repro.baselines import co2_opt, new_only, old_only, oracle, service_time_opt
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import default_scenario, run_scheduler, run_suite


def main() -> None:
    # A small default scenario: 30 functions, 2 hours, CISO carbon intensity,
    # the paper's Pair A hardware (i3.metal vs m5zn.metal).
    scenario = default_scenario(n_functions=30, hours=2.0, seed=11)
    print(f"scenario: {scenario.label}")
    print(
        f"trace: {len(scenario.trace)} invocations over "
        f"{scenario.trace.duration_s / 3600.0:.1f} h, "
        f"{len(scenario.trace.functions)} functions\n"
    )

    # -- run EcoLife alone and inspect the result object ------------------
    result = run_scheduler(lambda: EcoLifeScheduler(EcoLifeConfig(seed=1)), scenario)
    print(result.summary())
    print()

    # -- compare against the paper's schemes ------------------------------
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "new-only": new_only,
        "old-only": old_only,
        "ecolife": lambda: EcoLifeScheduler(EcoLifeConfig(seed=1)),
    }
    results = run_suite(schemes, scenario)
    points = relative_to_opts(results)
    print(scatter_table(points, title="scheme comparison (paper Fig. 7/9 framing)"))

    eco, orc = points["ecolife"], points["oracle"]
    print(
        f"\nEcoLife vs ORACLE: +{eco.service_pct - orc.service_pct:.1f} pp "
        f"service, +{eco.carbon_pct - orc.carbon_pct:.1f} pp carbon "
        f"(paper: within 7.7 / 5.5)"
    )


if __name__ == "__main__":
    main()
