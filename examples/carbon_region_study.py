#!/usr/bin/env python
"""Domain scenario: where should a sustainability team deploy keep-alive?

Uses the public API to answer a practical question the paper motivates:
how much carbon does carbon-aware keep-alive scheduling save in *your grid
region*, and how does the region's carbon-intensity profile change the
answer? Runs EcoLife and the fixed NEW-ONLY policy across all five regions
and reports the savings plus the region's CI character.

Run with::

    python examples/carbon_region_study.py
"""

from repro.analysis import ascii_table
from repro.baselines import new_only
from repro.carbon import REGION_NAMES, region_trace_for
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import default_scenario, run_scheduler


def main() -> None:
    base = default_scenario(n_functions=30, hours=2.0, seed=5)
    horizon = base.trace.duration_s + 3600.0

    rows = []
    for region in REGION_NAMES:
        ci = region_trace_for(region, horizon, seed=3, start_hour=8.0)
        scenario = base.with_ci(ci, label=f"{base.label}|{region}")

        eco = run_scheduler(
            lambda: EcoLifeScheduler(EcoLifeConfig(seed=2)), scenario
        )
        fixed = run_scheduler(new_only, scenario)

        saving = (1.0 - eco.total_carbon_g / fixed.total_carbon_g) * 100.0
        slower = (eco.mean_service_s / fixed.mean_service_s - 1.0) * 100.0
        rows.append(
            [
                region,
                float(ci.values.mean()),
                ci.hourly_fluctuation_pct(),
                eco.total_carbon_g,
                fixed.total_carbon_g,
                saving,
                slower,
            ]
        )

    print(
        ascii_table(
            [
                "region",
                "mean CI",
                "CI fluct %",
                "ecolife g",
                "new-only g",
                "co2 saving %",
                "svc delta %",
            ],
            rows,
            title="EcoLife vs fixed 10-min keep-alive, by grid region",
        )
    )
    print(
        "\nReading: savings come from adapting keep-alive period/location to "
        "each function's arrival pattern and the grid's carbon intensity; "
        "volatile, solar-heavy grids (CAL) reward carbon-awareness the most."
    )


if __name__ == "__main__":
    main()
