#!/usr/bin/env python
"""Paper-extension scenario: multi-generation *GPU* inference serving.

The paper's discussion notes that "EcoLife can be adapted for
multi-generation GPUs using the GPU-specific carbon footprint model and
measurement". The carbon model only needs per-device power/embodied
constants and a performance index, so a GPU generation maps cleanly onto a
:class:`~repro.hardware.specs.ServerSpec`:

- "CPU package"      -> GPU board (full power = inference TGP, idle power =
  the board power attributable to resident-but-idle model replicas);
- "cores"            -> concurrent model slots (MIG-style partitions);
- "DRAM"             -> HBM/VRAM (keep-alive = model weights staying
  resident, the GPU analogue of a warm container);
- cold start         -> weight loading + CUDA context creation, which is
  exactly why keep-alive matters so much for GPU serving.

Run with::

    python examples/gpu_inference_fleet.py
"""

from repro.analysis import keepalive_behaviour, relative_to_opts, scatter_table
from repro.baselines import co2_opt, oracle, service_time_opt
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import default_scenario, run_suite
from repro.hardware import CPUSpec, DRAMSpec, Generation, HardwarePair, ServerSpec
from repro.workloads import AzureTraceConfig

V100_NODE = ServerSpec(
    key="v100-2018",
    generation=Generation.OLD,
    cpu=CPUSpec(
        name="V100-class board",
        year=2018,
        cores=8,  # concurrent model slots
        full_power_w=300.0,
        idle_power_w=14.0,  # 1.75 W per resident replica
        embodied_kg=120.0,
    ),
    dram=DRAMSpec(
        name="HBM2-32",
        year=2018,
        capacity_gb=32.0,
        embodied_kg_per_gb=2.2,  # HBM stacks are embodied-expensive
        power_w_per_gb=0.9,
    ),
    perf_index=0.55,  # roughly half the new board's inference throughput
)

H100_NODE = ServerSpec(
    key="h100-2023",
    generation=Generation.NEW,
    cpu=CPUSpec(
        name="H100-class board",
        year=2023,
        cores=7,  # MIG slices
        full_power_w=700.0,
        idle_power_w=48.0,  # 6.9 W per resident replica
        embodied_kg=380.0,
    ),
    dram=DRAMSpec(
        name="HBM3-80",
        year=2023,
        capacity_gb=80.0,
        embodied_kg_per_gb=1.8,
        power_w_per_gb=0.8,
    ),
    perf_index=1.0,
)

GPU_PAIR = HardwarePair(
    name="GPU",
    old=V100_NODE,
    new=H100_NODE,
    description="V100 (2018) vs H100 (2023) inference nodes",
)


def main() -> None:
    # Inference workloads: model-sized memory footprints, long cold starts
    # (weight loading); reuse the Azure-shaped arrival process.
    scenario = default_scenario(n_functions=24, hours=2.0, seed=17).with_pair(
        GPU_PAIR
    )
    # Make the trace reflect model-serving footprints by scaling memory up.
    from repro.workloads import generate_azure_trace

    trace, _ = generate_azure_trace(
        AzureTraceConfig(
            n_functions=24,
            duration_s=2 * 3600.0,
            seed=17,
            mem_scale_range=(2.0, 6.0),  # 0.3 GB thumbnails -> multi-GB models
        )
    )
    import dataclasses

    scenario = dataclasses.replace(scenario, trace=trace, label="gpu-inference")

    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": lambda: EcoLifeScheduler(EcoLifeConfig(seed=6)),
    }
    results = run_suite(schemes, scenario)
    print(
        scatter_table(
            relative_to_opts(results),
            title="multi-generation GPU inference fleet",
        )
    )

    behaviour = keepalive_behaviour(results["ecolife"])
    print(
        f"\nEcoLife keep-alive on the GPU fleet: median period "
        f"{behaviour.median_k_min:.0f} min, {behaviour.old_fraction * 100:.0f}% "
        f"of keep-alives on the V100 generation, "
        f"{behaviour.no_keepalive_fraction * 100:.0f}% of invocations not "
        f"kept resident at all."
    )
    print(
        "Reading: resident model replicas on the older board are the GPU "
        "analogue of warm containers on old CPUs -- cheap to hold, slower "
        "to serve; EcoLife exploits exactly the same trade-off the paper "
        "identifies for CPUs."
    )


if __name__ == "__main__":
    main()
