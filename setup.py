"""Setup shim: enables legacy editable installs where the `wheel` package
is unavailable (offline environments)."""

from setuptools import find_packages, setup

setup(
    name="ecolife-repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: ship inline annotations to downstream type checkers.
    package_data={"repro": ["py.typed"]},
)
