"""Command-line interface.

Examples::

    ecolife list-experiments
    ecolife run-experiment fig7 --quick
    ecolife simulate --scheduler ecolife --functions 40 --hours 4
    ecolife catalog
"""

from __future__ import annotations

import argparse
import sys

from repro.version import __version__


def _cmd_list_experiments(_args) -> int:
    from repro.experiments import EXPERIMENTS

    print("available experiments:")
    for name, fn in EXPERIMENTS.items():
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        doc = doc_lines[0] if doc_lines else ""
        print(f"  {name:<12} {doc}")
    return 0


def _cmd_run_experiment(args) -> int:
    from repro.experiments import EXPERIMENTS, default_scenario, quick_scenario

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try `ecolife list-experiments`")
        return 2
    fn = EXPERIMENTS[args.name]
    if args.name in ("fig1", "fig2", "fig3"):
        result = fn()  # analytical figures need no scenario
    else:
        scenario = (
            quick_scenario(seed=args.seed)
            if args.quick
            else default_scenario(seed=args.seed)
        )
        result = fn(scenario)
    print(result.render())
    return 0


def _cmd_simulate(args) -> int:
    from repro.baselines import (
        co2_opt,
        energy_opt,
        new_only,
        old_only,
        oracle,
        service_time_opt,
    )
    from repro.core import EcoLifeConfig, EcoLifeScheduler
    from repro.experiments import default_scenario, run_scheduler

    factories = {
        "ecolife": lambda: EcoLifeScheduler(EcoLifeConfig(seed=args.seed)),
        "ecolife-no-dpso": lambda: EcoLifeScheduler.without_dpso(
            EcoLifeConfig(seed=args.seed)
        ),
        "new-only": new_only,
        "old-only": old_only,
        "oracle": oracle,
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "energy-opt": energy_opt,
    }
    if args.scheduler not in factories:
        print(f"unknown scheduler {args.scheduler!r}; options: {sorted(factories)}")
        return 2
    scenario = default_scenario(
        n_functions=args.functions,
        hours=args.hours,
        seed=args.seed,
        region=args.region,
        pair=args.pair,
        pool_gb=args.pool_gb,
    )
    result = run_scheduler(factories[args.scheduler], scenario)
    print(result.summary())
    return 0


def _cmd_validate(_args) -> int:
    from repro import validation

    checks = validation.run_all_checks()
    print(validation.render_report(checks))
    return 0 if all(c.ok for c in checks) else 1


def _cmd_catalog(_args) -> int:
    from repro.analysis import ascii_table
    from repro.hardware import PAIRS

    rows = []
    for name, pair in PAIRS.items():
        for server in (pair.old, pair.new):
            rows.append(
                [
                    name,
                    server.key,
                    f"{server.cpu.name} ({server.cpu.year})",
                    server.cpu.cores,
                    f"{server.dram.name} ({server.dram.year})",
                    float(server.dram.capacity_gb),
                    float(server.perf_index),
                ]
            )
    print(
        ascii_table(
            ["pair", "server", "CPU", "cores", "DRAM", "GB", "perf"],
            rows,
            title="Table I -- multi-generation hardware pairs",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecolife",
        description="EcoLife (SC'24) reproduction: carbon-aware serverless "
        "keep-alive scheduling.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list reproducible figures/tables")

    run_p = sub.add_parser("run-experiment", help="run one paper experiment")
    run_p.add_argument("name", help="experiment id (e.g. fig7)")
    run_p.add_argument("--quick", action="store_true", help="small scenario")
    run_p.add_argument("--seed", type=int, default=7)

    sim_p = sub.add_parser("simulate", help="run one scheduler on a scenario")
    sim_p.add_argument("--scheduler", default="ecolife")
    sim_p.add_argument("--functions", type=int, default=60)
    sim_p.add_argument("--hours", type=float, default=6.0)
    sim_p.add_argument("--seed", type=int, default=7)
    sim_p.add_argument("--region", default="CAL")
    sim_p.add_argument("--pair", default="A")
    sim_p.add_argument("--pool-gb", type=float, default=32.0)

    sub.add_parser("catalog", help="print the Table I hardware catalog")
    sub.add_parser(
        "validate", help="re-check the DESIGN.md calibration targets"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``ecolife`` console script)."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-experiments": _cmd_list_experiments,
        "run-experiment": _cmd_run_experiment,
        "simulate": _cmd_simulate,
        "catalog": _cmd_catalog,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
