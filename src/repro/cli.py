"""Command-line interface.

Examples::

    ecolife list-experiments
    ecolife run-experiment fig7 --quick
    ecolife simulate --scheduler ecolife --functions 40 --hours 4
    ecolife sweep --regions CAL TEN --seeds 1 2 --workers 4
    ecolife sweep --regions CAL TEN --executor tcp://0.0.0.0:7044
    ecolife work tcp://sweep-host:7044
    ecolife trace compile azure.csv azure.npz
    ecolife trace info azure.npz
    ecolife simulate --scheduler ecolife --trace azure.npz --shards 4
    ecolife catalog
"""

from __future__ import annotations

import argparse
import sys

from repro.version import __version__


def _cmd_list_experiments(_args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    print("available experiments:")
    for name, fn in EXPERIMENTS.items():
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        doc = doc_lines[0] if doc_lines else ""
        print(f"  {name:<12} {doc}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, default_scenario, quick_scenario

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try `ecolife list-experiments`")
        return 2
    fn = EXPERIMENTS[args.name]
    if args.name in ("fig1", "fig2", "fig3"):
        result = fn()  # analytical figures need no scenario
    else:
        scenario = (
            quick_scenario(seed=args.seed)
            if args.quick
            else default_scenario(seed=args.seed)
        )
        result = fn(scenario)
    print(result.render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.baselines import (
        co2_opt,
        energy_opt,
        new_only,
        old_only,
        oracle,
        service_time_opt,
    )
    from repro.core import EcoLifeConfig, EcoLifeScheduler
    from repro.experiments import default_scenario, run_scheduler

    config = EcoLifeConfig(
        seed=args.seed,
        batch_swarms=not args.no_batch_swarms,
        decision_quantum_s=args.decision_quantum,
        adaptive_decision_quantum=args.adaptive_quantum,
        # None = keep the env-driven default (ECOLIFE_RNG_MODE).
        **({"rng_mode": args.rng_mode} if args.rng_mode else {}),
    )
    factories = {
        "ecolife": lambda: EcoLifeScheduler(config),
        "ecolife-no-dpso": lambda: EcoLifeScheduler.without_dpso(config),
        "new-only": new_only,
        "old-only": old_only,
        "oracle": oracle,
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "energy-opt": energy_opt,
    }
    if args.scheduler not in factories:
        print(f"unknown scheduler {args.scheduler!r}; options: {sorted(factories)}")
        return 2
    if args.trace:
        from repro.experiments import trace_scenario

        try:
            scenario = trace_scenario(
                args.trace,
                seed=args.seed,
                region=args.region,
                pair=args.pair,
                pool_gb=args.pool_gb,
            )
        except (OSError, ValueError) as exc:
            print(f"bad trace file {args.trace!r}: {exc}")
            return 2
    else:
        scenario = default_scenario(
            n_functions=args.functions,
            hours=args.hours,
            seed=args.seed,
            region=args.region,
            pair=args.pair,
            pool_gb=args.pool_gb,
        )
    if args.shards > 1:
        return _simulate_sharded(args, scenario, factories, config)
    result = run_scheduler(factories[args.scheduler], scenario)
    print(result.summary())
    return 0


def _simulate_sharded(args, scenario, factories, config) -> int:
    """The ``simulate --shards N`` path (bit-identical to 1 process).

    Transports: ``thread`` (in-process runner), ``process`` (local worker
    processes via the TCP coordinator), or ``tcp://host:port`` (bind a
    coordinator and wait for ``ecolife work ADDR --shard`` processes --
    the CI smoke mode).
    """
    if not getattr(factories[args.scheduler](), "supports_sharding", False):
        print(
            f"scheduler {args.scheduler!r} does not support sharded replay "
            "(needs supports_sharding + place_foreign; see docs/sharding.md)"
        )
        return 2
    transport = args.shard_transport
    if transport == "thread":
        from repro.experiments import run_scheduler

        result = run_scheduler(
            factories[args.scheduler], scenario, shards=args.shards,
            foreign_fast_path=args.foreign_fast_path,
        )
    elif transport == "process" or transport.startswith("tcp://"):
        from repro.distributed import ShardJob, run_sharded_tcp
        from repro.distributed.protocol import parse_address

        # With a compiled trace file, workers get the *path* and
        # memory-map the columns themselves instead of receiving a
        # pickled in-memory copy in the hello payload.
        import os

        trace_path = (
            os.path.abspath(args.trace) if getattr(args, "trace", None) else None
        )
        job = ShardJob(
            scheduler=args.scheduler,
            pair=scenario.pair,
            trace=None if trace_path else scenario.trace,
            ci_trace=scenario.ci_trace,
            n_shards=args.shards,
            config=config,
            sim_config=scenario.sim_config,
            trace_path=trace_path,
            foreign_fast_path=args.foreign_fast_path,
        )
        if transport == "process":
            result = run_sharded_tcp(job)
        else:
            host, port = parse_address(transport)
            print(
                f"shard coordinator on tcp://{host}:{port} -- attach "
                f"{args.shards} worker(s) with "
                f"`ecolife work tcp://{host}:{port} --shard`"
            )
            result = run_sharded_tcp(job, host=host, port=port, spawn_workers=False)
        result.meta["scenario"] = scenario.label
    else:
        print(
            f"unknown shard transport {transport!r}; "
            "options: thread, process, tcp://host:port"
        )
        return 2
    print(result.summary())
    print(
        f"shards: {result.meta.get('n_shards')} "
        f"(transport={result.meta.get('transport', 'thread')}"
        + (
            f", reassignments={result.meta['reassignments']}"
            if "reassignments" in result.meta
            else ""
        )
        + ")"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import grid_gap_rows, grid_gap_table, worst_margins
    from repro.experiments.registry import list_schedulers
    from repro.experiments.runner import (
        ParallelRunner,
        ResultCache,
        ScenarioGrid,
    )
    from repro.workloads.generators import (
        WorkloadSpec,
        generator_names,
        make_generator,
    )

    from repro.carbon.regions import REGION_NAMES
    from repro.hardware import PAIRS

    known = list_schedulers()
    unknown = [s for s in args.schedulers if s not in known]
    if unknown:
        print(f"unknown schedulers {unknown}; options: {list(known)}")
        return 2
    if args.executor != "local" and not args.executor.startswith("tcp://"):
        print(
            f"unknown executor {args.executor!r}; "
            "options: local, tcp://host:port"
        )
        return 2
    bad_regions = [r for r in args.regions if r.upper() not in REGION_NAMES]
    if bad_regions:
        print(f"unknown regions {bad_regions}; options: {sorted(REGION_NAMES)}")
        return 2
    bad_pairs = [p for p in args.pairs if p.upper() not in PAIRS]
    if bad_pairs:
        print(f"unknown pairs {bad_pairs}; options: {sorted(PAIRS)}")
        return 2
    try:
        workloads = tuple(WorkloadSpec.parse(w) for w in args.workloads)
        # Construct every generator up front so name, parameter, and
        # value errors exit cleanly here instead of as tracebacks from
        # inside a pool worker mid-sweep.
        for w in workloads:
            make_generator(w)
    # TypeError covers non-numeric parameter values reaching numeric
    # validators (e.g. mmpp:on_duration_s=abc).
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"bad workload: {message}")
        print(f"workload generator options: {list(generator_names())}")
        return 2
    if args.store_records and not args.cache_dir:
        print("--store-records requires --cache-dir")
        return 2
    if args.shards > 1:
        from repro.experiments.runner import make_scheduler

        unsupported = [
            s
            for s in args.schedulers
            if not getattr(make_scheduler(s), "supports_sharding", False)
        ]
        if unsupported:
            print(
                f"schedulers {unsupported} do not support sharded replay "
                "(--shards); see docs/sharding.md"
            )
            return 2
    grid = ScenarioGrid(
        regions=tuple(args.regions),
        pairs=tuple(args.pairs),
        seeds=tuple(args.seeds),
        pool_gbs=tuple(args.pool_gb),
        workloads=workloads,
        n_functions=tuple(args.functions),
        hours=tuple(args.hours),
        kmax_minutes=tuple(args.kmax),
    )
    cache = (
        ResultCache(args.cache_dir, store_records=args.store_records)
        if args.cache_dir
        else None
    )
    executor = None
    if args.executor != "local":
        from repro.distributed import TcpExecutor

        executor = TcpExecutor(bind=args.executor, cache=cache)
        print(
            f"job server on {executor.address} -- attach workers with "
            f"`ecolife work {executor.address}` "
            "(no workers -> jobs degrade to local execution)"
        )
    runner = ParallelRunner(
        n_workers=args.workers, cache=cache, executor=executor
    )
    try:
        result = runner.run_grid(grid, args.schedulers, shards=args.shards)
        if executor is not None:
            stats = executor.stats()
            print(
                f"distributed: {stats['done']} done, "
                f"{stats['retries_total']} retries, "
                f"{stats['expired_leases']} expired leases, "
                f"{len(stats['workers'])} worker(s)"
            )
    finally:
        if executor is not None:
            executor.shutdown()
    by_scenario = result.by_scenario()

    n_jobs = len(result)
    title = (
        f"sweep: {len(grid)} scenarios x {len(args.schedulers)} schemes "
        f"({n_jobs} runs, {runner.n_workers} workers)"
    )
    if args.relative_to in args.schedulers:
        print(grid_gap_table(by_scenario, reference=args.relative_to, title=title))
        rows = grid_gap_rows(by_scenario, reference=args.relative_to)
        for name in args.schedulers:
            if name == args.relative_to:
                continue
            svc, co2 = worst_margins(rows, name)
            print(
                f"{name}: worst margin vs {args.relative_to} "
                f"{svc:+.1f}% service / {co2:+.1f}% carbon"
            )
    else:
        from repro.analysis import ascii_table

        body = [
            [label, name, r.mean_service_s, r.total_carbon_g, r.warm_ratio * 100.0]
            for label, schemes in by_scenario.items()
            for name, r in schemes.items()
        ]
        print(
            ascii_table(
                ["scenario", "scheme", "svc (s)", "co2 (g)", "warm %"],
                body,
                title=title,
            )
        )
    if args.store_records:
        from repro.analysis import grid_record_cdfs, record_cdf_table

        print(record_cdf_table(grid_record_cdfs(cache, result.jobs)))
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({args.cache_dir})")
        if args.store_records:
            print(f"per-invocation records: {cache.record_count()} npz entries")
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.distributed import run_worker

    if args.shard:
        from repro.distributed import run_shard_worker

        for module in args.imports:
            __import__(module)
        try:
            shard_id = run_shard_worker(args.address, name=args.name)
        except (ConnectionError, ValueError) as exc:
            print(f"shard worker: {exc}")
            return 1
        except KeyboardInterrupt:
            print("shard worker interrupted")
            return 130
        print(f"shard worker exiting: shard {shard_id} complete")
        return 0
    try:
        completed = run_worker(
            args.address,
            name=args.name,
            plugins=tuple(args.imports),
            max_jobs=args.max_jobs,
            exit_when_drained=args.exit_when_drained,
        )
    except (ConnectionError, ValueError) as exc:
        print(f"worker: {exc}")
        return 1
    except KeyboardInterrupt:
        print("worker interrupted")
        return 130
    print(f"worker exiting: {completed} job(s) completed")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import time

    from repro.carbon.providers import (
        ElectricityMapsProvider,
        RecordedFixtureProvider,
        TraceProvider,
    )
    from repro.carbon.regions import REGION_NAMES, region_trace_for
    from repro.core import EcoLifeConfig
    from repro.hardware import PAIRS
    from repro.service import (
        DecisionServer,
        DecisionService,
        ShardedDecisionService,
    )
    from repro.simulator.engine import SimulationConfig

    if args.pair.upper() not in PAIRS:
        print(f"unknown pair {args.pair!r}; options: {sorted(PAIRS)}")
        return 2
    clock = None
    if args.provider == "trace":
        if args.region.upper() not in REGION_NAMES:
            print(f"unknown region {args.region!r}; options: {sorted(REGION_NAMES)}")
            return 2
        provider = TraceProvider(
            region_trace_for(args.region.upper(), args.hours * 3600.0)
        )
    elif args.provider == "fixture":
        if not args.fixture:
            print("--fixture PATH is required with --provider fixture")
            return 2
        provider = RecordedFixtureProvider(
            args.fixture,
            max_staleness_s=args.max_staleness,
            forecast_horizon_s=args.forecast_horizon,
        )
    else:  # electricity-maps
        token = os.environ.get("ELECTRICITYMAPS_TOKEN")
        if not token:
            print("set ELECTRICITYMAPS_TOKEN for --provider electricity-maps")
            return 2
        t0 = time.time()
        provider = ElectricityMapsProvider(
            zone=args.zone,
            token=token,
            max_staleness_s=args.max_staleness,
            t0_epoch_s=t0,
        )
        provider.poll(0.0)
        clock = lambda: time.time() - t0  # noqa: E731

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}")
        return 2
    service_cls = DecisionService
    kwargs = dict(
        provider=provider,
        pair=PAIRS[args.pair.upper()],
        config=EcoLifeConfig(seed=args.seed),
        sim_config=SimulationConfig(
            pool_capacity_old_gb=args.pool_gb,
            pool_capacity_new_gb=args.pool_gb,
            kmax_minutes=args.kmax,
            measure_decision_overhead=False,
        ),
        checkpoint_dir=args.checkpoint_dir,
    )
    if args.shards > 1:
        # One front door, per-shard services: /decide batches route by
        # the stable function-name hash (see docs/sharding.md).
        service_cls = ShardedDecisionService
        kwargs["n_shards"] = args.shards
    if args.restore:
        service = service_cls.restore(args.restore, **kwargs)
    else:
        service = service_cls(**kwargs)
    server = DecisionServer(
        service, host=args.host, port=args.port, clock=clock
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"decision service on http://{server.host}:{server.port} "
            f"(scheduler={service.scheduler_name}, "
            f"provider={service.provider.name})"
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down" + (
            f" (checkpoint -> {service.checkpoint_dir})"
            if service.checkpoint_dir
            else ""
        ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``ecolife trace compile|info|sample``: the streaming trace toolchain."""
    from repro.workloads import tracefile

    if args.trace_command == "compile":
        try:
            info = tracefile.compile_azure_csv(
                args.csv,
                args.out,
                chunk_rows=args.chunk_rows,
                compress=args.compress,
            )
        except (OSError, ValueError) as exc:
            print(f"compile failed: {exc}")
            return 2
        print(
            f"compiled {info['n_rows']} rows -> {info['path']} "
            f"({info['n_functions']} functions, "
            f"{info['n_invocations']} invocations, "
            f"{info['duration_s'] / 3600.0:.2f} h, "
            f"{info['size_bytes'] / 1e6:.1f} MB, "
            f"mmap={'yes' if info['mmap_able'] else 'no'})"
        )
        return 0
    if args.trace_command == "info":
        try:
            info = tracefile.trace_info(args.file)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.file!r}: {exc}")
            return 2
        for key in (
            "path",
            "format_version",
            "size_bytes",
            "mmap_able",
            "n_functions",
            "n_invocations",
            "duration_s",
        ):
            print(f"{key:>14}: {info[key]}")
        return 0
    # sample: write a synthetic Azure-format CSV for smoke tests/demos.
    n_rows = tracefile.write_azure_sample_csv(
        args.out,
        n_functions=args.functions,
        duration_hours=args.hours,
        seed=args.seed,
    )
    print(f"wrote {n_rows} rows to {args.out}")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from repro import validation

    checks = validation.run_all_checks()
    print(validation.render_report(checks))
    return 0 if all(c.ok for c in checks) else 1


def _cmd_catalog(_args: argparse.Namespace) -> int:
    from repro.analysis import ascii_table
    from repro.hardware import PAIRS

    rows = []
    for name, pair in PAIRS.items():
        for server in (pair.old, pair.new):
            rows.append(
                [
                    name,
                    server.key,
                    f"{server.cpu.name} ({server.cpu.year})",
                    server.cpu.cores,
                    f"{server.dram.name} ({server.dram.year})",
                    float(server.dram.capacity_gb),
                    float(server.perf_index),
                ]
            )
    print(
        ascii_table(
            ["pair", "server", "CPU", "cores", "DRAM", "GB", "perf"],
            rows,
            title="Table I -- multi-generation hardware pairs",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecolife",
        description="EcoLife (SC'24) reproduction: carbon-aware serverless "
        "keep-alive scheduling.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list reproducible figures/tables")

    run_p = sub.add_parser("run-experiment", help="run one paper experiment")
    run_p.add_argument("name", help="experiment id (e.g. fig7)")
    run_p.add_argument("--quick", action="store_true", help="small scenario")
    run_p.add_argument("--seed", type=int, default=7)

    sim_p = sub.add_parser("simulate", help="run one scheduler on a scenario")
    sim_p.add_argument("--scheduler", default="ecolife")
    sim_p.add_argument("--functions", type=int, default=60)
    sim_p.add_argument("--hours", type=float, default=6.0)
    sim_p.add_argument("--seed", type=int, default=7)
    sim_p.add_argument("--region", default="CAL")
    sim_p.add_argument("--pair", default="A")
    sim_p.add_argument("--pool-gb", type=float, default=32.0)
    sim_p.add_argument(
        "--no-batch-swarms", action="store_true",
        help="force the sequential per-function DPSO path "
        "(bit-identical results; for debugging/benchmarks)",
    )
    sim_p.add_argument(
        "--rng-mode", choices=["stream", "counter"],
        default=None,
        help="fleet RNG: 'stream' = per-swarm Generator streams "
        "(bit-identical to the sequential path), 'counter' = batched "
        "Philox counter draws (self-consistent, fastest; default "
        "honours ECOLIFE_RNG_MODE)",
    )
    sim_p.add_argument(
        "--decision-quantum", type=float, default=0.0,
        help="group continuous-trace decisions into shared ticks of "
        "this many seconds (0 = off; accuracy knob, see docs)",
    )
    sim_p.add_argument(
        "--adaptive-quantum", action="store_true",
        help="clamp the decision tick to the observed minimum service "
        "time (self-tuning batching width; bit-identical results)",
    )
    sim_p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="replay a compiled columnar trace file (.npz from `ecolife "
        "trace compile`) instead of generating a synthetic trace; "
        "--functions/--hours are ignored",
    )
    sim_p.add_argument(
        "--shards", type=int, default=1,
        help="partition the replay by function across this many shards "
        "(bit-identical at any count; see docs/sharding.md)",
    )
    sim_p.add_argument(
        "--shard-transport", default="thread", metavar="SPEC",
        help="shard execution: 'thread' (in-process), 'process' (local "
        "worker processes), or 'tcp://host:port' to bind a coordinator "
        "and wait for `ecolife work ADDR --shard` workers",
    )
    sim_p.add_argument(
        "--no-foreign-fast-path", dest="foreign_fast_path",
        action="store_false",
        help="force per-event foreign replay on shards (A/B identity "
        "knob; bit-identical either way, just slower)",
    )

    sweep_p = sub.add_parser(
        "sweep", help="run a scenario grid (regions x pairs x seeds x pools)"
    )
    sweep_p.add_argument("--regions", nargs="+", default=["CAL"])
    sweep_p.add_argument("--pairs", nargs="+", default=["A"])
    sweep_p.add_argument("--seeds", nargs="+", type=int, default=[7])
    sweep_p.add_argument("--pool-gb", nargs="+", type=float, default=[32.0])
    sweep_p.add_argument(
        "--workloads", nargs="+", default=["azure"],
        help="workload generator families, as `name` or `name:key=val,...` "
        "(e.g. azure diurnal mmpp:burst_rate_mult=8 churn:inner=mmpp)",
    )
    sweep_p.add_argument(
        "--schedulers", nargs="+", default=["oracle", "ecolife"],
        help="sweep-runner registry names",
    )
    sweep_p.add_argument("--functions", nargs="+", type=int, default=[60])
    sweep_p.add_argument("--hours", nargs="+", type=float, default=[6.0])
    sweep_p.add_argument(
        "--kmax", nargs="+", type=float, default=[30.0],
        help="maximum keep-alive period axis (minutes)",
    )
    sweep_p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: CPU count)",
    )
    sweep_p.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache (reruns become free)",
    )
    sweep_p.add_argument(
        "--store-records", action="store_true",
        help="persist full per-invocation records as compressed .npz next "
        "to the cached summaries and print pooled per-invocation CDFs "
        "(requires --cache-dir)",
    )
    sweep_p.add_argument(
        "--relative-to", default="oracle",
        help="reference scheme for the %%-increase table",
    )
    sweep_p.add_argument(
        "--shards", type=int, default=1,
        help="run every job's replay function-partitioned across this "
        "many in-process shards (bit-identical; cache entries are "
        "shared with 1-shard runs)",
    )
    sweep_p.add_argument(
        "--executor", default="local", metavar="SPEC",
        help="execution backend: 'local' (process pool) or "
        "'tcp://host:port' to host a job server leasing jobs to "
        "`ecolife work` clients (port 0 picks a free port; with no "
        "workers attached, jobs degrade to local execution)",
    )

    work_p = sub.add_parser(
        "work",
        help="serve sweep jobs as a TCP worker (see docs/distributed.md)",
    )
    work_p.add_argument("address", help="job server address, tcp://host:port")
    work_p.add_argument(
        "--name", default=None,
        help="worker name in the server's stats table (default host:pid)",
    )
    work_p.add_argument(
        "--import", dest="imports", action="append", default=[],
        metavar="MODULE",
        help="import this module before serving, for its "
        "@register_scheduler side effects (repeatable)",
    )
    work_p.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after completing this many jobs",
    )
    work_p.add_argument(
        "--exit-when-drained", action="store_true",
        help="exit once the server reports every job terminal",
    )
    work_p.add_argument(
        "--shard", action="store_true",
        help="join a sharded single-simulation replay instead of the "
        "sweep job fabric (address is a ShardCoordinator; see "
        "docs/sharding.md)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the online HTTP decision service (see docs/service.md)",
    )
    serve_p.add_argument(
        "--provider", choices=["trace", "fixture", "electricity-maps"],
        default="trace",
        help="carbon-intensity source: a synthetic region trace, a "
        "recorded JSON fixture, or the live Electricity Maps forecast "
        "API (needs ELECTRICITYMAPS_TOKEN)",
    )
    serve_p.add_argument("--region", default="CAL", help="trace provider region")
    serve_p.add_argument(
        "--hours", type=float, default=24.0, help="trace provider span"
    )
    serve_p.add_argument("--fixture", default=None, help="fixture JSON path")
    serve_p.add_argument(
        "--zone", default="DE", help="Electricity Maps zone code"
    )
    serve_p.add_argument(
        "--max-staleness", type=float, default=3600.0,
        help="refuse decisions once intensity data is older than this (s)",
    )
    serve_p.add_argument(
        "--forecast-horizon", type=float, default=0.0,
        help="fixture provider: reveal samples this far ahead of event time (s)",
    )
    serve_p.add_argument("--pair", default="A")
    serve_p.add_argument("--pool-gb", type=float, default=32.0)
    serve_p.add_argument("--kmax", type=float, default=30.0)
    serve_p.add_argument("--seed", type=int, default=2024)
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8044)
    serve_p.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint here on /checkpoint (no body) and graceful shutdown",
    )
    serve_p.add_argument(
        "--restore", default=None,
        help="restore scheduler + engine state from this checkpoint directory",
    )
    serve_p.add_argument(
        "--shards", type=int, default=1,
        help="route /decide batches across this many per-shard decision "
        "services by stable function-name hash (see docs/sharding.md)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="compile/inspect columnar trace files (see docs/workloads.md)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    compile_p = trace_sub.add_parser(
        "compile",
        help="compile an Azure-format CSV (app,func,end_timestamp,duration) "
        "into a columnar .npz trace, streaming in bounded chunks",
    )
    compile_p.add_argument("csv", help="input CSV path")
    compile_p.add_argument("out", help="output .npz trace path")
    compile_p.add_argument(
        "--chunk-rows", type=int, default=100_000,
        help="CSV rows parsed per chunk (bounds compiler memory)",
    )
    compile_p.add_argument(
        "--compress", action="store_true",
        help="zip-deflate the columns (smaller file, but workers must "
        "load it into RAM instead of memory-mapping)",
    )
    info_p = trace_sub.add_parser("info", help="print a trace file's header")
    info_p.add_argument("file", help=".npz trace path")
    sample_p = trace_sub.add_parser(
        "sample",
        help="write a synthetic Azure-format sample CSV (compiler demo "
        "input; deterministic per seed)",
    )
    sample_p.add_argument("out", help="output CSV path")
    sample_p.add_argument("--functions", type=int, default=128)
    sample_p.add_argument("--hours", type=float, default=24.0)
    sample_p.add_argument("--seed", type=int, default=2024)

    sub.add_parser("catalog", help="print the Table I hardware catalog")
    sub.add_parser(
        "validate", help="re-check the DESIGN.md calibration targets"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (``ecolife`` console script)."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-experiments": _cmd_list_experiments,
        "run-experiment": _cmd_run_experiment,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "work": _cmd_work,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "catalog": _cmd_catalog,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
