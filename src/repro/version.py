"""Package version (single source of truth for code; pyproject mirrors it)."""

__version__ = "1.0.0"
