"""Line protocol for the TCP job fabric.

One message per line: a JSON object with a ``type`` field, terminated
by ``\\n``. Binary payloads (pickled :class:`~repro.experiments.runner.RunnerJob`
instances and job outcomes) ride inside the JSON as base64 strings, so
the whole protocol stays greppable with ``nc``/``socat`` and needs no
length-prefixed framing.

Message types (client -> server unless noted):

========== =========================================================
``hello``       first message on a connection; ``worker`` names the
                client for the stats table.
``hello_ack``   (server) reply carrying ``heartbeat_interval_s`` and
                ``lease_timeout_s`` so clients pace themselves off the
                server's clock policy, not their own defaults.
``request``     ask for work.
``lease``       (server) one job: ``job_id``, base64-pickle ``data``
                of ``(job, with_records)``, and the 1-based ``attempt``.
``idle``        (server) no work right now; retry in ``retry_in_s``
                seconds. ``drained`` is true once every submitted job
                reached a terminal state, letting batch workers exit.
``heartbeat``   lease keep-alive for ``job_id`` while executing.
``result``      completed ``job_id`` with base64-pickle ``data`` of the
                outcome and the worker-side ``busy_s``.
``error``       ``job_id`` raised; ``error`` is the formatted cause.
``stats``       request (empty) and (server) reply -- queue depth,
                lease ages, retry/duplicate counters, per-worker
                throughput. See :meth:`JobServer.stats_payload`.
========== =========================================================

Trust boundary: payloads are **pickles**, so the fabric must only span
machines under one operator's control (same trust domain as the shared
``ResultCache`` directory). Never expose a :class:`JobServer` port to
untrusted networks.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
from typing import Any

#: StreamReader line limit. Job outcomes can carry per-invocation
#: record arrays, so the default 64 KiB asyncio limit is far too small.
STREAM_LIMIT = 1 << 26  # 64 MiB

#: Scheme prefix for executor address specs.
TCP_SCHEME = "tcp://"


def parse_address(address: str) -> tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``.

    The scheme is mandatory: a bare ``host:port`` is rejected so the
    CLI can tell an executor spec from a path or a scheduler name.
    """
    if not address.startswith(TCP_SCHEME):
        raise ValueError(
            f"address must look like 'tcp://host:port', got {address!r}"
        )
    rest = address[len(TCP_SCHEME):]
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address must look like 'tcp://host:port', got {address!r}"
        )
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in address {address!r}")
    return host, port


def format_address(host: str, port: int) -> str:
    return f"{TCP_SCHEME}{host}:{port}"


def pack(obj: Any) -> str:
    """Pickle ``obj`` and base64 it for transport inside JSON."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack(data: str) -> Any:
    """Inverse of :func:`pack`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


async def send(writer: asyncio.StreamWriter, **fields: Any) -> None:
    """Write one message (``fields`` must include ``type``)."""
    writer.write(json.dumps(fields, separators=(",", ":")).encode() + b"\n")
    await writer.drain()


async def read_msg(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; ``None`` on EOF (peer closed the connection)."""
    line = await reader.readline()
    if not line:
        return None
    msg = json.loads(line)
    if not isinstance(msg, dict) or "type" not in msg:
        raise ValueError(f"malformed protocol message: {line[:200]!r}")
    return msg
