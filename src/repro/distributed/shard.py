"""Process coordinator for the function-sharded replay.

The TCP counterpart of :class:`repro.simulator.shard.ThreadShardRunner`:
one :class:`ShardCoordinator` drives ``n_shards`` worker processes
(``python -m repro.cli work tcp://host:port --shard``) in barrier
lockstep over the line protocol from :mod:`repro.distributed.protocol`
-- the same greppable newline-JSON framing, base64-pickle payloads, and
heartbeat pacing as the PR 8 job fabric.

Message flow (worker -> coordinator unless noted)::

    hello        {role: "shard", worker}   first message; coordinator
                                           assigns the lowest free shard id
    hello_ack    (coordinator)             {shard, n_shards,
                                           heartbeat_interval_s,
                                           data: pack(ShardJob)}
    barrier      {seq, data: pack(outbox)} blocks until every shard of the
                                           round contributed
    barrier_ack  (coordinator)             {seq, data: pack(merged)}
    heartbeat    {}                        liveness while computing
    result       {data: pack(result)}      the shard's SimulationResult

Fault tolerance mirrors the deterministic-replay story of the engine:
the coordinator **caches every merged round**. If a shard worker dies
(SIGKILL included -- its connection drops and its shard id is freed), a
replacement connects, receives the same shard id and job, and replays
from round zero; every barrier it has "missed" is served instantly from
cache, so it fast-forwards to the frontier where the healthy shards are
still blocked, and the run completes bit-identically. No partial state
crosses the wire -- determinism *is* the checkpoint.

Trust boundary: identical to the job fabric -- payloads are pickles, so
only run this between machines under one operator's control.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass

from repro.carbon.intensity import CarbonIntensityTrace
from repro.core.config import EcoLifeConfig
from repro.hardware.specs import HardwarePair
from repro.simulator.engine import SimulationConfig
from repro.simulator.records import SimulationResult
from repro.simulator.shard import ShardDecision, ShardEngine
from repro.workloads.trace import InvocationTrace

from repro.distributed.protocol import (
    STREAM_LIMIT,
    format_address,
    pack,
    parse_address,
    read_msg,
    send,
    unpack,
)


@dataclass(frozen=True)
class ShardJob:
    """Everything a shard worker needs to replay its part of one run.

    The scheduler travels by registry name plus config (exactly like the
    sweep fabric's ``RunnerJob``), so workers rebuild it through
    :func:`repro.experiments.runner.make_scheduler` and out-of-tree
    schedulers join via the same plugin-import mechanism.

    The trace travels one of two ways: inline (``trace``, pickled over
    the wire like everything else) or by reference (``trace_path``, a
    columnar ``.npz`` written by :meth:`InvocationTrace.save` on storage
    every worker can read). The path form keeps the hello payload small
    and lets each worker *memory-map* the columns instead of
    materialising its own Python copy -- the Azure-day-scale mode.
    """

    scheduler: str
    pair: HardwarePair
    trace: InvocationTrace | None
    ci_trace: CarbonIntensityTrace
    n_shards: int
    config: EcoLifeConfig | None = None
    sim_config: SimulationConfig | None = None
    by: str = "hash"
    trace_path: str | None = None
    foreign_fast_path: bool = True

    def __post_init__(self) -> None:
        if (self.trace is None) == (self.trace_path is None):
            raise ValueError(
                "ShardJob needs exactly one of trace or trace_path"
            )

    def resolve_trace(self) -> InvocationTrace:
        """The replay trace -- mmap-opened when shipped by path."""
        if self.trace is not None:
            return self.trace
        return InvocationTrace.open(self.trace_path, mmap=True)


class ShardCoordinator:
    """Barrier server: assigns shard ids, merges outboxes, collects results.

    Single event loop, one handler task per connection. ``start()``
    binds the listening socket (port 0 picks a free one --
    ``self.address`` is the dialable spec); ``wait()`` resolves once all
    ``n_shards`` results arrived and returns the merged
    :class:`SimulationResult`.
    """

    def __init__(
        self,
        job: ShardJob,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval_s: float = 2.0,
    ) -> None:
        self.job = job
        self.host = host
        self.port = port
        self.heartbeat_interval_s = heartbeat_interval_s
        self.address: str | None = None
        self._server: asyncio.AbstractServer | None = None
        self._free_ids = set(range(job.n_shards))
        self._contrib: dict[int, dict[int, list[ShardDecision]]] = {}
        self._merged: dict[int, list[ShardDecision]] = {}
        self._waiters: dict[int, list[asyncio.Future]] = {}
        self._results: dict[int, SimulationResult] = {}
        self._done: asyncio.Future | None = None
        #: Reconnection counter: how many times a shard id was re-issued
        #: after a connection loss (0 on a clean run; surfaced in meta).
        self.reassignments = 0

    async def start(self) -> str:
        self._done = asyncio.get_running_loop().create_future()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=STREAM_LIMIT
        )
        sock = self._server.sockets[0]
        self.address = format_address(self.host, sock.getsockname()[1])
        return self.address

    async def wait(self) -> SimulationResult:
        assert self._done is not None, "call start() first"
        await self._done
        merged = SimulationResult.merge(
            [self._results[i] for i in sorted(self._results)]
        )
        merged.meta["transport"] = "tcp"
        merged.meta["reassignments"] = self.reassignments
        return merged

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- per-connection handler ---------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        shard_id: int | None = None
        try:
            msg = await read_msg(reader)
            if msg is None or msg["type"] != "hello" or msg.get("role") != "shard":
                return
            if not self._free_ids:
                await send(writer, type="error", error="all shard ids assigned")
                return
            shard_id = min(self._free_ids)
            self._free_ids.discard(shard_id)
            if shard_id in self._contrib.get(0, {}) or any(
                shard_id in c for c in self._contrib.values()
            ):
                self.reassignments += 1
            await send(
                writer,
                type="hello_ack",
                shard=shard_id,
                n_shards=self.job.n_shards,
                heartbeat_interval_s=self.heartbeat_interval_s,
                data=pack(self.job),
            )
            while True:
                msg = await read_msg(reader)
                if msg is None:
                    return
                if msg["type"] == "barrier":
                    merged = await self._barrier(
                        int(msg["seq"]), shard_id, unpack(msg["data"])
                    )
                    await send(
                        writer,
                        type="barrier_ack",
                        seq=int(msg["seq"]),
                        data=pack(merged),
                    )
                elif msg["type"] == "heartbeat":
                    continue
                elif msg["type"] == "result":
                    self._results[shard_id] = unpack(msg["data"])
                    await send(writer, type="result_ack")
                    if (
                        len(self._results) == self.job.n_shards
                        and self._done is not None
                        and not self._done.done()
                    ):
                        self._done.set_result(None)
                else:
                    raise ValueError(f"unexpected message {msg['type']!r}")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # connection loss is the crash signal; id is freed below
        except asyncio.CancelledError:
            pass  # loop teardown after the merged result landed; exit clean
        finally:
            # Free the id for a replacement unless this shard finished.
            if shard_id is not None and shard_id not in self._results:
                self._free_ids.add(shard_id)
            writer.close()

    async def _barrier(
        self, seq: int, shard_id: int, outbox: list[ShardDecision]
    ) -> list[ShardDecision]:
        merged = self._merged.get(seq)
        if merged is not None:
            # Cached round: a crash-resumed shard replaying its past.
            # Its contribution is deterministic and already merged.
            return merged
        contrib = self._contrib.setdefault(seq, {})
        contrib[shard_id] = list(outbox)
        if len(contrib) == self.job.n_shards:
            merged = [d for s in sorted(contrib) for d in contrib[s]]
            self._merged[seq] = merged
            for fut in self._waiters.pop(seq, []):
                if not fut.done():
                    fut.set_result(merged)
            return merged
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(seq, []).append(fut)
        return await fut


class _WireBarrier:
    """Engine-facing transport: blocking exchange over the event loop.

    The shard engine runs in a thread (so the loop keeps heartbeating);
    each exchange round-trips one ``barrier``/``barrier_ack`` pair via
    ``run_coroutine_threadsafe``.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._loop = loop
        self._reader = reader
        self._writer = writer

    def exchange(self, seq, shard_id, outbox):
        return asyncio.run_coroutine_threadsafe(
            self._exchange(seq, outbox), self._loop
        ).result()

    async def _exchange(self, seq: int, outbox) -> list[ShardDecision]:
        await send(self._writer, type="barrier", seq=seq, data=pack(list(outbox)))
        while True:
            msg = await read_msg(self._reader)
            if msg is None:
                raise ConnectionError("coordinator closed during barrier")
            if msg["type"] == "barrier_ack" and int(msg["seq"]) == seq:
                return unpack(msg["data"])


def default_shard_worker_name() -> str:
    import os

    return f"{socket.gethostname()}:{os.getpid()}"


async def shard_worker_loop(
    address: str,
    *,
    name: str | None = None,
    connect_attempts: int = 40,
    connect_delay_s: float = 0.25,
) -> int:
    """Join a sharded replay as one worker; returns the shard id served.

    Connects (retrying while the coordinator boots), receives a shard id
    plus the pickled :class:`ShardJob`, replays the full merged trace
    deciding only the owned partition, and ships the shard's result
    back. Heartbeats flow while the engine computes between barriers.
    """
    from repro.experiments.runner import make_scheduler

    host, port = parse_address(address)
    last: Exception | None = None
    reader = writer = ack = None
    for attempt in range(connect_attempts):
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=STREAM_LIMIT
            )
            await send(
                writer,
                type="hello",
                role="shard",
                worker=name or default_shard_worker_name(),
            )
            ack = await read_msg(reader)
        except OSError as exc:
            last = exc
            ack = None
        if ack is not None and ack["type"] == "hello_ack":
            break
        # "error" acks happen when a killed shard's id has not been
        # freed yet (its handler is mid-barrier); retry like a refused
        # connection so replacements can start eagerly.
        if ack is not None:
            last = ConnectionError(f"handshake rejected: {ack!r}")
        if writer is not None:
            writer.close()
            reader = writer = None
        if attempt + 1 < connect_attempts:
            await asyncio.sleep(connect_delay_s)
    if reader is None or writer is None or ack is None:
        raise ConnectionError(
            f"could not join shard coordinator at {address}: {last}"
        )
    try:
        shard_id = int(ack["shard"])
        interval = float(ack["heartbeat_interval_s"])
        job: ShardJob = unpack(ack["data"])
        trace = job.resolve_trace()
        buckets = trace.partition_names(job.n_shards, by=job.by)
        loop = asyncio.get_running_loop()
        engine = ShardEngine(
            pair=job.pair,
            trace=trace,
            ci_trace=job.ci_trace,
            shard_id=shard_id,
            n_shards=job.n_shards,
            own_names=buckets[shard_id],
            transport=_WireBarrier(loop, reader, writer),
            config=job.sim_config,
            foreign_fast_path=job.foreign_fast_path,
        )
        scheduler = make_scheduler(job.scheduler, job.config)
        run = asyncio.ensure_future(asyncio.to_thread(engine.run_shard, scheduler))
        try:
            while True:
                done, _ = await asyncio.wait([run], timeout=interval)
                if done:
                    break
                await send(writer, type="heartbeat")
        except BaseException:
            run.cancel()
            raise
        result = run.result()
        await send(writer, type="result", data=pack(result))
        try:
            await read_msg(reader)  # result_ack
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass  # coordinator may close right after the last result lands
        return shard_id
    finally:
        writer.close()


def run_shard_worker(address: str, **kwargs: object) -> int:
    """Synchronous wrapper around :func:`shard_worker_loop` (CLI entry)."""
    return asyncio.run(shard_worker_loop(address, **kwargs))  # type: ignore[arg-type]


def _spawned_worker(address: str) -> None:  # pragma: no cover - subprocess
    run_shard_worker(address)


def run_sharded_tcp(
    job: ShardJob,
    host: str = "127.0.0.1",
    port: int = 0,
    spawn_workers: bool = True,
) -> SimulationResult:
    """One-call process-sharded replay (bench and test harness).

    Starts a coordinator and, when ``spawn_workers`` is set, one local
    worker **process** per shard (``multiprocessing`` spawn-or-fork
    default), then blocks until the merged result is in. With
    ``spawn_workers=False`` the coordinator waits for externally started
    ``work --shard`` processes -- the CI smoke mode.
    """
    import multiprocessing

    async def _run() -> SimulationResult:
        coordinator = ShardCoordinator(job, host=host, port=port)
        address = await coordinator.start()
        procs: list[multiprocessing.Process] = []
        if spawn_workers:
            for _ in range(job.n_shards):
                p = multiprocessing.Process(
                    target=_spawned_worker, args=(address,), daemon=True
                )
                p.start()
                procs.append(p)
        try:
            return await coordinator.wait()
        finally:
            await coordinator.close()
            for p in procs:
                p.join(timeout=10.0)
                if p.is_alive():  # pragma: no cover - cleanup path
                    p.terminate()

    return asyncio.run(_run())
