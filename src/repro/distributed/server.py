"""Asyncio job server: leases runner jobs to TCP worker clients.

The server owns the authoritative job state machine::

    queued --lease--> leased --result--> done
      ^                 |
      |   expiry / disconnect / worker error (attempt budget left)
      +-----------------+
                        |  budget exhausted
                        +--------------------> failed

Fault model (mirrors the runner's crash semantics):

- **Lease expiry.** Workers heartbeat while executing; a lease whose
  last heartbeat is older than ``lease_timeout_s`` is presumed lost and
  the job is retried. A worker that merely stalled may still deliver a
  late result -- whichever attempt lands first wins (results are
  deterministic, so "first" is also "correct"); later deliveries are
  counted as duplicates and dropped.
- **Disconnect.** A closing connection immediately requeues its leases
  (faster than waiting out the timeout).
- **Bounded retry.** Each requeue burns one attempt out of
  ``1 + max_retries`` and is delayed by the same capped exponential
  backoff shape as :class:`repro.carbon.providers.ElectricityMapsProvider`:
  ``min(backoff_base_s * 2**attempt, backoff_cap_s)``. Exhausting the
  budget fails the job's future with
  :class:`~repro.experiments.runner.JobFailedError`.
- **At-most-once commit.** When the server holds a
  :class:`~repro.experiments.runner.ResultCache`, the first outcome per
  job is written to it exactly once, server-side, as it lands -- so a
  partially-completed distributed sweep resumes from the cache like a
  local one.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments.runner import (
    JobFailedError,
    JobOutcome,
    ResultCache,
    RunnerJob,
    unpack_outcome,
)

from repro.distributed.protocol import (
    format_address,
    pack,
    read_msg,
    send,
    unpack,
    STREAM_LIMIT,
)


def backoff_s(attempt: int, base_s: float, cap_s: float) -> float:
    """Capped exponential backoff, attempt 0 -> ``base_s``."""
    return min(base_s * 2.0**attempt, cap_s)


@dataclass
class _JobRecord:
    """Server-side state for one submitted job."""

    job_id: str
    job: RunnerJob
    with_records: bool
    future: "asyncio.Future[JobOutcome]"
    status: str = "queued"  # queued | leased | done | failed
    attempts: int = 0  # leases handed out so far
    errors: list[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.job.scheduler} @ {self.job.scenario_label}"


@dataclass
class _Lease:
    job_id: str
    worker: str
    t_leased: float
    t_heartbeat: float


@dataclass
class _WorkerStats:
    name: str
    connected: bool = True
    completed: int = 0
    errors: int = 0
    busy_s: float = 0.0


class JobServer:
    """Lease-based job queue over the line protocol.

    Single-threaded within one event loop; every public coroutine must
    run on that loop (the :class:`~repro.distributed.executor.TcpExecutor`
    bridges from other threads via ``run_coroutine_threadsafe``).
    ``clock`` is injectable so lease-expiry tests do not sleep.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: ResultCache | None = None,
        lease_timeout_s: float = 30.0,
        heartbeat_interval_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.host = host
        self.port = port
        self.cache = cache
        self.lease_timeout_s = float(lease_timeout_s)
        self.heartbeat_interval_s = float(
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else lease_timeout_s / 4.0
        )
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.clock = clock

        self._jobs: dict[str, _JobRecord] = {}
        self._ready: deque[str] = deque()
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, _WorkerStats] = {}
        self._next_job_id = 0
        self._next_worker_id = 0
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task[None] | None = None
        self._client_tasks: dict["asyncio.Task[None]", asyncio.StreamWriter] = {}
        self._requeues: dict[str, asyncio.TimerHandle] = {}
        # Counters for the stats reply.
        self.retries_total = 0
        self.expired_leases = 0
        self.duplicate_results = 0

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_expired_leases()
        )

    async def close(self) -> None:
        """Stop serving. Workers observe EOF on their next read and exit."""
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        for handle in self._requeues.values():
            handle.cancel()
        self._requeues.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Python 3.11's wait_closed() does not wait for per-connection
        # handlers; close their transports so each handler observes EOF
        # and exits before loop teardown (cancellation would trip the
        # stream protocol's connection_made callback on 3.11).
        for writer in self._client_tasks.values():
            writer.close()
        if self._client_tasks:
            _, pending = await asyncio.wait(set(self._client_tasks), timeout=5.0)
            for task in pending:
                task.cancel()
            self._client_tasks.clear()

    @property
    def address(self) -> str:
        return format_address(self.host, self.port)

    def worker_count(self) -> int:
        return sum(1 for w in self._workers.values() if w.connected)

    # -- job intake --------------------------------------------------

    def submit(
        self, job: RunnerJob, with_records: bool = False
    ) -> "asyncio.Future[JobOutcome]":
        """Queue one job; the future resolves with its outcome."""
        self._next_job_id += 1
        job_id = f"j{self._next_job_id}"
        record = _JobRecord(
            job_id=job_id,
            job=job,
            with_records=with_records,
            future=asyncio.get_running_loop().create_future(),
        )
        self._jobs[job_id] = record
        self._ready.append(job_id)
        return record.future

    def drained(self) -> bool:
        """True once every submitted job reached ``done`` or ``failed``.

        An empty server (nothing submitted yet) is *not* drained:
        ``--exit-when-drained`` workers may attach before the sweep
        submits its grid, and must wait for it rather than exit.
        """
        return bool(self._jobs) and all(
            r.status in ("done", "failed") for r in self._jobs.values()
        )

    # -- lease bookkeeping -------------------------------------------

    def try_lease(self, worker: str) -> _JobRecord | None:
        """Pop the next ready job and lease it to ``worker``."""
        while self._ready:
            job_id = self._ready.popleft()
            record = self._jobs[job_id]
            if record.status != "queued":  # raced with a late result
                continue
            record.status = "leased"
            record.attempts += 1
            now = self.clock()
            self._leases[job_id] = _Lease(
                job_id=job_id, worker=worker, t_leased=now, t_heartbeat=now
            )
            return record
        return None

    def heartbeat(self, job_id: str) -> None:
        lease = self._leases.get(job_id)
        if lease is not None:
            lease.t_heartbeat = self.clock()

    def _requeue_after_failure(self, record: _JobRecord, error: str) -> None:
        """One attempt burned; retry after backoff or fail permanently."""
        self._leases.pop(record.job_id, None)
        record.errors.append(error)
        if record.attempts > self.max_retries:
            record.status = "failed"
            if not record.future.done():
                record.future.set_exception(
                    JobFailedError(record.label, record.attempts, error)
                )
            return
        record.status = "queued"
        self.retries_total += 1
        delay = backoff_s(
            record.attempts - 1, self.backoff_base_s, self.backoff_cap_s
        )
        loop = asyncio.get_running_loop()

        def requeue() -> None:
            self._requeues.pop(record.job_id, None)
            if record.status == "queued":
                self._ready.append(record.job_id)

        self._requeues[record.job_id] = loop.call_later(delay, requeue)

    def complete(self, job_id: str, outcome: JobOutcome) -> bool:
        """Commit one outcome; returns False for duplicates/unknown ids.

        The first delivery wins: the cache write and the future
        resolution happen at most once per job, even when an expired
        lease's straggler and the retry both report back.
        """
        record = self._jobs.get(job_id)
        if record is None:
            return False
        self._leases.pop(job_id, None)
        if record.status in ("done", "failed"):
            self.duplicate_results += 1
            return False
        handle = self._requeues.pop(job_id, None)
        if handle is not None:
            handle.cancel()
        record.status = "done"
        if self.cache is not None:
            summary, records = unpack_outcome(outcome)
            self.cache.put(record.job, summary, records=records)
        if not record.future.done():
            record.future.set_result(outcome)
        return True

    def fail_attempt(self, job_id: str, error: str) -> None:
        """A worker reported an execution error for its lease."""
        record = self._jobs.get(job_id)
        if record is None or record.status != "leased":
            return
        self._requeue_after_failure(record, error)

    async def _reap_expired_leases(self) -> None:
        interval = max(self.heartbeat_interval_s, 0.01)
        while True:
            await asyncio.sleep(interval)
            now = self.clock()
            expired = [
                lease
                for lease in self._leases.values()
                if now - lease.t_heartbeat > self.lease_timeout_s
            ]
            for lease in expired:
                record = self._jobs[lease.job_id]
                if record.status != "leased":
                    continue
                self.expired_leases += 1
                self._requeue_after_failure(
                    record,
                    f"lease expired on worker {lease.worker!r} "
                    f"(no heartbeat for {now - lease.t_heartbeat:.1f}s)",
                )

    # -- connection handling -----------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_worker_id += 1
        worker = f"conn{self._next_worker_id}"
        stats: _WorkerStats | None = None
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks[task] = writer
        try:
            while True:
                msg = await read_msg(reader)
                if msg is None:
                    break
                kind = msg["type"]
                if kind == "hello":
                    worker = f"{msg.get('worker', worker)}#{self._next_worker_id}"
                    stats = self._workers.setdefault(worker, _WorkerStats(worker))
                    stats.connected = True
                    await send(
                        writer,
                        type="hello_ack",
                        worker=worker,
                        heartbeat_interval_s=self.heartbeat_interval_s,
                        lease_timeout_s=self.lease_timeout_s,
                    )
                elif kind == "request":
                    record = self.try_lease(worker)
                    if record is None:
                        await send(
                            writer,
                            type="idle",
                            retry_in_s=self.heartbeat_interval_s,
                            drained=self.drained(),
                        )
                    else:
                        await send(
                            writer,
                            type="lease",
                            job_id=record.job_id,
                            data=pack((record.job, record.with_records)),
                            attempt=record.attempts,
                        )
                elif kind == "heartbeat":
                    self.heartbeat(msg["job_id"])
                elif kind == "result":
                    committed = self.complete(msg["job_id"], unpack(msg["data"]))
                    if stats is not None and committed:
                        stats.completed += 1
                        stats.busy_s += float(msg.get("busy_s", 0.0))
                elif kind == "error":
                    if stats is not None:
                        stats.errors += 1
                    self.fail_attempt(msg["job_id"], str(msg.get("error", "")))
                elif kind == "stats":
                    await send(writer, **self.stats_payload())
                else:
                    raise ValueError(f"unknown message type {kind!r}")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._client_tasks.pop(task, None)
            if stats is not None:
                stats.connected = False
            self._requeue_worker_leases(worker)
            writer.close()

    def _requeue_worker_leases(self, worker: str) -> None:
        """A connection died: retry every lease it still held."""
        held = [le for le in self._leases.values() if le.worker == worker]
        for lease in held:
            record = self._jobs[lease.job_id]
            if record.status != "leased":
                continue
            self._requeue_after_failure(
                record, f"worker {worker!r} disconnected mid-lease"
            )

    # -- stats -------------------------------------------------------

    def stats_payload(self) -> dict[str, Any]:
        """The ``stats`` reply: queue/lease/retry/throughput snapshot."""
        now = self.clock()
        statuses = [r.status for r in self._jobs.values()]
        return {
            "type": "stats",
            "address": self.address,
            "queue_depth": len(self._ready),
            "leased": len(self._leases),
            "lease_ages_s": sorted(
                round(now - lease.t_leased, 3) for lease in self._leases.values()
            ),
            "submitted": len(self._jobs),
            "done": statuses.count("done"),
            "failed": statuses.count("failed"),
            "retries_total": self.retries_total,
            "expired_leases": self.expired_leases,
            "duplicate_results": self.duplicate_results,
            "workers": {
                name: {
                    "connected": w.connected,
                    "completed": w.completed,
                    "errors": w.errors,
                    "busy_s": round(w.busy_s, 6),
                }
                for name, w in sorted(self._workers.items())
            },
        }
