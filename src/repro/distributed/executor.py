"""TcpExecutor: the distributed backend behind ``ParallelRunner``.

Hosts a :class:`~repro.distributed.server.JobServer` on a background
thread (its own event loop) and bridges the runner's synchronous
:class:`~repro.experiments.runner.Executor` protocol onto it:
``submit`` returns a plain :class:`concurrent.futures.Future` chained
to the server-side job future, ``as_completed`` pumps the outstanding
set, and ``shutdown`` closes the server (connected workers observe EOF
and exit).

Capability flags: ``retries_jobs=True`` -- worker loss is retried
internally and a failed future means the retry budget is exhausted;
``commits_results`` is true exactly when a shared
:class:`~repro.experiments.runner.ResultCache` was handed to the
server, which then commits each outcome at most once as it lands.

**Graceful degradation:** if no worker is connected for
``local_fallback_after_s`` while work is queued, the executor leases
jobs to itself and executes them inline in the consuming thread --
the same entry points, so a sweep pointed at ``tcp://...`` with zero
workers still completes with bit-identical results (inline failures
feed the normal retry/budget accounting).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from typing import Any, Callable, Iterator, TypeVar

from repro.experiments.runner import (
    JobOutcome,
    ResultCache,
    RunnerJob,
    execute_job,
    execute_job_with_records,
)

from repro.distributed.protocol import (
    STREAM_LIMIT,
    parse_address,
    read_msg,
    send,
)
from repro.distributed.server import JobServer

_T = TypeVar("_T")

#: Worker name the server's stats table shows for inline fallback runs.
LOCAL_WORKER = "local-fallback"


def fetch_stats(address: str, timeout_s: float = 5.0) -> dict[str, Any]:
    """Query a job server's ``stats`` wire message synchronously."""

    async def go() -> dict[str, Any]:
        host, port = parse_address(address)
        reader, writer = await asyncio.open_connection(
            host, port, limit=STREAM_LIMIT
        )
        try:
            await send(writer, type="stats")
            msg = await read_msg(reader)
        finally:
            writer.close()
        if msg is None or msg.get("type") != "stats":
            raise ConnectionError(f"bad stats reply from {address}: {msg!r}")
        return msg

    return asyncio.run(asyncio.wait_for(go(), timeout_s))


class TcpExecutor:
    """Job-server-backed executor (see module docstring).

    ``bind`` is a ``tcp://host:port`` spec; port 0 picks a free port --
    read the resolved address off :attr:`address` and hand it to
    ``python -m repro.cli work <address>`` workers.
    """

    retries_jobs = True

    def __init__(
        self,
        bind: str = "tcp://127.0.0.1:0",
        *,
        cache: ResultCache | None = None,
        lease_timeout_s: float = 30.0,
        heartbeat_interval_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        local_fallback_after_s: float | None = 1.0,
        poll_interval_s: float = 0.05,
    ) -> None:
        host, port = parse_address(bind)
        self.cache = cache
        self.commits_results = cache is not None
        self.local_fallback_after_s = local_fallback_after_s
        self.poll_interval_s = poll_interval_s
        self._outstanding: list[concurrent.futures.Future[JobOutcome]] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: JobServer | None = None

        ready = threading.Event()
        boot_errors: list[BaseException] = []

        def thread_main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = JobServer(
                host,
                port,
                cache=cache,
                lease_timeout_s=lease_timeout_s,
                heartbeat_interval_s=heartbeat_interval_s,
                max_retries=max_retries,
                backoff_base_s=backoff_base_s,
                backoff_cap_s=backoff_cap_s,
            )
            try:
                loop.run_until_complete(server.start())
            except BaseException as exc:  # port in use, bad host, ...
                boot_errors.append(exc)
                ready.set()
                loop.close()
                return
            self._server = server
            ready.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread: threading.Thread | None = threading.Thread(
            target=thread_main, name="TcpExecutor", daemon=True
        )
        self._thread.start()
        ready.wait()
        if boot_errors:
            self._thread.join()
            self._thread = None
            raise boot_errors[0]

    # -- loop bridging -----------------------------------------------

    def _call(self, fn: Callable[..., _T], *args: Any) -> _T:
        """Run a synchronous server method on the server's loop."""
        assert self._loop is not None

        async def run() -> _T:
            return fn(*args)

        return asyncio.run_coroutine_threadsafe(run(), self._loop).result()

    @property
    def address(self) -> str:
        """The resolved ``tcp://host:port`` workers should dial."""
        assert self._server is not None
        return self._server.address

    def stats(self) -> dict[str, Any]:
        """Live queue/lease/retry snapshot via the wire protocol."""
        return fetch_stats(self.address)

    def worker_count(self) -> int:
        assert self._server is not None
        return self._call(self._server.worker_count)

    # -- Executor protocol -------------------------------------------

    def submit(
        self, job: RunnerJob, with_records: bool = False
    ) -> concurrent.futures.Future[JobOutcome]:
        if self._thread is None or self._loop is None or self._server is None:
            raise RuntimeError("TcpExecutor is shut down")
        server, loop = self._server, self._loop
        future: concurrent.futures.Future[JobOutcome] = concurrent.futures.Future()

        def relay(source: "asyncio.Future[JobOutcome]") -> None:
            if source.cancelled():
                future.cancel()
            elif source.exception() is not None:
                future.set_exception(source.exception())  # type: ignore[arg-type]
            else:
                future.set_result(source.result())

        def enqueue() -> None:
            server.submit(job, with_records).add_done_callback(relay)

        loop.call_soon_threadsafe(enqueue)
        self._outstanding.append(future)
        return future

    def as_completed(self) -> Iterator[concurrent.futures.Future[JobOutcome]]:
        pending: set[concurrent.futures.Future[JobOutcome]] = set(
            self._outstanding
        )
        self._outstanding = []
        quiet_since = time.monotonic()
        while pending:
            done, pending = concurrent.futures.wait(
                pending,
                timeout=self.poll_interval_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if done:
                quiet_since = time.monotonic()
                yield from done
                continue
            if (
                self.local_fallback_after_s is not None
                and self.worker_count() == 0
                and time.monotonic() - quiet_since >= self.local_fallback_after_s
            ):
                if not self._run_one_locally():
                    # Nothing leasable right now (backoff window between
                    # retries); keep polling.
                    time.sleep(self.poll_interval_s)

    def _run_one_locally(self) -> bool:
        """Degrade gracefully: lease one job to ourselves and run it.

        Executes inline in the calling thread with a loop-side
        heartbeat keeping the lease alive, then reports through the
        same commit/fail paths a TCP worker would use.
        """
        assert self._server is not None and self._loop is not None
        server, loop = self._server, self._loop
        record = self._call(server.try_lease, LOCAL_WORKER)
        if record is None:
            return False
        job_id = record.job_id
        stop_beating = threading.Event()

        def beat() -> None:
            if stop_beating.is_set():
                return
            server.heartbeat(job_id)
            loop.call_later(server.heartbeat_interval_s, beat)

        loop.call_soon_threadsafe(beat)
        entry: Callable[[RunnerJob], JobOutcome] = (
            execute_job_with_records if record.with_records else execute_job
        )
        try:
            outcome = entry(record.job)
        except Exception as exc:
            stop_beating.set()
            self._call(server.fail_attempt, job_id, repr(exc))
            return True
        stop_beating.set()
        self._call(server.complete, job_id, outcome)
        return True

    def shutdown(self) -> None:
        if self._thread is None:
            return
        if self._server is not None and self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._server.close(), self._loop
            ).result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        for future in self._outstanding:
            future.cancel()
        self._outstanding = []
