"""TCP worker client: lease, execute, heartbeat, report.

Run from the CLI as ``python -m repro.cli work tcp://host:port``. The
worker resolves leased jobs through the same
:func:`~repro.experiments.runner.execute_job` entry points as every
other backend, so its results are bit-identical to a local run.
Out-of-tree schedulers join via ``--import package.module`` -- the
module's import-time :func:`~repro.experiments.registry.register_scheduler`
side effects make the names resolvable before any lease arrives.

While a job executes (in a thread, so the event loop stays live) the
worker heartbeats at the server-advertised interval; a worker that is
killed simply stops heartbeating and the server re-leases its job.
"""

from __future__ import annotations

import asyncio
import importlib
import os
import socket
import time
import traceback
from typing import Callable, Sequence

from repro.experiments.runner import (
    JobOutcome,
    RunnerJob,
    execute_job,
    execute_job_with_records,
)

from repro.distributed.protocol import (
    STREAM_LIMIT,
    pack,
    parse_address,
    read_msg,
    send,
    unpack,
)


def default_worker_name() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def load_plugins(modules: Sequence[str]) -> None:
    """Import plugin modules for their scheduler-registration side effects."""
    for module in modules:
        importlib.import_module(module)


async def _connect(
    host: str, port: int, *, attempts: int, delay_s: float
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial the server, retrying refused connections with linear delay.

    Lets workers start before the server (or across a server restart)
    without a supervisor loop around the CLI.
    """
    last: OSError | None = None
    for attempt in range(attempts):
        try:
            return await asyncio.open_connection(host, port, limit=STREAM_LIMIT)
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                await asyncio.sleep(delay_s)
    raise ConnectionError(
        f"could not reach job server at tcp://{host}:{port} "
        f"after {attempts} attempt(s): {last}"
    )


async def _execute_with_heartbeat(
    writer: asyncio.StreamWriter,
    job_id: str,
    job: RunnerJob,
    with_records: bool,
    heartbeat_interval_s: float,
) -> None:
    """Run one lease in a thread, heartbeating until it settles."""
    entry: Callable[[RunnerJob], JobOutcome] = (
        execute_job_with_records if with_records else execute_job
    )
    t0 = time.monotonic()
    task = asyncio.ensure_future(asyncio.to_thread(entry, job))
    try:
        while True:
            done, _ = await asyncio.wait([task], timeout=heartbeat_interval_s)
            if done:
                break
            await send(writer, type="heartbeat", job_id=job_id)
    except BaseException:
        task.cancel()
        raise
    try:
        outcome = task.result()
    except Exception:
        await send(
            writer,
            type="error",
            job_id=job_id,
            error=traceback.format_exc(limit=20),
        )
        return
    await send(
        writer,
        type="result",
        job_id=job_id,
        data=pack(outcome),
        busy_s=time.monotonic() - t0,
    )


async def worker_loop(
    address: str,
    *,
    name: str | None = None,
    plugins: Sequence[str] = (),
    max_jobs: int | None = None,
    exit_when_drained: bool = False,
    connect_attempts: int = 20,
    connect_delay_s: float = 0.25,
) -> int:
    """Serve leases until the server closes (or limits are hit).

    Returns the number of jobs this worker completed. ``max_jobs``
    bounds the session (handy for tests and canary deploys);
    ``exit_when_drained`` stops once the server reports every job
    terminal, which is what the CI smoke workers use.
    """
    load_plugins(plugins)
    host, port = parse_address(address)
    reader, writer = await _connect(
        host, port, attempts=connect_attempts, delay_s=connect_delay_s
    )
    completed = 0
    try:
        await send(writer, type="hello", worker=name or default_worker_name())
        ack = await read_msg(reader)
        if ack is None or ack["type"] != "hello_ack":
            raise ConnectionError(f"bad handshake from {address}: {ack!r}")
        heartbeat_interval_s = float(ack["heartbeat_interval_s"])
        while max_jobs is None or completed < max_jobs:
            await send(writer, type="request")
            msg = await read_msg(reader)
            if msg is None:
                break  # server shut down
            if msg["type"] == "lease":
                job, with_records = unpack(msg["data"])
                await _execute_with_heartbeat(
                    writer,
                    msg["job_id"],
                    job,
                    with_records,
                    heartbeat_interval_s,
                )
                completed += 1
            elif msg["type"] == "idle":
                if exit_when_drained and msg.get("drained"):
                    break
                await asyncio.sleep(float(msg["retry_in_s"]))
            else:
                raise ValueError(f"unexpected message type {msg['type']!r}")
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # server went away; a worker just exits
    finally:
        writer.close()
    return completed


def run_worker(address: str, **kwargs: object) -> int:
    """Synchronous wrapper around :func:`worker_loop` (the CLI entry)."""
    return asyncio.run(worker_loop(address, **kwargs))  # type: ignore[arg-type]
