"""Distributed sweep execution: a TCP job fabric for ``ParallelRunner``.

Layers (see :doc:`docs/distributed` for the deployment recipe):

- :mod:`repro.distributed.protocol` -- newline-delimited JSON line
  protocol with base64-pickle payloads.
- :mod:`repro.distributed.server` -- :class:`JobServer`, the asyncio
  lease queue with heartbeat expiry, bounded capped-exponential retry
  and at-most-once cache commit.
- :mod:`repro.distributed.worker` -- the ``python -m repro.cli work``
  client loop.
- :mod:`repro.distributed.executor` -- :class:`TcpExecutor`, the
  :class:`repro.experiments.runner.Executor` backend gluing it into
  ``ParallelRunner`` (with graceful local fallback when no workers
  connect).
- :mod:`repro.distributed.shard` -- :class:`ShardCoordinator` and the
  ``work --shard`` client, driving a *single* function-partitioned
  simulation across worker processes in barrier lockstep (see
  ``docs/sharding.md``).
"""

from repro.distributed.executor import LOCAL_WORKER, TcpExecutor, fetch_stats
from repro.distributed.protocol import format_address, parse_address
from repro.distributed.server import JobServer, backoff_s
from repro.distributed.shard import (
    ShardCoordinator,
    ShardJob,
    run_shard_worker,
    run_sharded_tcp,
    shard_worker_loop,
)
from repro.distributed.worker import run_worker, worker_loop

__all__ = [
    "LOCAL_WORKER",
    "JobServer",
    "ShardCoordinator",
    "ShardJob",
    "TcpExecutor",
    "backoff_s",
    "fetch_stats",
    "format_address",
    "parse_address",
    "run_shard_worker",
    "run_sharded_tcp",
    "run_worker",
    "shard_worker_loop",
    "worker_loop",
]
