"""Distributed sweep execution: a TCP job fabric for ``ParallelRunner``.

Layers (see :doc:`docs/distributed` for the deployment recipe):

- :mod:`repro.distributed.protocol` -- newline-delimited JSON line
  protocol with base64-pickle payloads.
- :mod:`repro.distributed.server` -- :class:`JobServer`, the asyncio
  lease queue with heartbeat expiry, bounded capped-exponential retry
  and at-most-once cache commit.
- :mod:`repro.distributed.worker` -- the ``python -m repro.cli work``
  client loop.
- :mod:`repro.distributed.executor` -- :class:`TcpExecutor`, the
  :class:`repro.experiments.runner.Executor` backend gluing it into
  ``ParallelRunner`` (with graceful local fallback when no workers
  connect).
"""

from repro.distributed.executor import LOCAL_WORKER, TcpExecutor, fetch_stats
from repro.distributed.protocol import format_address, parse_address
from repro.distributed.server import JobServer, backoff_s
from repro.distributed.worker import run_worker, worker_loop

__all__ = [
    "LOCAL_WORKER",
    "JobServer",
    "TcpExecutor",
    "backoff_s",
    "fetch_stats",
    "format_address",
    "parse_address",
    "run_worker",
    "worker_loop",
]
