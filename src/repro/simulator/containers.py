"""Warm containers and warm pools.

A *warm pool* (paper Sec. IV-B) is the set of function containers kept alive
in the memory of one hardware generation. Each pool has a memory capacity;
EcoLife "must ensure that the combined memory usage of all functions kept
alive in the warm pool does not exceed the maximum memory capacity".

One container per function per pool is modelled (the keep-alive problem is
per-function; concurrent executions simply miss the pool and start cold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.specs import Generation
from repro.workloads.functions import FunctionProfile


@dataclass
class WarmContainer:
    """A function image kept alive in one pool.

    ``token`` invalidates stale expiry events after a warm hit or a move;
    ``decider_index`` is the invocation record that made (and is billed for)
    this keep-alive decision; ``segment_start_s`` is when the *current*
    keep-alive segment began (it resets when the container moves pools).
    """

    func: FunctionProfile
    location: Generation
    segment_start_s: float
    expire_s: float
    decider_index: int
    token: int = 0

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def mem_gb(self) -> float:
        return self.func.mem_gb

    def remaining_s(self, t: float) -> float:
        """Keep-alive time left at ``t`` (>= 0)."""
        return max(self.expire_s - t, 0.0)


class PoolFullError(RuntimeError):
    """Raised on an insert that would exceed the pool's memory capacity."""


@dataclass
class WarmPool:
    """All containers kept alive on one hardware generation."""

    generation: Generation
    capacity_gb: float = math.inf
    _containers: dict[str, WarmContainer] = field(default_factory=dict)
    _used_gb: float = 0.0
    #: Bumped on every membership change; lets callers cache derived
    #: views (e.g. the shard fast path's warm-function table) and
    #: invalidate them exactly when the pool actually mutated.
    version: int = 0

    def __post_init__(self) -> None:
        if self.capacity_gb < 0.0:
            raise ValueError(f"capacity_gb must be >= 0, got {self.capacity_gb}")

    # -- queries -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._containers

    def __len__(self) -> int:
        return len(self._containers)

    def get(self, name: str) -> WarmContainer | None:
        return self._containers.get(name)

    @property
    def used_gb(self) -> float:
        return self._used_gb

    @property
    def free_gb(self) -> float:
        return self.capacity_gb - self._used_gb

    def fits(self, mem_gb: float) -> bool:
        """Would a container of ``mem_gb`` fit right now?"""
        return mem_gb <= self.free_gb + 1e-12

    def containers(self) -> list[WarmContainer]:
        """Snapshot of current containers (stable iteration order)."""
        return list(self._containers.values())

    def names(self) -> list[str]:
        """Current container names (stable iteration order)."""
        return list(self._containers)

    # -- mutation ------------------------------------------------------------

    def insert(self, container: WarmContainer) -> None:
        """Add a container; the caller must have removed any predecessor."""
        if container.location is not self.generation:
            raise ValueError(
                f"container location {container.location} does not match pool "
                f"{self.generation}"
            )
        if container.name in self._containers:
            raise ValueError(f"{container.name!r} is already in the pool")
        if not self.fits(container.mem_gb):
            raise PoolFullError(
                f"pool {self.generation}: {container.mem_gb:.2f} GB does not fit "
                f"({self._used_gb:.2f}/{self.capacity_gb:.2f} GB used)"
            )
        self._containers[container.name] = container
        self.version += 1
        self._recount()

    def remove(self, name: str) -> WarmContainer:
        """Remove and return a container (KeyError if absent)."""
        container = self._containers.pop(name)
        self.version += 1
        self._recount()
        return container

    def _recount(self) -> None:
        """Recompute the memory ledger from the membership map.

        A running ``+=``/``-=`` ledger accumulates floating-point error
        over long insert/remove churn (each op rounds once, and the
        errors never cancel exactly), eventually mis-answering
        :meth:`fits` near capacity. Recomputing with :func:`math.fsum`
        keeps ``used_gb`` the correctly-rounded sum of the *current*
        members -- exactly ``0.0`` for an empty pool, no clamp needed.
        """
        self._used_gb = math.fsum(c.mem_gb for c in self._containers.values())
