"""Per-invocation records and aggregated simulation results.

Every invocation produces one :class:`InvocationRecord` holding its service
time split and its carbon split. Keep-alive carbon is attributed to the
invocation that *decided* the keep-alive (that is the quantity the paper's
objective charges per function), so records are appended at execution time
and updated when their keep-alive segment closes.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field, fields
from typing import Sequence

import numpy as np

from repro.carbon.footprint import ZERO_CARBON, CarbonBreakdown
from repro.hardware.specs import Generation


@dataclass
class KeepAliveDecision:
    """Output of a scheduler's keep-alive decision.

    ``duration_s == 0`` means "do not keep alive" (the paper's third option
    besides the two hardware generations).
    """

    location: Generation
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0.0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")

    @classmethod
    def none(cls) -> "KeepAliveDecision":
        """The "no keep-alive" decision."""
        return cls(location=Generation.NEW, duration_s=0.0)


@dataclass
class InvocationRecord:
    """Everything measured about one invocation."""

    index: int
    t: float
    func_name: str
    mem_gb: float
    location: Generation
    cold: bool
    setup_s: float
    cold_overhead_s: float
    exec_s: float
    service_carbon: CarbonBreakdown
    service_energy_wh: float
    keepalive_decision: KeepAliveDecision | None = None
    keepalive_carbon: CarbonBreakdown = ZERO_CARBON
    keepalive_energy_wh: float = 0.0
    keepalive_s: float = 0.0
    evicted: bool = False
    spilled: bool = False
    dropped: bool = False  # keep-alive wish could not be honoured at all
    decision_wall_s: float = 0.0

    @property
    def service_s(self) -> float:
        """Service time: cold-start overhead + setup + execution."""
        return self.cold_overhead_s + self.setup_s + self.exec_s

    @property
    def carbon_g(self) -> float:
        """Total attributed carbon: service + decided keep-alive."""
        return self.service_carbon.total + self.keepalive_carbon.total

    @property
    def energy_wh(self) -> float:
        return self.service_energy_wh + self.keepalive_energy_wh

    def add_keepalive(
        self, carbon: CarbonBreakdown, energy_wh: float, duration_s: float
    ) -> None:
        """Accrue one closed keep-alive segment onto this record."""
        self.keepalive_carbon = self.keepalive_carbon + carbon
        self.keepalive_energy_wh += energy_wh
        self.keepalive_s += duration_s


def _unicode_column(values: "Sequence[str] | np.ndarray") -> np.ndarray:
    """Build a unicode column with a non-degenerate dtype.

    A zero-invocation scenario yields an empty string column whose
    natural dtype is ``<U0`` (itemsize 0, numpy-version dependent); such
    arrays do not survive an ``.npz`` round trip with dtype equality, so
    persistence of empty traces would break cache comparisons. Normalise
    to ``<U1`` -- the values are unchanged (there are none).
    """
    arr = np.asarray(values, dtype=np.str_)
    if arr.dtype.itemsize == 0:
        arr = arr.astype("<U1")
    return arr


@dataclass(frozen=True)
class RecordArrays:
    """Per-invocation records as flat numpy arrays.

    The compact columnar form of ``SimulationResult.records`` used for
    persistence (compressed ``.npz`` next to the sweep runner's JSON
    summaries) and for CDF-style analyses over scenario grids. All
    arrays share one length (the invocation count); invocation *i* is
    the same row in every array.
    """

    t: np.ndarray  # arrival time (s)
    service_s: np.ndarray  # cold overhead + setup + execution
    carbon_g: np.ndarray  # attributed carbon: service + decided keep-alive
    energy_wh: np.ndarray
    keepalive_s: np.ndarray  # accrued keep-alive of the decision
    cold: np.ndarray  # bool: cold start?
    location: np.ndarray  # unicode: Generation value ("old"/"new")
    func_name: np.ndarray  # unicode

    def __post_init__(self) -> None:
        sizes = {f.name: getattr(self, f.name).shape for f in fields(self)}
        if len(set(sizes.values())) > 1:
            raise ValueError(f"record arrays must share one shape, got {sizes}")

    def __len__(self) -> int:
        return int(self.t.size)

    @classmethod
    def from_result(cls, result: "SimulationResult") -> "RecordArrays":
        rs = result.records
        return cls(
            t=np.array([r.t for r in rs], dtype=float),
            service_s=np.array([r.service_s for r in rs], dtype=float),
            carbon_g=np.array([r.carbon_g for r in rs], dtype=float),
            energy_wh=np.array([r.energy_wh for r in rs], dtype=float),
            keepalive_s=np.array([r.keepalive_s for r in rs], dtype=float),
            cold=np.array([r.cold for r in rs], dtype=bool),
            location=_unicode_column([r.location.value for r in rs]),
            func_name=_unicode_column([r.func_name for r in rs]),
        )

    # -- persistence ---------------------------------------------------------

    def to_npz(self, path: str | os.PathLike) -> None:
        """Write all columns as one compressed ``.npz`` (atomic rename)."""
        path = pathlib.Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh, **{f.name: getattr(self, f.name) for f in fields(self)}
            )
        tmp.replace(path)

    @classmethod
    def from_npz(cls, path: str | os.PathLike) -> "RecordArrays":
        with np.load(path) as data:
            cols = {f.name: data[f.name] for f in fields(cls)}
        # Normalise degenerate unicode dtypes written by older numpy so a
        # loaded empty trace compares dtype-equal to a freshly-built one.
        for key in ("location", "func_name"):
            cols[key] = _unicode_column(cols[key])
        return cls(**cols)


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    scheduler_name: str
    records: list[InvocationRecord]
    horizon_s: float
    wall_time_s: float = 0.0
    meta: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    # -- arrays ---------------------------------------------------------------

    def service_times(self) -> np.ndarray:
        return np.array([r.service_s for r in self.records], dtype=float)

    def carbon_per_invocation(self) -> np.ndarray:
        return np.array([r.carbon_g for r in self.records], dtype=float)

    def energy_per_invocation(self) -> np.ndarray:
        return np.array([r.energy_wh for r in self.records], dtype=float)

    def record_arrays(self) -> RecordArrays:
        """Columnar view of all records (persistence / CDF analyses)."""
        return RecordArrays.from_result(self)

    # -- scalars ----------------------------------------------------------------

    @property
    def total_service_s(self) -> float:
        return float(self.service_times().sum()) if self.records else 0.0

    @property
    def mean_service_s(self) -> float:
        return float(self.service_times().mean()) if self.records else 0.0

    @property
    def p95_service_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile(self.service_times(), 95))

    @property
    def total_carbon_g(self) -> float:
        return float(self.carbon_per_invocation().sum()) if self.records else 0.0

    @property
    def total_energy_wh(self) -> float:
        return float(self.energy_per_invocation().sum()) if self.records else 0.0

    @property
    def total_service_carbon_g(self) -> float:
        return float(sum(r.service_carbon.total for r in self.records))

    @property
    def total_keepalive_carbon_g(self) -> float:
        return float(sum(r.keepalive_carbon.total for r in self.records))

    @property
    def total_operational_g(self) -> float:
        return float(
            sum(
                r.service_carbon.operational + r.keepalive_carbon.operational
                for r in self.records
            )
        )

    @property
    def total_embodied_g(self) -> float:
        return float(
            sum(
                r.service_carbon.embodied + r.keepalive_carbon.embodied
                for r in self.records
            )
        )

    @property
    def warm_ratio(self) -> float:
        if not self.records:
            return 0.0
        return sum(0 if r.cold else 1 for r in self.records) / len(self.records)

    @property
    def evicted_count(self) -> int:
        """Containers dropped (or force-closed) by warm-pool pressure."""
        return sum(1 for r in self.records if r.evicted)

    @property
    def spilled_count(self) -> int:
        """Keep-alive decisions honoured on the *other* generation's pool."""
        return sum(1 for r in self.records if r.spilled)

    @property
    def dropped_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)

    @property
    def total_decision_wall_s(self) -> float:
        return float(sum(r.decision_wall_s for r in self.records))

    def location_counts(self) -> dict[Generation, int]:
        """How many executions landed on each generation."""
        counts = {g: 0 for g in Generation}
        for r in self.records:
            counts[r.location] += 1
        return counts

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """One human-readable block, used by examples and the CLI."""
        locs = self.location_counts()
        lines = [
            f"scheduler           : {self.scheduler_name}",
            f"invocations         : {len(self.records)}",
            f"mean service time   : {self.mean_service_s:.3f} s "
            f"(p95 {self.p95_service_s:.3f} s)",
            f"warm-start ratio    : {self.warm_ratio * 100.0:.1f} %",
            f"total carbon        : {self.total_carbon_g:.3f} g "
            f"(service {self.total_service_carbon_g:.3f}, "
            f"keep-alive {self.total_keepalive_carbon_g:.3f})",
            f"  operational       : {self.total_operational_g:.3f} g",
            f"  embodied          : {self.total_embodied_g:.3f} g",
            f"total energy        : {self.total_energy_wh:.2f} Wh",
            f"executions old/new  : {locs[Generation.OLD]}/{locs[Generation.NEW]}",
            f"evicted / spilled   : {self.evicted_count} / {self.spilled_count}",
            f"dropped keep-alives : {self.dropped_count}",
            f"decision overhead   : {self.total_decision_wall_s * 1000.0:.1f} ms wall",
        ]
        return "\n".join(lines)
