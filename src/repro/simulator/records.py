"""Per-invocation records and aggregated simulation results.

Every invocation produces one :class:`InvocationRecord` holding its service
time split and its carbon split. Keep-alive carbon is attributed to the
invocation that *decided* the keep-alive (that is the quantity the paper's
objective charges per function), so records are appended at execution time
and updated when their keep-alive segment closes.
"""

from __future__ import annotations

import math
import os
import pathlib
from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

import numpy as np

from repro.carbon.footprint import ZERO_CARBON, CarbonBreakdown
from repro.hardware.specs import Generation


@dataclass
class KeepAliveDecision:
    """Output of a scheduler's keep-alive decision.

    ``duration_s == 0`` means "do not keep alive" (the paper's third option
    besides the two hardware generations).
    """

    location: Generation
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0.0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")

    @classmethod
    def none(cls) -> "KeepAliveDecision":
        """The "no keep-alive" decision."""
        return cls(location=Generation.NEW, duration_s=0.0)


@dataclass
class InvocationRecord:
    """Everything measured about one invocation."""

    index: int
    t: float
    func_name: str
    mem_gb: float
    location: Generation
    cold: bool
    setup_s: float
    cold_overhead_s: float
    exec_s: float
    service_carbon: CarbonBreakdown
    service_energy_wh: float
    keepalive_decision: KeepAliveDecision | None = None
    keepalive_carbon: CarbonBreakdown = ZERO_CARBON
    keepalive_energy_wh: float = 0.0
    keepalive_s: float = 0.0
    evicted: bool = False
    spilled: bool = False
    dropped: bool = False  # keep-alive wish could not be honoured at all
    decision_wall_s: float = 0.0

    @property
    def service_s(self) -> float:
        """Service time: cold-start overhead + setup + execution."""
        return self.cold_overhead_s + self.setup_s + self.exec_s

    @property
    def carbon_g(self) -> float:
        """Total attributed carbon: service + decided keep-alive."""
        return self.service_carbon.total + self.keepalive_carbon.total

    @property
    def energy_wh(self) -> float:
        return self.service_energy_wh + self.keepalive_energy_wh

    def add_keepalive(
        self, carbon: CarbonBreakdown, energy_wh: float, duration_s: float
    ) -> None:
        """Accrue one closed keep-alive segment onto this record."""
        self.keepalive_carbon = self.keepalive_carbon + carbon
        self.keepalive_energy_wh += energy_wh
        self.keepalive_s += duration_s


def _unicode_column(values: "Sequence[str] | np.ndarray") -> np.ndarray:
    """Build a unicode column with a non-degenerate dtype.

    A zero-invocation scenario yields an empty string column whose
    natural dtype is ``<U0`` (itemsize 0, numpy-version dependent); such
    arrays do not survive an ``.npz`` round trip with dtype equality, so
    persistence of empty traces would break cache comparisons. Normalise
    to ``<U1`` -- the values are unchanged (there are none).
    """
    arr = np.asarray(values, dtype=np.str_)
    if arr.dtype.itemsize == 0:
        arr = arr.astype("<U1")
    return arr


@dataclass(frozen=True)
class RecordArrays:
    """Per-invocation records as flat numpy arrays.

    The compact columnar form of ``SimulationResult.records`` used for
    persistence (compressed ``.npz`` next to the sweep runner's JSON
    summaries) and for CDF-style analyses over scenario grids. All
    arrays share one length (the invocation count); invocation *i* is
    the same row in every array.
    """

    t: np.ndarray  # arrival time (s)
    service_s: np.ndarray  # cold overhead + setup + execution
    carbon_g: np.ndarray  # attributed carbon: service + decided keep-alive
    energy_wh: np.ndarray
    keepalive_s: np.ndarray  # accrued keep-alive of the decision
    cold: np.ndarray  # bool: cold start?
    location: np.ndarray  # unicode: Generation value ("old"/"new")
    func_name: np.ndarray  # unicode

    def __post_init__(self) -> None:
        sizes = {f.name: getattr(self, f.name).shape for f in fields(self)}
        if len(set(sizes.values())) > 1:
            raise ValueError(f"record arrays must share one shape, got {sizes}")

    def __len__(self) -> int:
        return int(self.t.size)

    @classmethod
    def from_result(cls, result: "SimulationResult") -> "RecordArrays":
        rs = result.records
        return cls(
            t=np.array([r.t for r in rs], dtype=float),
            service_s=np.array([r.service_s for r in rs], dtype=float),
            carbon_g=np.array([r.carbon_g for r in rs], dtype=float),
            energy_wh=np.array([r.energy_wh for r in rs], dtype=float),
            keepalive_s=np.array([r.keepalive_s for r in rs], dtype=float),
            cold=np.array([r.cold for r in rs], dtype=bool),
            location=_unicode_column([r.location.value for r in rs]),
            func_name=_unicode_column([r.func_name for r in rs]),
        )

    # -- persistence ---------------------------------------------------------

    def to_npz(self, path: str | os.PathLike) -> None:
        """Write all columns as one compressed ``.npz`` (atomic rename)."""
        path = pathlib.Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh, **{f.name: getattr(self, f.name) for f in fields(self)}
            )
        tmp.replace(path)

    @classmethod
    def from_npz(cls, path: str | os.PathLike) -> "RecordArrays":
        with np.load(path) as data:
            cols = {f.name: data[f.name] for f in fields(cls)}
        # Normalise degenerate unicode dtypes written by older numpy so a
        # loaded empty trace compares dtype-equal to a freshly-built one.
        for key in ("location", "func_name"):
            cols[key] = _unicode_column(cols[key])
        return cls(**cols)

    # -- sharding ------------------------------------------------------------

    @classmethod
    def concat(cls, parts: "Sequence[RecordArrays]") -> "RecordArrays":
        """Concatenate per-shard column sets into one canonical ordering.

        Rows are stably sorted by ``(t, func_name)`` -- deterministic
        regardless of how many shards contributed or in which order they
        were passed, which is what makes persisted merged arrays
        byte-comparable across shard counts. (Row order within one exact
        arrival instant may differ from a single-process
        ``from_result``, whose tie order is the trace's; all aggregate
        views are order-independent.)
        """
        if not parts:
            raise ValueError("concat needs at least one RecordArrays")
        cols = {
            f.name: np.concatenate([getattr(p, f.name) for p in parts])
            for f in fields(cls)
        }
        order = np.lexsort((cols["func_name"], cols["t"]))
        merged = {
            key: _unicode_column(col[order])
            if key in ("location", "func_name")
            else col[order]
            for key, col in cols.items()
        }
        return cls(**merged)


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    scheduler_name: str
    records: list[InvocationRecord]
    horizon_s: float
    wall_time_s: float = 0.0
    meta: dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    # -- arrays ---------------------------------------------------------------

    def service_times(self) -> np.ndarray:
        return np.array([r.service_s for r in self.records], dtype=float)

    def carbon_per_invocation(self) -> np.ndarray:
        return np.array([r.carbon_g for r in self.records], dtype=float)

    def energy_per_invocation(self) -> np.ndarray:
        return np.array([r.energy_wh for r in self.records], dtype=float)

    def record_arrays(self) -> RecordArrays:
        """Columnar view of all records (persistence / CDF analyses)."""
        return RecordArrays.from_result(self)

    # -- scalars ----------------------------------------------------------------
    #
    # Totals use ``math.fsum``: correctly-rounded summation, so the
    # result is a function of the record *multiset* only -- the order in
    # which shards (or anything else) happened to append records can
    # never perturb a float total. Plain left-to-right ``sum`` would tie
    # every reported figure to one accumulation order and break the
    # bit-identical merge contract of ``SimulationResult.merge``.

    @property
    def total_service_s(self) -> float:
        return math.fsum(r.service_s for r in self.records)

    @property
    def mean_service_s(self) -> float:
        if not self.records:
            return 0.0
        return self.total_service_s / len(self.records)

    @property
    def p95_service_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.percentile(self.service_times(), 95))

    @property
    def total_carbon_g(self) -> float:
        return math.fsum(r.carbon_g for r in self.records)

    @property
    def total_energy_wh(self) -> float:
        return math.fsum(r.energy_wh for r in self.records)

    @property
    def total_service_carbon_g(self) -> float:
        return math.fsum(r.service_carbon.total for r in self.records)

    @property
    def total_keepalive_carbon_g(self) -> float:
        return math.fsum(r.keepalive_carbon.total for r in self.records)

    @property
    def total_operational_g(self) -> float:
        return math.fsum(
            r.service_carbon.operational + r.keepalive_carbon.operational
            for r in self.records
        )

    @property
    def total_embodied_g(self) -> float:
        return math.fsum(
            r.service_carbon.embodied + r.keepalive_carbon.embodied
            for r in self.records
        )

    @property
    def warm_ratio(self) -> float:
        if not self.records:
            return 0.0
        return sum(0 if r.cold else 1 for r in self.records) / len(self.records)

    @property
    def evicted_count(self) -> int:
        """Containers dropped (or force-closed) by warm-pool pressure."""
        return sum(1 for r in self.records if r.evicted)

    @property
    def spilled_count(self) -> int:
        """Keep-alive decisions honoured on the *other* generation's pool."""
        return sum(1 for r in self.records if r.spilled)

    @property
    def dropped_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)

    @property
    def total_decision_wall_s(self) -> float:
        return math.fsum(r.decision_wall_s for r in self.records)

    # -- sharding --------------------------------------------------------------

    @classmethod
    def merge(cls, parts: "Iterable[SimulationResult]") -> "SimulationResult":
        """Combine per-shard results into the single-process result.

        Record indices are *global* (the engine numbers every arrival of
        the merged trace, own and foreign alike), so sorting the union
        by index reproduces the exact sequential record order. The parts
        must be a disjoint cover: one record per index ``0..N-1``, all
        from the same scheduler. Totals are fsum-based and therefore
        independent of merge order by construction; this merge makes the
        record *list* identical too.
        """
        shards = list(parts)
        if not shards:
            raise ValueError("merge needs at least one SimulationResult")
        names = {s.scheduler_name for s in shards}
        if len(names) > 1:
            raise ValueError(f"cannot merge results of different schedulers: {names}")
        records = sorted(
            (r for s in shards for r in s.records), key=lambda r: r.index
        )
        indices = [r.index for r in records]
        if indices != list(range(len(records))):
            raise ValueError(
                "shard records must cover indices 0..N-1 exactly once; "
                f"got {len(records)} records"
                + (
                    f", first gap near index {next(i for i, v in enumerate(indices) if v != i)}"
                    if any(v != i for i, v in enumerate(indices))
                    else ""
                )
            )
        merged_meta: dict[str, object] = {"n_shards": len(shards)}
        return cls(
            scheduler_name=shards[0].scheduler_name,
            records=records,
            horizon_s=max(s.horizon_s for s in shards),
            wall_time_s=max(s.wall_time_s for s in shards),
            meta=merged_meta,
        )

    def location_counts(self) -> dict[Generation, int]:
        """How many executions landed on each generation."""
        counts = {g: 0 for g in Generation}
        for r in self.records:
            counts[r.location] += 1
        return counts

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """One human-readable block, used by examples and the CLI."""
        locs = self.location_counts()
        lines = [
            f"scheduler           : {self.scheduler_name}",
            f"invocations         : {len(self.records)}",
            f"mean service time   : {self.mean_service_s:.3f} s "
            f"(p95 {self.p95_service_s:.3f} s)",
            f"warm-start ratio    : {self.warm_ratio * 100.0:.1f} %",
            f"total carbon        : {self.total_carbon_g:.3f} g "
            f"(service {self.total_service_carbon_g:.3f}, "
            f"keep-alive {self.total_keepalive_carbon_g:.3f})",
            f"  operational       : {self.total_operational_g:.3f} g",
            f"  embodied          : {self.total_embodied_g:.3f} g",
            f"total energy        : {self.total_energy_wh:.2f} Wh",
            f"executions old/new  : {locs[Generation.OLD]}/{locs[Generation.NEW]}",
            f"evicted / spilled   : {self.evicted_count} / {self.spilled_count}",
            f"dropped keep-alives : {self.dropped_count}",
            f"decision overhead   : {self.total_decision_wall_s * 1000.0:.1f} ms wall",
        ]
        return "\n".join(lines)
