"""Serverless cluster simulator: containers, pools, engine, scheduler API."""

from repro.simulator.containers import PoolFullError, WarmContainer, WarmPool
from repro.simulator.engine import ShardStep, SimulationConfig, SimulationEngine
from repro.simulator.shard import (
    BarrierTransport,
    ShardDecision,
    ShardEngine,
    ThreadBarrier,
    ThreadShardRunner,
    barrier_width_s,
)
from repro.simulator.records import (
    InvocationRecord,
    KeepAliveDecision,
    RecordArrays,
    SimulationResult,
)
from repro.simulator.scheduler import (
    DEFAULT_KEEPALIVE_S,
    AdjustmentRequest,
    BaseScheduler,
    KeepAliveRequest,
    PlacementRequest,
    PoolCandidate,
    SchedulerEnv,
)

__all__ = [
    "WarmContainer",
    "WarmPool",
    "PoolFullError",
    "InvocationRecord",
    "KeepAliveDecision",
    "RecordArrays",
    "SimulationResult",
    "SimulationConfig",
    "SimulationEngine",
    "BaseScheduler",
    "SchedulerEnv",
    "PlacementRequest",
    "KeepAliveRequest",
    "AdjustmentRequest",
    "PoolCandidate",
    "DEFAULT_KEEPALIVE_S",
    "BarrierTransport",
    "ShardDecision",
    "ShardEngine",
    "ShardStep",
    "ThreadBarrier",
    "ThreadShardRunner",
    "barrier_width_s",
]
