"""Function-sharded replay of one simulation, bit-identical at any shard count.

One huge replay is split across N shards by *function*: every shard
receives the **full merged trace** but owns the decisions of only its
partition (``InvocationTrace.partition_names``). The trick that makes
this exact rather than approximate is that shards do not simulate
disjoint worlds -- they all replay the *same* world:

- **Own arrivals** run the full pipeline: placement, service billing, an
  :class:`~repro.simulator.records.InvocationRecord`, and a keep-alive
  decision (the expensive KDM/swarm work -- this is what parallelises).
- **Foreign arrivals** are replayed lightly: the event heap is drained to
  the arrival instant, the placement is reproduced through the
  scheduler's :meth:`~repro.simulator.scheduler.BaseScheduler.place_foreign`
  hook (a pure function of the warm locations and the shared
  carbon-intensity clock), a warm hit consumes the pool entry and closes
  its segment **without billing** (the owning shard bills the identical
  segment), and the global invocation counter advances. No record, no
  KDM work.
- **Keep-alive decisions** are the only information shards must tell
  each other. They are collected in an outbox and exchanged at
  synchronization **barriers**; after the exchange every shard pushes
  the merged, index-sorted decisions onto its own event heap, so all N
  event heaps evolve identically (same containers, same tokens, same
  pops).

Why barrier-time delivery is exact: the barrier width is

    ``B = min over (func, generation) of setup_delay + exec_time``

(:func:`barrier_width_s`), so a decision made for an arrival in round
``q`` (times in ``[qB, (q+1)B)``) activates at ``t_end >= (q+1)B`` -- at
or past the next barrier. Events only act when a drain passes their
timestamp, and within round ``q`` no drain goes past ``(q+1)B``;
exchanging outboxes at every transition between non-empty rounds
therefore inserts every activation into the heap *before* any drain can
reach it, which (together with the engine's push-time-independent heap
keys) reproduces the sequential pop order event for event. Empty rounds
collapse: all shards iterate the same merged trace, so they agree on
every transition and label it with the same barrier sequence number.

Shard-local vs shared state is declared in
:attr:`ShardEngine._SHARD_STATE_PLAN` and cross-checked by ecolint's
ECO005 project contract: any future field added to the shard engine must
say which side of the barrier it lives on.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.hardware.specs import GENERATIONS, HardwarePair
from repro.simulator.containers import WarmContainer
from repro.simulator.engine import ShardStep, SimulationConfig, SimulationEngine
from repro.simulator.records import SimulationResult
from repro.simulator.scheduler import BaseScheduler, PlacementRequest
from repro.workloads.functions import FunctionProfile
from repro.workloads.trace import InvocationTrace

#: Heap-head sentinel when no event is pending (nothing can be due).
_INF = float("inf")


@dataclass(frozen=True)
class ShardDecision:
    """One keep-alive decision crossing a barrier.

    Exactly the facts every other shard needs to replay the container:
    who decided (the global invocation index -- also the deterministic
    heap key), for which function, where, for how long, and when the
    execution ends (the activation instant).
    """

    index: int
    func_name: str
    location_value: str  # Generation.value; kept primitive for the wire
    duration_s: float
    t_end: float


class BarrierTransport(Protocol):
    """How shards exchange outboxes at a barrier.

    ``exchange`` blocks until every shard of the round has contributed,
    then returns the union of all outboxes (own included, in any order
    -- the engine sorts by decider index before applying). ``seq`` is
    the barrier sequence number: shards derive it identically from the
    shared merged trace, and a crash-resumed shard re-exchanges from
    ``seq == 0``, so transports may serve repeated rounds from cache.
    """

    def exchange(
        self, seq: int, shard_id: int, outbox: Sequence[ShardDecision]
    ) -> list[ShardDecision]: ...


def barrier_width_s(
    trace: InvocationTrace, pair: HardwarePair, config: SimulationConfig
) -> float:
    """The widest exact barrier: the minimum warm service time.

    Any decision's activation lands at least one service time after its
    arrival, so synchronizing every ``B`` seconds delivers all of a
    round's decisions before any shard can drain past them.
    """
    width = float("inf")
    for func in trace.functions.values():
        for gen in GENERATIONS:
            width = min(
                width,
                config.setup_delay_s + func.exec_time_s(pair.server(gen)),
            )
    if width <= 0.0:
        raise ValueError("barrier width must be positive (zero service time?)")
    return width


class ShardEngine(SimulationEngine):
    """One shard of a function-partitioned replay.

    Same accounting machinery as :class:`SimulationEngine`; what changes
    is ownership: records exist only for owned functions (tracked by
    global index in ``_by_index``; foreign deciders resolve to ``None``
    and skip billing/flags), and keep-alive admissions detour through an
    outbox that the barrier transport merges across shards.
    """

    #: Barrier/checkpoint contract for every piece of shard state
    #: (enforced by ecolint ECO005): ``exchanged`` crosses the barrier,
    #: ``replicated`` is identical on all shards by construction and
    #: never needs to cross, ``shard-local`` is private and absent from
    #: merged results. Extend this map when adding fields to __init__.
    _SHARD_STATE_PLAN = {
        "shard_id": "replicated",
        "n_shards": "replicated",
        "own_names": "replicated",
        "_transport": "exchanged",
        "_outbox": "exchanged",
        "_by_index": "shard-local",
        "_barrier_seq": "replicated",
        "foreign_fast_path": "replicated",
        "_warm_table_cache": "shard-local",
    }

    def __init__(
        self,
        pair: HardwarePair,
        trace: InvocationTrace,
        ci_trace: CarbonIntensityTrace,
        shard_id: int,
        n_shards: int,
        own_names: Iterable[str],
        transport: BarrierTransport,
        config: SimulationConfig | None = None,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
        foreign_fast_path: bool = True,
    ) -> None:
        super().__init__(
            pair=pair,
            trace=trace,
            ci_trace=ci_trace,
            config=config,
            energy_model=energy_model,
        )
        if not 0 <= shard_id < n_shards:
            raise ValueError(f"shard_id {shard_id} out of range for {n_shards}")
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.own_names = frozenset(own_names)
        self._transport = transport
        self._outbox: list[ShardDecision] = []
        self._by_index: dict[int, object] = {}
        self._barrier_seq = 0
        #: Bulk-skip provably inert foreign runs (requires a scheduler
        #: with ``foreign_batch_safe``); off forces the per-event replay,
        #: which the identity tests and the trace bench compare against.
        self.foreign_fast_path = foreign_fast_path
        #: (pool versions, bool table over intern ids) -- a derived view
        #: of the replicated pools, rebuilt on version mismatch.
        self._warm_table_cache: (
            tuple[int, int, np.ndarray, list[bool]] | None
        ) = None

    # -- ownership hooks ----------------------------------------------------

    def _place_and_record(self, scheduler, t, func):
        req = super()._place_and_record(scheduler, t, func)
        self._by_index[req.record.index] = req.record
        return req

    def _decider(self, index):
        return self._by_index.get(index)

    def _admit_keepalive(self, scheduler, func, decision, t, record) -> None:
        # Detour: decisions become world-visible only at the barrier
        # (safe -- t >= next barrier by the width bound), where every
        # shard pushes the identical merged set.
        self._outbox.append(
            ShardDecision(
                index=record.index,
                func_name=func.name,
                location_value=decision.location.value,
                duration_s=decision.duration_s,
                t_end=t,
            )
        )

    # -- the sharded replay loop --------------------------------------------

    def run_shard(self, scheduler: BaseScheduler) -> SimulationResult:
        """Replay the full merged trace, deciding only owned functions."""
        if not scheduler.supports_sharding:
            raise ValueError(
                f"{scheduler.name} does not support sharded replay "
                "(supports_sharding is False)"
            )
        if not isinstance(self.trace, InvocationTrace):
            raise TypeError("sharded replay requires a full InvocationTrace")
        self.start(scheduler)
        width = barrier_width_s(self.trace, self.pair, self.config)
        step = ShardStep(self, scheduler)
        trace = self.trace
        times = trace.times_s
        ids = trace.func_ids
        funcs = [trace.functions[n] for n in trace.names]
        index = {name: fid for fid, name in enumerate(trace.names)}
        # Columnar precomputation: per-event ownership from the intern
        # table (one CRC/set lookup per *unique* function) and barrier
        # rounds in one vectorized floor-divide. numpy's float64
        # floor_divide mirrors Python's ``//`` (both fmod-based), and
        # every shard derives the segmentation from the same code over
        # the same merged columns, so barrier seqs line up exactly as
        # the per-event ``t // width`` loop did.
        own = trace.event_mask(self.own_names)
        rounds = np.floor_divide(times, width)
        n = int(times.size)
        fast = self.foreign_fast_path and scheduler.foreign_batch_safe
        if n:
            # Segment starts: first event, round transitions, and
            # own/foreign flips. Within a segment all events share one
            # barrier round and one side of the ownership split.
            change = np.empty(n, dtype=bool)
            change[0] = True
            np.logical_or(
                rounds[1:] != rounds[:-1], own[1:] != own[:-1], out=change[1:]
            )
            bounds = np.append(np.flatnonzero(change), n)
            current_round = rounds[bounds[0]]
            for si in range(bounds.size - 1):
                a, b = int(bounds[si]), int(bounds[si + 1])
                r = rounds[a]
                if r != current_round:
                    # Transition between non-empty rounds: flush and
                    # exchange. All shards derive the same transitions
                    # from the same merged trace, so barrier seqs line
                    # up.
                    step.flush()
                    self._exchange_barrier()
                    current_round = r
                if own[a]:
                    for t, fid in zip(times[a:b].tolist(), ids[a:b].tolist()):
                        step.feed(t, funcs[fid])
                elif fast:
                    self._replay_foreign_run(
                        scheduler, step, times, ids, funcs, index, a, b
                    )
                else:
                    for t, fid in zip(times[a:b].tolist(), ids[a:b].tolist()):
                        self._replay_foreign(scheduler, step, t, funcs[fid])
        step.flush()
        self._exchange_barrier()
        self._horizon = max(self._horizon, step.horizon)
        result = self.finish()
        result.meta["shard_id"] = self.shard_id
        result.meta["n_shards"] = self.n_shards
        return result

    def _replay_foreign(
        self,
        scheduler: BaseScheduler,
        step: ShardStep,
        t: float,
        func: FunctionProfile,
    ) -> None:
        """Advance the world past an arrival owned by another shard."""
        # A staged group must be decided before this arrival's drain can
        # reach its earliest completion (same rule as the fed path).
        step.sync(t)
        self._drain_events(until=t)
        warm_locations = tuple(
            g for g in GENERATIONS if func.name in self.pools[g]
        )
        placement = scheduler.place_foreign(
            PlacementRequest(
                t=t,
                func=func,
                warm_locations=warm_locations,
                invocation_index=self._next_index,
            )
        )
        if placement in warm_locations:
            # The warm hit consumes the pool entry here exactly as it
            # does everywhere; _close_segment skips billing because the
            # decider record lives on the owning shard.
            hit = self.pools[placement].remove(func.name)
            self._close_segment(hit, t)
        self._next_index += 1

    def _replay_foreign_run(
        self,
        scheduler: BaseScheduler,
        step: ShardStep,
        times: np.ndarray,
        ids: np.ndarray,
        funcs: list[FunctionProfile],
        index: dict[str, int],
        start: int,
        stop: int,
    ) -> None:
        """Advance a run of consecutive foreign arrivals, in bulk when inert.

        Exactness (argued in full in ``docs/sharding.md``): the
        per-event path's only effects for a foreign arrival are (a) a
        possible staged-group flush (outbox append only -- decisions
        detour through :meth:`_admit_keepalive`, never the heap), (b) an
        event drain up to the arrival, (c) the estimator observation +
        pure EPDM choice inside ``place_foreign``, and (d) a warm-hit
        pool consume. Effects (a) and (b) are *time-triggered*: the loop
        performs them at the head of each chunk exactly as the per-event
        path would have (flush first, then drain, both up to the chunk's
        first arrival) and then splits the chunk just before the next
        instant either could act again -- the staged group's
        ``flush_at``, the heap head's due time. Only effect (d) makes an
        arrival itself non-inert, so only the first currently-warm
        arrival replays through the exact per-event path; every maximal
        cold stretch in between is absorbed with one batched estimator
        observation (:meth:`_absorb_foreign_chunk`) plus one counter
        bump.

        A hash-partitioned foreign run between two own arrivals averages
        ``n_shards`` events, so for short runs the vectorised split loop
        (:meth:`_replay_foreign_run_long`) spends more on boundary
        bookkeeping than on the events. Short runs instead walk a plain
        Python scan holding the three boundary sentinels -- ``flush_at``,
        the heap head's due time, the warm table -- in locals: all three
        mutate only at flush/drain/warm boundaries, so between
        boundaries each arrival costs two float compares and one table
        probe.
        """
        if stop - start > 64:
            return self._replay_foreign_run_long(
                scheduler, step, times, ids, funcs, index, start, stop
            )
        tl = times[start:stop].tolist()
        il = ids[start:stop].tolist()
        warm_table = self._warm_fid_table(funcs, index)[3]
        flush_at = step.flush_at
        head_t = self._events[0][0] if self._events else _INF
        chunk_at = start
        for k, t in enumerate(tl):
            if flush_at <= t or head_t <= t:
                # Absorb arrivals before this boundary, then replay the
                # per-event path's time-triggered prefix: flush first,
                # then drain, both up to this arrival.
                here = start + k
                if chunk_at < here:
                    self._absorb_foreign_chunk(
                        scheduler, times, ids, funcs, chunk_at, here,
                        tl, il, start,
                    )
                    chunk_at = here
                if flush_at <= t:
                    # The flush may push activation events due <= t, so
                    # a drain always follows a sync (per-event order).
                    step.sync(t)
                    self._drain_events(until=t)
                elif head_t <= t:
                    self._drain_events(until=t)
                flush_at = step.flush_at
                head_t = self._events[0][0] if self._events else _INF
                warm_table = self._warm_fid_table(funcs, index)[3]
            if warm_table[il[k]]:
                here = start + k
                if chunk_at < here:
                    self._absorb_foreign_chunk(
                        scheduler, times, ids, funcs, chunk_at, here,
                        tl, il, start,
                    )
                self._replay_foreign(scheduler, step, t, funcs[il[k]])
                chunk_at = here + 1
                flush_at = step.flush_at
                head_t = self._events[0][0] if self._events else _INF
                warm_table = self._warm_fid_table(funcs, index)[3]
        if chunk_at < stop:
            self._absorb_foreign_chunk(
                scheduler, times, ids, funcs, chunk_at, stop, tl, il, start
            )

    def _replay_foreign_run_long(
        self,
        scheduler: BaseScheduler,
        step: ShardStep,
        times: np.ndarray,
        ids: np.ndarray,
        funcs: list[FunctionProfile],
        index: dict[str, int],
        start: int,
        stop: int,
    ) -> None:
        """Vectorised split loop for long foreign runs (wide barriers)."""
        while start < stop:
            t0 = float(times[start])
            # Same prefix as the per-event path: a staged group is
            # decided before time advances to its earliest completion
            # (the flush may push activation events at or before t0),
            # then every event due by this arrival drains.
            if step.flush_at <= t0:
                step.sync(t0)
            if self._events and self._events[0][0] <= t0:
                self._drain_events(until=t0)
            split = stop
            if step.flush_at <= float(times[stop - 1]):
                # Arrivals strictly before flush_at replay without a
                # flush; the next loop iteration syncs at the split.
                split = start + int(
                    np.searchsorted(
                        times[start:stop], step.flush_at, side="left"
                    )
                )
            if self._events:
                # Arrivals strictly before the heap head's due time
                # drain nothing; the next iteration drains at the split
                # (a drained activation may warm a later function, which
                # the re-read warm table then sees).
                head_t = self._events[0][0]
                if head_t <= float(times[split - 1]):
                    split = start + int(
                        np.searchsorted(
                            times[start:split], head_t, side="left"
                        )
                    )
            # Both boundaries now lie strictly beyond t0 (the sync
            # flushed every group due by t0, the drain emptied the heap
            # up to it), so split > start and the loop always advances.
            # Warm-function boundary: arrivals of currently-warm
            # functions consume pool entries, so the first one replays
            # per-event; everything before it is provably cold. The
            # intern-id table over pool membership is cached against the
            # pools' version counters -- pools mutate on decisions and
            # expiries, orders of magnitude rarer than foreign arrivals.
            warm_table = self._warm_fid_table(funcs, index)[2]
            hits = np.flatnonzero(warm_table[ids[start:split]])
            first_warm = start + int(hits[0]) if hits.size else split
            if first_warm > start:
                self._absorb_foreign_chunk(
                    scheduler, times, ids, funcs, start, first_warm
                )
            if first_warm < split:
                self._replay_foreign(
                    scheduler,
                    step,
                    float(times[first_warm]),
                    funcs[ids[first_warm]],
                )
                start = first_warm + 1
            else:
                start = split

    def _warm_fid_table(
        self, funcs: list[FunctionProfile], index: dict[str, int]
    ) -> tuple[int, int, np.ndarray, list[bool]]:
        """Boolean table over intern ids: is the function warm anywhere?

        Returned in two forms sharing one build -- an ndarray for the
        long path's fancy indexing ([2]) and a plain list for the short
        path's per-event probe ([3], a list probe is ~3x cheaper than
        numpy scalar indexing). Rebuilt only when a pool's version
        counter moved since the last call; between mutations the lookup
        is two int compares (this is on the per-boundary hot path of
        the foreign fast path).
        """
        pools = self.pools
        v_old = pools[GENERATIONS[0]].version
        v_new = pools[GENERATIONS[1]].version
        cached = self._warm_table_cache
        if cached is None or cached[0] != v_old or cached[1] != v_new:
            table = np.zeros(len(funcs), dtype=bool)
            for g in GENERATIONS:
                for name in pools[g].names():
                    table[index[name]] = True
            cached = (v_old, v_new, table, table.tolist())
            self._warm_table_cache = cached
        return cached

    def _absorb_foreign_chunk(
        self,
        scheduler: BaseScheduler,
        times: np.ndarray,
        ids: np.ndarray,
        funcs: list[FunctionProfile],
        start: int,
        stop: int,
        run_tl: list[float] | None = None,
        run_il: list[int] | None = None,
        run_base: int = 0,
    ) -> None:
        """Absorb an inert chunk ``[start, stop)`` in one bulk step.

        The caller established inertness: no heap event is due within
        the chunk and no chunk function is warm anywhere, so per-event
        replay would have been exactly the estimator observations. The
        chunk's instants are grouped per function via one stable argsort
        (arrival order within each function is preserved), with groups
        emitted in first-arrival order so estimator-registry insertion
        order matches the per-event path.
        """
        n = stop - start
        if n == 1:
            # Singleton chunk (the tail after a warm hit or boundary):
            # no grouping to do at all.
            if run_il is not None and run_tl is not None:
                j = start - run_base
                fid, t = run_il[j], run_tl[j]
            else:
                fid, t = int(ids[start]), float(times[start])
            scheduler.observe_foreign_run([(funcs[fid], [t])])
            self._next_index += 1
            return
        if n <= 8:
            # Short chunk (the common case: a hash-partitioned foreign
            # run between two own arrivals averages ``n_shards`` events)
            # -- plain dict grouping beats the vectorised machinery, and
            # dict insertion order IS first-arrival order. The caller
            # may hand down the run's already-unboxed columns.
            if run_il is not None and run_tl is not None:
                il = run_il[start - run_base : stop - run_base]
                tl = run_tl[start - run_base : stop - run_base]
            else:
                il = ids[start:stop].tolist()
                tl = times[start:stop].tolist()
            small: dict[int, list[float]] = {}
            for fid, t in zip(il, tl):
                bucket = small.get(fid)
                if bucket is None:
                    small[fid] = [t]
                else:
                    bucket.append(t)
            scheduler.observe_foreign_run(
                [(funcs[fid], ts) for fid, ts in small.items()]
            )
            self._next_index += n
            return
        chunk_ids = ids[start:stop]
        uniq, first_pos = np.unique(chunk_ids, return_index=True)
        order = np.argsort(chunk_ids, kind="stable")
        sorted_ids = chunk_ids[order]
        sorted_times = times[start:stop][order]
        seg = np.searchsorted(sorted_ids, uniq, side="left")
        seg = np.append(seg, sorted_ids.size)
        pos_of = {int(uniq[i]): i for i in range(uniq.size)}
        groups = []
        for fid in uniq[np.argsort(first_pos, kind="stable")].tolist():
            i = pos_of[fid]
            groups.append((funcs[fid], sorted_times[seg[i] : seg[i + 1]]))
        scheduler.observe_foreign_run(groups)
        self._next_index += stop - start

    def _exchange_barrier(self) -> None:
        merged = self._transport.exchange(
            self._barrier_seq, self.shard_id, self._outbox
        )
        self._barrier_seq += 1
        self._outbox = []
        # Index order == the sequential engine's push order; with the
        # deterministic heap keys this makes tokens and pops identical
        # on every shard.
        for d in sorted(merged, key=lambda d: d.index):
            func = self.trace.functions[d.func_name]
            location = next(g for g in GENERATIONS if g.value == d.location_value)
            container = WarmContainer(
                func=func,
                location=location,
                segment_start_s=d.t_end,
                expire_s=d.t_end + d.duration_s,
                decider_index=d.index,
                token=self._new_token(),
            )
            heapq.heappush(
                self._events, (d.t_end, 0, d.index, "activate", container)
            )


class ThreadBarrier:
    """In-process :class:`BarrierTransport` over a condition variable.

    Caches each round's merged outboxes by sequence number, so a shard
    re-running from round zero (crash resume in tests) is served
    instantly from cache while live shards wait at the frontier.
    """

    def __init__(self, n_shards: int, timeout_s: float = 120.0) -> None:
        self.n_shards = n_shards
        self.timeout_s = timeout_s
        self._cond = threading.Condition()
        self._contrib: dict[int, dict[int, list[ShardDecision]]] = {}
        self._merged: dict[int, list[ShardDecision]] = {}
        self._failed: BaseException | None = None

    def fail(self, exc: BaseException) -> None:
        """Wake every waiter with a failure (a sibling shard died)."""
        with self._cond:
            self._failed = exc
            self._cond.notify_all()

    def exchange(
        self, seq: int, shard_id: int, outbox: Sequence[ShardDecision]
    ) -> list[ShardDecision]:
        with self._cond:
            if seq not in self._merged:
                contrib = self._contrib.setdefault(seq, {})
                contrib[shard_id] = list(outbox)
                if len(contrib) == self.n_shards:
                    self._merged[seq] = [
                        d for s in sorted(contrib) for d in contrib[s]
                    ]
                    self._cond.notify_all()
                else:
                    ok = self._cond.wait_for(
                        lambda: seq in self._merged or self._failed is not None,
                        timeout=self.timeout_s,
                    )
                    if self._failed is not None:
                        raise RuntimeError(
                            f"sibling shard failed: {self._failed!r}"
                        ) from self._failed
                    if not ok:
                        raise TimeoutError(
                            f"barrier {seq}: not all {self.n_shards} shards "
                            f"arrived within {self.timeout_s}s"
                        )
            return list(self._merged[seq])


class ThreadShardRunner:
    """Run an N-shard replay on threads and merge the results.

    The in-process coordinator: exact on any machine (synchronization
    correctness does not need true parallelism), which is what the
    identity tests use. Real speedups come from the process coordinator
    in ``repro.distributed.shard``.
    """

    def __init__(
        self,
        n_shards: int,
        by: str = "hash",
        foreign_fast_path: bool = True,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.by = by
        self.foreign_fast_path = foreign_fast_path

    def run(
        self,
        pair: HardwarePair,
        trace: InvocationTrace,
        ci_trace: CarbonIntensityTrace,
        scheduler_factory: Callable[[], BaseScheduler],
        config: SimulationConfig | None = None,
    ) -> SimulationResult:
        buckets = trace.partition_names(self.n_shards, by=self.by)
        barrier = ThreadBarrier(self.n_shards)
        results: list[SimulationResult | None] = [None] * self.n_shards
        errors: list[BaseException] = []

        def work(i: int) -> None:
            try:
                engine = ShardEngine(
                    pair=pair,
                    trace=trace,
                    ci_trace=ci_trace,
                    shard_id=i,
                    n_shards=self.n_shards,
                    own_names=buckets[i],
                    transport=barrier,
                    config=config,
                    foreign_fast_path=self.foreign_fast_path,
                )
                results[i] = engine.run_shard(scheduler_factory())
            except BaseException as exc:  # noqa: BLE001 -- relayed below
                errors.append(exc)
                barrier.fail(exc)

        threads = [
            threading.Thread(target=work, args=(i,), name=f"shard-{i}")
            for i in range(self.n_shards)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        done = [r for r in results if r is not None]
        merged = SimulationResult.merge(done)
        merged.meta["transport"] = "thread"
        return merged
