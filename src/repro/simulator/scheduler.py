"""Scheduler interface: what the engine asks, what schedulers may observe.

The engine consults a scheduler at three points:

1. :meth:`BaseScheduler.place` -- where to execute an arriving invocation.
   Per the paper's EPDM, if the function is warm somewhere the engine expects
   the scheduler to pick a warm location (warm placements never pay a cold
   start); all shipped schedulers do.
2. :meth:`BaseScheduler.keepalive` -- after execution: where and for how
   long to keep the function alive (the KDM decision).
3. :meth:`BaseScheduler.rank_keepalive_candidates` -- when a pool overflows:
   a priority order over incumbents + the incoming container. The engine
   packs the pool greedily in that order, spills the rest to the other
   generation (if the scheduler allows it) and drops what still does not
   fit. This is exactly the mechanical part of the paper's warm-pool
   adjustment (Fig. 6); EcoLife supplies the score-based ranking.

Schedulers observe the world through :class:`SchedulerEnv`: current carbon
intensity, recent invocation rate, pool occupancy, hardware pair, carbon
model, and -- only for oracle schedulers that declare
``requires_lookahead`` -- the trace's next-arrival index.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np
import numpy.typing as npt

from repro import units
from repro.carbon.footprint import CarbonModel
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.power import EnergyModel
from repro.hardware.specs import GENERATIONS, Generation, HardwarePair, ServerSpec
from repro.simulator.containers import WarmContainer, WarmPool
from repro.simulator.records import InvocationRecord, KeepAliveDecision
from repro.workloads.functions import FunctionProfile


class ArrivalView(Protocol):
    """What the env needs from an arrival source.

    :class:`~repro.workloads.trace.InvocationTrace` satisfies this for
    replays; the online service substitutes a live arrival log that
    answers the same trailing-rate query over the arrivals observed so
    far (and refuses lookahead, which only replayed oracles may use).
    """

    def rate_per_minute(self, t: float, window_s: float = 60.0) -> float:
        """Arrivals per minute over the trailing window ending at ``t``."""
        ...

    def next_arrival(self, name: str, after_t: float) -> float | None:
        """Next invocation of ``name`` strictly after ``after_t``."""
        ...


@dataclass(frozen=True)
class PlacementRequest:
    """An invocation needing an execution location."""

    t: float
    func: FunctionProfile
    warm_locations: tuple[Generation, ...]
    invocation_index: int


@dataclass(frozen=True)
class KeepAliveRequest:
    """A completed execution needing a keep-alive decision.

    ``t_end`` is when the decision takes effect (execution completion).
    """

    t_end: float
    func: FunctionProfile
    record: InvocationRecord
    executed_on: Generation
    was_cold: bool


@dataclass(frozen=True)
class PoolCandidate:
    """One candidate in a warm-pool adjustment: incumbent or incoming."""

    func: FunctionProfile
    expire_s: float
    is_incoming: bool
    container: WarmContainer | None = None

    @property
    def name(self) -> str:
        return self.func.name

    @property
    def mem_gb(self) -> float:
        return self.func.mem_gb


@dataclass(frozen=True)
class AdjustmentRequest:
    """A pool overflow needing a priority ranking."""

    t: float
    generation: Generation
    candidates: tuple[PoolCandidate, ...]
    capacity_gb: float


class SchedulerEnv:
    """Read-only view of the simulated world handed to schedulers."""

    def __init__(
        self,
        pair: HardwarePair,
        carbon_model: CarbonModel,
        energy_model: EnergyModel,
        pools: dict[Generation, WarmPool],
        trace: ArrivalView,
        setup_delay_s: float,
        kmax_s: float,
        k_step_s: float,
        allow_lookahead: bool = False,
    ) -> None:
        self.pair = pair
        self.carbon_model = carbon_model
        self.energy_model = energy_model
        self._pools = pools
        self._trace = trace
        self.setup_delay_s = setup_delay_s
        self.kmax_s = kmax_s
        self.k_step_s = k_step_s
        self._allow_lookahead = allow_lookahead
        # Running max of observed CI (causal normaliser for the objective).
        self._ci_trace: CarbonIntensityTrace = carbon_model.trace
        self._ci_cummax: np.ndarray | None = None

    # -- hardware / carbon -----------------------------------------------------

    def retarget_carbon(self, carbon_model: CarbonModel) -> None:
        """Swap in a refreshed carbon model (live-feed updates).

        The online service calls this when its intensity provider
        delivers new forecast knots: the env starts reading the new
        trace and drops the cached running-max (``ci_max_observed``
        stays causal -- it is recomputed over the refreshed knots, which
        extend rather than rewrite the observed past; see
        ``IntensityRing`` append rules).
        """
        self.carbon_model = carbon_model
        self._ci_trace = carbon_model.trace
        self._ci_cummax = None

    def server(self, gen: Generation) -> ServerSpec:
        """The server on one side of the pair."""
        return self.pair.server(gen)

    def ci_at(self, t: float) -> float:
        """Current carbon intensity (g/kWh)."""
        return self._ci_trace.at(t)

    def ci_at_many(self, ts: npt.ArrayLike) -> np.ndarray:
        """Vectorised :meth:`ci_at` for a batch of decision instants."""
        return self._ci_trace.at_many(ts)

    def ci_max_observed(self, t: float) -> float:
        """Maximum CI observed up to ``t`` (causal; used for normalisation)."""
        knots = self._ci_trace.times_s
        idx = int(np.searchsorted(knots, t, side="right"))
        if idx <= 0:
            return float(self._ci_trace.values[0])
        if self._ci_cummax is None:
            # Queried once per KDM decision; precompute the running max.
            self._ci_cummax = np.maximum.accumulate(self._ci_trace.values)
        return float(self._ci_cummax[idx - 1])

    def ci_max_observed_many(self, ts: npt.ArrayLike) -> np.ndarray:
        """Vectorised :meth:`ci_max_observed` (element-identical)."""
        knots = self._ci_trace.times_s
        idx = np.searchsorted(knots, np.asarray(ts, dtype=float), side="right")
        if self._ci_cummax is None:
            self._ci_cummax = np.maximum.accumulate(self._ci_trace.values)
        return np.where(
            idx > 0,
            self._ci_cummax[np.maximum(idx - 1, 0)],
            self._ci_trace.values[0],
        )

    # -- workload observations ---------------------------------------------------

    def rate_per_minute(self, t: float, window_s: float = 60.0) -> float:
        """System-wide invocation arrival rate over the trailing window."""
        return self._trace.rate_per_minute(t, window_s)

    # -- warm pools ---------------------------------------------------------------

    def warm_locations(self, name: str) -> tuple[Generation, ...]:
        return tuple(g for g in GENERATIONS if name in self._pools[g])

    def pool_used_gb(self, gen: Generation) -> float:
        return self._pools[gen].used_gb

    def pool_capacity_gb(self, gen: Generation) -> float:
        return self._pools[gen].capacity_gb

    def pool_free_gb(self, gen: Generation) -> float:
        return self._pools[gen].free_gb

    def pool_containers(self, gen: Generation) -> list[WarmContainer]:
        return self._pools[gen].containers()

    # -- keep-alive search space ------------------------------------------------

    def keepalive_grid_s(self) -> np.ndarray:
        """The discrete keep-alive period set K_AT (seconds), including 0."""
        n = int(round(self.kmax_s / self.k_step_s))
        return np.arange(n + 1, dtype=float) * self.k_step_s

    # -- oracle lookahead ----------------------------------------------------------

    def next_arrival(self, name: str, after_t: float) -> float | None:
        """Next invocation of ``name`` strictly after ``after_t``.

        Only available to schedulers that declared ``requires_lookahead``;
        anything else asking for the future is a bug.
        """
        if not self._allow_lookahead:
            raise PermissionError(
                "lookahead is reserved for oracle schedulers "
                "(set requires_lookahead = True)"
            )
        return self._trace.next_arrival(name, after_t)


class BaseScheduler(abc.ABC):
    """Abstract scheduler; see module docstring for the protocol."""

    #: Display name used in results and reports.
    name: str = "base"
    #: Oracles set this to gain access to SchedulerEnv.next_arrival.
    requires_lookahead: bool = False
    #: Whether adjustment may spill evicted containers to the other pool.
    allow_spill: bool = True
    #: Schedulers that batch same-tick keep-alive decisions (see
    #: :meth:`keepalive_batch`) set this True; the engine then groups
    #: simultaneous arrivals of distinct functions into one call.
    supports_keepalive_batch: bool = False
    #: Width (seconds) of the shared decision tick for batching
    #: schedulers: 0 (default) batches only exactly-simultaneous
    #: arrivals; > 0 groups arrivals of distinct functions whose times
    #: fall in the same ``floor(t / quantum)`` bucket, letting
    #: ``keepalive_batch`` fire on continuous (non-quantised) traces.
    #: Bit-identical at any width: placements still run one arrival at
    #: a time against fully drained pool state, each decision is
    #: evaluated at its own instant, and the engine closes a group
    #: before any arrival reaches its earliest staged completion time,
    #: preserving sequential event ordering exactly (see
    #: ``docs/optimizers.md``).
    decision_quantum_s: float = 0.0
    #: Clamp the decision tick to the observed minimum service time:
    #: the engine tracks the shortest completed-request duration and
    #: uses ``min(decision_quantum_s, observed_min)`` as the effective
    #: width (or the observed minimum alone when the static width is 0).
    #: A pure look-ahead heuristic -- replays are bit-identical at any,
    #: even varying, width. Only honoured alongside
    #: :attr:`supports_keepalive_batch`.
    adaptive_decision_quantum: bool = False
    #: Schedulers that want :meth:`on_container_expired` notifications
    #: (e.g. to drive state-retirement sweeps without depending on
    #: decision traffic) set this True.
    wants_expiry_events: bool = False
    #: Schedulers that can replay foreign placements set this True (see
    #: :meth:`place_foreign`); it gates the function-sharded replay in
    #: ``repro.simulator.shard``.
    supports_sharding: bool = False
    #: Schedulers for which a *run* of consecutive foreign arrivals may
    #: be replayed in one :meth:`observe_foreign_run` call instead of
    #: per-event :meth:`place_foreign` calls set this True. The contract
    #: (checked by ecolint ECO006; argued in ``docs/sharding.md``): when
    #: every arrival in the run is a cold foreign placement -- no warm
    #: pool holds any of the run's functions and no simulator event fires
    #: before the run's last instant -- the scheduler's state after
    #: :meth:`observe_foreign_run` must be bit-identical to the state
    #: after the equivalent sequence of :meth:`place_foreign` calls
    #: (whose placement return values are then provably unused).
    foreign_batch_safe: bool = False

    def __init__(self) -> None:
        self.env: SchedulerEnv | None = None

    def bind(self, env: SchedulerEnv) -> None:
        """Called once by the engine before the run starts."""
        self.env = env

    # -- decision points --------------------------------------------------------

    @abc.abstractmethod
    def place(self, req: PlacementRequest) -> Generation:
        """Choose the execution location (EPDM)."""

    @abc.abstractmethod
    def keepalive(self, req: KeepAliveRequest) -> KeepAliveDecision:
        """Choose keep-alive location and period (KDM)."""

    def place_foreign(self, req: PlacementRequest) -> Generation:
        """Replay the placement of an arrival owned by another shard.

        A sharded replay feeds every shard the full merged arrival
        stream; arrivals of functions the shard does not own still move
        the world (warm hits consume pool entries, estimators observe
        all arrivals) but make no keep-alive decision locally. This hook
        must reproduce exactly the :class:`Generation` that
        :meth:`place` returns for the same request on the owning shard,
        while touching only state every shard replicates (the placement
        decision must be a pure function of the request plus globally
        shared inputs such as the carbon-intensity clock). Only called
        when :attr:`supports_sharding` is set.
        """
        raise NotImplementedError(
            f"{self.name}: sharded replay requires place_foreign "
            "(set supports_sharding = True only with an implementation)"
        )

    def observe_foreign_run(
        self, groups: Sequence[tuple[FunctionProfile, npt.ArrayLike]]
    ) -> None:
        """Absorb a bulk run of provably inert foreign arrivals.

        ``groups`` holds, per function appearing in the run, its sorted
        arrival instants (a float64 array or list). Called by the sharded replay
        fast path instead of per-event :meth:`place_foreign` when the
        run is inert (see :attr:`foreign_batch_safe` for the exact
        conditions); implementations must update whatever arrival-driven
        state :meth:`place_foreign` updates -- and nothing else -- so
        the replay stays bit-identical with the fast path on or off.
        Only called when :attr:`foreign_batch_safe` is set.
        """
        raise NotImplementedError(
            f"{self.name}: the foreign fast path requires observe_foreign_run "
            "(set foreign_batch_safe = True only with an implementation)"
        )

    def keepalive_batch(
        self, reqs: Sequence[KeepAliveRequest]
    ) -> list[KeepAliveDecision]:
        """Batched keep-alive decisions for simultaneous arrivals.

        The engine only calls this (and only for schedulers that declare
        ``supports_keepalive_batch``) with requests from *distinct*
        functions arriving at the same instant, whose decisions are
        therefore order-independent. The default falls back to sequential
        :meth:`keepalive` calls; EcoLife overrides it to step all the
        functions' swarms through one batched fleet kernel.
        """
        return [self.keepalive(req) for req in reqs]

    def on_container_expired(
        self, name: str, generation: Generation, t: float
    ) -> None:
        """Notification: a warm container reached its expiry untouched.

        Delivered only when :attr:`wants_expiry_events` is set, and only
        for genuine expiries (not warm hits, moves, or evictions). This
        is bookkeeping, not a decision point: implementations must not
        change any scheduling outcome from here -- EcoLife uses it to
        trigger bit-identical state-retirement sweeps during quiet
        periods when no decisions arrive.
        """

    def rank_keepalive_candidates(
        self, req: AdjustmentRequest
    ) -> list[PoolCandidate]:
        """Priority order (highest first) for warm-pool packing on overflow.

        Default policy (used by the fixed-keep-alive baselines): keep the
        containers that will stay warm the longest -- i.e. the most recently
        invoked ones, which is OpenWhisk-style LRU eviction -- and treat the
        incoming container as most recent.
        """
        return sorted(
            req.candidates,
            key=lambda c: (c.is_incoming, c.expire_s),
            reverse=True,
        )

    # -- shared helpers -----------------------------------------------------------

    def service_time(self, func: FunctionProfile, gen: Generation, cold: bool) -> float:
        """Service time of ``func`` on generation ``gen``."""
        assert self.env is not None
        return func.service_time_s(
            self.env.server(gen), cold=cold, setup_s=self.env.setup_delay_s
        )

    def service_carbon_est(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        """Estimated service carbon of ``func`` on ``gen`` at intensity ``ci``."""
        assert self.env is not None
        server = self.env.server(gen)
        busy = self.env.setup_delay_s + func.exec_time_s(server)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        return self.env.carbon_model.est_service_g(
            server, func.mem_gb, busy, overhead, ci
        )

    def keepalive_rate(self, func: FunctionProfile, gen: Generation, ci: float) -> float:
        """Estimated keep-alive carbon rate (g/s) of ``func`` on ``gen``."""
        assert self.env is not None
        return self.env.carbon_model.est_keepalive_rate_g_per_s(
            self.env.server(gen), func.mem_gb, ci
        )


DEFAULT_KEEPALIVE_S = 10.0 * units.SECONDS_PER_MINUTE
"""OpenWhisk's fixed 10-minute keep-alive, used by the *-Only baselines."""
