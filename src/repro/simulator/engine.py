"""Event-driven serverless simulation engine.

The engine replays an :class:`~repro.workloads.trace.InvocationTrace`
against a two-generation cluster, consulting a scheduler for execution
placement and keep-alive decisions, and charging carbon with the shared
:class:`~repro.carbon.footprint.CarbonModel`. It is the single accounting
implementation used by EcoLife, every baseline, and every oracle -- which is
what makes the paper's "% increase w.r.t. X-Opt" comparisons meaningful.

Semantics (matching the paper's Sec. II/IV framing):

- An invocation starts **warm** if its function sits in a warm pool at
  arrival (no cold-start overhead); the pool entry is consumed and its
  keep-alive segment is closed and billed.
- After execution the scheduler's KDM decides (location, keep-alive period);
  the container then occupies pool memory until a warm hit, its expiry, or
  an eviction caused by warm-pool adjustment.
- On pool overflow the scheduler ranks incumbents + the incoming container;
  the engine packs greedily in that order, spills losers to the other pool
  (if allowed and they fit) and drops the rest.
- Keep-alive carbon is attributed to the invocation that decided it.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Iterable

from repro import units
from repro.carbon.footprint import CarbonModel
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.hardware.specs import GENERATIONS, Generation, HardwarePair
from repro.simulator.containers import WarmContainer, WarmPool
from repro.simulator.records import (
    InvocationRecord,
    KeepAliveDecision,
    SimulationResult,
)
from repro.simulator.scheduler import (
    AdjustmentRequest,
    ArrivalView,
    BaseScheduler,
    KeepAliveRequest,
    PlacementRequest,
    PoolCandidate,
    SchedulerEnv,
)
from repro.workloads.functions import FunctionProfile
from repro.workloads.trace import InvocationTrace

#: One arrival for the incremental stepping API: (time, function).
Arrival = tuple[float, FunctionProfile]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs shared by all experiments."""

    #: Keep-alive memory capacity per generation (GB). The paper's Fig. 11
    #: sweeps this ("old/new" combinations); oracles run uncapped.
    pool_capacity_old_gb: float = 32.0
    pool_capacity_new_gb: float = 32.0
    #: Fixed scheduling/setup delay added to every service time.
    setup_delay_s: float = 0.05
    #: Upper bound of the keep-alive search space K_AT.
    kmax_minutes: float = 30.0
    #: Quantisation of K_AT (the paper works at minute granularity).
    k_step_s: float = 60.0
    #: Record wall-clock decision overhead per invocation.
    measure_decision_overhead: bool = True

    def __post_init__(self) -> None:
        units.require_non_negative(self.pool_capacity_old_gb, "pool_capacity_old_gb")
        units.require_non_negative(self.pool_capacity_new_gb, "pool_capacity_new_gb")
        units.require_non_negative(self.setup_delay_s, "setup_delay_s")
        units.require_positive(self.kmax_minutes, "kmax_minutes")
        units.require_positive(self.k_step_s, "k_step_s")

    @property
    def kmax_s(self) -> float:
        return units.minutes(self.kmax_minutes)

    def capacity(self, gen: Generation) -> float:
        return (
            self.pool_capacity_old_gb
            if gen is Generation.OLD
            else self.pool_capacity_new_gb
        )

    def uncapped(self) -> "SimulationConfig":
        """Copy with unlimited pool memory (used by the oracle solutions)."""
        import dataclasses
        import math

        return dataclasses.replace(
            self,
            pool_capacity_old_gb=math.inf,
            pool_capacity_new_gb=math.inf,
        )


class SimulationEngine:
    """Replays one trace with one scheduler. Engines are single-use."""

    def __init__(
        self,
        pair: HardwarePair,
        trace: InvocationTrace | ArrivalView,
        ci_trace: CarbonIntensityTrace,
        config: SimulationConfig | None = None,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ) -> None:
        self.pair = pair
        self.trace = trace
        self.config = config or SimulationConfig()
        self.carbon_model = CarbonModel(trace=ci_trace, energy_model=energy_model)
        self.pools: dict[Generation, WarmPool] = {
            g: WarmPool(generation=g, capacity_gb=self.config.capacity(g))
            for g in GENERATIONS
        }
        self.records: list[InvocationRecord] = []
        # Deferred-event heap: (time, priority, key, kind, payload).
        # Activations (a container becoming warm at execution end) sort
        # before expiries at equal timestamps via their priority. The
        # tiebreaker key is *deterministic*, not a push counter: an
        # activation is keyed by its decider's global invocation index
        # and an expiry by a dedicated expiry-only counter. In the
        # sequential engine both reproduce push order exactly (decisions
        # finish in record-index order; expiries are scheduled in pop
        # order), and because the keys do not depend on *when* an event
        # was pushed, a sharded replay that learns about remote
        # activations late (at a barrier) still pops every event in the
        # exact sequential order.
        self._events: list[tuple[float, int, int, str, object]] = []
        self._expiry_seq = 0
        #: Global invocation counter: the index of the next record. In a
        #: sharded replay this advances for *every* arrival of the merged
        #: trace (own and foreign alike), so record indices are globally
        #: unique and stable across any shard count.
        self._next_index = 0
        self._token = 0
        self._ran = False
        self._scheduler: BaseScheduler | None = None
        self._env: SchedulerEnv | None = None
        self._horizon = 0.0
        self._wall_start = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, scheduler: BaseScheduler) -> SimulationResult:
        """Replay the full trace and return the aggregated result."""
        if not isinstance(self.trace, InvocationTrace):
            raise TypeError(
                "run() replays an InvocationTrace; feed live arrival "
                "sources through start()/step_batch()/finish()"
            )
        self.start(scheduler)
        self.step_batch((inv.t, inv.func) for inv in self.trace)
        return self.finish()

    def start(self, scheduler: BaseScheduler) -> None:
        """Bind a scheduler and open the engine for incremental stepping.

        ``run()`` is ``start()`` + one full-trace ``step_batch()`` +
        ``finish()``; the online decision service drives the same three
        entry points with arrivals from the network instead. Engines
        remain single-use either way.
        """
        if self._ran:
            raise RuntimeError("SimulationEngine instances are single-use")
        self._ran = True

        env = SchedulerEnv(
            pair=self.pair,
            carbon_model=self.carbon_model,
            energy_model=self.carbon_model.energy_model,
            pools=self.pools,
            trace=self.trace,
            setup_delay_s=self.config.setup_delay_s,
            kmax_s=self.config.kmax_s,
            k_step_s=self.config.k_step_s,
            allow_lookahead=scheduler.requires_lookahead,
        )
        scheduler.bind(env)
        self._scheduler = scheduler
        self._env = env
        self._horizon = 0.0
        # ecolint: disable=ECO002 -- wall_time_s is telemetry only; deterministic_dict() excludes it from replay-compared outputs
        self._wall_start = time.perf_counter()

    def step_batch(self, arrivals: Iterable[Arrival]) -> list[InvocationRecord]:
        """Process time-ordered arrivals incrementally; returns their records.

        Identical decision semantics to ``run()``: batching schedulers
        get same-tick grouping (any staged group is flushed before this
        call returns, so callers always see completed decisions), others
        are stepped one by one. Stepping boundaries never change
        decisions -- the grouping contract guarantees composition
        independence (see ``_grouped_steps``).
        """
        scheduler = self._require_started()
        first = len(self.records)
        if scheduler.supports_keepalive_batch:
            self._horizon = max(
                self._horizon, self._grouped_steps(scheduler, arrivals)
            )
        else:
            for t, func in arrivals:
                self._drain_events(until=t)
                t_end = self._process_invocation(scheduler, t, func)
                self._horizon = max(self._horizon, t_end)
        return self.records[first:]

    def step_arrival(self, t: float, func: FunctionProfile) -> InvocationRecord:
        """Process one arrival; returns its completed record."""
        return self.step_batch([(t, func)])[0]

    def finish(self) -> SimulationResult:
        """Drain every outstanding event and aggregate the result."""
        scheduler = self._require_started()
        self._drain_events(until=float("inf"))
        if any(len(self.pools[g]) for g in GENERATIONS):  # pragma: no cover
            raise RuntimeError("pools not empty after final drain")
        # ecolint: disable=ECO002 -- closes the telemetry-only wall_time_s measurement started in start()
        wall = time.perf_counter() - self._wall_start

        return SimulationResult(
            scheduler_name=scheduler.name,
            records=self.records,
            horizon_s=self._horizon,
            wall_time_s=wall,
        )

    def update_ci_trace(self, ci_trace: CarbonIntensityTrace) -> None:
        """Point the engine (and the bound scheduler) at a refreshed trace.

        Safe mid-run: decisions read intensity through the env at query
        time, cost-model caches are CI-independent (intensity is applied
        per query), and the providers only ever extend or revise knots
        at or past the last one -- the observed past stays fixed.
        """
        self.carbon_model = CarbonModel(
            trace=ci_trace, energy_model=self.carbon_model.energy_model
        )
        if self._env is not None:
            self._env.retarget_carbon(self.carbon_model)

    def _require_started(self) -> BaseScheduler:
        if self._scheduler is None:
            raise RuntimeError("call start() before stepping the engine")
        return self._scheduler

    # ------------------------------------------------------------------
    # Invocation pipeline
    # ------------------------------------------------------------------

    def _grouped_steps(
        self, scheduler: BaseScheduler, arrivals: Iterable[Arrival]
    ) -> float:
        """Arrival stepping that batches shared-tick keep-alive decisions.

        Consecutive invocations of *distinct* functions arriving within
        the same decision tick are placed one by one -- each against
        fully drained pool/event state at its own arrival instant
        (placements interact through the warm pools) -- and then decided
        in a single ``keepalive_batch`` call. A repeated function name
        closes the group (its second decision depends on its first),
        which also makes explicit arrival-state snapshots unnecessary:
        within a group, a function's estimator history at decision time
        is exactly its history at its own place time.

        The tick is the exact arrival instant by default
        (``decision_quantum_s == 0``): behaviour-preserving, because a
        same-instant keep-alive decision reads only the environment at
        its own ``t_end`` and its function's private state, and the
        containers the group admits all activate strictly after the
        shared arrival instant. With ``decision_quantum_s > 0`` the
        tick widens to ``floor(t / quantum)`` buckets so continuous
        traces batch too.

        A third flush trigger keeps the wide-bucket path *exact*: the
        group closes before any arrival reaches the earliest staged
        completion time. A staged decision's only world-visible side
        effect is its keep-alive activation at ``t_end``, and events
        only act when a drain passes their timestamp -- so as long as
        every activation enters the heap before the first drain at or
        beyond its ``t_end``, the pops (and thus pool state, warm hits,
        and adjustments) happen in exactly the sequential order. The
        quantum therefore trades nothing away; it only bounds how far
        ahead the engine looks for batchable arrivals (effective batch
        width is capped by arrivals per in-flight service time).

        The grouping state machine itself lives in :class:`ShardStep` so
        the sharded replay (``repro.simulator.shard``) can drive the
        identical unit between its synchronization barriers.
        """
        step = ShardStep(self, scheduler)
        for t, func in arrivals:
            step.feed(t, func)
        step.flush()
        return step.horizon

    def _flush_staged(
        self, scheduler: BaseScheduler, staged: list[KeepAliveRequest]
    ) -> float:
        """Decide and admit keep-alive for one placed decision group."""
        if len(staged) == 1:
            # Singleton: the plain keepalive call (the KDM's view-based
            # single-swarm fast path, no batch overhead).
            req = staged[0]
            decision, wall = self._timed(scheduler.keepalive, req)
            return self._finish_decision(scheduler, req, decision, wall)
        decisions, wall = self._timed(scheduler.keepalive_batch, staged)
        share = wall / len(staged)
        t_last = 0.0
        for req, decision in zip(staged, decisions):
            t_last = max(
                t_last, self._finish_decision(scheduler, req, decision, share)
            )
        return t_last

    def _finish_decision(
        self,
        scheduler: BaseScheduler,
        req: KeepAliveRequest,
        decision: KeepAliveDecision,
        wall_s: float,
    ) -> float:
        """Record one keep-alive decision and admit its container."""
        req.record.decision_wall_s += wall_s
        req.record.keepalive_decision = decision
        if decision.duration_s > 0.0:
            self._admit_keepalive(
                scheduler, req.func, decision, req.t_end, req.record
            )
        return req.t_end

    def _process_invocation(
        self, scheduler: BaseScheduler, t: float, func: FunctionProfile
    ) -> float:
        """Handle one invocation end-to-end; returns the execution end time."""
        req = self._place_and_record(scheduler, t, func)
        decision, wall_ka = self._timed(scheduler.keepalive, req)
        return self._finish_decision(scheduler, req, decision, wall_ka)

    def _place_and_record(
        self, scheduler: BaseScheduler, t: float, func: FunctionProfile
    ) -> KeepAliveRequest:
        """Place one invocation, bill its service, and stage the KDM ask."""
        warm_locations = tuple(
            g for g in GENERATIONS if func.name in self.pools[g]
        )

        placement, wall_place = self._timed(
            scheduler.place,
            PlacementRequest(
                t=t,
                func=func,
                warm_locations=warm_locations,
                invocation_index=self._next_index,
            ),
        )

        cold = placement not in warm_locations
        if not cold:
            hit = self.pools[placement].remove(func.name)
            self._close_segment(hit, t)

        server = self.pair.server(placement)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        busy = self.config.setup_delay_s + func.exec_time_s(server)
        service_carbon = self.carbon_model.service(
            server, func.mem_gb, t, busy, overhead
        )
        service_energy = self.carbon_model.service_energy_wh(
            server, func.mem_gb, busy, overhead
        )
        record = InvocationRecord(
            index=self._next_index,
            t=t,
            func_name=func.name,
            mem_gb=func.mem_gb,
            location=placement,
            cold=cold,
            setup_s=self.config.setup_delay_s,
            cold_overhead_s=overhead,
            exec_s=func.exec_time_s(server),
            service_carbon=service_carbon,
            service_energy_wh=service_energy,
            decision_wall_s=wall_place,
        )
        self._next_index += 1
        self.records.append(record)
        return KeepAliveRequest(
            t_end=t + record.service_s,
            func=func,
            record=record,
            executed_on=placement,
            was_cold=cold,
        )

    def _admit_keepalive(
        self,
        scheduler: BaseScheduler,
        func: FunctionProfile,
        decision: KeepAliveDecision,
        t: float,
        record: InvocationRecord,
    ) -> None:
        """Defer container activation to the execution end time ``t``.

        The decision is made while processing the invocation *arrival*
        event, but the container only becomes warm (and only starts to
        occupy memory / accrue carbon) once the execution completes --
        other invocations may arrive in between.
        """
        container = WarmContainer(
            func=func,
            location=decision.location,
            segment_start_s=t,
            expire_s=t + decision.duration_s,
            decider_index=record.index,
            token=self._new_token(),
        )
        # Keyed by the decider's global index: deterministic, and equal
        # to push order in the sequential engine (decisions finish in
        # record-index order).
        heapq.heappush(self._events, (t, 0, record.index, "activate", container))

    def _activate(self, container: WarmContainer) -> None:
        """Make a container warm at its execution-end timestamp."""
        t = container.segment_start_s
        # Replace any stale container of the same function (overlapping runs).
        for gen in GENERATIONS:
            if container.name in self.pools[gen]:
                stale = self.pools[gen].remove(container.name)
                self._close_segment(stale, t)

        pool = self.pools[container.location]
        if pool.fits(container.mem_gb):
            pool.insert(container)
            self._schedule_expiry(container)
            return
        assert self._scheduler is not None
        self._run_adjustment(
            self._scheduler,
            container.location,
            container,
            t,
            self._decider(container.decider_index),
        )

    def _decider(self, index: int) -> InvocationRecord | None:
        """The record that decided a container's keep-alive.

        ``None`` means the deciding invocation is not tracked by this
        engine -- a sharded replay returns ``None`` for containers whose
        function belongs to another shard (their carbon/flags are billed
        by the owning shard's identical replay of the same events).
        """
        return self.records[index]

    def _run_adjustment(
        self,
        scheduler: BaseScheduler,
        gen: Generation,
        incoming: WarmContainer,
        t: float,
        record: InvocationRecord | None,
    ) -> None:
        """Overflow path: rank, pack, spill, drop (paper Fig. 6)."""
        pool = self.pools[gen]
        incumbents = pool.containers()
        candidates = tuple(
            [
                PoolCandidate(
                    func=c.func, expire_s=c.expire_s, is_incoming=False, container=c
                )
                for c in incumbents
            ]
            + [
                PoolCandidate(
                    func=incoming.func, expire_s=incoming.expire_s, is_incoming=True
                )
            ]
        )
        request = AdjustmentRequest(
            t=t, generation=gen, candidates=candidates, capacity_gb=pool.capacity_gb
        )
        ranked, wall = self._timed(scheduler.rank_keepalive_candidates, request)
        if record is not None:
            record.decision_wall_s += wall
        if sorted(c.name for c in ranked) != sorted(c.name for c in candidates):
            raise RuntimeError(
                f"{scheduler.name}: adjustment ranking must be a permutation of "
                "the candidates"
            )

        free = pool.capacity_gb
        kept_names: set[str] = set()
        losers: list[PoolCandidate] = []
        for cand in ranked:
            if cand.mem_gb <= free + 1e-12:
                kept_names.add(cand.name)
                free -= cand.mem_gb
            else:
                losers.append(cand)

        # Evict incumbents that lost their slot.
        for cand in losers:
            if not cand.is_incoming:
                evicted = pool.remove(cand.name)
                self._close_segment(evicted, t)

        # Insert the incoming container if it won a slot.
        if incoming.name in kept_names:
            pool.insert(incoming)
            self._schedule_expiry(incoming)

        # Spill losers to the other generation (no cascading adjustment).
        other_pool = self.pools[gen.other]
        for cand in losers:
            decider_index = (
                incoming.decider_index
                if cand.is_incoming
                else cand.container.decider_index
            )
            decider = record if cand.is_incoming else self._decider(decider_index)
            can_spill = (
                scheduler.allow_spill
                and other_pool.fits(cand.mem_gb)
                and cand.name not in other_pool
            )
            if can_spill:
                moved = WarmContainer(
                    func=cand.func,
                    location=gen.other,
                    segment_start_s=t,
                    expire_s=cand.expire_s,
                    decider_index=decider_index,
                    token=self._new_token(),
                )
                other_pool.insert(moved)
                self._schedule_expiry(moved)
                if decider is not None:
                    decider.spilled = True
            elif decider is not None:
                decider.evicted = True
                if cand.is_incoming:
                    decider.dropped = True

    # ------------------------------------------------------------------
    # Keep-alive bookkeeping
    # ------------------------------------------------------------------

    def _drain_events(self, until: float) -> None:
        """Process activations and expiries at or before ``until``."""
        while self._events and self._events[0][0] <= until:
            t, _, _, kind, payload = heapq.heappop(self._events)
            if kind == "activate":
                self._activate(payload)
                continue
            name, gen, token = payload
            container = self.pools[gen].get(name)
            if container is None or container.token != token:
                continue  # stale event: warm hit, move, or replacement
            self.pools[gen].remove(name)
            self._close_segment(container, t)
            if self._scheduler is not None and self._scheduler.wants_expiry_events:
                self._scheduler.on_container_expired(name, gen, t)

    def _close_segment(self, container: WarmContainer, t_close: float) -> None:
        """Accrue one finished keep-alive segment onto its deciding record."""
        t0 = container.segment_start_s
        if t_close < t0:
            raise RuntimeError(
                f"keep-alive segment for {container.name!r} closes before it opens"
            )
        decider = self._decider(container.decider_index)
        if decider is None:
            # Foreign container in a sharded replay: the owning shard
            # bills the identical segment against its own record.
            return
        server = self.pair.server(container.location)
        carbon = self.carbon_model.keepalive(server, container.mem_gb, t0, t_close)
        energy = self.carbon_model.keepalive_energy_wh(
            server, container.mem_gb, t_close - t0
        )
        decider.add_keepalive(carbon, energy, t_close - t0)

    def _schedule_expiry(self, container: WarmContainer) -> None:
        # Expiry-only counter: expiries are scheduled while popping the
        # heap (activations, spills), which happens in the same
        # deterministic order on every shard of a sharded replay.
        self._expiry_seq += 1
        heapq.heappush(
            self._events,
            (
                container.expire_s,
                1,  # expiries sort after activations at equal times
                self._expiry_seq,
                "expire",
                (container.name, container.location, container.token),
            ),
        )

    def _new_token(self) -> int:
        self._token += 1
        return self._token

    def _timed(self, fn, *args):
        """Invoke a scheduler decision, optionally measuring wall time."""
        if not self.config.measure_decision_overhead:
            return fn(*args), 0.0
        # ecolint: disable=ECO002 -- decision_wall_s overhead telemetry, gated off by default and excluded from deterministic outputs
        start = time.perf_counter()
        result = fn(*args)
        # ecolint: disable=ECO002 -- closes the decision_wall_s measurement started above
        return result, time.perf_counter() - start


class ShardStep:
    """The quantum-grouping state machine behind ``_grouped_steps``.

    One instance batches a time-ordered arrival stream into shared-tick
    keep-alive decision groups: ``feed`` places each arrival against
    drained engine state and stages its KDM ask; the group closes (and
    is decided in one ``keepalive_batch``) on a bucket change, a
    repeated function name, or an arrival at/past the earliest staged
    completion time -- the exact triggers documented on
    :meth:`SimulationEngine._grouped_steps`.

    It is a separate unit (rather than a loop body) so the sharded
    replay (``repro.simulator.shard``) can drive the identical machine
    between its synchronization barriers: a shard feeds only the
    arrivals it owns, calls :meth:`sync` before replaying foreign
    arrivals or crossing a barrier, and :meth:`flush` when its round
    ends. Flushing at those extra boundaries is behaviour-preserving by
    the batch-composition-independence contract (grouping never changes
    decisions); ``sync`` additionally keeps the ``flush_at`` exactness
    guarantee intact when time advances without a ``feed``.
    """

    def __init__(self, engine: SimulationEngine, scheduler: BaseScheduler) -> None:
        self._engine = engine
        self._scheduler = scheduler
        self._quantum = scheduler.decision_quantum_s
        self._adaptive = scheduler.adaptive_decision_quantum
        # Adaptive width: clamp the tick to the shortest service time
        # observed so far (a wider tick cannot batch further anyway --
        # the flush_at trigger closes the group at the earliest staged
        # completion). Exactness is width-independent, so a width that
        # *varies* as the running minimum tightens stays bit-identical.
        self._min_service = float("inf")
        #: Largest execution-end time decided so far.
        self.horizon = 0.0
        self._staged: list[KeepAliveRequest] = []
        self._names: set[str] = set()
        self._bucket: float | None = None
        self._flush_at = float("inf")  # earliest staged completion

    def feed(self, t: float, func: FunctionProfile) -> None:
        """Place one owned arrival and stage its keep-alive decision."""
        width = self._quantum
        if self._adaptive and self._min_service < float("inf"):
            width = (
                min(self._quantum, self._min_service)
                if self._quantum > 0.0
                else self._min_service
            )
        key = t if width <= 0.0 else t // width
        if self._staged and (
            key != self._bucket or func.name in self._names or t >= self._flush_at
        ):
            self.flush()
        self._bucket = key
        self._engine._drain_events(until=t)
        req = self._engine._place_and_record(self._scheduler, t, func)
        self._staged.append(req)
        self._names.add(func.name)
        self._flush_at = min(self._flush_at, req.t_end)
        if self._adaptive:
            self._min_service = min(self._min_service, req.t_end - t)

    @property
    def flush_at(self) -> float:
        """Earliest staged completion time (``inf`` with nothing staged).

        The sharded foreign fast path reads this to split a bulk run of
        foreign arrivals at the first instant where the per-event path
        would have flushed the staged group (see
        ``ShardEngine._replay_foreign_run``).
        """
        return self._flush_at

    def sync(self, t: float) -> None:
        """Flush if the world is about to advance to ``t`` without a feed.

        The sharded replay processes foreign arrivals (and barrier
        crossings) outside this machine, and those drain the event heap
        up to their own timestamps. A staged group must be decided
        before any drain reaches its earliest completion time -- the
        same exactness rule the ``t >= flush_at`` trigger enforces for
        fed arrivals.
        """
        if self._staged and t >= self._flush_at:
            self.flush()

    def flush(self) -> None:
        """Decide any staged group now."""
        if not self._staged:
            return
        self.horizon = max(
            self.horizon,
            self._engine._flush_staged(self._scheduler, self._staged),
        )
        self._staged = []
        self._names = set()
        self._flush_at = float("inf")
