"""Simulated Annealing baseline.

The paper compares PSO against SA "set with an initial temperature of 100,
a stop temperature of 1, and a temperature reduction factor of 0.9"
(Sec. IV-C). Each :meth:`step` call runs annealing sweeps of that schedule
starting from the incumbent, with Gaussian neighbour proposals whose scale
shrinks with the temperature.
"""

from __future__ import annotations

import math

import numpy as np

from repro.optimizers.base import ContinuousOptimizer, FitnessFn, clip_box


class SimulatedAnnealing(ContinuousOptimizer):
    """A persistent SA minimiser over the unit box."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        t_initial: float = 100.0,
        t_stop: float = 1.0,
        cooling: float = 0.9,
        step_scale: float = 0.25,
    ) -> None:
        super().__init__(dim, rng)
        if not 0.0 < t_stop < t_initial:
            raise ValueError("need 0 < t_stop < t_initial")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.t_initial = t_initial
        self.t_stop = t_stop
        self.cooling = cooling
        self.step_scale = step_scale
        self.current = self._uniform(1)[0]
        self._schedule_len = (
            int(math.ceil(math.log(t_stop / t_initial) / math.log(cooling))) + 1
        )

    @property
    def schedule_length(self) -> int:
        """Number of temperature levels between t_initial and t_stop."""
        return self._schedule_len

    def step(self, fitness: FitnessFn, iterations: int = 1) -> None:
        """Run ``iterations`` full annealing schedules from the incumbent."""
        self._refresh_best(fitness)
        for _ in range(iterations):
            self._anneal(fitness)

    def _anneal(self, fitness: FitnessFn) -> None:
        x = self.current
        fx = float(fitness(x[None, :])[0])
        self._record_best(x[None, :], np.array([fx]))

        temperature = self.t_initial
        while temperature > self.t_stop:
            # Proposal scale shrinks as the system cools.
            scale = self.step_scale * max(temperature / self.t_initial, 0.05)
            candidate = clip_box(
                x + self.rng.normal(0.0, scale, size=self.dim)
            )
            fc = float(fitness(candidate[None, :])[0])
            accept = fc <= fx or self.rng.uniform() < math.exp(
                -(fc - fx) / temperature
            )
            if accept:
                x, fx = candidate, fc
                self._record_best(x[None, :], np.array([fx]))
            temperature *= self.cooling
        self.current = x
