"""Optimizer interface shared by PSO, GA, SA and grid search.

All optimizers minimise a **vectorised** fitness function over the unit box
``[0, 1]^dim``: ``fitness(X)`` receives an ``(n, dim)`` array of positions
and returns ``(n,)`` scores (lower is better). The KDM decodes positions
into (keep-alive location, keep-alive period) pairs, so the optimizers stay
generic and individually testable on analytic functions.

Optimizers are *persistent*: EcoLife assigns one optimizer per serverless
function and keeps refining it across invocations (paper Sec. IV-C), so the
interface is ``step()`` (advance a few iterations against the current
fitness) rather than ``solve()``.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

#: Vectorised objective: (n, dim) positions -> (n,) scores, lower is better.
FitnessFn = Callable[[np.ndarray], np.ndarray]


class ContinuousOptimizer(abc.ABC):
    """A persistent minimiser over the unit box."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        self.dim = dim
        self.rng = rng
        self._best_position: np.ndarray | None = None
        self._best_fitness: float = np.inf

    # -- protocol -----------------------------------------------------------

    @abc.abstractmethod
    def step(self, fitness: FitnessFn, iterations: int = 1) -> None:
        """Advance the search against the *current* fitness landscape."""

    @property
    def best_position(self) -> np.ndarray:
        """Best position found so far (raises if never stepped)."""
        if self._best_position is None:
            raise RuntimeError("optimizer has not been stepped yet")
        return self._best_position

    @property
    def best_fitness(self) -> float:
        return self._best_fitness

    # -- shared helpers -------------------------------------------------------

    def _record_best(self, positions: np.ndarray, scores: np.ndarray) -> None:
        """Track the incumbent optimum over a batch of evaluations."""
        i = int(np.argmin(scores))
        if scores[i] < self._best_fitness:
            self._best_fitness = float(scores[i])
            self._best_position = positions[i].copy()

    def _refresh_best(self, fitness: FitnessFn) -> None:
        """Re-score the incumbent under a (possibly changed) landscape.

        Serverless fitness drifts between invocations (carbon intensity,
        arrival statistics); without refreshing, a stale incumbent with an
        obsolete low score could never be displaced.
        """
        if self._best_position is not None:
            self._best_fitness = float(
                fitness(self._best_position[None, :])[0]
            )

    def _uniform(self, n: int) -> np.ndarray:
        return self.rng.uniform(0.0, 1.0, size=(n, self.dim))


def clip_box(x: np.ndarray) -> np.ndarray:
    """Clip positions into the unit box (in place) and return them."""
    return np.clip(x, 0.0, 1.0, out=x)
