"""Counter-based batched uniform draws (vectorised Philox4x32-10).

The :class:`~repro.optimizers.batch.SwarmFleet` fused step needs ``r1``/
``r2`` for *every* active swarm. Sequential ``np.random.Generator``
streams force a per-swarm Python loop there -- each stream's state is a
mutable object that must be advanced one swarm at a time. A
counter-based RNG removes the loop: every draw is a *pure function* of
``(key, step, block, element)``, so the draws for any batch of swarms
come out of one broadcast kernel, and the value a swarm sees never
depends on which other swarms happen to be stepped alongside it.

This module implements the Philox4x32-10 block cipher of Salmon et al.,
"Parallel random numbers: as easy as 1, 2, 3" (SC'11) -- the same
construction behind ``numpy.random.Philox`` -- directly in vectorised
numpy ``uint32``/``uint64`` ops (numpy's ``Philox`` bit generator cannot
batch over distinct keys in one call). 32-bit lanes are used because
their 32x32 -> 64 bit ``mulhilo`` is exact in ``uint64`` arithmetic.

Counter/key layout per generated double::

    key     = (key_lo32, key_hi32)          -- per-swarm, drawn once at add_swarm
    counter = (step_lo32, step_hi32, pair_index, block)

One Philox block yields four 32-bit words, i.e. two 53-bit-mantissa
doubles, so ``pair_index`` advances once per *pair* of output elements.
``step`` is the swarm's private draw-event counter (one event per PSO
iteration or redistribution) and ``block`` namespaces the draw kinds
within an event.

Determinism contract: :func:`uniforms` is elementwise over the broadcast
of ``key``/``step`` against the element axis, so the same
``(key, step, block, j)`` tuple yields the same double regardless of
batch shape, numpy version of the *caller's* arithmetic, or platform --
everything is integer ops plus one exact float conversion.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

# Philox4x32 multipliers and Weyl key-schedule constants (Random123).
_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)
_W1 = np.uint32(0xBB67AE85)
_LO32 = np.uint64(0xFFFFFFFF)
#: 2**-53: folds 53 random bits into a double in [0, 1).
_INV53 = 1.0 / 9007199254740992.0

PHILOX_ROUNDS = 10


def philox4x32(
    c0: npt.ArrayLike,
    c1: npt.ArrayLike,
    c2: npt.ArrayLike,
    c3: npt.ArrayLike,
    k0: npt.ArrayLike,
    k1: npt.ArrayLike,
    rounds: int = PHILOX_ROUNDS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One Philox4x32 block per broadcast element.

    All six inputs are ``uint32`` arrays (or scalars) broadcast together;
    returns the four ``uint32`` output words with the broadcast shape.
    Verified against the Random123 known-answer vectors in
    ``tests/test_rng_counter.py``.
    """
    c0 = np.asarray(c0, dtype=np.uint32)
    c1 = np.asarray(c1, dtype=np.uint32)
    c2 = np.asarray(c2, dtype=np.uint32)
    c3 = np.asarray(c3, dtype=np.uint32)
    k0 = np.asarray(k0, dtype=np.uint32)
    k1 = np.asarray(k1, dtype=np.uint32)
    # uint32 wrap-around is the Weyl key schedule; numpy warns on scalar
    # (0-d) overflow even though the wrapped value is exactly what the
    # cipher specifies.
    with np.errstate(over="ignore"):
        for _ in range(rounds):
            p0 = c0.astype(np.uint64) * _M0
            p1 = c2.astype(np.uint64) * _M1
            hi0 = (p0 >> np.uint64(32)).astype(np.uint32)
            lo0 = (p0 & _LO32).astype(np.uint32)
            hi1 = (p1 >> np.uint64(32)).astype(np.uint32)
            lo1 = (p1 & _LO32).astype(np.uint32)
            c0 = hi1 ^ c1 ^ k0
            c1 = lo1
            c2 = hi0 ^ c3 ^ k1
            c3 = lo0
            k0 = k0 + _W0
            k1 = k1 + _W1
    return c0, c1, c2, c3


def _to_double(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two 32-bit words -> one double in [0, 1) (53-bit mantissa)."""
    hi = (a >> np.uint32(5)).astype(np.float64)  # 27 bits
    lo = (b >> np.uint32(6)).astype(np.float64)  # 26 bits
    return (hi * 67108864.0 + lo) * _INV53


def uniforms(
    key: npt.ArrayLike, step: npt.ArrayLike, block: int, count: int
) -> np.ndarray:
    """``count`` uniform doubles per ``(key, step)`` pair.

    ``key`` and ``step`` are ``uint64`` arrays (or scalars) of identical
    shape ``S``; the result has shape ``S + (count,)``. Element ``j`` is
    a pure function of ``(key, step, block, j)`` -- batch composition
    never changes a value, which is the property the fleet's
    ``rng_mode="counter"`` equivalence contract rests on.
    """
    key = np.asarray(key, dtype=np.uint64)
    step = np.asarray(step, dtype=np.uint64)
    pairs = (count + 1) // 2
    j = np.arange(pairs, dtype=np.uint32)
    k0 = (key & _LO32).astype(np.uint32)[..., None]
    k1 = (key >> np.uint64(32)).astype(np.uint32)[..., None]
    c0 = (step & _LO32).astype(np.uint32)[..., None]
    c1 = (step >> np.uint64(32)).astype(np.uint32)[..., None]
    o0, o1, o2, o3 = philox4x32(
        np.broadcast_to(c0, c0.shape[:-1] + (pairs,)),
        np.broadcast_to(c1, c1.shape[:-1] + (pairs,)),
        j,
        np.uint32(block),
        k0,
        k1,
    )
    out = np.empty(key.shape + (2 * pairs,), dtype=np.float64)
    out[..., 0::2] = _to_double(o0, o1)
    out[..., 1::2] = _to_double(o2, o3)
    return out[..., :count]
