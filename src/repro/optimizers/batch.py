"""Batched multi-function swarm engine.

EcoLife's KDM runs one 15-particle DPSO per serverless function per
invocation (paper Sec. IV-C). At trace scale that is thousands of tiny
numpy calls per simulated second -- each individually too small to
amortise numpy's per-call overhead. :class:`SwarmFleet` holds *every*
function's swarm in stacked ``(n_swarms, n_particles, dim)`` arrays and
steps any subset of them through a handful of fused kernels.

**Equivalence contract** (enforced by ``tests/test_optimizers_batch.py``):
a fleet seeded with per-swarm RNG streams is *bit-identical* to the same
number of independent :class:`~repro.optimizers.pso.ParticleSwarm` /
:class:`~repro.optimizers.dynamic_pso.DynamicPSO` instances seeded with
the same streams -- positions, velocities, personal/global bests, and
perception-response redistributions all match to the last ULP. Three
rules make that hold:

1. **Per-swarm RNG streams.** Each swarm keeps its own
   ``np.random.Generator`` and draws exactly the shapes the sequential
   implementation draws, in the same within-stream order (init positions,
   init velocities, redistribution choices, then ``r1``/``r2`` per
   iteration). Streams are independent, so the interleaving *across*
   swarms is free while the draws *within* each stream stay aligned.
2. **Identical expression shapes.** Every fused kernel computes the
   sequential expression with the same associativity (for example
   ``(c1 * r1) * (pbest - x)``), with per-swarm scalars broadcast along
   the particle axis -- elementwise float64 arithmetic is then IEEE-
   identical regardless of batch shape.
3. **Per-swarm reductions.** ``argmin``/``max`` run along the particle
   axis only, preserving the sequential tie-breaking (first index wins).

The fitness callable is *batched*: it receives ``(n_active, rows, dim)``
positions for the active subset and returns ``(n_active, rows)`` scores
(see :meth:`repro.core.objective.ObjectiveBuilder.batch_fitness`).

Under function churn the set of ever-seen functions is unbounded, so the
fleet also supports **slot retirement**: :meth:`SwarmFleet.retire`
snapshots a swarm (rows + RNG bit-generator state) into a
:class:`SwarmArchive` and frees its slot for reuse,
:meth:`SwarmFleet.rehydrate` restores it bit-identically, and
:meth:`SwarmFleet.compact` swap-with-last-packs live slots and shrinks
the backing arrays when occupancy drops below a watermark. The
equivalence contract extends across retire/rehydrate round trips.

**RNG modes.** ``rng_mode="stream"`` (the default) is the contract
above: per-swarm ``np.random.Generator`` streams, bit-identical to the
sequential optimizers -- at the cost of one Python-level ``uniform``
call per swarm per iteration inside the fused step.
``rng_mode="counter"`` replaces those per-swarm draws with a
counter-based batched RNG (:mod:`repro.optimizers.counter_rng`,
vectorised Philox4x32-10): every ``r1``/``r2``/redistribution value is a
pure function of the swarm's private ``(key, step)`` counters, so the
draws for the whole batch come out of one broadcast kernel. Counter mode
is a *different, opt-in equivalence contract*: it is NOT bit-identical
to the stream mode or the sequential optimizers, but it is
**self-consistent** -- a swarm's trajectory depends only on its own
``(key, step)`` history, never on batch composition (``step`` vs
``step_one`` vs any subset grouping) nor on slot placement, and the
counters ride along in :class:`SwarmArchive`, so retire/rehydrate/
compact remain exact identities (``tests/test_rng_counter.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.optimizers import counter_rng
from repro.optimizers.base import clip_box
from repro.optimizers.dynamic_pso import DPSOParams

#: Draw-kind namespaces within one counter step (``rng_mode="counter"``).
#: An iteration consumes one step drawing from block 0; a redistribution
#: consumes one step drawing from block 1.
_BLOCK_ITERATE = 0
_BLOCK_REDISTRIBUTE = 1

#: Batched objective: (n_active, rows, dim) positions -> (n_active, rows)
#: scores, lower is better. Row order follows the ``indices`` passed to
#: :meth:`SwarmFleet.step`.
BatchFitnessFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SwarmArchive:
    """Compact snapshot of one retired swarm (:meth:`SwarmFleet.retire`).

    Holds copies of the swarm's stacked rows plus the serialised state of
    its ``np.random.Generator`` bit generator, which is what lets
    :meth:`SwarmFleet.rehydrate` resume the swarm's private random stream
    *bit-identically* -- a retired-then-returning function continues
    exactly where a never-retired one would be. Archives are plain data
    (arrays + scalars + one state dict), so they are picklable and cheap
    to hold for millions of dormant functions.
    """

    positions: np.ndarray  # (n_particles, dim)
    velocities: np.ndarray  # (n_particles, dim)
    pbest_positions: np.ndarray  # (n_particles, dim)
    pbest_scores: np.ndarray  # (n_particles,)
    omega: float
    c1: float
    c2: float
    best_position: np.ndarray  # (dim,)
    best_score: float
    has_best: bool
    df_max: float
    dci_max: float
    last_perception: float
    #: ``rng.bit_generator.state`` -- includes the bit-generator class name.
    bit_generator_state: dict
    #: Counter-RNG state (``rng_mode="counter"``): the swarm's private
    #: Philox key and its draw-event counter. Zero under stream mode.
    ctr_key: int = 0
    ctr_step: int = 0


class SwarmFleet:
    """A fleet of persistent particle swarms stepped in fused kernels.

    One fleet serves one scheduler configuration: every member swarm
    shares ``n_particles``, ``vmax``, the re-scoring mode, and (for the
    dynamic variant) the :class:`DPSOParams` ranges, while positions,
    velocities, bests, weights, perception maxima, and RNG streams are
    per-swarm. Swarms are addressed by the integer slot returned from
    :meth:`add_swarm`.

    ``params=None`` gives the vanilla-PSO fleet (fixed weights, cached
    best scores, no perception-response), mirroring
    ``ParticleSwarm(rescore_bests=False)``; passing :class:`DPSOParams`
    gives the DPSO fleet (re-scored bests, :meth:`perceive`).

    ``rng_mode`` selects the per-iteration draw source: ``"stream"``
    (per-swarm ``Generator`` streams, bit-identical to the sequential
    optimizers) or ``"counter"`` (batched Philox draws keyed by the
    swarm's private ``(key, step)`` counters -- see the module
    docstring's equivalence notes). Initial positions/velocities always
    come from the ``add_swarm`` stream so a swarm's starting point is
    mode-independent.
    """

    RNG_MODES = ("stream", "counter")

    # Stacked per-swarm arrays, allocated by :meth:`_alloc` from
    # ``_STACKED_STATE`` (declared here so the attributes type-check;
    # they do not exist until ``__init__`` runs ``_alloc``).
    positions: np.ndarray
    velocities: np.ndarray
    pbest_positions: np.ndarray
    pbest_scores: np.ndarray
    omega: np.ndarray
    c1: np.ndarray
    c2: np.ndarray
    best_positions: np.ndarray
    best_scores: np.ndarray
    _has_best: np.ndarray
    _df_max: np.ndarray
    _dci_max: np.ndarray
    last_perception: np.ndarray
    _live: np.ndarray
    _ctr_key: np.ndarray
    _ctr_step: np.ndarray

    def __init__(
        self,
        dim: int,
        n_particles: int = 15,
        vmax: float = 0.35,
        params: DPSOParams | None = None,
        omega: float = 0.7,
        c1: float = 1.4,
        c2: float = 1.4,
        rng_mode: str = "stream",
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        if n_particles < 2:
            raise ValueError("need at least 2 particles")
        if not 0.0 < vmax <= 1.0:
            raise ValueError("vmax must be in (0, 1]")
        if rng_mode not in self.RNG_MODES:
            raise ValueError(
                f"rng_mode must be one of {self.RNG_MODES}, got {rng_mode!r}"
            )
        self.dim = dim
        self.rng_mode = rng_mode
        self.n_particles = n_particles
        self.vmax = vmax
        self.params = params
        self.dynamic = params is not None
        self.rescore_bests = self.dynamic
        # Initial weights: DPSO starts at the exploratory end of its
        # ranges (DynamicPSO.__init__); vanilla uses the given constants.
        if self.dynamic:
            self._omega0 = params.omega_max
            self._c0 = params.c_max
        else:
            self._omega0 = omega
            self._c0 = c1
            self._c20 = c2
        #: Per-slot RNG streams; ``None`` marks a retired (free) slot.
        self._rngs: list[np.random.Generator | None] = []
        self._m = 0  # allocation tail: slots [0, _m) have ever been used
        self._free: list[int] = []  # retired slots available for reuse (LIFO)
        self._alloc(4)

    # -- storage --------------------------------------------------------------

    #: Every stacked per-swarm array: attribute -> allocator over
    #: ``(capacity, n_particles, dim)``. Single source of truth walked by
    #: both :meth:`_alloc` and :meth:`_move_slot`, so a new per-swarm
    #: field cannot be allocated yet silently skipped by compaction moves
    #: (which would corrupt it only on churned runs). The retire/
    #: rehydrate mirrors live next to :class:`SwarmArchive`, whose typed
    #: fields a new entry must extend anyway.
    _STACKED_STATE: dict[str, Callable[[int, int, int], np.ndarray]] = {
        "positions": lambda c, n, d: np.empty((c, n, d)),
        "velocities": lambda c, n, d: np.empty((c, n, d)),
        "pbest_positions": lambda c, n, d: np.empty((c, n, d)),
        "pbest_scores": lambda c, n, d: np.empty((c, n)),
        "omega": lambda c, n, d: np.empty(c),
        "c1": lambda c, n, d: np.empty(c),
        "c2": lambda c, n, d: np.empty(c),
        "best_positions": lambda c, n, d: np.zeros((c, d)),
        "best_scores": lambda c, n, d: np.empty(c),
        "_has_best": lambda c, n, d: np.zeros(c, dtype=bool),
        "_df_max": lambda c, n, d: np.zeros(c),
        "_dci_max": lambda c, n, d: np.zeros(c),
        "last_perception": lambda c, n, d: np.zeros(c),
        "_live": lambda c, n, d: np.zeros(c, dtype=bool),
        # Counter-RNG state (zeros under stream mode; cheap to carry).
        "_ctr_key": lambda c, n, d: np.zeros(c, dtype=np.uint64),
        "_ctr_step": lambda c, n, d: np.zeros(c, dtype=np.uint64),
    }

    #: Archive plan: stacked array -> the :class:`SwarmArchive` field
    #: that round-trips it through retire()/rehydrate(), or ``None`` for
    #: bookkeeping-only state that is *deliberately* not checkpointed.
    #: ecolint's ECO005 contract check cross-validates this map against
    #: ``_STACKED_STATE``, the SwarmArchive dataclass, and both method
    #: bodies -- adding a stacked array without extending the plan (and
    #: the snapshot/restore paths) is a lint error, not a latent
    #: rehydration bug.
    _ARCHIVE_PLAN: dict[str, str | None] = {
        "positions": "positions",
        "velocities": "velocities",
        "pbest_positions": "pbest_positions",
        "pbest_scores": "pbest_scores",
        "omega": "omega",
        "c1": "c1",
        "c2": "c2",
        "best_positions": "best_position",
        "best_scores": "best_score",
        "_has_best": "has_best",
        "_df_max": "df_max",
        "_dci_max": "dci_max",
        "last_perception": "last_perception",
        # Slot occupancy: reconstructed by rehydrate(), not swarm state.
        "_live": None,
        "_ctr_key": "ctr_key",
        "_ctr_step": "ctr_step",
    }

    def _alloc(self, capacity: int) -> None:
        """(Re)allocate stacked state for ``capacity`` swarms."""
        n, d = self.n_particles, self.dim
        for name, make in self._STACKED_STATE.items():
            new = make(capacity, n, d)
            old = getattr(self, name, None)
            if old is not None:
                new[: self._m] = old[: self._m]
            setattr(self, name, new)
        self._capacity = capacity

    def __len__(self) -> int:
        return self.n_swarms

    @property
    def n_swarms(self) -> int:
        """Number of *live* swarms (retired slots excluded)."""
        return self._m - len(self._free)

    @property
    def capacity(self) -> int:
        """Allocated slot capacity of the stacked arrays."""
        return self._capacity

    def is_live(self, index: int) -> bool:
        return 0 <= index < self._m and bool(self._live[index])

    def live_indices(self) -> np.ndarray:
        """Slot indices of all live swarms, ascending."""
        return np.flatnonzero(self._live[: self._m])

    def rng_of(self, index: int) -> np.random.Generator:
        self._require_live(index)
        return self._rngs[index]

    def _require_live(self, index: int) -> None:
        if not self.is_live(index):
            raise IndexError(f"swarm slot {index} is not live")

    # -- lifecycle ------------------------------------------------------------

    def _take_slot(self) -> int:
        """Claim a slot: reuse the free list, else extend the tail."""
        if self._free:
            return self._free.pop()
        if self._m == self._capacity:
            self._alloc(self._capacity * 2)
        self._rngs.append(None)
        i = self._m
        self._m += 1
        return i

    def add_swarm(self, rng: np.random.Generator) -> int:
        """Register a new swarm drawing its initial state from ``rng``.

        Draw order matches ``ParticleSwarm.__init__`` exactly: uniform
        positions over the unit box, then uniform velocities in
        ``[-vmax, vmax]``. Retired slots are reused before the arrays
        grow.
        """
        i = self._take_slot()
        self._rngs[i] = rng
        n, d = self.n_particles, self.dim
        self.positions[i] = rng.uniform(0.0, 1.0, size=(n, d))
        self.velocities[i] = rng.uniform(-self.vmax, self.vmax, size=(n, d))
        if self.rng_mode == "counter":
            # The swarm's private Philox key comes from the same stable
            # per-function stream, so it is process- and run-independent.
            self._ctr_key[i] = rng.integers(0, 2**64, dtype=np.uint64)
        else:
            self._ctr_key[i] = 0
        self._ctr_step[i] = 0
        self.pbest_positions[i] = self.positions[i]
        self.pbest_scores[i] = np.inf
        self.omega[i] = self._omega0
        self.c1[i] = self._c0
        self.c2[i] = self._c0 if self.dynamic else self._c20
        self.best_scores[i] = np.inf
        self._has_best[i] = False
        self._df_max[i] = 0.0
        self._dci_max[i] = 0.0
        self.last_perception[i] = 0.0
        self._live[i] = True
        return i

    # -- retirement / compaction ----------------------------------------------

    def retire(self, index: int) -> SwarmArchive:
        """Snapshot one swarm into a :class:`SwarmArchive` and free its slot.

        The archive captures the swarm's stacked rows *and* its RNG
        bit-generator state, so a later :meth:`rehydrate` resumes the
        swarm bit-identically. The freed slot goes on the free list and
        is reused by the next :meth:`add_swarm`/:meth:`rehydrate`;
        :meth:`compact` reclaims the backing memory when occupancy drops.
        """
        self._require_live(index)
        rng = self._rngs[index]
        archive = SwarmArchive(
            positions=self.positions[index].copy(),
            velocities=self.velocities[index].copy(),
            pbest_positions=self.pbest_positions[index].copy(),
            pbest_scores=self.pbest_scores[index].copy(),
            omega=float(self.omega[index]),
            c1=float(self.c1[index]),
            c2=float(self.c2[index]),
            best_position=self.best_positions[index].copy(),
            best_score=float(self.best_scores[index]),
            has_best=bool(self._has_best[index]),
            df_max=float(self._df_max[index]),
            dci_max=float(self._dci_max[index]),
            last_perception=float(self.last_perception[index]),
            bit_generator_state=rng.bit_generator.state,
            ctr_key=int(self._ctr_key[index]),
            ctr_step=int(self._ctr_step[index]),
        )
        self._rngs[index] = None
        self._live[index] = False
        self._free.append(index)
        return archive

    def rehydrate(self, archive: SwarmArchive) -> int:
        """Restore a retired swarm into a (possibly different) slot.

        Reconstructs the RNG from the archived bit-generator state, so
        the swarm's stream continues exactly where :meth:`retire` froze
        it -- the equivalence contract extends across a
        retire/rehydrate round trip. Returns the new slot index.
        """
        n, d = self.n_particles, self.dim
        if archive.positions.shape != (n, d):
            raise ValueError(
                f"archive shape {archive.positions.shape} does not match "
                f"fleet particles {(n, d)}"
            )
        state = archive.bit_generator_state
        bit_gen = getattr(np.random, state["bit_generator"])()
        bit_gen.state = state
        i = self._take_slot()
        self._rngs[i] = np.random.Generator(bit_gen)
        self.positions[i] = archive.positions
        self.velocities[i] = archive.velocities
        self.pbest_positions[i] = archive.pbest_positions
        self.pbest_scores[i] = archive.pbest_scores
        self.omega[i] = archive.omega
        self.c1[i] = archive.c1
        self.c2[i] = archive.c2
        self.best_positions[i] = archive.best_position
        self.best_scores[i] = archive.best_score
        self._has_best[i] = archive.has_best
        self._df_max[i] = archive.df_max
        self._dci_max[i] = archive.dci_max
        self.last_perception[i] = archive.last_perception
        self._ctr_key[i] = archive.ctr_key
        self._ctr_step[i] = archive.ctr_step
        self._live[i] = True
        return i

    def _move_slot(self, src: int, dst: int) -> None:
        for name in self._STACKED_STATE:
            arr = getattr(self, name)
            arr[dst] = arr[src]
        self._rngs[dst] = self._rngs[src]
        self._rngs[src] = None
        self._live[dst] = True
        self._live[src] = False

    def compact(
        self, shrink_watermark: float = 0.25, min_capacity: int = 4
    ) -> dict[int, int]:
        """Densify live slots into ``[0, n_swarms)`` and shrink capacity.

        Swap-with-last compaction: live swarms above the dense bound move
        into free holes below it, then the backing arrays shrink (halving)
        while occupancy stays at or below ``shrink_watermark``. Returns
        ``{old_slot: new_slot}`` for every moved swarm -- callers holding
        slot indices MUST apply the remap. Slot moves never touch swarm
        state or RNG streams, so compaction is invisible to the
        equivalence contract.
        """
        remap: dict[int, int] = {}
        if self._free:
            live = self._m - len(self._free)
            holes = sorted(h for h in self._free if h < live)
            tail = [i for i in range(live, self._m) if self._live[i]]
            for hole, src in zip(holes, tail):
                self._move_slot(src, hole)
                remap[src] = hole
            self._m = live
            del self._rngs[live:]
            self._free.clear()
        new_cap = self._capacity
        while new_cap > min_capacity and self._m <= int(new_cap * shrink_watermark):
            new_cap //= 2
        new_cap = max(new_cap, min_capacity, self._m)
        if new_cap < self._capacity:
            self._alloc(new_cap)
        return remap

    # -- perception-response (DPSO) -------------------------------------------

    def perceive(self, index: int, delta_f: float, delta_ci: float) -> bool:
        """Per-swarm DPSO perception; mirrors ``DynamicPSO.perceive``.

        Scalar bookkeeping stays in Python floats so the weight values
        (and any redistribution RNG draws) are bit-identical to the
        sequential implementation.
        """
        if not self.dynamic:
            raise RuntimeError("perceive() requires a DPSOParams-configured fleet")
        self._require_live(index)
        p = self.params
        df = abs(float(delta_f))
        dci = abs(float(delta_ci))
        df_max = max(float(self._df_max[index]), df)
        dci_max = max(float(self._dci_max[index]), dci)
        self._df_max[index] = df_max
        self._dci_max[index] = dci_max

        nf = df / df_max if df_max > 0.0 else 0.0
        nci = dci / dci_max if dci_max > 0.0 else 0.0
        change = nf + nci
        self.last_perception[index] = change

        self.omega[index] = float(
            np.clip(p.omega_max * change, p.omega_min, p.omega_max)
        )
        c = float(np.clip(p.c_max * (1.0 - change), p.c_min, p.c_max))
        self.c1[index] = c
        self.c2[index] = c

        if change > p.perception_threshold:
            self.redistribute(index, p.redistribute_fraction)
            return True
        return False

    def perceive_batch(
        self,
        indices: Sequence[int] | np.ndarray,
        delta_f: Sequence[float] | np.ndarray,
        delta_ci: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Vectorised DPSO perception for a batch of swarms.

        Per element this computes exactly what :meth:`perceive` computes
        -- the weight updates are elementwise float64, so the values are
        bit-identical to the scalar path regardless of batch shape.
        Redistribution of the triggered swarms is fused into one
        counter-RNG call under ``rng_mode="counter"``; under stream mode
        it loops per swarm, because each swarm's private stream must
        advance in its own draw order. Returns the boolean fired mask
        (aligned with ``indices``).
        """
        if not self.dynamic:
            raise RuntimeError(
                "perceive_batch() requires a DPSOParams-configured fleet"
            )
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        if len(np.unique(idx)) != idx.size:
            raise ValueError("perceive_batch() indices must be distinct")
        if not self._live[idx].all():
            raise IndexError("perceive_batch() indices must address live slots")
        p = self.params
        df = np.abs(np.asarray(delta_f, dtype=float))
        dci = np.abs(np.asarray(delta_ci, dtype=float))
        df_max = np.maximum(self._df_max[idx], df)
        dci_max = np.maximum(self._dci_max[idx], dci)
        self._df_max[idx] = df_max
        self._dci_max[idx] = dci_max

        # 0/0 rows are discarded by the where(); silence the transient.
        with np.errstate(invalid="ignore", divide="ignore"):
            nf = np.where(df_max > 0.0, df / df_max, 0.0)
            nci = np.where(dci_max > 0.0, dci / dci_max, 0.0)
        change = nf + nci
        self.last_perception[idx] = change

        self.omega[idx] = np.clip(p.omega_max * change, p.omega_min, p.omega_max)
        c = np.clip(p.c_max * (1.0 - change), p.c_min, p.c_max)
        self.c1[idx] = c
        self.c2[idx] = c

        fired = change > p.perception_threshold
        if fired.any():
            self._redistribute_many(idx[fired], p.redistribute_fraction)
        return fired

    def _redistribute_many(self, sub: np.ndarray, fraction: float) -> None:
        """Redistribute several swarms; one fused draw in counter mode."""
        n, d = self.n_particles, self.dim
        k = int(round(fraction * n))
        if k == 0:
            return
        if self.rng_mode != "counter":
            for i in sub:
                self.redistribute(int(i), fraction)
            return
        u = counter_rng.uniforms(
            self._ctr_key[sub], self._ctr_step[sub], _BLOCK_REDISTRIBUTE,
            n + 2 * k * d,
        )
        self._ctr_step[sub] += 1
        sel = np.argsort(u[:, :n], axis=1, kind="stable")[:, :k]
        rows = sub[:, None]
        pos = u[:, n : n + k * d].reshape(-1, k, d)
        self.positions[rows, sel] = pos
        self.velocities[rows, sel] = (
            2.0 * u[:, n + k * d :].reshape(-1, k, d) - 1.0
        ) * self.vmax
        self.pbest_positions[rows, sel] = pos
        self.pbest_scores[rows, sel] = np.inf

    def redistribute(self, index: int, fraction: float = 0.5) -> None:
        """Re-place a fraction of one swarm; mirrors
        ``ParticleSwarm.redistribute`` (same RNG draw order, including the
        early return that skips all draws when the fraction rounds to 0).

        Under ``rng_mode="counter"`` the selection and replacement values
        come from one counter-RNG block instead (selection = stable
        argsort of ``n`` uniforms, first ``k`` win), consuming exactly
        one draw-event step -- so a redistribution is reproducible from
        ``(key, step)`` alone, independent of slot or batch history.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self._require_live(index)
        n, d = self.n_particles, self.dim
        k = int(round(fraction * n))
        if k == 0:
            return
        if self.rng_mode == "counter":
            u = counter_rng.uniforms(
                self._ctr_key[index],
                self._ctr_step[index],
                _BLOCK_REDISTRIBUTE,
                n + 2 * k * d,
            )
            self._ctr_step[index] += 1
            idx = np.argsort(u[:n], kind="stable")[:k]
            self.positions[index, idx] = u[n : n + k * d].reshape(k, d)
            self.velocities[index, idx] = (
                2.0 * u[n + k * d :].reshape(k, d) - 1.0
            ) * self.vmax
        else:
            rng = self._rngs[index]
            idx = rng.choice(n, size=k, replace=False)
            self.positions[index, idx] = rng.uniform(0.0, 1.0, size=(k, d))
            self.velocities[index, idx] = rng.uniform(
                -self.vmax, self.vmax, size=(k, d)
            )
        self.pbest_positions[index, idx] = self.positions[index, idx]
        self.pbest_scores[index, idx] = np.inf

    # -- search ---------------------------------------------------------------

    def step(
        self,
        indices: Sequence[int] | np.ndarray,
        fitness: BatchFitnessFn,
        iterations: int = 1,
    ) -> None:
        """Advance the swarms at ``indices`` against a batched fitness.

        ``fitness`` rows must align with ``indices`` (row ``j`` scores
        swarm ``indices[j]``'s particles). Indices must be distinct --
        stepping the same swarm twice in one call would race on the
        scattered writes.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return
        if len(np.unique(idx)) != idx.size:
            raise ValueError("step() indices must be distinct")
        if not self._live[idx].all():
            raise IndexError("step() indices must address live slots")
        if self.rescore_bests:
            self._refresh_bests(idx, fitness)
        for _ in range(iterations):
            self._iterate(idx, fitness)

    def _refresh_bests(self, idx: np.ndarray, fitness: BatchFitnessFn) -> None:
        """Re-score incumbents under the current landscape.

        Mirrors ``ContinuousOptimizer._refresh_best``. Swarms that have
        never been stepped hold a zero placeholder position; their row is
        evaluated (the kernel is rectangular) but the result is discarded.
        """
        has = self._has_best[idx]
        if not has.any():
            return
        scores = fitness(self.best_positions[idx][:, None, :])
        self._check_scores(scores, idx.size, 1)
        with_best = idx[has]
        self.best_scores[with_best] = scores[has, 0]

    def _iterate(self, idx: np.ndarray, fitness: BatchFitnessFn) -> None:
        s, n = idx.size, self.n_particles
        pos = self.positions[idx]  # (s, n, d) gathered copies
        pb_pos = self.pbest_positions[idx]

        if self.rescore_bests:
            # Current positions and stale personal bests in one call.
            batch = np.concatenate([pos, pb_pos], axis=1)
            scores = fitness(batch)
            self._check_scores(scores, s, 2 * n)
            cur, pb = scores[:, :n], scores[:, n:]
        else:
            cur = fitness(pos)
            self._check_scores(cur, s, n)
            pb = self.pbest_scores[idx]

        improved = cur <= pb
        pb_pos = np.where(improved[..., None], pos, pb_pos)
        pb_scores = np.where(improved, cur, pb)

        rows = np.arange(s)
        g = np.argmin(pb_scores, axis=1)  # first-index ties, as argmin()
        gbest = pb_pos[rows, g]  # (s, d)

        # _record_best: track the incumbent optimum per swarm.
        g_scores = pb_scores[rows, g]
        better = g_scores < self.best_scores[idx]
        if better.any():
            upd = idx[better]
            self.best_scores[upd] = g_scores[better]
            self.best_positions[upd] = gbest[better]
            self._has_best[upd] = True

        r1, r2 = self._draw_r1_r2(idx)

        om = self.omega[idx][:, None, None]
        c1 = self.c1[idx][:, None, None]
        c2 = self.c2[idx][:, None, None]
        vel = (
            om * self.velocities[idx]
            + c1 * r1 * (pb_pos - pos)
            + c2 * r2 * (gbest[:, None, :] - pos)
        )
        np.clip(vel, -self.vmax, self.vmax, out=vel)
        pos = clip_box(pos + vel)

        self.positions[idx] = pos
        self.velocities[idx] = vel
        self.pbest_positions[idx] = pb_pos
        self.pbest_scores[idx] = pb_scores

    def _draw_r1_r2(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One iteration's ``r1``/``r2`` for the swarms at ``idx``.

        Counter mode: one fused Philox call for the whole batch (element
        layout: the first ``n*dim`` doubles of a swarm's step are ``r1``
        in C order, the rest ``r2``), then each swarm's step counter
        advances by one. Stream mode: the sequential reference -- r1
        fully drawn before r2 per swarm, as in ``ParticleSwarm._iterate``
        (cross-stream interleaving is immaterial).
        """
        s, n, d = idx.size, self.n_particles, self.dim
        if self.rng_mode == "counter":
            u = counter_rng.uniforms(
                self._ctr_key[idx], self._ctr_step[idx], _BLOCK_ITERATE,
                2 * n * d,
            )
            self._ctr_step[idx] += 1
            return u[:, : n * d].reshape(s, n, d), u[:, n * d :].reshape(s, n, d)
        r1 = np.empty((s, n, d))
        r2 = np.empty((s, n, d))
        for j, i in enumerate(idx):
            rng = self._rngs[i]
            r1[j] = rng.uniform(size=(n, d))
            r2[j] = rng.uniform(size=(n, d))
        return r1, r2

    # -- single-swarm fast path ------------------------------------------------

    def step_one(
        self,
        index: int,
        fitness: Callable[[np.ndarray], np.ndarray],
        iterations: int = 1,
    ) -> None:
        """Advance one swarm against a plain ``(rows, dim) -> (rows,)``
        fitness, operating on views into the stacked arrays.

        This is the degenerate-batch escape hatch: a batch of one pays
        the fused kernels' gather/scatter overhead for nothing, so
        callers with a single active swarm (for example the KDM when an
        invocation arrives alone at its tick) step it through this exact
        mirror of ``ParticleSwarm.step`` instead. State and RNG stream
        are shared with the batched path, so the two can interleave
        freely and stay bit-identical to a sequential optimizer.
        """
        self._require_live(index)
        if self.rescore_bests and self._has_best[index]:
            self.best_scores[index] = float(
                fitness(self.best_positions[index][None, :])[0]
            )
        n = self.n_particles
        rng = self._rngs[index]
        for _ in range(iterations):
            pos = self.positions[index]  # (n, d) views
            pb_pos = self.pbest_positions[index]
            pb_scores = self.pbest_scores[index]

            if self.rescore_bests:
                batch = np.concatenate([pos, pb_pos], axis=0)
                scores = np.asarray(fitness(batch), dtype=float)
                if scores.shape != (2 * n,):
                    raise ValueError(
                        f"fitness returned shape {scores.shape}, "
                        f"expected {(2 * n,)}"
                    )
                cur, pb = scores[:n], scores[n:]
            else:
                cur = np.asarray(fitness(pos), dtype=float)
                if cur.shape != (n,):
                    raise ValueError(
                        f"fitness returned shape {cur.shape}, expected {(n,)}"
                    )
                pb = pb_scores.copy()

            improved = cur <= pb
            pb_pos[improved] = pos[improved]
            pb_scores[:] = np.where(improved, cur, pb)

            g = int(np.argmin(pb_scores))
            gbest = pb_pos[g]
            if pb_scores[g] < self.best_scores[index]:
                self.best_scores[index] = pb_scores[g]
                self.best_positions[index] = gbest
                self._has_best[index] = True

            if self.rng_mode == "counter":
                u = counter_rng.uniforms(
                    self._ctr_key[index], self._ctr_step[index],
                    _BLOCK_ITERATE, 2 * n * self.dim,
                )
                self._ctr_step[index] += 1
                r1 = u[: n * self.dim].reshape(n, self.dim)
                r2 = u[n * self.dim :].reshape(n, self.dim)
            else:
                r1 = rng.uniform(size=(n, self.dim))
                r2 = rng.uniform(size=(n, self.dim))
            vel = (
                self.omega[index] * self.velocities[index]
                + self.c1[index] * r1 * (pb_pos - pos)
                + self.c2[index] * r2 * (gbest[None, :] - pos)
            )
            np.clip(vel, -self.vmax, self.vmax, out=vel)
            self.velocities[index] = vel
            self.positions[index] = clip_box(pos + vel)

    @staticmethod
    def _check_scores(scores: np.ndarray, s: int, rows: int) -> None:
        if np.shape(scores) != (s, rows):
            raise ValueError(
                f"batch fitness returned shape {np.shape(scores)}, "
                f"expected {(s, rows)}"
            )

    # -- readout --------------------------------------------------------------

    def gbest_positions(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Current swarm-best position per requested swarm, ``(s, dim)``."""
        idx = np.asarray(indices, dtype=np.intp)
        if not self._live[idx].all():
            raise IndexError("gbest_positions() indices must address live slots")
        g = np.argmin(self.pbest_scores[idx], axis=1)
        return self.pbest_positions[idx, g]

    def gbest_position(self, index: int) -> np.ndarray:
        """Current swarm-best of one swarm (matches
        ``ParticleSwarm.gbest_position``)."""
        self._require_live(index)
        g = int(np.argmin(self.pbest_scores[index]))
        return self.pbest_positions[index, g]
