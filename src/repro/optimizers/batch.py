"""Batched multi-function swarm engine.

EcoLife's KDM runs one 15-particle DPSO per serverless function per
invocation (paper Sec. IV-C). At trace scale that is thousands of tiny
numpy calls per simulated second -- each individually too small to
amortise numpy's per-call overhead. :class:`SwarmFleet` holds *every*
function's swarm in stacked ``(n_swarms, n_particles, dim)`` arrays and
steps any subset of them through a handful of fused kernels.

**Equivalence contract** (enforced by ``tests/test_optimizers_batch.py``):
a fleet seeded with per-swarm RNG streams is *bit-identical* to the same
number of independent :class:`~repro.optimizers.pso.ParticleSwarm` /
:class:`~repro.optimizers.dynamic_pso.DynamicPSO` instances seeded with
the same streams -- positions, velocities, personal/global bests, and
perception-response redistributions all match to the last ULP. Three
rules make that hold:

1. **Per-swarm RNG streams.** Each swarm keeps its own
   ``np.random.Generator`` and draws exactly the shapes the sequential
   implementation draws, in the same within-stream order (init positions,
   init velocities, redistribution choices, then ``r1``/``r2`` per
   iteration). Streams are independent, so the interleaving *across*
   swarms is free while the draws *within* each stream stay aligned.
2. **Identical expression shapes.** Every fused kernel computes the
   sequential expression with the same associativity (for example
   ``(c1 * r1) * (pbest - x)``), with per-swarm scalars broadcast along
   the particle axis -- elementwise float64 arithmetic is then IEEE-
   identical regardless of batch shape.
3. **Per-swarm reductions.** ``argmin``/``max`` run along the particle
   axis only, preserving the sequential tie-breaking (first index wins).

The fitness callable is *batched*: it receives ``(n_active, rows, dim)``
positions for the active subset and returns ``(n_active, rows)`` scores
(see :meth:`repro.core.objective.ObjectiveBuilder.batch_fitness`).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.optimizers.base import clip_box
from repro.optimizers.dynamic_pso import DPSOParams

#: Batched objective: (n_active, rows, dim) positions -> (n_active, rows)
#: scores, lower is better. Row order follows the ``indices`` passed to
#: :meth:`SwarmFleet.step`.
BatchFitnessFn = Callable[[np.ndarray], np.ndarray]


class SwarmFleet:
    """A fleet of persistent particle swarms stepped in fused kernels.

    One fleet serves one scheduler configuration: every member swarm
    shares ``n_particles``, ``vmax``, the re-scoring mode, and (for the
    dynamic variant) the :class:`DPSOParams` ranges, while positions,
    velocities, bests, weights, perception maxima, and RNG streams are
    per-swarm. Swarms are addressed by the integer slot returned from
    :meth:`add_swarm`.

    ``params=None`` gives the vanilla-PSO fleet (fixed weights, cached
    best scores, no perception-response), mirroring
    ``ParticleSwarm(rescore_bests=False)``; passing :class:`DPSOParams`
    gives the DPSO fleet (re-scored bests, :meth:`perceive`).
    """

    def __init__(
        self,
        dim: int,
        n_particles: int = 15,
        vmax: float = 0.35,
        params: DPSOParams | None = None,
        omega: float = 0.7,
        c1: float = 1.4,
        c2: float = 1.4,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be > 0, got {dim}")
        if n_particles < 2:
            raise ValueError("need at least 2 particles")
        if not 0.0 < vmax <= 1.0:
            raise ValueError("vmax must be in (0, 1]")
        self.dim = dim
        self.n_particles = n_particles
        self.vmax = vmax
        self.params = params
        self.dynamic = params is not None
        self.rescore_bests = self.dynamic
        # Initial weights: DPSO starts at the exploratory end of its
        # ranges (DynamicPSO.__init__); vanilla uses the given constants.
        if self.dynamic:
            self._omega0 = params.omega_max
            self._c0 = params.c_max
        else:
            self._omega0 = omega
            self._c0 = c1
            self._c20 = c2
        self._rngs: list[np.random.Generator] = []
        self._m = 0  # live swarm count
        self._alloc(4)

    # -- storage --------------------------------------------------------------

    def _alloc(self, capacity: int) -> None:
        """(Re)allocate stacked state for ``capacity`` swarms."""
        n, d = self.n_particles, self.dim
        shape3 = (capacity, n, d)

        def grow(old: np.ndarray | None, new: np.ndarray) -> np.ndarray:
            if old is not None:
                new[: self._m] = old[: self._m]
            return new

        self.positions = grow(getattr(self, "positions", None), np.empty(shape3))
        self.velocities = grow(getattr(self, "velocities", None), np.empty(shape3))
        self.pbest_positions = grow(
            getattr(self, "pbest_positions", None), np.empty(shape3)
        )
        self.pbest_scores = grow(
            getattr(self, "pbest_scores", None), np.empty((capacity, n))
        )
        self.omega = grow(getattr(self, "omega", None), np.empty(capacity))
        self.c1 = grow(getattr(self, "c1", None), np.empty(capacity))
        self.c2 = grow(getattr(self, "c2", None), np.empty(capacity))
        self.best_positions = grow(
            getattr(self, "best_positions", None), np.zeros((capacity, d))
        )
        self.best_scores = grow(
            getattr(self, "best_scores", None), np.empty(capacity)
        )
        self._has_best = grow(
            getattr(self, "_has_best", None), np.zeros(capacity, dtype=bool)
        )
        self._df_max = grow(getattr(self, "_df_max", None), np.zeros(capacity))
        self._dci_max = grow(getattr(self, "_dci_max", None), np.zeros(capacity))
        self.last_perception = grow(
            getattr(self, "last_perception", None), np.zeros(capacity)
        )
        self._capacity = capacity

    def __len__(self) -> int:
        return self._m

    @property
    def n_swarms(self) -> int:
        return self._m

    def rng_of(self, index: int) -> np.random.Generator:
        return self._rngs[index]

    # -- lifecycle ------------------------------------------------------------

    def add_swarm(self, rng: np.random.Generator) -> int:
        """Register a new swarm drawing its initial state from ``rng``.

        Draw order matches ``ParticleSwarm.__init__`` exactly: uniform
        positions over the unit box, then uniform velocities in
        ``[-vmax, vmax]``.
        """
        if self._m == self._capacity:
            self._alloc(self._capacity * 2)
        i = self._m
        self._m += 1
        self._rngs.append(rng)
        n, d = self.n_particles, self.dim
        self.positions[i] = rng.uniform(0.0, 1.0, size=(n, d))
        self.velocities[i] = rng.uniform(-self.vmax, self.vmax, size=(n, d))
        self.pbest_positions[i] = self.positions[i]
        self.pbest_scores[i] = np.inf
        self.omega[i] = self._omega0
        self.c1[i] = self._c0
        self.c2[i] = self._c0 if self.dynamic else self._c20
        self.best_scores[i] = np.inf
        self._has_best[i] = False
        self._df_max[i] = 0.0
        self._dci_max[i] = 0.0
        self.last_perception[i] = 0.0
        return i

    # -- perception-response (DPSO) -------------------------------------------

    def perceive(self, index: int, delta_f: float, delta_ci: float) -> bool:
        """Per-swarm DPSO perception; mirrors ``DynamicPSO.perceive``.

        Scalar bookkeeping stays in Python floats so the weight values
        (and any redistribution RNG draws) are bit-identical to the
        sequential implementation.
        """
        if not self.dynamic:
            raise RuntimeError("perceive() requires a DPSOParams-configured fleet")
        p = self.params
        df = abs(float(delta_f))
        dci = abs(float(delta_ci))
        df_max = max(float(self._df_max[index]), df)
        dci_max = max(float(self._dci_max[index]), dci)
        self._df_max[index] = df_max
        self._dci_max[index] = dci_max

        nf = df / df_max if df_max > 0.0 else 0.0
        nci = dci / dci_max if dci_max > 0.0 else 0.0
        change = nf + nci
        self.last_perception[index] = change

        self.omega[index] = float(
            np.clip(p.omega_max * change, p.omega_min, p.omega_max)
        )
        c = float(np.clip(p.c_max * (1.0 - change), p.c_min, p.c_max))
        self.c1[index] = c
        self.c2[index] = c

        if change > p.perception_threshold:
            self.redistribute(index, p.redistribute_fraction)
            return True
        return False

    def redistribute(self, index: int, fraction: float = 0.5) -> None:
        """Re-place a fraction of one swarm; mirrors
        ``ParticleSwarm.redistribute`` (same RNG draw order, including the
        early return that skips all draws when the fraction rounds to 0)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        k = int(round(fraction * self.n_particles))
        if k == 0:
            return
        rng = self._rngs[index]
        idx = rng.choice(self.n_particles, size=k, replace=False)
        self.positions[index, idx] = rng.uniform(0.0, 1.0, size=(k, self.dim))
        self.velocities[index, idx] = rng.uniform(
            -self.vmax, self.vmax, size=(k, self.dim)
        )
        self.pbest_positions[index, idx] = self.positions[index, idx]
        self.pbest_scores[index, idx] = np.inf

    # -- search ---------------------------------------------------------------

    def step(
        self,
        indices: Sequence[int] | np.ndarray,
        fitness: BatchFitnessFn,
        iterations: int = 1,
    ) -> None:
        """Advance the swarms at ``indices`` against a batched fitness.

        ``fitness`` rows must align with ``indices`` (row ``j`` scores
        swarm ``indices[j]``'s particles). Indices must be distinct --
        stepping the same swarm twice in one call would race on the
        scattered writes.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            return
        if len(np.unique(idx)) != idx.size:
            raise ValueError("step() indices must be distinct")
        if self.rescore_bests:
            self._refresh_bests(idx, fitness)
        for _ in range(iterations):
            self._iterate(idx, fitness)

    def _refresh_bests(self, idx: np.ndarray, fitness: BatchFitnessFn) -> None:
        """Re-score incumbents under the current landscape.

        Mirrors ``ContinuousOptimizer._refresh_best``. Swarms that have
        never been stepped hold a zero placeholder position; their row is
        evaluated (the kernel is rectangular) but the result is discarded.
        """
        has = self._has_best[idx]
        if not has.any():
            return
        scores = fitness(self.best_positions[idx][:, None, :])
        self._check_scores(scores, idx.size, 1)
        with_best = idx[has]
        self.best_scores[with_best] = scores[has, 0]

    def _iterate(self, idx: np.ndarray, fitness: BatchFitnessFn) -> None:
        s, n = idx.size, self.n_particles
        pos = self.positions[idx]  # (s, n, d) gathered copies
        pb_pos = self.pbest_positions[idx]

        if self.rescore_bests:
            # Current positions and stale personal bests in one call.
            batch = np.concatenate([pos, pb_pos], axis=1)
            scores = fitness(batch)
            self._check_scores(scores, s, 2 * n)
            cur, pb = scores[:, :n], scores[:, n:]
        else:
            cur = fitness(pos)
            self._check_scores(cur, s, n)
            pb = self.pbest_scores[idx]

        improved = cur <= pb
        pb_pos = np.where(improved[..., None], pos, pb_pos)
        pb_scores = np.where(improved, cur, pb)

        rows = np.arange(s)
        g = np.argmin(pb_scores, axis=1)  # first-index ties, as argmin()
        gbest = pb_pos[rows, g]  # (s, d)

        # _record_best: track the incumbent optimum per swarm.
        g_scores = pb_scores[rows, g]
        better = g_scores < self.best_scores[idx]
        if better.any():
            upd = idx[better]
            self.best_scores[upd] = g_scores[better]
            self.best_positions[upd] = gbest[better]
            self._has_best[upd] = True

        # Per-swarm streams: r1 fully drawn before r2, as in the
        # sequential _iterate; cross-stream interleaving is immaterial.
        r1 = np.empty((s, n, self.dim))
        r2 = np.empty((s, n, self.dim))
        for j, i in enumerate(idx):
            rng = self._rngs[i]
            r1[j] = rng.uniform(size=(n, self.dim))
            r2[j] = rng.uniform(size=(n, self.dim))

        om = self.omega[idx][:, None, None]
        c1 = self.c1[idx][:, None, None]
        c2 = self.c2[idx][:, None, None]
        vel = (
            om * self.velocities[idx]
            + c1 * r1 * (pb_pos - pos)
            + c2 * r2 * (gbest[:, None, :] - pos)
        )
        np.clip(vel, -self.vmax, self.vmax, out=vel)
        pos = clip_box(pos + vel)

        self.positions[idx] = pos
        self.velocities[idx] = vel
        self.pbest_positions[idx] = pb_pos
        self.pbest_scores[idx] = pb_scores

    # -- single-swarm fast path ------------------------------------------------

    def step_one(
        self,
        index: int,
        fitness: Callable[[np.ndarray], np.ndarray],
        iterations: int = 1,
    ) -> None:
        """Advance one swarm against a plain ``(rows, dim) -> (rows,)``
        fitness, operating on views into the stacked arrays.

        This is the degenerate-batch escape hatch: a batch of one pays
        the fused kernels' gather/scatter overhead for nothing, so
        callers with a single active swarm (for example the KDM when an
        invocation arrives alone at its tick) step it through this exact
        mirror of ``ParticleSwarm.step`` instead. State and RNG stream
        are shared with the batched path, so the two can interleave
        freely and stay bit-identical to a sequential optimizer.
        """
        if self.rescore_bests and self._has_best[index]:
            self.best_scores[index] = float(
                fitness(self.best_positions[index][None, :])[0]
            )
        n = self.n_particles
        rng = self._rngs[index]
        for _ in range(iterations):
            pos = self.positions[index]  # (n, d) views
            pb_pos = self.pbest_positions[index]
            pb_scores = self.pbest_scores[index]

            if self.rescore_bests:
                batch = np.concatenate([pos, pb_pos], axis=0)
                scores = np.asarray(fitness(batch), dtype=float)
                if scores.shape != (2 * n,):
                    raise ValueError(
                        f"fitness returned shape {scores.shape}, "
                        f"expected {(2 * n,)}"
                    )
                cur, pb = scores[:n], scores[n:]
            else:
                cur = np.asarray(fitness(pos), dtype=float)
                if cur.shape != (n,):
                    raise ValueError(
                        f"fitness returned shape {cur.shape}, expected {(n,)}"
                    )
                pb = pb_scores.copy()

            improved = cur <= pb
            pb_pos[improved] = pos[improved]
            pb_scores[:] = np.where(improved, cur, pb)

            g = int(np.argmin(pb_scores))
            gbest = pb_pos[g]
            if pb_scores[g] < self.best_scores[index]:
                self.best_scores[index] = pb_scores[g]
                self.best_positions[index] = gbest
                self._has_best[index] = True

            r1 = rng.uniform(size=(n, self.dim))
            r2 = rng.uniform(size=(n, self.dim))
            vel = (
                self.omega[index] * self.velocities[index]
                + self.c1[index] * r1 * (pb_pos - pos)
                + self.c2[index] * r2 * (gbest[None, :] - pos)
            )
            np.clip(vel, -self.vmax, self.vmax, out=vel)
            self.velocities[index] = vel
            self.positions[index] = clip_box(pos + vel)

    @staticmethod
    def _check_scores(scores: np.ndarray, s: int, rows: int) -> None:
        if np.shape(scores) != (s, rows):
            raise ValueError(
                f"batch fitness returned shape {np.shape(scores)}, "
                f"expected {(s, rows)}"
            )

    # -- readout --------------------------------------------------------------

    def gbest_positions(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Current swarm-best position per requested swarm, ``(s, dim)``."""
        idx = np.asarray(indices, dtype=np.intp)
        g = np.argmin(self.pbest_scores[idx], axis=1)
        return self.pbest_positions[idx, g]

    def gbest_position(self, index: int) -> np.ndarray:
        """Current swarm-best of one swarm (matches
        ``ParticleSwarm.gbest_position``)."""
        g = int(np.argmin(self.pbest_scores[index]))
        return self.pbest_positions[index, g]
