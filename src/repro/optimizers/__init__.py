"""Optimization substrate: PSO + EcoLife's DPSO, GA/SA baselines, grid search."""

from repro.optimizers.annealing import SimulatedAnnealing
from repro.optimizers.base import ContinuousOptimizer, FitnessFn, clip_box
from repro.optimizers.batch import BatchFitnessFn, SwarmArchive, SwarmFleet
from repro.optimizers.dynamic_pso import DPSOParams, DynamicPSO
from repro.optimizers.genetic import GeneticOptimizer
from repro.optimizers.gridsearch import cartesian_grid, grid_best
from repro.optimizers.pso import ParticleSwarm

__all__ = [
    "BatchFitnessFn",
    "ContinuousOptimizer",
    "FitnessFn",
    "SwarmArchive",
    "SwarmFleet",
    "clip_box",
    "ParticleSwarm",
    "DynamicPSO",
    "DPSOParams",
    "GeneticOptimizer",
    "SimulatedAnnealing",
    "grid_best",
    "cartesian_grid",
]
