"""Real-coded Genetic Algorithm baseline.

The paper compares PSO against a GA "with crossover probability of 0.6,
mutation probability of 0.01, and population size of 15" (Sec. IV-C). This
implementation mirrors that configuration: tournament selection, blend
(BLX-alpha-style uniform) crossover, per-gene Gaussian mutation, and
single-slot elitism. It plugs into the same KDM as PSO for the head-to-head
in-text comparison experiment.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import ContinuousOptimizer, FitnessFn, clip_box


class GeneticOptimizer(ContinuousOptimizer):
    """A persistent GA minimiser over the unit box."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        population: int = 15,
        crossover_prob: float = 0.6,
        mutation_prob: float = 0.01,
        mutation_sigma: float = 0.15,
        tournament_k: int = 3,
    ) -> None:
        super().__init__(dim, rng)
        if population < 3:
            raise ValueError("population must be >= 3")
        if not 0.0 <= crossover_prob <= 1.0:
            raise ValueError("crossover_prob must be in [0, 1]")
        if not 0.0 <= mutation_prob <= 1.0:
            raise ValueError("mutation_prob must be in [0, 1]")
        self.population_size = population
        self.crossover_prob = crossover_prob
        self.mutation_prob = mutation_prob
        self.mutation_sigma = mutation_sigma
        self.tournament_k = min(tournament_k, population)
        self.population = self._uniform(population)

    def step(self, fitness: FitnessFn, iterations: int = 1) -> None:
        """Evolve the population for ``iterations`` generations."""
        self._refresh_best(fitness)
        for _ in range(iterations):
            self._generation(fitness)

    def _generation(self, fitness: FitnessFn) -> None:
        n = self.population_size
        scores = np.asarray(fitness(self.population), dtype=float)
        self._record_best(self.population, scores)

        elite = self.population[int(np.argmin(scores))].copy()

        # Tournament selection of parent indices.
        entrants = self.rng.integers(0, n, size=(n, self.tournament_k))
        winners = entrants[
            np.arange(n), np.argmin(scores[entrants], axis=1)
        ]
        parents = self.population[winners]

        # Pairwise blend crossover.
        children = parents.copy()
        for i in range(0, n - 1, 2):
            if self.rng.uniform() < self.crossover_prob:
                alpha = self.rng.uniform(size=self.dim)
                a, b = parents[i], parents[i + 1]
                children[i] = alpha * a + (1.0 - alpha) * b
                children[i + 1] = alpha * b + (1.0 - alpha) * a

        # Per-gene Gaussian mutation.
        mask = self.rng.uniform(size=children.shape) < self.mutation_prob
        noise = self.rng.normal(0.0, self.mutation_sigma, size=children.shape)
        children = clip_box(children + mask * noise)

        children[0] = elite  # elitism
        self.population = children
