"""Exhaustive grid search over a discrete candidate set.

Used by the oracle solutions ("computed via brute-forcing every possible
scheduling option for each function invocation", Sec. V) and as a reference
optimum when testing the heuristic optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import FitnessFn


def grid_best(fitness: FitnessFn, candidates: np.ndarray) -> tuple[np.ndarray, float]:
    """Evaluate all candidate positions; return (best position, best score).

    Ties break toward the earliest candidate, which makes oracle decisions
    deterministic given a fixed candidate ordering.
    """
    candidates = np.asarray(candidates, dtype=float)
    if candidates.ndim != 2 or candidates.shape[0] == 0:
        raise ValueError("candidates must be a non-empty (n, dim) array")
    scores = np.asarray(fitness(candidates), dtype=float)
    if scores.shape != (candidates.shape[0],):
        raise ValueError(
            f"fitness returned shape {scores.shape}, expected "
            f"{(candidates.shape[0],)}"
        )
    i = int(np.argmin(scores))
    return candidates[i].copy(), float(scores[i])


def cartesian_grid(*axes: np.ndarray) -> np.ndarray:
    """Cartesian product of 1-D axes as an (n, dim) candidate matrix."""
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=-1)
