"""Vanilla Particle Swarm Optimization (paper Sec. IV-C, "Basics of PSO").

Velocity/position update per iteration::

    V <- w*V + c1*r1*(pbest - X) + c2*r2*(gbest - X)
    X <- X + V

with ``r1, r2 ~ U(0,1)`` drawn element-wise. Positions are confined to the
unit box by clipping, velocities by ``vmax``. Personal/global bests are
re-scored every step so the swarm adapts when the landscape drifts between
invocations (the serverless environment is non-stationary).
"""

from __future__ import annotations

import numpy as np

from repro.optimizers.base import ContinuousOptimizer, FitnessFn, clip_box


class ParticleSwarm(ContinuousOptimizer):
    """A persistent particle swarm minimiser.

    Parameters mirror the paper's setup: 15 particles; ``omega``, ``c1``,
    ``c2`` control exploration/exploitation and are mutated on the fly by
    the dynamic extension (:class:`repro.optimizers.dynamic_pso.DynamicPSO`).

    ``rescore_bests`` controls whether personal/global best *scores* are
    re-evaluated against the current landscape each step. Classic vanilla
    PSO caches them (``False``) -- which is exactly why it goes stale in the
    non-stationary serverless environment and why the paper adds the
    perception-response mechanism; the dynamic variant enables re-scoring.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        n_particles: int = 15,
        omega: float = 0.7,
        c1: float = 1.4,
        c2: float = 1.4,
        vmax: float = 0.35,
        rescore_bests: bool = False,
    ) -> None:
        super().__init__(dim, rng)
        if n_particles < 2:
            raise ValueError("need at least 2 particles")
        if not 0.0 < vmax <= 1.0:
            raise ValueError("vmax must be in (0, 1]")
        self.n_particles = n_particles
        self.omega = omega
        self.c1 = c1
        self.c2 = c2
        self.vmax = vmax
        self.rescore_bests = rescore_bests

        self.positions = self._uniform(n_particles)
        self.velocities = rng.uniform(-vmax, vmax, size=(n_particles, dim))
        self.pbest_positions = self.positions.copy()
        self.pbest_scores = np.full(n_particles, np.inf)

    # -- knobs ----------------------------------------------------------------

    def set_weights(self, omega: float, c1: float, c2: float) -> None:
        """Update the inertia and cognitive/social coefficients."""
        self.omega = float(omega)
        self.c1 = float(c1)
        self.c2 = float(c2)

    def redistribute(self, fraction: float = 0.5) -> None:
        """Randomly re-place a fraction of the swarm (perception-response).

        The redistributed particles forget their personal bests (they are
        meant to explore); the remaining particles keep theirs, which is
        the "memory" half the paper describes.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        k = int(round(fraction * self.n_particles))
        if k == 0:
            return
        idx = self.rng.choice(self.n_particles, size=k, replace=False)
        self.positions[idx] = self._uniform(k)
        self.velocities[idx] = self.rng.uniform(
            -self.vmax, self.vmax, size=(k, self.dim)
        )
        self.pbest_positions[idx] = self.positions[idx]
        self.pbest_scores[idx] = np.inf

    # -- search ---------------------------------------------------------------

    def step(self, fitness: FitnessFn, iterations: int = 1) -> None:
        """Run PSO iterations against the current landscape."""
        if self.rescore_bests:
            self._refresh_best(fitness)
        for _ in range(iterations):
            self._iterate(fitness)

    def _iterate(self, fitness: FitnessFn) -> None:
        n = self.n_particles
        if self.rescore_bests:
            # Evaluate current positions and re-score stale personal bests
            # in a single vectorised call.
            batch = np.concatenate([self.positions, self.pbest_positions], axis=0)
            scores = np.asarray(fitness(batch), dtype=float)
            if scores.shape != (2 * n,):
                raise ValueError(
                    f"fitness returned shape {scores.shape}, expected {(2 * n,)}"
                )
            cur, pb = scores[:n], scores[n:]
        else:
            cur = np.asarray(fitness(self.positions), dtype=float)
            if cur.shape != (n,):
                raise ValueError(
                    f"fitness returned shape {cur.shape}, expected {(n,)}"
                )
            pb = self.pbest_scores

        improved = cur <= pb
        self.pbest_positions[improved] = self.positions[improved]
        self.pbest_scores = np.where(improved, cur, pb)

        g = int(np.argmin(self.pbest_scores))
        gbest = self.pbest_positions[g]
        self._record_best(
            self.pbest_positions, self.pbest_scores
        )

        r1 = self.rng.uniform(size=(n, self.dim))
        r2 = self.rng.uniform(size=(n, self.dim))
        self.velocities = (
            self.omega * self.velocities
            + self.c1 * r1 * (self.pbest_positions - self.positions)
            + self.c2 * r2 * (gbest[None, :] - self.positions)
        )
        np.clip(self.velocities, -self.vmax, self.vmax, out=self.velocities)
        self.positions = clip_box(self.positions + self.velocities)

    @property
    def gbest_position(self) -> np.ndarray:
        """Current swarm-best (may differ from the historical best)."""
        g = int(np.argmin(self.pbest_scores))
        return self.pbest_positions[g]
