"""EcoLife's Dynamic PSO (DPSO): the paper's two PSO extensions.

1. **Dynamic weights** (Sec. IV-C): the inertia and cognitive/social
   coefficients react to the observed environment changes::

       w  = w_max * (dF/dF_max + dCI/dCI_max)          (clamped to [w_min, w_max])
       c1 = c2 = c_max * (1 - dF/dF_max - dCI/dCI_max) (clamped to [c_min, c_max])

   where ``dF`` is the change in the function-invocation rate and ``dCI``
   the change in carbon intensity since the last invocation; the ``*_max``
   denominators are the maximum absolute changes observed so far.

2. **Perception-response**: when a change is perceived, half of the swarm
   is randomly redistributed over the search space (exploration) while the
   other half keeps its positions (memory) -- Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optimizers.pso import ParticleSwarm


@dataclass(frozen=True)
class DPSOParams:
    """Weight ranges (paper Sec. V: w in [0.5, 1], c1/c2 in [0.3, 1])."""

    omega_min: float = 0.5
    omega_max: float = 1.0
    c_min: float = 0.3
    c_max: float = 1.0
    redistribute_fraction: float = 0.5
    #: Minimum normalised change (dF + dCI) that counts as "perceived".
    perception_threshold: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.omega_min <= self.omega_max:
            raise ValueError("omega range invalid")
        if not 0.0 <= self.c_min <= self.c_max:
            raise ValueError("c range invalid")
        if not 0.0 <= self.redistribute_fraction <= 1.0:
            raise ValueError("redistribute_fraction must be in [0, 1]")


class DynamicPSO(ParticleSwarm):
    """Particle swarm with perception-driven weight adaptation.

    Call :meth:`perceive` with the raw environment deltas before each
    :meth:`step`; the optimizer normalises them against the largest deltas
    seen so far, adapts its weights, and redistributes half the swarm when
    the environment moved.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        n_particles: int = 15,
        params: DPSOParams | None = None,
        vmax: float = 0.35,
    ) -> None:
        self.params = params or DPSOParams()
        super().__init__(
            dim,
            rng,
            n_particles=n_particles,
            omega=self.params.omega_max,
            c1=self.params.c_max,
            c2=self.params.c_max,
            vmax=vmax,
            rescore_bests=True,  # the dynamic variant tracks drift
        )
        self._df_max = 0.0
        self._dci_max = 0.0
        self.last_perception = 0.0

    def perceive(self, delta_f: float, delta_ci: float) -> bool:
        """Adapt to environment change; returns True if a response fired.

        ``delta_f``/``delta_ci`` are absolute changes since the last
        invocation of the function this optimizer belongs to.
        """
        df = abs(float(delta_f))
        dci = abs(float(delta_ci))
        self._df_max = max(self._df_max, df)
        self._dci_max = max(self._dci_max, dci)

        nf = df / self._df_max if self._df_max > 0.0 else 0.0
        nci = dci / self._dci_max if self._dci_max > 0.0 else 0.0
        change = nf + nci
        self.last_perception = change

        p = self.params
        omega = float(np.clip(p.omega_max * change, p.omega_min, p.omega_max))
        c = float(np.clip(p.c_max * (1.0 - change), p.c_min, p.c_max))
        self.set_weights(omega, c, c)

        if change > p.perception_threshold:
            self.redistribute(p.redistribute_fraction)
            return True
        return False
