"""EcoLife reproduction: carbon-aware serverless function scheduling.

This package reproduces "EcoLife: Carbon-Aware Serverless Function
Scheduling for Sustainable Computing" (SC 2024): a trace-driven serverless
simulator over multi-generation hardware, the paper's carbon model, the
EcoLife scheduler (dynamic PSO + warm-pool adjustment), all baselines and
oracles, and one experiment driver per figure/table in the evaluation.

Quickstart::

    from repro import quick_scenario, run_scheduler
    from repro.core import EcoLifeScheduler

    scenario = quick_scenario(seed=1)
    result = run_scheduler(EcoLifeScheduler, scenario)
    print(result.summary())

See ``examples/quickstart.py`` for a tour and ``DESIGN.md`` for the full
system inventory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.version import __version__

if TYPE_CHECKING:
    from repro.experiments.common import Scenario, SchedulerFactory
    from repro.simulator.records import SimulationResult
    from repro.simulator.scheduler import BaseScheduler

__all__ = ["__version__", "quick_scenario", "run_scheduler"]


def quick_scenario(seed: int = 7) -> "Scenario":
    """Build a small default scenario (lazy import; see experiments.common)."""
    from repro.experiments.common import quick_scenario as _qs

    return _qs(seed=seed)


def run_scheduler(
    scheduler: "BaseScheduler | SchedulerFactory",
    scenario: "Scenario",
) -> "SimulationResult":
    """Run one scheduler over a scenario (lazy import; see experiments.common)."""
    from repro.experiments.common import run_scheduler as _rs

    return _rs(scheduler, scenario)
