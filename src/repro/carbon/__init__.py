"""Carbon substrate: intensity traces, region generators, and accounting."""

from repro.carbon.footprint import ZERO_CARBON, CarbonBreakdown, CarbonModel
from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.io import load_ci_csv, save_ci_csv
from repro.carbon.providers import (
    CarbonIntensityProvider,
    ElectricityMapsProvider,
    IntensityRing,
    ProviderFetchError,
    RecordedFixtureProvider,
    TraceProvider,
)
from repro.carbon.regions import (
    DEFAULT_REGION,
    REGION_NAMES,
    REGIONS,
    RegionProfile,
    generate_region_trace,
    region_trace_for,
)

__all__ = [
    "CarbonIntensityTrace",
    "CarbonIntensityProvider",
    "CarbonBreakdown",
    "CarbonModel",
    "ElectricityMapsProvider",
    "IntensityRing",
    "ProviderFetchError",
    "RecordedFixtureProvider",
    "TraceProvider",
    "ZERO_CARBON",
    "RegionProfile",
    "REGIONS",
    "REGION_NAMES",
    "DEFAULT_REGION",
    "generate_region_trace",
    "region_trace_for",
    "load_ci_csv",
    "save_ci_csv",
]
