"""Carbon-intensity trace I/O.

The synthetic region generators cover offline use; deployments with access
to real grid data (e.g. an Electricity Maps CSV export) can load it here
and drive every experiment with it unchanged::

    trace = load_ci_csv("ciso_2024.csv")
    scenario = default_scenario().with_ci(trace)

Format: two columns -- timestamp (seconds, or ISO-8601 with ``iso=True``)
and intensity (gCO2/kWh) -- with an optional header row. Values are
validated by :class:`~repro.carbon.intensity.CarbonIntensityTrace`.
"""

from __future__ import annotations

import csv
import datetime as _dt
import pathlib

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace


def _parse_time(cell: str, iso: bool, t0: _dt.datetime | None):
    if not iso:
        return float(cell), t0
    stamp = _dt.datetime.fromisoformat(cell)
    if t0 is None:
        t0 = stamp
    return (stamp - t0).total_seconds(), t0


def load_ci_csv(
    path: str | pathlib.Path,
    iso: bool = False,
    name: str | None = None,
) -> CarbonIntensityTrace:
    """Load a (time, intensity) CSV into a trace.

    ``iso=True`` parses the first column as ISO-8601 timestamps and rebases
    them so the first sample is t=0 (simulation time).
    """
    path = pathlib.Path(path)
    times: list[float] = []
    values: list[float] = []
    t0: _dt.datetime | None = None
    with path.open(newline="") as fh:
        for row in csv.reader(fh):
            if not row or len(row) < 2:
                continue
            try:
                t, t0 = _parse_time(row[0].strip(), iso, t0)
                v = float(row[1])
            except ValueError:
                continue  # header or malformed row
            times.append(t)
            values.append(v)
    if not times:
        raise ValueError(f"{path}: no (time, intensity) rows found")
    order = np.argsort(times)
    return CarbonIntensityTrace(
        times_s=np.asarray(times, dtype=float)[order],
        values=np.asarray(values, dtype=float)[order],
        name=name or path.stem,
    )


def save_ci_csv(trace: CarbonIntensityTrace, path: str | pathlib.Path) -> None:
    """Write a trace as a two-column CSV (seconds, gCO2/kWh) with header."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "g_per_kwh"])
        for t, v in zip(trace.times_s, trace.values):
            writer.writerow([f"{t:.1f}", f"{v:.3f}"])
