"""Combined carbon accounting facade (embodied + operational, per phase).

:class:`CarbonModel` is the single accounting implementation shared by the
simulator (exact, CI-trace-integrated) and by decision-time estimators
(scalar-CI closed forms). Keeping both in one class guarantees that EcoLife,
the baselines, and the oracles are scored by identical formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.carbon import embodied, operational
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.hardware.specs import ServerSpec


@dataclass(frozen=True)
class CarbonBreakdown:
    """Carbon (grams) split by component and origin."""

    op_cpu: float = 0.0
    op_dram: float = 0.0
    emb_cpu: float = 0.0
    emb_dram: float = 0.0
    emb_platform: float = 0.0

    @property
    def operational(self) -> float:
        """Total operational carbon (g)."""
        return self.op_cpu + self.op_dram

    @property
    def embodied(self) -> float:
        """Total embodied carbon (g)."""
        return self.emb_cpu + self.emb_dram + self.emb_platform

    @property
    def total(self) -> float:
        """Total carbon (g)."""
        return self.operational + self.embodied

    def __add__(self, other: "CarbonBreakdown") -> "CarbonBreakdown":
        return CarbonBreakdown(
            op_cpu=self.op_cpu + other.op_cpu,
            op_dram=self.op_dram + other.op_dram,
            emb_cpu=self.emb_cpu + other.emb_cpu,
            emb_dram=self.emb_dram + other.emb_dram,
            emb_platform=self.emb_platform + other.emb_platform,
        )

    def __radd__(self, other) -> "CarbonBreakdown":
        """Support ``sum(...)`` over breakdowns (0 start value)."""
        if other == 0:
            return self
        return self.__add__(other)


#: Convenient zero element.
ZERO_CARBON = CarbonBreakdown()


@dataclass(frozen=True)
class CarbonModel:
    """Per-phase carbon accounting bound to a CI trace and an energy model."""

    trace: CarbonIntensityTrace
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL

    # ------------------------------------------------------------------
    # Exact accounting (CI integrated over the real interval) -- used by
    # the simulator.
    # ------------------------------------------------------------------

    def service(
        self,
        server: ServerSpec,
        mem_gb: float,
        t0: float,
        busy_s: float,
        cold_overhead_s: float = 0.0,
    ) -> CarbonBreakdown:
        """Carbon of a service window starting at ``t0``.

        ``busy_s`` covers setup + execution; ``cold_overhead_s`` is the
        cold-start window (0 for warm starts).
        """
        duration = busy_s + cold_overhead_s
        t1 = t0 + duration
        return CarbonBreakdown(
            op_cpu=operational.cpu_service_g(
                server, self.energy_model, self.trace, t0, busy_s, cold_overhead_s
            ),
            op_dram=operational.dram_g(server, mem_gb, self.trace, t0, t1),
            emb_cpu=embodied.cpu_service_g(server, duration),
            emb_dram=embodied.dram_g(server, mem_gb, duration),
            emb_platform=embodied.platform_g(server, mem_gb, duration),
        )

    def keepalive(
        self, server: ServerSpec, mem_gb: float, t0: float, t1: float
    ) -> CarbonBreakdown:
        """Carbon of a keep-alive window ``[t0, t1]`` (one core + DRAM share)."""
        duration = t1 - t0
        if duration < 0.0:
            raise ValueError(f"keep-alive interval is reversed: [{t0}, {t1}]")
        return CarbonBreakdown(
            op_cpu=operational.cpu_keepalive_g(
                server, self.energy_model, self.trace, t0, t1
            ),
            op_dram=operational.dram_g(server, mem_gb, self.trace, t0, t1),
            emb_cpu=embodied.cpu_keepalive_g(server, duration),
            emb_dram=embodied.dram_g(server, mem_gb, duration),
            emb_platform=embodied.platform_g(server, mem_gb, duration),
        )

    # ------------------------------------------------------------------
    # Attributed energy (Wh) -- used by Energy-Opt and the reports.
    # ------------------------------------------------------------------

    def service_energy_wh(
        self,
        server: ServerSpec,
        mem_gb: float,
        busy_s: float,
        cold_overhead_s: float = 0.0,
    ) -> float:
        """Energy attributed to one service window (whole CPU + DRAM share)."""
        share = mem_gb / server.dram.capacity_gb
        cpu = self.energy_model.cpu_service_wh(server, busy_s, cold_overhead_s)
        dram = share * self.energy_model.dram_service_wh(
            server, busy_s + cold_overhead_s
        )
        return cpu + dram

    def keepalive_energy_wh(
        self, server: ServerSpec, mem_gb: float, duration_s: float
    ) -> float:
        """Energy attributed to one keep-alive window (one core + DRAM share)."""
        share = mem_gb / server.dram.capacity_gb
        cpu = self.energy_model.cpu_keepalive_wh(server, duration_s) / server.cpu.cores
        dram = share * self.energy_model.dram_keepalive_wh(server, duration_s)
        return cpu + dram

    # ------------------------------------------------------------------
    # Closed-form estimates at a scalar CI -- used by decision makers
    # (KDM fitness, EPDM scores, warm-pool priority ranking, oracles).
    # ------------------------------------------------------------------

    def est_service_split(
        self,
        server: ServerSpec,
        mem_gb: float,
        busy_s: float,
        cold_overhead_s: float,
    ) -> tuple[float, float]:
        """CI-independent split of one service window: (energy Wh, embodied g).

        The estimated carbon at intensity ``ci`` is
        ``operational_carbon_g(energy, ci) + embodied`` -- callers that
        evaluate many intensities (the KDM cost cache) compute the split
        once and re-scale only the operational part.
        """
        duration = busy_s + cold_overhead_s
        energy = self.service_energy_wh(server, mem_gb, busy_s, cold_overhead_s)
        emb = (
            embodied.cpu_service_g(server, duration)
            + embodied.dram_g(server, mem_gb, duration)
            + embodied.platform_g(server, mem_gb, duration)
        )
        return energy, emb

    def est_keepalive_rate_split(
        self, server: ServerSpec, mem_gb: float
    ) -> tuple[float, float]:
        """CI-independent split of the keep-alive rate: (power W, embodied g/s)."""
        power = self.energy_model.keepalive_power_attributed_w(server, mem_gb)
        emb_rate = (
            embodied.cpu_keepalive_g(server, 1.0)
            + embodied.dram_g(server, mem_gb, 1.0)
            + embodied.platform_g(server, mem_gb, 1.0)
        )
        return power, emb_rate

    def est_service_g(
        self,
        server: ServerSpec,
        mem_gb: float,
        busy_s: float,
        cold_overhead_s: float,
        ci: float,
    ) -> float:
        """Estimated service carbon at constant intensity ``ci``."""
        energy, emb = self.est_service_split(server, mem_gb, busy_s, cold_overhead_s)
        return units.operational_carbon_g(energy, ci) + emb

    def est_keepalive_rate_g_per_s(
        self, server: ServerSpec, mem_gb: float, ci: float
    ) -> float:
        """Estimated keep-alive carbon accrual rate (g/s) at intensity ``ci``."""
        power, emb_rate = self.est_keepalive_rate_split(server, mem_gb)
        op_rate = units.operational_carbon_g(units.energy_wh(power, 1.0), ci)
        return op_rate + emb_rate

    # ------------------------------------------------------------------
    # Variants for sensitivity studies.
    # ------------------------------------------------------------------

    def with_trace(self, trace: CarbonIntensityTrace) -> "CarbonModel":
        """Return a copy bound to a different CI trace."""
        return replace(self, trace=trace)
