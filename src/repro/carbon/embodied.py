"""Embodied-carbon attribution (paper Sec. II, first pair of equations).

The paper attributes embodied carbon to a serverless function per phase:

- **service** (cold start + execution, duration ``S_f``): the *entire* CPU is
  assigned to the function, DRAM by the memory share ``M_f / M_DRAM``::

      CPU:  S_f / LT_CPU  * EC_CPU
      DRAM: S_f / LT_DRAM * (M_f / M_DRAM) * EC_DRAM

- **keep-alive** (duration ``k``): one CPU core keeps the function alive::

      CPU:  k / LT_CPU  * EC_CPU / Core_num
      DRAM: k / LT_DRAM * (M_f / M_DRAM) * EC_DRAM

The optional platform component (storage/motherboard/PSU, used by the
"other components" sensitivity study) is attributed like DRAM: by memory
share during both phases, which is the paper's "proportional carbon
footprint of storage" extension hook.
"""

from __future__ import annotations

from repro import units
from repro.hardware.specs import ServerSpec


def cpu_service_g(server: ServerSpec, duration_s: float) -> float:
    """Embodied CPU carbon attributed over a service window (whole package)."""
    units.require_non_negative(duration_s, "duration_s")
    return duration_s / server.lifetime_s * server.cpu.embodied_g


def cpu_keepalive_g(server: ServerSpec, duration_s: float) -> float:
    """Embodied CPU carbon attributed over a keep-alive window (one core)."""
    units.require_non_negative(duration_s, "duration_s")
    return duration_s / server.lifetime_s * server.cpu.embodied_per_core_g


def dram_g(server: ServerSpec, mem_gb: float, duration_s: float) -> float:
    """Embodied DRAM carbon attributed by memory share over any window."""
    units.require_non_negative(duration_s, "duration_s")
    units.require_non_negative(mem_gb, "mem_gb")
    share = mem_gb / server.dram.capacity_gb
    return duration_s / server.lifetime_s * share * server.dram.embodied_g


def platform_g(server: ServerSpec, mem_gb: float, duration_s: float) -> float:
    """Embodied carbon of non-CPU/DRAM platform components (memory share)."""
    if server.platform_embodied_kg == 0.0:
        return 0.0
    units.require_non_negative(duration_s, "duration_s")
    share = mem_gb / server.dram.capacity_gb
    return (
        duration_s / server.lifetime_s * share * server.platform_embodied_kg * 1000.0
    )
