"""Synthetic carbon-intensity generators for the paper's five regions.

The paper drives EcoLife with Electricity Maps data from the California ISO
(CISO, default) plus Tennessee, Texas, Florida and New York for the Fig. 14
robustness study. Offline we synthesize each region from its published
first-order characteristics:

- a mean level (generation mix),
- a diurnal shape -- for CISO the solar "duck curve": a deep midday dip and
  an evening ramp/peak,
- hour-scale AR(1) stochastic variability, interpolated to minutes.

CISO is calibrated to the statistics the paper quotes (Sec. V): carbon
intensity "fluctuates by an average of 6.75% hourly, with a standard
deviation of 59.24". ``tests/test_carbon/test_regions.py`` asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.carbon.intensity import CarbonIntensityTrace


@dataclass(frozen=True)
class RegionProfile:
    """Shape parameters of a region's synthetic carbon-intensity process."""

    name: str
    mean_g_per_kwh: float
    solar_dip: float  # depth of the midday solar dip (g/kWh)
    solar_dip_hour: float  # local hour of the dip centre
    solar_dip_width_h: float
    evening_peak: float  # height of the evening ramp peak (g/kWh)
    evening_peak_hour: float
    evening_peak_width_h: float
    ar_sigma: float  # hourly AR(1) innovation scale (g/kWh)
    ar_phi: float  # hourly AR(1) persistence
    floor: float = 20.0  # physical lower bound (g/kWh)

    def diurnal(self, hour_of_day: np.ndarray) -> np.ndarray:
        """Deterministic diurnal component (g/kWh deviation from mean)."""
        dip = -self.solar_dip * np.exp(
            -(((hour_of_day - self.solar_dip_hour) / self.solar_dip_width_h) ** 2)
        )
        peak = self.evening_peak * np.exp(
            -(((hour_of_day - self.evening_peak_hour) / self.evening_peak_width_h) ** 2)
        )
        return dip + peak


#: Region profiles keyed by the paper's abbreviations (Fig. 14).
REGIONS: dict[str, RegionProfile] = {
    # California ISO: solar-heavy duck curve, high variability.
    "CAL": RegionProfile(
        name="CAL",
        mean_g_per_kwh=265.0,
        solar_dip=120.0,
        solar_dip_hour=13.0,
        solar_dip_width_h=4.6,
        evening_peak=55.0,
        evening_peak_hour=19.5,
        evening_peak_width_h=3.0,
        ar_sigma=11.0,
        ar_phi=0.9,
    ),
    # Tennessee: nuclear/hydro baseload, very flat.
    "TEN": RegionProfile(
        name="TEN",
        mean_g_per_kwh=430.0,
        solar_dip=15.0,
        solar_dip_hour=13.0,
        solar_dip_width_h=4.0,
        evening_peak=12.0,
        evening_peak_hour=19.0,
        evening_peak_width_h=3.0,
        ar_sigma=8.0,
        ar_phi=0.9,
    ),
    # Texas (ERCOT): wind-driven, noisy.
    "TEX": RegionProfile(
        name="TEX",
        mean_g_per_kwh=410.0,
        solar_dip=45.0,
        solar_dip_hour=13.5,
        solar_dip_width_h=3.5,
        evening_peak=35.0,
        evening_peak_hour=19.5,
        evening_peak_width_h=2.5,
        ar_sigma=42.0,
        ar_phi=0.78,
    ),
    # Florida: gas-dominated, flat and high.
    "FLA": RegionProfile(
        name="FLA",
        mean_g_per_kwh=440.0,
        solar_dip=28.0,
        solar_dip_hour=13.0,
        solar_dip_width_h=3.5,
        evening_peak=22.0,
        evening_peak_hour=20.0,
        evening_peak_width_h=2.5,
        ar_sigma=12.0,
        ar_phi=0.88,
    ),
    # New York ISO: mixed hydro/gas, moderate.
    "NY": RegionProfile(
        name="NY",
        mean_g_per_kwh=300.0,
        solar_dip=42.0,
        solar_dip_hour=13.0,
        solar_dip_width_h=3.5,
        evening_peak=38.0,
        evening_peak_hour=19.0,
        evening_peak_width_h=2.5,
        ar_sigma=18.0,
        ar_phi=0.85,
    ),
}

#: Fig. 14 ordering.
REGION_NAMES: tuple[str, ...] = ("TEN", "TEX", "FLA", "NY", "CAL")

#: The paper's default region (CISO).
DEFAULT_REGION = "CAL"


def generate_region_trace(
    region: str | RegionProfile,
    days: float = 1.0,
    seed: int = 0,
    step_s: float = units.SECONDS_PER_MINUTE,
    start_hour: float = 0.0,
) -> CarbonIntensityTrace:
    """Generate a minute-level synthetic trace for ``region``.

    Parameters
    ----------
    region:
        Region abbreviation (``"CAL"``, ``"TEN"``, ...) or a custom profile.
    days:
        Trace length in days (fractions allowed).
    seed:
        RNG seed; the same (region, days, seed) always yields the same trace.
    step_s:
        Sample step; the paper expands CI to minute intervals.
    start_hour:
        Local hour of day at trace time zero (lets experiments start at an
        interesting point of the duck curve).
    """
    profile = REGIONS[region.upper()] if isinstance(region, str) else region
    rng = np.random.default_rng(seed)
    n = max(int(round(days * units.SECONDS_PER_DAY / step_s)), 2)
    t = np.arange(n) * step_s
    hour_of_day = ((t / units.SECONDS_PER_HOUR) + start_hour) % 24.0

    base = profile.mean_g_per_kwh + profile.diurnal(hour_of_day)

    # Hour-scale AR(1) noise, linearly interpolated down to the sample step.
    n_hours = int(np.ceil(n * step_s / units.SECONDS_PER_HOUR)) + 2
    innovations = rng.normal(0.0, profile.ar_sigma, size=n_hours)
    ar = np.empty(n_hours)
    ar[0] = innovations[0]
    for i in range(1, n_hours):
        ar[i] = profile.ar_phi * ar[i - 1] + innovations[i]
    hour_knots = np.arange(n_hours) * units.SECONDS_PER_HOUR
    noise = np.interp(t, hour_knots, ar)

    values = np.maximum(base + noise, profile.floor)
    return CarbonIntensityTrace(
        times_s=t, values=values, name=f"{profile.name}-seed{seed}"
    )


def region_trace_for(
    region: str, duration_s: float, seed: int = 0, start_hour: float = 8.0
) -> CarbonIntensityTrace:
    """Convenience wrapper sized to a simulation horizon (plus slack)."""
    days = (duration_s + units.SECONDS_PER_HOUR) / units.SECONDS_PER_DAY
    return generate_region_trace(
        region, days=max(days, 0.05), seed=seed, start_hour=start_hour
    )
