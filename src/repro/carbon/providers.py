"""Pluggable carbon-intensity providers for the online decision service.

The replay engine reads carbon intensity from a static
:class:`~repro.carbon.intensity.CarbonIntensityTrace`. The serving layer
(:mod:`repro.service`) instead sources intensity from a *provider*: an
object that can be polled for fresh data and exposes the data it has as
a ``CarbonIntensityTrace`` snapshot -- so the ``at``/``integrate`` hot
path (and every downstream decision component) reads live feeds through
exactly the code path the replay engine uses.

Three implementations:

- :class:`TraceProvider` wraps an existing trace verbatim. Decisions
  made against it are bit-identical to replaying the same trace, which
  is the anchor of the service's equivalence tests.
- :class:`RecordedFixtureProvider` replays a recorded sample file (JSON)
  as a stream: :meth:`poll` reveals samples whose timestamp has passed,
  so staleness, fallback, and health behaviour are all exercisable in
  fully deterministic tests.
- :class:`ElectricityMapsProvider` is the live client shape: an
  injectable fetch callable (defaulting to the Electricity Maps
  ``/carbon-intensity/forecast`` endpoint over stdlib ``urllib``) with
  timeout, bounded retry + exponential backoff, fallback to the
  last-known-good ring on failure, and a ``max_staleness_s`` health
  guard.

Live providers feed an :class:`IntensityRing`: a bounded, sorted knot
buffer whose :meth:`IntensityRing.snapshot` is a plain
``CarbonIntensityTrace`` -- appends are rare (one poll per forecast
period), reads are the unchanged O(log n) trace queries.

Time domains: every provider method takes ``now_s`` in the *caller's*
clock domain (the service's event time for replayed arrivals, wall
seconds for live deployments). Providers never read the wall clock
themselves; only the retry backoff sleeps, through an injectable
``sleep``.
"""

from __future__ import annotations

import bisect
import json
import os
import time
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.carbon.intensity import CarbonIntensityTrace

#: A forecast/observation point: (time in seconds, intensity in gCO2/kWh).
IntensityPoint = tuple[float, float]


@runtime_checkable
class CarbonIntensityProvider(Protocol):
    """What the decision service needs from a carbon-intensity source."""

    #: Human-readable source name (surfaced in /metrics).
    name: str
    #: Data older than this (seconds) makes the provider unhealthy.
    max_staleness_s: float

    def poll(self, now_s: float) -> bool:
        """Refresh from the source; True if new data landed."""
        ...

    def trace(self) -> CarbonIntensityTrace:
        """Snapshot of all known intensity data as a step-function trace."""
        ...

    def staleness_s(self, now_s: float) -> float:
        """Age of the newest good data relative to ``now_s`` (seconds)."""
        ...

    def healthy(self, now_s: float) -> bool:
        """Whether the feed is fresh enough to decide against."""
        ...


class IntensityRing:
    """Bounded sorted (time, value) knot buffer with trace snapshots.

    Appends keep knots strictly increasing in time: a point at an
    existing knot time *revises* that knot (forecast updates), a point
    earlier than existing knots is dropped (the past is settled), and
    the buffer trims from the front past ``capacity``. The snapshot is
    cached and rebuilt only after a mutation, so the decision hot path
    pays a dict hit, not a trace construction.
    """

    def __init__(self, capacity: int = 4096, name: str = "live") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        self._snapshot: CarbonIntensityTrace | None = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def last_time_s(self) -> float | None:
        return self._times[-1] if self._times else None

    def extend(self, points: Iterable[IntensityPoint]) -> int:
        """Merge forecast points; returns how many knots changed."""
        changed = 0
        for t, value in points:
            t, value = float(t), float(value)
            if value < 0.0:
                raise ValueError(f"carbon intensity must be non-negative: {value}")
            if not self._times or t > self._times[-1]:
                self._times.append(t)
                self._values.append(value)
                changed += 1
                continue
            idx = bisect.bisect_left(self._times, t)
            if idx < len(self._times) and self._times[idx] == t:
                if self._values[idx] != value:  # forecast revision
                    self._values[idx] = value
                    changed += 1
            # Points strictly inside the settled past are dropped.
        if len(self._times) > self.capacity:
            drop = len(self._times) - self.capacity
            del self._times[:drop]
            del self._values[:drop]
            changed += drop
        if changed:
            self._snapshot = None
        return changed

    def snapshot(self) -> CarbonIntensityTrace:
        """The ring as a trace (raises if no knot has ever landed)."""
        if not self._times:
            raise RuntimeError("intensity ring is empty: poll a provider first")
        if self._snapshot is None:
            self._snapshot = CarbonIntensityTrace(
                times_s=np.array(self._times, dtype=float),
                values=np.array(self._values, dtype=float),
                name=self.name,
            )
        return self._snapshot


class TraceProvider:
    """A provider view over a fixed trace (replay parity / demos).

    The trace is ground truth for its whole span, so the provider is
    never stale and :meth:`trace` returns the wrapped object itself --
    reads are bit-identical to direct trace reads by construction.
    """

    max_staleness_s = float("inf")

    def __init__(self, trace: CarbonIntensityTrace) -> None:
        self._trace = trace
        self.name = f"trace:{trace.name}"

    def poll(self, now_s: float) -> bool:
        return False

    def trace(self) -> CarbonIntensityTrace:
        return self._trace

    def staleness_s(self, now_s: float) -> float:
        return 0.0

    def healthy(self, now_s: float) -> bool:
        return True


class RecordedFixtureProvider:
    """Streams a recorded sample file -- deterministic live-feed stand-in.

    The fixture is JSON: ``{"name": ..., "samples": [[t_s, gco2_per_kwh],
    ...]}`` (or a bare list of pairs). :meth:`poll` reveals samples with
    ``t_s <= now_s + forecast_horizon_s`` into the ring; staleness is the
    age of the newest *revealed* sample. The first sample is revealed at
    construction so :meth:`trace` always has a knot.

    ``forecast_horizon_s`` mimics forecast feeds: ``inf`` reveals the
    whole fixture on the first poll (the shape the bit-identity e2e test
    uses -- the service then sees exactly the replay trace), ``0``
    (default) reveals strictly by sample time, which is what the
    staleness-guard tests want.
    """

    def __init__(
        self,
        source: str | os.PathLike | Sequence[IntensityPoint],
        max_staleness_s: float = float("inf"),
        forecast_horizon_s: float = 0.0,
        ring_capacity: int = 65536,
    ) -> None:
        if isinstance(source, (str, os.PathLike)):
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = list(source)
        if isinstance(payload, dict):
            name = str(payload.get("name", "fixture"))
            samples = payload["samples"]
        else:
            name = "fixture"
            samples = payload
        self._samples: list[IntensityPoint] = [
            (float(t), float(v)) for t, v in samples
        ]
        if not self._samples:
            raise ValueError("fixture has no samples")
        if any(
            b[0] <= a[0] for a, b in zip(self._samples, self._samples[1:])
        ):
            raise ValueError("fixture sample times must be strictly increasing")
        self.name = f"fixture:{name}"
        self.max_staleness_s = max_staleness_s
        self.forecast_horizon_s = forecast_horizon_s
        self._ring = IntensityRing(capacity=ring_capacity, name=self.name)
        self._next = 0
        self._last_good_s: float | None = None
        # A trace needs at least one knot before the first poll.
        self._reveal(1)

    def _reveal(self, count: int) -> int:
        take = self._samples[self._next : self._next + count]
        self._next += len(take)
        return self._ring.extend(take)

    def poll(self, now_s: float) -> bool:
        frontier = now_s + self.forecast_horizon_s
        idx = self._next
        while idx < len(self._samples) and self._samples[idx][0] <= frontier:
            idx += 1
        count = idx - self._next
        changed = self._reveal(count) if count else 0
        if changed:
            self._last_good_s = now_s
        return changed > 0

    def trace(self) -> CarbonIntensityTrace:
        return self._ring.snapshot()

    def staleness_s(self, now_s: float) -> float:
        last = self._ring.last_time_s
        assert last is not None  # primed at construction
        return max(now_s - last, 0.0)

    def healthy(self, now_s: float) -> bool:
        return self.staleness_s(now_s) <= self.max_staleness_s

    @property
    def exhausted(self) -> bool:
        """Whether every fixture sample has been revealed."""
        return self._next >= len(self._samples)


class ProviderFetchError(RuntimeError):
    """A live provider exhausted its retries without fresh data."""


def _electricity_maps_fetch(
    zone: str, token: str, horizon_hours: int, timeout_s: float
) -> Callable[[], list[IntensityPoint]]:  # pragma: no cover - network
    """Default fetch against the Electricity Maps forecast API."""
    import urllib.parse
    import urllib.request

    url = (
        "https://api.electricitymaps.com/v3/carbon-intensity/forecast?"
        + urllib.parse.urlencode({"zone": zone, "horizonHours": horizon_hours})
    )

    def fetch() -> list[IntensityPoint]:
        request = urllib.request.Request(url, headers={"auth-token": token})
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            payload = json.loads(response.read().decode("utf-8"))
        points: list[IntensityPoint] = []
        for entry in payload.get("forecast", []):
            stamp = str(entry["datetime"]).replace("Z", "+00:00")
            from datetime import datetime

            epoch = datetime.fromisoformat(stamp).timestamp()
            points.append((epoch, float(entry["carbonIntensity"])))
        return points

    return fetch


class ElectricityMapsProvider:
    """Forecast client: timeout, bounded retry/backoff, stale fallback.

    ``fetch`` returns forecast points in the caller's time domain; when
    omitted, the stdlib ``urllib`` client for the Electricity Maps
    ``/v3/carbon-intensity/forecast`` endpoint is used (epoch seconds;
    pass ``t0_epoch_s`` to rebase onto a service timeline). ``sleep`` is
    injectable so tests can record the backoff schedule instead of
    waiting it out.

    Failure model: each :meth:`poll` tries the fetch up to
    ``1 + max_retries`` times with exponential backoff
    (``backoff_base_s * 2**attempt``, capped at ``backoff_cap_s``). If
    every attempt fails, the ring keeps serving the last-known-good data
    and the poll reports no refresh; :meth:`healthy` turns False once
    ``staleness_s`` exceeds ``max_staleness_s``, at which point the
    service stops answering rather than deciding on arbitrarily old
    intensity.
    """

    def __init__(
        self,
        zone: str,
        token: str | None = None,
        *,
        fetch: Callable[[], Sequence[IntensityPoint]] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 8.0,
        max_staleness_s: float = 3600.0,
        horizon_hours: int = 24,
        ring_capacity: int = 4096,
        t0_epoch_s: float = 0.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base_s < 0.0 or backoff_cap_s < 0.0:
            raise ValueError("backoff must be >= 0")
        self.name = f"electricity-maps:{zone}"
        self.zone = zone
        self.max_staleness_s = max_staleness_s
        self._t0_epoch_s = t0_epoch_s
        if fetch is None:  # pragma: no cover - network client
            if token is None:
                raise ValueError("token is required without an injected fetch")
            fetch = _electricity_maps_fetch(zone, token, horizon_hours, timeout_s)
        self._fetch = fetch
        self._sleep = sleep
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._ring = IntensityRing(capacity=ring_capacity, name=self.name)
        self._last_good_s: float | None = None
        self.last_error: str | None = None
        #: Lifetime telemetry.
        self.polls = 0
        self.failures = 0
        self.retries = 0

    def backoff_s(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based), for tests/docs."""
        return min(self._backoff_base_s * (2.0**attempt), self._backoff_cap_s)

    def poll(self, now_s: float) -> bool:
        self.polls += 1
        for attempt in range(self._max_retries + 1):
            try:
                points = self._fetch()
            except Exception as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                if attempt < self._max_retries:
                    self.retries += 1
                    self._sleep(self.backoff_s(attempt))
                continue
            self._ring.extend(
                (t - self._t0_epoch_s, v) for t, v in points
            )
            self._last_good_s = now_s
            self.last_error = None
            return True
        # All attempts failed: fall back to the last-known-good ring.
        self.failures += 1
        return False

    def trace(self) -> CarbonIntensityTrace:
        if not len(self._ring):
            raise ProviderFetchError(
                f"{self.name}: no data ever fetched ({self.last_error})"
            )
        return self._ring.snapshot()

    def staleness_s(self, now_s: float) -> float:
        if self._last_good_s is None:
            return float("inf")
        return max(now_s - self._last_good_s, 0.0)

    def healthy(self, now_s: float) -> bool:
        return len(self._ring) > 0 and (
            self.staleness_s(now_s) <= self.max_staleness_s
        )
