"""Operational-carbon attribution (paper Sec. II, second pair of equations).

Operational carbon is ``energy x carbon intensity``, with the paper's
attribution rules:

- DRAM: the function is billed its memory share of the whole-DRAM energy
  during both service and keep-alive::

      (M_f / M_DRAM) * (E_service_DRAM + E_keepalive_DRAM) * CI

- CPU: the whole CPU during service, one core (``1/Core_num`` of the package
  idle energy) during keep-alive::

      (E_service_CPU + E_keepalive_CPU / Core_num) * CI

Because the carbon intensity varies minute-to-minute, every function here
integrates the CI trace over the actual interval rather than sampling a
single value -- this is exact for the step-function traces used throughout.
"""

from __future__ import annotations

from repro import units
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.power import EnergyModel
from repro.hardware.specs import ServerSpec


def cpu_service_g(
    server: ServerSpec,
    energy_model: EnergyModel,
    trace: CarbonIntensityTrace,
    t0: float,
    busy_s: float,
    cold_overhead_s: float = 0.0,
) -> float:
    """Operational CPU carbon during service starting at ``t0``.

    The cold-start window (if any) comes first, then the busy window; each is
    integrated against the CI trace at its actual power level.
    """
    cold_p = server.cpu.full_power_w * energy_model.coldstart_power_fraction
    t_cold_end = t0 + cold_overhead_s
    g = trace.energy_to_carbon_g(cold_p, t0, t_cold_end)
    g += trace.energy_to_carbon_g(server.cpu.full_power_w, t_cold_end, t_cold_end + busy_s)
    return g


def cpu_keepalive_g(
    server: ServerSpec,
    energy_model: EnergyModel,
    trace: CarbonIntensityTrace,
    t0: float,
    t1: float,
) -> float:
    """Operational CPU carbon for one keep-alive core over ``[t0, t1]``."""
    del energy_model  # power comes straight from the spec; kept for symmetry
    return trace.energy_to_carbon_g(server.cpu.keepalive_core_power_w, t0, t1)


def dram_g(
    server: ServerSpec,
    mem_gb: float,
    trace: CarbonIntensityTrace,
    t0: float,
    t1: float,
) -> float:
    """Operational DRAM carbon (memory share of the whole complement)."""
    units.require_non_negative(mem_gb, "mem_gb")
    share = mem_gb / server.dram.capacity_gb
    return trace.energy_to_carbon_g(share * server.dram.total_power_w, t0, t1)
