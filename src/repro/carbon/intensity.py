"""Carbon-intensity traces (gCO2/kWh over time).

The paper gathers carbon intensity from Electricity Maps, expands it to
minute intervals, and drives the scheduler with it. This module provides the
trace abstraction: step-wise minute-level (or arbitrary-step) series with

- O(log n) point lookup (:meth:`CarbonIntensityTrace.at`),
- O(log n) exact integration over an interval (:meth:`integrate`), backed by
  a precomputed cumulative integral, used to convert a constant power draw
  over ``[t0, t1]`` into operational carbon without per-minute loops.

Synthetic region generators live in :mod:`repro.carbon.regions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units


@dataclass(frozen=True)
class CarbonIntensityTrace:
    """A right-continuous step function of carbon intensity.

    ``times_s[i]`` is the start of segment ``i``; the value ``values[i]``
    holds until ``times_s[i+1]``.

    **Extension contract.** Outside the knot span the trace extends
    indefinitely as a flat step at the nearest edge value: ``values[0]``
    before the first knot, ``values[-1]`` after the last. Every query
    honours the same extension:

    - :meth:`at` / :meth:`at_many` return ``values[0]`` for ``t <
      times_s[0]`` (and ``values[-1]`` past the end);
    - :meth:`_cum_at` linearly extends the cumulative integral to the
      left at slope ``values[0]``, so it is *negative* before the first
      knot -- that sign is what makes :meth:`integrate` exact for any
      interval: an interval fully left of the trace integrates to
      ``(t1 - t0) * values[0]``, and one straddling the first knot picks
      up exactly ``(times_s[0] - t0) * values[0]`` for its left part;
    - consequently :meth:`mean` over any interval at or before the first
      knot equals ``values[0]``, matching the point queries.

    Boundary cases are pinned by tests (``t < t0``, ``t == t0``,
    interval fully left of the trace) in ``tests/test_carbon_intensity.py``.
    """

    times_s: np.ndarray
    values: np.ndarray
    name: str = "trace"
    _cum: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        t = np.asarray(self.times_s, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.shape != v.shape or t.size == 0:
            raise ValueError("times_s and values must be equal-length 1-D arrays")
        if np.any(np.diff(t) <= 0.0):
            raise ValueError("times_s must be strictly increasing")
        if np.any(v < 0.0):
            raise ValueError("carbon intensity must be non-negative")
        object.__setattr__(self, "times_s", t)
        object.__setattr__(self, "values", v)
        # Cumulative integral of CI dt at each knot, in (g/kWh)*s.
        seg = np.diff(t) * v[:-1]
        cum = np.concatenate(([0.0], np.cumsum(seg)))
        object.__setattr__(self, "_cum", cum)

    # -- constructors -------------------------------------------------------

    @classmethod
    def constant(cls, value: float, name: str | None = None) -> "CarbonIntensityTrace":
        """A flat trace (used by the paper's Fig. 3 CI=50 / CI=300 scenarios)."""
        units.require_non_negative(value, "value")
        return cls(
            times_s=np.array([0.0]),
            values=np.array([float(value)]),
            name=name or f"constant-{value:g}",
        )

    @classmethod
    def from_minute_values(
        cls, values, start_s: float = 0.0, name: str = "trace"
    ) -> "CarbonIntensityTrace":
        """Build a minute-resolution trace from a value sequence."""
        v = np.asarray(values, dtype=float)
        t = start_s + np.arange(v.size) * units.SECONDS_PER_MINUTE
        return cls(times_s=t, values=v, name=name)

    # -- queries ------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Span from the first knot to the last knot."""
        return float(self.times_s[-1] - self.times_s[0])

    def at(self, t: float) -> float:
        """Carbon intensity (g/kWh) at time ``t``."""
        idx = int(np.searchsorted(self.times_s, t, side="right")) - 1
        idx = min(max(idx, 0), self.values.size - 1)
        return float(self.values[idx])

    def at_many(self, t) -> np.ndarray:
        """Vectorised :meth:`at`."""
        t = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times_s, t, side="right") - 1
        idx = np.clip(idx, 0, self.values.size - 1)
        return self.values[idx]

    def _cum_at(self, t: float) -> float:
        """Cumulative integral of CI from the first knot to ``t``.

        Signed: negative for ``t < times_s[0]`` (linear left-extension at
        ``values[0]``), which keeps ``integrate(t0, t1)`` exact and
        consistent with :meth:`at`'s clamp for intervals left of, or
        straddling, the first knot -- see the class docstring.
        """
        t0 = float(self.times_s[0])
        if t <= t0:
            # Flat left-extension at values[0]: signed linear ramp.
            return float((t - t0) * self.values[0])
        idx = int(np.searchsorted(self.times_s, t, side="right")) - 1
        idx = min(idx, self.values.size - 1)
        return float(self._cum[idx] + (t - self.times_s[idx]) * self.values[idx])

    def integrate(self, t0: float, t1: float) -> float:
        """Exact integral of CI(t) dt over ``[t0, t1]`` in (g/kWh)*seconds."""
        if t1 < t0:
            raise ValueError(f"interval is reversed: [{t0}, {t1}]")
        return self._cum_at(t1) - self._cum_at(t0)

    def mean(self, t0: float, t1: float) -> float:
        """Time-average intensity over ``[t0, t1]`` (``at(t0)`` if empty)."""
        if t1 <= t0:
            return self.at(t0)
        return self.integrate(t0, t1) / (t1 - t0)

    def energy_to_carbon_g(self, power_w: float, t0: float, t1: float) -> float:
        """Operational carbon (g) of a constant ``power_w`` load over ``[t0, t1]``.

        Exact under the step-function model: g = P[kW] * integral(CI dt)[h].
        """
        units.require_non_negative(power_w, "power_w")
        integral_g_s_per_kwh = self.integrate(t0, t1)
        return power_w / 1000.0 * integral_g_s_per_kwh / units.SECONDS_PER_HOUR

    # -- statistics (used to validate region calibration) --------------------

    def hourly_series(self) -> np.ndarray:
        """Hour-average intensity values across the trace span.

        The final bucket may be shorter than an hour: a trace spanning
        90 minutes yields the first full hour plus the 30-minute remainder
        (dropping the remainder would skew fluctuation statistics on
        non-integer-hour traces).
        """
        t0, t1 = float(self.times_s[0]), float(self.times_s[-1])
        n_full = int((t1 - t0) // units.SECONDS_PER_HOUR)
        edges = list(t0 + np.arange(n_full + 1) * units.SECONDS_PER_HOUR)
        if t1 - edges[-1] > 1e-9:
            edges.append(t1)
        if len(edges) < 2:  # single-knot trace: one flat bucket
            return np.array([float(self.values[-1])])
        return np.array(
            [self.mean(edges[i], edges[i + 1]) for i in range(len(edges) - 1)],
            dtype=float,
        )

    def hourly_fluctuation_pct(self) -> float:
        """Mean absolute hour-over-hour change, in percent (paper: CISO ~ 6.75%)."""
        h = self.hourly_series()
        if h.size < 2:
            return 0.0
        prev = h[:-1]
        prev = np.where(prev == 0.0, 1.0, prev)
        return float(np.mean(np.abs(np.diff(h)) / prev) * 100.0)

    def std(self) -> float:
        """Standard deviation of the minute-level values (paper: CISO ~ 59.24)."""
        return float(np.std(self.values))

    def shifted(self, offset_s: float) -> "CarbonIntensityTrace":
        """Return a copy with all knots shifted by ``offset_s``."""
        return CarbonIntensityTrace(
            times_s=self.times_s + offset_s, values=self.values, name=self.name
        )
