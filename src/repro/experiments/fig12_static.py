"""Fig. 12: Eco-Old / Eco-New vs full EcoLife vs ORACLE.

The static variants run EcoLife's keep-alive machinery on one generation
only. The paper: Eco-Old's service time and Eco-New's carbon are notably
higher than ORACLE's, while full (multi-generation) EcoLife co-optimizes
both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import SchemePoint, relative_to_opts
from repro.analysis.reporting import scatter_table
from repro.baselines import co2_opt, eco_new, eco_old, oracle, service_time_opt
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_suite,
)


@dataclass(frozen=True)
class Fig12Result:
    points: dict[str, SchemePoint]
    scenario_label: str

    def render(self) -> str:
        return scatter_table(
            self.points,
            title=f"Fig. 12 -- single-generation EcoLife ({self.scenario_label})",
            order=["oracle", "ecolife", "eco-old", "eco-new"],
        )


def run_fig12(scenario: Scenario | None = None) -> Fig12Result:
    """Run Eco-Old / Eco-New against full EcoLife and ORACLE."""
    scenario = scenario or default_scenario()
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": ecolife_factory(),
        "eco-old": eco_old,
        "eco-new": eco_new,
    }
    results = run_suite(schemes, scenario)
    return Fig12Result(
        points=relative_to_opts(results), scenario_label=scenario.label
    )
