"""Fig. 2: service time and carbon split across A_OLD/A_NEW/C_OLD/C_NEW.

Fixed 10-minute keep-alive; warm execution. Old hardware can lower the
overall carbon footprint (cheaper keep-alive) at the cost of slower
execution; the C pair shows a small performance impact with visible carbon
savings for Graph-BFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.reporting import ascii_table
from repro.carbon import CarbonIntensityTrace, CarbonModel
from repro.hardware.catalog import A_NEW, A_OLD, C_NEW, C_OLD
from repro.hardware.specs import ServerSpec
from repro.workloads.sebs import MOTIVATION_FUNCTIONS

CI_REF = 250.0
KEEPALIVE_S = 10.0 * units.SECONDS_PER_MINUTE

#: The x-axis groups of the paper's figure.
SERVERS: tuple[ServerSpec, ...] = (A_OLD, A_NEW, C_OLD, C_NEW)


@dataclass(frozen=True)
class Fig02Point:
    function: str
    server: str
    service_time_s: float
    keepalive_co2_g: float
    service_co2_g: float

    @property
    def total_co2_g(self) -> float:
        return self.keepalive_co2_g + self.service_co2_g


@dataclass(frozen=True)
class Fig02Result:
    points: list[Fig02Point]

    def get(self, function: str, server: str) -> Fig02Point:
        for p in self.points:
            if p.function == function and p.server == server:
                return p
        raise KeyError((function, server))

    def saving_pct(self, function: str, old: str, new: str) -> float:
        """Carbon saving of ``old`` relative to ``new`` (positive = saves)."""
        a, b = self.get(function, old), self.get(function, new)
        return (1.0 - a.total_co2_g / b.total_co2_g) * 100.0

    def slowdown_pct(self, function: str, old: str, new: str) -> float:
        a, b = self.get(function, old), self.get(function, new)
        return (a.service_time_s / b.service_time_s - 1.0) * 100.0

    def render(self) -> str:
        rows = [
            [
                p.function,
                p.server,
                p.service_time_s,
                p.keepalive_co2_g,
                p.service_co2_g,
                p.total_co2_g,
            ]
            for p in self.points
        ]
        return ascii_table(
            ["function", "server", "svc time s", "KA g", "svc g", "total g"],
            rows,
            title="Fig. 2 -- hardware generations at fixed 10-min keep-alive",
            prec=4,
        )


def run_fig02(ci: float = CI_REF) -> Fig02Result:
    """Compute service time and carbon split per hardware generation."""
    model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
    points = []
    for func in MOTIVATION_FUNCTIONS:
        for server in SERVERS:
            service = model.service(
                server, func.mem_gb, 0.0, func.exec_time_s(server)
            )
            ka = model.keepalive(server, func.mem_gb, 0.0, KEEPALIVE_S)
            points.append(
                Fig02Point(
                    function=func.name,
                    server=server.key,
                    service_time_s=func.service_time_s(server, cold=False),
                    keepalive_co2_g=ka.total,
                    service_co2_g=service.total,
                )
            )
    return Fig02Result(points=points)
