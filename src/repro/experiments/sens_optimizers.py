"""In-text optimizer comparison: PSO vs GA vs SA (paper Sec. IV-C).

The paper: PSO reduces carbon by 17.4% and service time by 7.2% compared to
a GA (crossover 0.6, mutation 0.01, population 15), and carbon by 6.2% /
service time by 13.46% compared to SA (T0=100, T_stop=1, factor 0.9). All
three run EcoLife's full machinery; only the KDM's meta-heuristic differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.core import EcoLifeConfig
from repro.experiments.common import Scenario, default_scenario, run_suite


@dataclass(frozen=True)
class OptimizerComparisonResult:
    service_s: dict[str, float]
    carbon_g: dict[str, float]
    scenario_label: str

    def pso_saving_over(self, other: str) -> tuple[float, float]:
        """(carbon %, service %) saving of PSO-EcoLife over ``other``."""
        co2 = (1.0 - self.carbon_g["ecolife"] / self.carbon_g[other]) * 100.0
        svc = (1.0 - self.service_s["ecolife"] / self.service_s[other]) * 100.0
        return co2, svc

    def render(self) -> str:
        rows = [
            [name, self.service_s[name], self.carbon_g[name]]
            for name in self.service_s
        ]
        table = ascii_table(
            ["scheme", "svc (s)", "co2 (g)"],
            rows,
            title=f"PSO vs GA vs SA ({self.scenario_label})",
        )
        ga_co2, ga_svc = self.pso_saving_over("ecolife-ga")
        sa_co2, sa_svc = self.pso_saving_over("ecolife-sa")
        return (
            f"{table}\n"
            f"PSO vs GA: {ga_co2:+.1f}% carbon, {ga_svc:+.1f}% service "
            f"(paper: 17.4 / 7.2)\n"
            f"PSO vs SA: {sa_co2:+.1f}% carbon, {sa_svc:+.1f}% service "
            f"(paper: 6.2 / 13.46)"
        )


def run_optimizer_comparison(
    scenario: Scenario | None = None,
    config: EcoLifeConfig | None = None,
    n_workers: int = 1,
) -> OptimizerComparisonResult:
    """Run PSO-, GA- and SA-driven EcoLife on the same scenario.

    The three schemes are sweep-runner registry names, so ``n_workers``
    fans them out over a process pool (identical numbers to the serial
    path).
    """
    scenario = scenario or default_scenario()
    schemes = {
        "ecolife": "ecolife",
        "ecolife-ga": "ecolife-ga",
        "ecolife-sa": "ecolife-sa",
    }
    results = run_suite(schemes, scenario, n_workers=n_workers, config=config)
    return OptimizerComparisonResult(
        service_s={n: r.mean_service_s for n, r in results.items()},
        carbon_g={n: r.total_carbon_g for n, r in results.items()},
        scenario_label=scenario.label,
    )
