"""Public scheduler registry for the sweep runner.

Jobs reference schedulers by *name* so they stay picklable across
process and machine boundaries (:class:`~repro.experiments.runner.RunnerJob`
ships only the string; the executing worker resolves it back to a
factory here). Historically the name table was a hard-coded dict inside
``experiments/runner.py``; this module makes it an open registry so
out-of-tree schedulers -- learned policies, remote-worker plugins --
can join a sweep without editing runner code::

    from repro.experiments.registry import register_scheduler

    @register_scheduler("my-policy")
    def _make_my_policy(config):
        return MyPolicyScheduler(config or EcoLifeConfig())

Distributed workers load such plugin modules with
``ecolife work tcp://host:port --import my_package.schedulers`` -- the
registration side effect runs at import time, after which leased jobs
naming ``my-policy`` resolve exactly like the built-ins.

Factories take ``EcoLifeConfig | None`` (baseline schedulers are free
to ignore it) and must return a fresh scheduler per call: the engine
binds schedulers to one run's environment, so sharing instances across
runs would leak state between scenarios.
"""

from __future__ import annotations

import types
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:
    from repro.core import EcoLifeConfig
    from repro.simulator import BaseScheduler

#: A named scheduler recipe: ``factory(config) -> fresh scheduler``.
SchedulerFactory = Callable[["EcoLifeConfig | None"], "BaseScheduler"]

#: The live name table. Exposed read-only through
#: :func:`list_schedulers` / :func:`scheduler_factory`; mutate it only
#: through :func:`register_scheduler` / :func:`unregister_scheduler` so
#: double registrations stay loud.
_REGISTRY: dict[str, SchedulerFactory] = {}

#: Read-only live view of the registry, for callers that want mapping
#: semantics (``name in REGISTRY``, ``REGISTRY[name]``) without write
#: access. :data:`repro.experiments.runner.SCHEDULERS` aliases this.
REGISTRY: Mapping[str, SchedulerFactory] = types.MappingProxyType(_REGISTRY)


def register_scheduler(
    name: str, *, replace: bool = False
) -> Callable[[SchedulerFactory], SchedulerFactory]:
    """Class/function decorator: register ``factory`` under ``name``.

    Registering an already-taken name raises unless ``replace=True`` --
    a silent overwrite would make sweep results depend on module import
    order, which is exactly the ambiguity a by-name job protocol cannot
    afford.
    """
    if not name or name != name.strip():
        raise ValueError(f"scheduler name must be a non-empty token, got {name!r}")

    def decorate(factory: SchedulerFactory) -> SchedulerFactory:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not factory and not replace:
            raise ValueError(
                f"scheduler {name!r} is already registered "
                f"({existing!r}); pass replace=True to override"
            )
        _REGISTRY[name] = factory
        return factory

    return decorate


def unregister_scheduler(name: str) -> None:
    """Remove ``name`` from the registry (missing names are a no-op).

    Exists for tests and plugin reloads; the built-in names re-register
    when :mod:`repro.experiments.runner` is (re)imported.
    """
    _REGISTRY.pop(name, None)


def list_schedulers() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def scheduler_factory(name: str) -> SchedulerFactory:
    """Look up one factory; unknown names raise with the valid options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {list(list_schedulers())}"
        ) from None


def create_scheduler(
    name: str, config: "EcoLifeConfig | None" = None
) -> "BaseScheduler":
    """Instantiate a fresh registered scheduler by name."""
    return scheduler_factory(name)(config)
