"""Embodied-carbon estimation sensitivity (paper Sec. VI-C).

Two in-text robustness claims:

1. **+/-10% embodied flexibility**: "the benefits of EcoLife remain within
   7% (carbon) and 10% (service time) of ORACLE even if we allow a 10%
   estimation flexibility range for the embodied carbon footprint." We
   scale every embodied constant by 0.9 / 1.0 / 1.1 and re-measure the
   EcoLife-vs-ORACLE margins.
2. **Other platform components**: adding storage/motherboard/PSU embodied
   carbon (attributed by memory share, the paper's proposed extension)
   keeps EcoLife "within 5.63% of ORACLE in carbon and 8.2% in service
   time."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase
from repro.experiments.common import Scenario, default_scenario

EMBODIED_SCALES: tuple[float, ...] = (0.9, 1.0, 1.1)
#: Extra platform embodied carbon (storage + motherboard + PSU), kgCO2e per
#: server -- roughly 25% of the compute-platform embodied in the Boavizta
#: breakdowns.
PLATFORM_EXTRA_KG = 80.0


@dataclass(frozen=True)
class SensitivityPoint:
    label: str
    service_pct_vs_oracle: float
    carbon_pct_vs_oracle: float


@dataclass(frozen=True)
class EmbodiedSensitivityResult:
    points: list[SensitivityPoint]
    scenario_label: str

    def get(self, label: str) -> SensitivityPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    @property
    def max_service_margin_pct(self) -> float:
        return max(p.service_pct_vs_oracle for p in self.points)

    @property
    def max_carbon_margin_pct(self) -> float:
        return max(p.carbon_pct_vs_oracle for p in self.points)

    def render(self) -> str:
        rows = [
            [p.label, p.service_pct_vs_oracle, p.carbon_pct_vs_oracle]
            for p in self.points
        ]
        table = ascii_table(
            ["variant", "svc +% vs oracle", "co2 +% vs oracle"],
            rows,
            title=f"Embodied-carbon sensitivity ({self.scenario_label})",
        )
        return (
            f"{table}\nmax margins: {self.max_service_margin_pct:.1f}% service, "
            f"{self.max_carbon_margin_pct:.1f}% carbon "
            f"(paper: <=10% / <=7% under +/-10% flexibility)"
        )


def _measure_many(
    variants: list[tuple[str, Scenario]], n_workers: int
) -> list[SensitivityPoint]:
    """One EcoLife-vs-ORACLE margin per labelled scenario variant.

    All (variant, scheme) replays become one
    :class:`~repro.experiments.runner.ParallelRunner` job list, so
    ``n_workers`` parallelises across variants *and* schemes with numbers
    identical to the serial path.
    """
    from repro.experiments.runner import ParallelRunner, RunnerJob

    jobs = []
    for _, scenario in variants:
        jobs.append(RunnerJob(scheduler="oracle", scenario=scenario))
        jobs.append(RunnerJob(scheduler="ecolife", scenario=scenario))
    summaries = ParallelRunner(n_workers=n_workers).run(jobs)
    points = []
    for i, (label, _) in enumerate(variants):
        orc, eco = summaries[2 * i], summaries[2 * i + 1]
        points.append(
            SensitivityPoint(
                label=label,
                service_pct_vs_oracle=pct_increase(
                    eco.mean_service_s, orc.mean_service_s
                ),
                carbon_pct_vs_oracle=pct_increase(
                    eco.total_carbon_g, orc.total_carbon_g
                ),
            )
        )
    return points


def run_embodied_sensitivity(
    scenario: Scenario | None = None, n_workers: int = 1
) -> EmbodiedSensitivityResult:
    """+/-10% embodied scaling (claim 1)."""
    scenario = scenario or default_scenario()
    variants = []
    for scale in EMBODIED_SCALES:
        pair = scenario.pair.map_servers(lambda s: s.scaled_embodied(scale))
        variants.append(
            (
                f"embodied x{scale:g}",
                scenario.with_pair(pair, label=f"{scenario.label}|emb{scale:g}"),
            )
        )
    return EmbodiedSensitivityResult(
        points=_measure_many(variants, n_workers), scenario_label=scenario.label
    )


def run_component_sensitivity(
    scenario: Scenario | None = None,
    extra_kg: float = PLATFORM_EXTRA_KG,
    n_workers: int = 1,
) -> EmbodiedSensitivityResult:
    """Storage/motherboard/PSU embodied carbon (claim 2)."""
    scenario = scenario or default_scenario()
    pair = scenario.pair.map_servers(lambda s: s.with_platform_overhead(extra_kg))
    variants = [
        ("cpu+dram only", scenario),
        (
            f"+platform {extra_kg:g} kg",
            scenario.with_pair(pair, label=f"{scenario.label}|platform{extra_kg:g}"),
        ),
    ]
    return EmbodiedSensitivityResult(
        points=_measure_many(variants, n_workers), scenario_label=scenario.label
    )
