"""Fig. 1: keep-alive vs service carbon for three functions, k = 2..10 min.

"The carbon footprint (carbon footprint during keeping-alive and service)
for three serverless functions for different keep-alive periods" on the new
node (A_NEW). The key observation: the keep-alive share grows with k and
can exceed the service share (Graph-BFS moves from ~18% at 2 min to ~52%
at 10 min in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.reporting import ascii_table
from repro.carbon import CarbonIntensityTrace, CarbonModel
from repro.hardware.catalog import PAIR_A
from repro.workloads.sebs import MOTIVATION_FUNCTIONS

#: The x-axis of the paper's figure.
KEEPALIVE_MINUTES: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0)
#: Reference carbon intensity (CISO mean level).
CI_REF = 250.0


@dataclass(frozen=True)
class Fig01Point:
    function: str
    keepalive_min: float
    keepalive_co2_g: float
    service_co2_g: float

    @property
    def total_g(self) -> float:
        return self.keepalive_co2_g + self.service_co2_g

    @property
    def keepalive_fraction(self) -> float:
        return self.keepalive_co2_g / self.total_g


@dataclass(frozen=True)
class Fig01Result:
    points: list[Fig01Point]

    def series(self, function: str) -> list[Fig01Point]:
        return [p for p in self.points if p.function == function]

    def fraction(self, function: str, keepalive_min: float) -> float:
        for p in self.points:
            if p.function == function and p.keepalive_min == keepalive_min:
                return p.keepalive_fraction
        raise KeyError((function, keepalive_min))

    def render(self) -> str:
        rows = [
            [
                p.function,
                p.keepalive_min,
                p.keepalive_co2_g,
                p.service_co2_g,
                p.keepalive_fraction * 100.0,
            ]
            for p in self.points
        ]
        return ascii_table(
            ["function", "k (min)", "keep-alive g", "service g", "KA share %"],
            rows,
            title="Fig. 1 -- keep-alive vs service carbon on A_NEW (CI=250)",
            prec=4,
        )


def run_fig01(ci: float = CI_REF) -> Fig01Result:
    """Compute the figure analytically from the carbon model."""
    model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
    server = PAIR_A.new
    points = []
    for func in MOTIVATION_FUNCTIONS:
        service = model.service(server, func.mem_gb, 0.0, func.exec_time_s(server))
        for k_min in KEEPALIVE_MINUTES:
            ka = model.keepalive(server, func.mem_gb, 0.0, units.minutes(k_min))
            points.append(
                Fig01Point(
                    function=func.name,
                    keepalive_min=k_min,
                    keepalive_co2_g=ka.total,
                    service_co2_g=service.total,
                )
            )
    return Fig01Result(points=points)
