"""Decision-making overhead (paper Sec. VI-A).

The paper deploys the PSO controller on a 16-core Intel Skylake-SP node and
reports EcoLife's decision overhead at "less than 0.4% of service time, and
1.2% of carbon footprint". We measure real wall-clock time spent inside
EcoLife's decision methods during the trace replay, and convert it to
carbon with a controller power model.

Unlike the other multi-run drivers this one deliberately stays off the
``ParallelRunner`` path: it is a single replay whose *measurement* is the
wall clock itself, which process-pool scheduling would distort.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Scenario, default_scenario, ecolife_factory, run_scheduler

#: Controller node (Sec. V): Intel Skylake-SP, 16 cores, 64 GB.
CONTROLLER_POWER_W = 150.0


@dataclass(frozen=True)
class OverheadResult:
    total_decision_wall_s: float
    total_service_s: float
    decision_carbon_g: float
    total_carbon_g: float
    mean_decision_ms: float
    scenario_label: str

    @property
    def service_overhead_pct(self) -> float:
        """Decision wall time as % of cumulative service time (paper <0.4%)."""
        return self.total_decision_wall_s / self.total_service_s * 100.0

    @property
    def carbon_overhead_pct(self) -> float:
        """Controller carbon as % of workload carbon (paper <1.2%)."""
        return self.decision_carbon_g / self.total_carbon_g * 100.0

    def render(self) -> str:
        return "\n".join(
            [
                f"Decision overhead ({self.scenario_label})",
                f"  mean decision latency : {self.mean_decision_ms:.3f} ms",
                f"  total decision time   : {self.total_decision_wall_s:.3f} s "
                f"({self.service_overhead_pct:.3f}% of service time; paper <0.4%)",
                f"  controller carbon     : {self.decision_carbon_g:.4f} g "
                f"({self.carbon_overhead_pct:.3f}% of workload carbon; paper <1.2%)",
            ]
        )


def run_overhead(scenario: Scenario | None = None) -> OverheadResult:
    """Measure EcoLife's wall-clock decision overhead during replay."""
    scenario = scenario or default_scenario()
    res = run_scheduler(ecolife_factory(), scenario)
    wall = res.total_decision_wall_s
    mean_ci = scenario.ci_trace.mean(0.0, max(scenario.trace.duration_s, 1.0))
    decision_carbon = CONTROLLER_POWER_W * wall / 3600.0 * mean_ci / 1000.0
    return OverheadResult(
        total_decision_wall_s=wall,
        total_service_s=res.total_service_s,
        decision_carbon_g=decision_carbon,
        total_carbon_g=res.total_carbon_g,
        mean_decision_ms=wall / max(len(res), 1) * 1000.0,
        scenario_label=scenario.label,
    )
