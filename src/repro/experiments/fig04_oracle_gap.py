"""Fig. 4: CO2-Opt / Oracle / Service-Time-Opt / Energy-Opt scatter.

All four theoretical solutions on the default scenario, plotted as
(% carbon increase w.r.t. CO2-Opt, % service increase w.r.t.
Service-Time-Opt). The take-aways the paper draws: the single-metric optima
sit far apart, Energy-Opt is not a substitute for CO2-Opt (it ignores
embodied carbon and CI variation), and even the joint ORACLE is several
percent away from both single-metric optima -- so co-optimization is a real
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import SchemePoint, relative_to_opts
from repro.analysis.reporting import scatter_table
from repro.baselines import co2_opt, energy_opt, oracle, service_time_opt
from repro.experiments.common import Scenario, default_scenario, run_suite

SCHEMES = {
    "co2-opt": co2_opt,
    "service-time-opt": service_time_opt,
    "energy-opt": energy_opt,
    "oracle": oracle,
}


@dataclass(frozen=True)
class Fig04Result:
    points: dict[str, SchemePoint]
    scenario_label: str

    def render(self) -> str:
        return scatter_table(
            self.points,
            title=f"Fig. 4 -- oracle landscape ({self.scenario_label})",
            order=list(SCHEMES),
        )


def run_fig04(scenario: Scenario | None = None) -> Fig04Result:
    """Run the four oracle solutions and compute their scatter."""
    scenario = scenario or default_scenario()
    results = run_suite(SCHEMES, scenario)
    return Fig04Result(
        points=relative_to_opts(results), scenario_label=scenario.label
    )
