"""Fig. 7: EcoLife against the oracle landscape.

The paper's headline effectiveness result: EcoLife is the closest scheme to
ORACLE -- within 7.7% (service time) and 5.5% (carbon) points of it --
while the single-metric optima and Energy-Opt are far away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import SchemePoint, gap_pp, relative_to_opts
from repro.analysis.reporting import scatter_table
from repro.baselines import co2_opt, energy_opt, oracle, service_time_opt
from repro.core import EcoLifeConfig
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_suite,
)


@dataclass(frozen=True)
class Fig07Result:
    points: dict[str, SchemePoint]
    scenario_label: str

    @property
    def ecolife_gap_to_oracle_pp(self) -> tuple[float, float]:
        """(service, carbon) gap of EcoLife over ORACLE in percentage points.

        Paper: 7.7 (service) and 5.5 (carbon).
        """
        return gap_pp(self.points, "ecolife", "oracle")

    def render(self) -> str:
        svc, co2 = self.ecolife_gap_to_oracle_pp
        table = scatter_table(
            self.points,
            title=f"Fig. 7 -- EcoLife vs oracles ({self.scenario_label})",
            order=[
                "co2-opt",
                "service-time-opt",
                "energy-opt",
                "oracle",
                "ecolife",
            ],
        )
        return (
            f"{table}\n"
            f"EcoLife gap to ORACLE: +{svc:.1f} pp service, +{co2:.1f} pp carbon "
            f"(paper: +7.7 / +5.5)"
        )


def run_fig07(
    scenario: Scenario | None = None, config: EcoLifeConfig | None = None
) -> Fig07Result:
    """Run EcoLife plus all oracle solutions (the headline figure)."""
    scenario = scenario or default_scenario()
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "energy-opt": energy_opt,
        "oracle": oracle,
        "ecolife": ecolife_factory(config),
    }
    results = run_suite(schemes, scenario)
    return Fig07Result(
        points=relative_to_opts(results), scenario_label=scenario.label
    )
