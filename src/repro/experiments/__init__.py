"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver exposes a ``run_*`` function returning a structured result with
a ``render()`` method that prints the same rows/series the paper's figure
shows. The :data:`EXPERIMENTS` registry maps experiment ids to drivers for
the CLI and the benchmark harness.
"""

from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    paper_schemes,
    quick_scenario,
    run_scheduler,
    run_suite,
    trace_scenario,
    workload_scenario,
)
from repro.experiments.registry import (
    create_scheduler,
    is_registered,
    list_schedulers,
    register_scheduler,
    scheduler_factory,
    unregister_scheduler,
)
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    SCHEDULERS,
    Executor,
    GridResult,
    JobFailedError,
    LocalPoolExecutor,
    ParallelRunner,
    ResultCache,
    ResultSummary,
    RunnerJob,
    ScenarioGrid,
    ScenarioSpec,
    SummarySchemaError,
    WorkerCrashError,
    execute_job,
    execute_job_with_records,
    make_scheduler,
)
from repro.experiments.fig01_motivation import run_fig01
from repro.experiments.fig02_hardware import run_fig02
from repro.experiments.fig03_tradeoff import run_fig03
from repro.experiments.fig04_oracle_gap import run_fig04
from repro.experiments.fig07_effectiveness import run_fig07
from repro.experiments.fig08_cdf import run_fig08
from repro.experiments.fig09_single_gen import run_fig09
from repro.experiments.fig10_dpso_ablation import run_fig10
from repro.experiments.fig11_warmpool import run_fig11
from repro.experiments.fig12_static import run_fig12
from repro.experiments.fig13_pairs import run_fig13
from repro.experiments.fig14_regions import run_fig14
from repro.experiments.sens_embodied import (
    run_component_sensitivity,
    run_embodied_sensitivity,
)
from repro.experiments.sens_optimizers import run_optimizer_comparison
from repro.experiments.sens_overhead import run_overhead
from repro.experiments.sens_workloads import run_workload_sensitivity

#: Experiment id -> zero-config driver. Drivers also accept an explicit
#: Scenario for scaled-down runs (used by the benchmark harness).
EXPERIMENTS = {
    "fig1": run_fig01,
    "fig2": run_fig02,
    "fig3": run_fig03,
    "fig4": run_fig04,
    "fig7": run_fig07,
    "fig8": run_fig08,
    "fig9": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "optimizers": run_optimizer_comparison,
    "overhead": run_overhead,
    "embodied": run_embodied_sensitivity,
    "components": run_component_sensitivity,
    "workloads": run_workload_sensitivity,
}

__all__ = [
    "Scenario",
    "default_scenario",
    "workload_scenario",
    "trace_scenario",
    "quick_scenario",
    "run_scheduler",
    "run_suite",
    "paper_schemes",
    "ecolife_factory",
    "EXPERIMENTS",
    "ScenarioSpec",
    "ScenarioGrid",
    "RunnerJob",
    "ResultSummary",
    "ResultCache",
    "ParallelRunner",
    "GridResult",
    "SummarySchemaError",
    "WorkerCrashError",
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "register_scheduler",
    "unregister_scheduler",
    "list_schedulers",
    "is_registered",
    "scheduler_factory",
    "create_scheduler",
    "Executor",
    "LocalPoolExecutor",
    "JobFailedError",
    "execute_job",
    "execute_job_with_records",
    "run_fig01",
    "run_fig02",
    "run_fig03",
    "run_fig04",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_optimizer_comparison",
    "run_overhead",
    "run_embodied_sensitivity",
    "run_component_sensitivity",
    "run_workload_sensitivity",
]
