"""Fig. 9: EcoLife vs the fixed single-generation schemes.

NEW-ONLY and OLD-ONLY run the OpenWhisk 10-minute keep-alive policy on one
generation. The paper reports EcoLife saving ~12.7% service time over
OLD-ONLY and ~8.6% carbon over NEW-ONLY thanks to multi-generation
keep-alive and adaptive periods.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import SchemePoint, relative_to_opts
from repro.analysis.reporting import scatter_table
from repro.baselines import co2_opt, new_only, old_only, oracle, service_time_opt
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_suite,
)


@dataclass(frozen=True)
class Fig09Result:
    points: dict[str, SchemePoint]
    scenario_label: str

    @property
    def service_saving_vs_old_only_pct(self) -> float:
        """EcoLife's service-time saving over OLD-ONLY (paper: ~12.7%)."""
        return (
            1.0 - self.points["ecolife"].service_s / self.points["old-only"].service_s
        ) * 100.0

    @property
    def carbon_saving_vs_new_only_pct(self) -> float:
        """EcoLife's carbon saving over NEW-ONLY (paper: ~8.6%)."""
        return (
            1.0 - self.points["ecolife"].carbon_g / self.points["new-only"].carbon_g
        ) * 100.0

    def render(self) -> str:
        table = scatter_table(
            self.points,
            title=f"Fig. 9 -- single-generation baselines ({self.scenario_label})",
            order=["oracle", "ecolife", "new-only", "old-only"],
        )
        return (
            f"{table}\n"
            f"EcoLife saves {self.service_saving_vs_old_only_pct:.1f}% service "
            f"vs OLD-ONLY (paper 12.7%) and "
            f"{self.carbon_saving_vs_new_only_pct:.1f}% carbon vs NEW-ONLY "
            f"(paper 8.6%)"
        )


def run_fig09(scenario: Scenario | None = None) -> Fig09Result:
    """Run EcoLife against the fixed NEW-ONLY / OLD-ONLY baselines."""
    scenario = scenario or default_scenario()
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": ecolife_factory(),
        "new-only": new_only,
        "old-only": old_only,
    }
    results = run_suite(schemes, scenario)
    return Fig09Result(
        points=relative_to_opts(results), scenario_label=scenario.label
    )
