"""Parallel scenario-sweep runner.

Every paper figure replays full traces; multi-region / multi-pair studies
multiply that by a scenario grid. This module makes such sweeps practical:

- :class:`ScenarioSpec` -- a small, picklable recipe for one scenario
  (:func:`repro.experiments.common.default_scenario` parameters), built
  lazily inside the worker process so the grid ships cheaply.
- :class:`ScenarioGrid` -- expands cross-products of regions x hardware
  pairs x seeds x pool capacities into specs.
- :class:`RunnerJob` -- one (scheduler, scenario) unit of work. Schedulers
  are referenced by registry name so jobs stay picklable; per-job
  determinism comes from the spec's seed plus the scheduler's own config
  seed (the KDM already derives per-function RNGs stably from those).
- :class:`ParallelRunner` -- executes jobs through a pluggable
  :class:`Executor` backend: in-process for ``n_workers=1``, a
  :class:`LocalPoolExecutor` over
  :class:`concurrent.futures.ProcessPoolExecutor` for ``n_workers>1``,
  or any user-supplied backend (e.g.
  :class:`repro.distributed.TcpExecutor`, which leases jobs to TCP
  worker clients on other hosts). Every backend runs the identical
  :func:`execute_job`, so results are byte-identical across all of
  them. An optional on-disk :class:`ResultCache` keyed by (scenario
  label, scheduler name, config hash) makes reruns free.

Workers return :class:`ResultSummary`, a frozen aggregate that mirrors the
``SimulationResult`` properties the analysis layer consumes
(``total_carbon_g``, ``mean_service_s``, ``warm_ratio``, ...), so the
"% vs oracle" helpers work on both.

Scheduler names resolve through the open registry in
:mod:`repro.experiments.registry`; the paper's 13 built-in schemes are
registered below, and plugins add their own with
``@register_scheduler("name")``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import pathlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments.common import Scenario, run_scheduler, workload_scenario
from repro.experiments.registry import (
    REGISTRY,
    create_scheduler,
    is_registered,
    list_schedulers,
    register_scheduler,
)
from repro.hardware.specs import Generation
from repro.simulator import BaseScheduler, RecordArrays, SimulationResult
from repro.workloads.generators import AZURE_WORKLOAD, WorkloadSpec

# ---------------------------------------------------------------------------
# Built-in schedulers (names -> factories, via the public registry).
# ---------------------------------------------------------------------------


@register_scheduler("ecolife")
def _make_ecolife(config: EcoLifeConfig | None) -> BaseScheduler:
    return EcoLifeScheduler(config or EcoLifeConfig())


@register_scheduler("ecolife-no-dpso")
def _make_ecolife_no_dpso(config: EcoLifeConfig | None) -> BaseScheduler:
    return EcoLifeScheduler.without_dpso(config)


@register_scheduler("ecolife-no-adjust")
def _make_ecolife_no_adjust(config: EcoLifeConfig | None) -> BaseScheduler:
    return EcoLifeScheduler.without_adjustment(config)


@register_scheduler("eco-old")
def _make_eco_old(config: EcoLifeConfig | None) -> BaseScheduler:
    return EcoLifeScheduler.single_generation(Generation.OLD, config)


@register_scheduler("eco-new")
def _make_eco_new(config: EcoLifeConfig | None) -> BaseScheduler:
    return EcoLifeScheduler.single_generation(Generation.NEW, config)


@register_scheduler("ecolife-ga")
def _make_ecolife_ga(config: EcoLifeConfig | None) -> BaseScheduler:
    from repro.baselines import ga_scheduler

    return ga_scheduler(config)


@register_scheduler("ecolife-sa")
def _make_ecolife_sa(config: EcoLifeConfig | None) -> BaseScheduler:
    from repro.baselines import sa_scheduler

    return sa_scheduler(config)


@register_scheduler("co2-opt")
def _make_co2_opt(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001 - baselines ignore the config
    from repro.baselines import co2_opt

    return co2_opt()


@register_scheduler("service-time-opt")
def _make_service_time_opt(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001
    from repro.baselines import service_time_opt

    return service_time_opt()


@register_scheduler("energy-opt")
def _make_energy_opt(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001
    from repro.baselines import energy_opt

    return energy_opt()


@register_scheduler("oracle")
def _make_oracle(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001
    from repro.baselines import oracle

    return oracle()


@register_scheduler("new-only")
def _make_new_only(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001
    from repro.baselines import new_only

    return new_only()


@register_scheduler("old-only")
def _make_old_only(config: EcoLifeConfig | None) -> BaseScheduler:  # noqa: ARG001
    from repro.baselines import old_only

    return old_only()


#: Back-compat alias: the live (read-only) registry mapping. Jobs
#: reference schedulers by name, and the executing worker resolves the
#: name through :mod:`repro.experiments.registry`; register new entries
#: with ``@register_scheduler("name")``, not by mutating this mapping.
SCHEDULERS = REGISTRY

#: The built-in (paper) scheme names, frozen at import time in their
#: historical order. Dynamically registered plugins appear in
#: :func:`repro.experiments.registry.list_schedulers`, not here.
SCHEDULER_NAMES: tuple[str, ...] = tuple(SCHEDULERS)


def make_scheduler(name: str, config: EcoLifeConfig | None = None) -> BaseScheduler:
    """Instantiate a registered scheduler by name.

    Thin back-compat wrapper over
    :func:`repro.experiments.registry.create_scheduler`.
    """
    return create_scheduler(name, config)


# ---------------------------------------------------------------------------
# Scenario specs and grids.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe for one :class:`Scenario`.

    Mirrors :func:`workload_scenario`'s parameters; ``build()`` runs in
    the worker so only these few scalars (plus the workload handle)
    cross the process boundary. ``workload`` selects the trace family
    from the :mod:`repro.workloads.generators` registry; the default is
    the paper's Azure-shaped synthesizer, whose label token is plain
    ``azure`` so pre-existing cache identities stay valid.
    """

    n_functions: int = 60
    hours: float = 6.0
    seed: int = 7
    region: str = "CAL"
    pair: str = "A"
    pool_gb: float = 32.0
    kmax_minutes: float = 30.0
    start_hour: float = 8.0
    workload: WorkloadSpec = AZURE_WORKLOAD

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", WorkloadSpec.of(self.workload))

    @property
    def label(self) -> str:
        # Every build parameter appears in the label -- it doubles as the
        # scenario's cache identity (see ResultCache).
        return (
            f"{self.workload.label}-n{self.n_functions}-h{self.hours:g}"
            f"-s{self.seed}-{self.region}-pair{self.pair}"
            f"-p{self.pool_gb:g}-k{self.kmax_minutes:g}-sh{self.start_hour:g}"
        )

    def build(self) -> Scenario:
        return workload_scenario(
            workload=self.workload,
            n_functions=self.n_functions,
            hours=self.hours,
            seed=self.seed,
            region=self.region,
            pair=self.pair,
            pool_gb=self.pool_gb,
            kmax_minutes=self.kmax_minutes,
            start_hour=self.start_hour,
            label=self.label,
        )


@dataclass(frozen=True)
class ScenarioGrid:
    """Cross-product of scenario axes, expanded in deterministic order.

    Axis order (outer to inner): workload, region, pair, seed, pool
    capacity, n_functions, hours, kmax -- the expansion order is part of
    the contract so cached and fresh runs line up positionally. The
    workload axis takes :class:`~repro.workloads.generators.WorkloadSpec`
    values (or bare generator names / ``name:k=v,...`` strings); the
    scalar axes (``n_functions``, ``hours``, ``kmax_minutes``) also
    accept a single scalar, which is normalised to a one-element tuple.
    """

    regions: tuple[str, ...] = ("CAL",)
    pairs: tuple[str, ...] = ("A",)
    seeds: tuple[int, ...] = (7,)
    pool_gbs: tuple[float, ...] = (32.0,)
    workloads: tuple[WorkloadSpec | str, ...] = (AZURE_WORKLOAD,)
    n_functions: tuple[int, ...] | int = (60,)
    hours: tuple[float, ...] | float = (6.0,)
    kmax_minutes: tuple[float, ...] | float = (30.0,)
    start_hour: float = 8.0

    def __post_init__(self) -> None:
        for axis in ("n_functions", "hours", "kmax_minutes"):
            value = getattr(self, axis)
            # Accept bare scalars and any sequence (a list would otherwise
            # end up wrapped whole into a one-element tuple).
            value = (value,) if isinstance(value, (int, float)) else tuple(value)
            object.__setattr__(self, axis, value)
        workloads = self.workloads
        # A bare string/spec is one workload, not an iterable of its
        # characters.
        if isinstance(workloads, (str, WorkloadSpec)):
            workloads = (workloads,)
        object.__setattr__(
            self, "workloads", tuple(WorkloadSpec.of(w) for w in workloads)
        )
        for axis in (
            "regions", "pairs", "seeds", "pool_gbs", "workloads",
            "n_functions", "hours", "kmax_minutes",
        ):
            if not getattr(self, axis):
                raise ValueError(f"grid axis {axis!r} must be non-empty")

    def __len__(self) -> int:
        return (
            len(self.workloads)
            * len(self.regions)
            * len(self.pairs)
            * len(self.seeds)
            * len(self.pool_gbs)
            * len(self.n_functions)
            * len(self.hours)
            * len(self.kmax_minutes)
        )

    def specs(self) -> tuple[ScenarioSpec, ...]:
        """Expand the grid into scenario specs."""
        return tuple(
            ScenarioSpec(
                n_functions=n_funcs,
                hours=hrs,
                seed=seed,
                region=region,
                pair=pair,
                pool_gb=pool_gb,
                kmax_minutes=kmax,
                start_hour=self.start_hour,
                workload=workload,
            )
            for workload in self.workloads
            for region in self.regions
            for pair in self.pairs
            for seed in self.seeds
            for pool_gb in self.pool_gbs
            for n_funcs in self.n_functions
            for hrs in self.hours
            for kmax in self.kmax_minutes
        )

    def jobs(
        self,
        schedulers: Sequence[str],
        config: EcoLifeConfig | None = None,
        shards: int = 1,
    ) -> list["RunnerJob"]:
        """One job per (scenario, scheduler), scenario-major order."""
        return [
            RunnerJob(scheduler=name, spec=spec, config=config, shards=shards)
            for spec in self.specs()
            for name in schedulers
        ]


# ---------------------------------------------------------------------------
# Jobs and results.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunnerJob:
    """One (scheduler, scenario) unit of work.

    Exactly one of ``spec`` / ``scenario`` must be set. Specs are the cheap
    path (built in the worker); a full ``scenario`` payload supports
    pre-built scenarios (e.g. the fig13/fig14 drivers' variants) at the
    cost of pickling its trace arrays.
    """

    scheduler: str
    spec: ScenarioSpec | None = None
    scenario: Scenario | None = None
    config: EcoLifeConfig | None = None
    #: Partition the single replay across this many in-process shards
    #: (:class:`~repro.simulator.shard.ThreadShardRunner`). Bit-identical
    #: to ``shards=1`` by the sharding contract, so it deliberately does
    #: NOT enter the :class:`ResultCache` key: a cached 1-shard result
    #: satisfies a 4-shard job and vice versa.
    shards: int = 1

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.scenario is None):
            raise ValueError("exactly one of spec/scenario must be provided")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not is_registered(self.scheduler):
            raise KeyError(
                f"unknown scheduler {self.scheduler!r}; "
                f"registered: {list(list_schedulers())}"
            )

    @property
    def scenario_label(self) -> str:
        return self.spec.label if self.spec is not None else self.scenario.label

    def build_scenario(self) -> Scenario:
        return self.spec.build() if self.spec is not None else self.scenario


@dataclass(frozen=True)
class ResultSummary:
    """Deterministic aggregates of one run.

    Field names deliberately mirror :class:`SimulationResult`'s properties
    so the analysis helpers (``relative_to_oracle`` & co.) accept either.
    ``wall_time_s`` is the only nondeterministic field; it is excluded from
    :meth:`deterministic_dict`.
    """

    scheduler_name: str
    scenario_label: str
    n_invocations: int
    total_carbon_g: float
    total_service_carbon_g: float
    total_keepalive_carbon_g: float
    total_operational_g: float
    total_embodied_g: float
    total_service_s: float
    mean_service_s: float
    p95_service_s: float
    total_energy_wh: float
    warm_ratio: float
    evicted_count: int
    spilled_count: int
    dropped_count: int
    wall_time_s: float = 0.0

    @classmethod
    def from_result(
        cls, result: SimulationResult, scenario_label: str
    ) -> "ResultSummary":
        return cls(
            scheduler_name=result.scheduler_name,
            scenario_label=scenario_label,
            n_invocations=len(result),
            total_carbon_g=result.total_carbon_g,
            total_service_carbon_g=result.total_service_carbon_g,
            total_keepalive_carbon_g=result.total_keepalive_carbon_g,
            total_operational_g=result.total_operational_g,
            total_embodied_g=result.total_embodied_g,
            total_service_s=result.total_service_s,
            mean_service_s=result.mean_service_s,
            p95_service_s=result.p95_service_s,
            total_energy_wh=result.total_energy_wh,
            warm_ratio=result.warm_ratio,
            evicted_count=result.evicted_count,
            spilled_count=result.spilled_count,
            dropped_count=result.dropped_count,
            wall_time_s=result.wall_time_s,
        )

    def deterministic_dict(self) -> dict[str, object]:
        """All fields except wall time (for determinism comparisons)."""
        d = dataclasses.asdict(self)
        d.pop("wall_time_s")
        return d

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def schema_token(cls) -> str:
        """Stable token identifying this summary schema.

        Derived from the ordered field names, so adding/renaming/removing
        a field changes the token automatically -- no manual version bump
        to forget. :class:`ResultCache` folds it into the key digest,
        which turns every pre-change cache entry into a clean miss
        instead of a ``TypeError`` at load time.
        """
        return "fields:" + ",".join(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_json(cls, text: str) -> "ResultSummary":
        """Parse a cached summary, tolerating schema drift.

        Unknown keys (written by a *newer* schema) are dropped; a missing
        required field (written by an *older* schema) raises
        :class:`SummarySchemaError`, which :meth:`ResultCache.get` treats
        as a cache miss. Only malformed JSON or a non-object payload is
        also a schema error -- never a raw ``TypeError``/``KeyError``
        that would abort a whole sweep.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SummarySchemaError(f"cached summary is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SummarySchemaError(
                f"cached summary must be a JSON object, got {type(data).__name__}"
            )
        fields = dataclasses.fields(cls)
        known = {f.name for f in fields}
        missing = [
            f.name
            for f in fields
            if f.name not in data and f.default is dataclasses.MISSING
        ]
        if missing:
            raise SummarySchemaError(
                f"cached summary is missing required fields {missing} "
                "(written by an older schema?)"
            )
        return cls(**{k: v for k, v in data.items() if k in known})


class SummarySchemaError(ValueError):
    """A cached :class:`ResultSummary` JSON does not match the current schema."""


def execute_job(job: RunnerJob) -> ResultSummary:
    """Run one job to completion (the worker entry point).

    Serial and parallel execution share this exact function, which is what
    makes ``n_workers > 1`` results identical to the serial path.
    """
    scenario = job.build_scenario()
    result = run_scheduler(
        lambda: make_scheduler(job.scheduler, job.config),
        scenario,
        shards=job.shards,
    )
    return ResultSummary.from_result(result, scenario_label=scenario.label)


def execute_job_with_records(job: RunnerJob) -> tuple[ResultSummary, RecordArrays]:
    """Like :func:`execute_job`, but also returns the per-invocation
    records in columnar form (what the record-persisting cache stores as
    compressed ``.npz``). The simulation itself is identical."""
    scenario = job.build_scenario()
    result = run_scheduler(
        lambda: make_scheduler(job.scheduler, job.config),
        scenario,
        shards=job.shards,
    )
    summary = ResultSummary.from_result(result, scenario_label=scenario.label)
    return summary, result.record_arrays()


#: What one executed job yields: a bare summary (:func:`execute_job`) or
#: a (summary, records) pair (:func:`execute_job_with_records`).
JobOutcome = ResultSummary | tuple[ResultSummary, RecordArrays]


def unpack_outcome(
    outcome: ResultSummary | tuple[ResultSummary, RecordArrays],
) -> tuple[ResultSummary, RecordArrays | None]:
    """Normalise either job-entry-point result to (summary, records?)."""
    if isinstance(outcome, tuple):
        return outcome
    return outcome, None


# ---------------------------------------------------------------------------
# On-disk result cache.
# ---------------------------------------------------------------------------


class ResultCache:
    """Directory of ``<key>.json`` result summaries.

    The key is ``sha256(version | schema token | scenario label |
    scheduler | config digest)``; see ``docs/sweep_runner.md`` for the
    format. The schema token (:meth:`ResultSummary.schema_token`) keys
    entries to the summary's field set, so a schema change makes old
    entries clean misses. Scenario labels are trusted to
    identify the scenario, which holds for :class:`ScenarioSpec` labels
    (every build parameter is in the label) -- for pre-built scenarios the
    digest additionally covers the simulation config.

    With ``store_records=True`` each entry additionally persists the full
    per-invocation record columns as a compressed ``<key>.npz`` next to
    the JSON summary (see :class:`~repro.simulator.records.RecordArrays`),
    enabling CDF-style analyses over whole grids without re-simulating.
    """

    VERSION = "v1"

    def __init__(
        self, directory: str | os.PathLike, store_records: bool = False
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.store_records = store_records
        self.hits = 0
        self.misses = 0

    def key(self, job: RunnerJob) -> str:
        parts = [
            self.VERSION,
            ResultSummary.schema_token(),
            job.scenario_label,
            job.scheduler,
            repr(job.config) if job.config is not None else self._default_token(),
        ]
        if job.scenario is not None:
            parts.append(repr(job.scenario.sim_config))
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    @staticmethod
    def _default_token() -> str:
        """Cache token for ``config=None`` jobs.

        The default config is partly environment-driven. Under stream
        RNG every env knob is bit-identical by contract (the
        ``ECOLIFE_BATCH_SWARMS`` legs share entries), so the historical
        ``default`` token stays -- existing caches remain valid. Under
        ``ECOLIFE_RNG_MODE=counter`` results depend on the resolved
        defaults themselves (counter draws apply only to the fleet path,
        so even the batch legs differ); the token is then the fully
        resolved default-config repr, exactly as explicit-config jobs
        are keyed.
        """
        from repro.core.config import EcoLifeConfig, rng_mode_default

        if rng_mode_default() == "stream":
            return "default"
        return repr(EcoLifeConfig())

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def _records_path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.npz"

    def get(self, job: RunnerJob) -> ResultSummary | None:
        key = self.key(job)
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        if self.store_records and not self._records_path(key).exists():
            # A summary without its records does not satisfy a
            # record-persisting cache; treat as a miss so the runner
            # re-simulates and fills both files.
            self.misses += 1
            return None
        try:
            summary = ResultSummary.from_json(path.read_text())
        except SummarySchemaError:
            # A stale-schema entry (e.g. written before a field was
            # added/renamed, or hand-edited) is a miss, not a crash; the
            # runner re-simulates and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(
        self,
        job: RunnerJob,
        summary: ResultSummary,
        records: RecordArrays | None = None,
    ) -> None:
        key = self.key(job)
        if records is not None:
            records.to_npz(self._records_path(key))
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(summary.to_json())
        tmp.replace(path)

    def fetch_or_run(
        self,
        job: RunnerJob,
        run: Callable[[RunnerJob], JobOutcome] | None = None,
    ) -> ResultSummary:
        """Return the cached summary for ``job``, or execute-and-commit.

        The single primitive behind every get/execute/put dance in the
        repo: a hit returns the cached summary; a miss invokes ``run``
        (default: :func:`execute_job`, or
        :func:`execute_job_with_records` when this cache persists
        records), writes the outcome back -- records included -- and
        returns the fresh summary. Hit/miss accounting matches calling
        :meth:`get` followed by :meth:`put` exactly. ``get``/``put``
        stay public for callers that need the halves separately (the
        distributed job server commits worker results it did not run
        itself), but in-repo code should prefer this entry point.
        """
        cached = self.get(job)
        if cached is not None:
            return cached
        if run is None:
            run = execute_job_with_records if self.store_records else execute_job
        summary, records = unpack_outcome(run(job))
        self.put(job, summary, records=records)
        return summary

    def get_records(self, job: RunnerJob) -> RecordArrays | None:
        """Load one job's persisted per-invocation records (or None)."""
        path = self._records_path(self.key(job))
        if not path.exists():
            return None
        return RecordArrays.from_npz(path)

    def __len__(self) -> int:
        return len(list(self.directory.glob("*.json")))

    def record_count(self) -> int:
        """How many entries have persisted per-invocation records."""
        return len(list(self.directory.glob("*.npz")))

    def clear(self) -> int:
        """Delete every cached entry (summaries and any persisted
        records); returns the number of *entries* (summaries) removed --
        a summary and its ``.npz`` records count as one entry."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.directory.glob("*.npz"):
            path.unlink()
        return removed


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridResult:
    """All summaries of one grid run, positionally aligned with its jobs."""

    jobs: tuple[RunnerJob, ...]
    summaries: tuple[ResultSummary, ...]

    def __len__(self) -> int:
        return len(self.summaries)

    @property
    def scenario_labels(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.scenario_label)
        return tuple(seen)

    @property
    def scheduler_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for job in self.jobs:
            seen.setdefault(job.scheduler)
        return tuple(seen)

    def by_scenario(self) -> dict[str, dict[str, ResultSummary]]:
        """``{scenario label: {scheduler name: summary}}``."""
        out: dict[str, dict[str, ResultSummary]] = {}
        for job, summary in zip(self.jobs, self.summaries):
            out.setdefault(job.scenario_label, {})[job.scheduler] = summary
        return out


# ---------------------------------------------------------------------------
# Execution backends.
# ---------------------------------------------------------------------------


class Executor(Protocol):
    """Pluggable execution backend for :class:`ParallelRunner`.

    An executor turns submitted :class:`RunnerJob`\\ s into future-like
    handles (plain :class:`concurrent.futures.Future` objects resolving
    to a :data:`JobOutcome`) and streams them back as they finish. Two
    capability flags tell the runner how the backend behaves:

    - ``commits_results`` (cache locality): ``True`` means the backend
      already commits summaries/records into the shared
      :class:`ResultCache` as they land (the TCP job server commits
      server-side, at most once per job), so the runner must not write
      them again. ``False`` means the runner owns the cache write.
    - ``retries_jobs`` (crash semantics): ``True`` means a lost worker
      is retried internally and a *failed future* signals an exhausted
      retry budget (:class:`JobFailedError`). ``False`` means a worker
      crash breaks the whole backend (``BrokenProcessPool``) and every
      unfinished future fails at once.

    Shipped backends: :class:`LocalPoolExecutor` (this module) and
    :class:`repro.distributed.TcpExecutor`.
    """

    commits_results: bool
    retries_jobs: bool

    def submit(
        self, job: RunnerJob, with_records: bool = False
    ) -> concurrent.futures.Future[JobOutcome]:
        """Queue one job; the future resolves to its outcome."""
        ...

    def as_completed(self) -> Iterator[concurrent.futures.Future[JobOutcome]]:
        """Yield outstanding submitted futures as they complete."""
        ...

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""
        ...


class JobFailedError(RuntimeError):
    """One job failed permanently inside an executor backend.

    Set as a job future's exception by backends with internal retry
    (``retries_jobs=True``) once the job's bounded retry budget is
    exhausted -- e.g. the TCP fabric after repeated lease expiries or
    worker-side errors. :class:`ParallelRunner` aggregates these
    (together with ``BrokenProcessPool``) into one
    :class:`WorkerCrashError` naming every lost job.
    """

    def __init__(self, label: str, attempts: int, last_error: str) -> None:
        self.label = label
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"job {label} failed permanently after {attempts} attempt(s); "
            f"last error: {last_error}"
        )


class LocalPoolExecutor:
    """The classic single-host backend: a local process pool.

    Behaviour-identical to the pre-executor ``ParallelRunner`` fan-out
    (the pool workers run the exact same :func:`execute_job` /
    :func:`execute_job_with_records` entry points, so results are
    bit-identical), with the crash semantics preserved: a worker death
    breaks the pool and every unfinished future fails with
    ``BrokenProcessPool``, which the runner wraps into
    :class:`WorkerCrashError`.
    """

    commits_results = False
    retries_jobs = False

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = (
            int(n_workers) if n_workers is not None else (os.cpu_count() or 1)
        )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._outstanding: list[concurrent.futures.Future[JobOutcome]] = []

    def submit(
        self, job: RunnerJob, with_records: bool = False
    ) -> concurrent.futures.Future[JobOutcome]:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(self.n_workers)
        entry: Callable[[RunnerJob], JobOutcome] = (
            execute_job_with_records if with_records else execute_job
        )
        future = self._pool.submit(entry, job)
        self._outstanding.append(future)
        return future

    def as_completed(self) -> Iterator[concurrent.futures.Future[JobOutcome]]:
        outstanding, self._outstanding = self._outstanding, []
        yield from concurrent.futures.as_completed(outstanding)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-sweep (OOM kill, segfault, ``os._exit``).

    ``concurrent.futures`` surfaces this as a bare ``BrokenProcessPool``
    that says nothing about *which* jobs were lost. This wrapper names
    the jobs that had not completed when the pool broke
    (``failed_labels``) and how many results landed first
    (``completed``). Completed results were already written to the
    :class:`ResultCache` (if one is configured), so re-running the same
    grid resumes from the cache and only re-executes the failed tail.

    Backends with internal retry (:class:`repro.distributed.TcpExecutor`)
    raise the same error once a job's retry budget is exhausted -- there
    ``failed_labels`` names the poison jobs while every healthy job's
    result is already committed, so a re-run likewise resumes from the
    cache.
    """

    def __init__(self, failed_labels: Sequence[str], completed: int) -> None:
        self.failed_labels = tuple(failed_labels)
        self.completed = completed
        preview = ", ".join(self.failed_labels[:5])
        if len(self.failed_labels) > 5:
            preview += f", ... ({len(self.failed_labels) - 5} more)"
        super().__init__(
            f"worker process died; {completed} job(s) completed, "
            f"{len(self.failed_labels)} lost: {preview}. Completed results "
            "are in the cache (if configured) -- re-run to resume."
        )


class ParallelRunner:
    """Executes runner jobs through a pluggable backend, cache-first.

    ``n_workers=1`` runs in-process; ``n_workers>1`` fans out over a
    :class:`LocalPoolExecutor`; ``n_workers=None`` uses the CPU count.
    Passing ``executor=`` swaps the backend: an :class:`Executor`
    instance, ``"local"`` (the default pool), or a ``"tcp://host:port"``
    spec that lazily hosts a :class:`repro.distributed.TcpExecutor` job
    server at that address (call :meth:`close` when done with a
    string-built backend). Every backend runs the same
    :func:`execute_job` entry point, so results are bit-identical
    regardless of where they ran. Job order is always preserved in the
    returned list.

    If workers die mid-sweep the run raises :class:`WorkerCrashError`
    naming the lost jobs; everything that completed before the crash is
    already in the cache, so re-running the same grid skips it.
    """

    def __init__(
        self,
        n_workers: int | None = 1,
        cache: ResultCache | None = None,
        executor: "Executor | str | None" = None,
    ) -> None:
        self.n_workers = (
            int(n_workers) if n_workers is not None else (os.cpu_count() or 1)
        )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.cache = cache
        self._executor: Executor | None = None
        self._executor_spec: str | None = None
        self._owns_executor = False
        if isinstance(executor, str):
            spec = executor.strip()
            if spec and spec != "local" and not spec.startswith("tcp://"):
                raise ValueError(
                    f"unknown executor spec {executor!r}; "
                    "expected 'local' or 'tcp://host:port'"
                )
            self._executor_spec = spec or None
        elif executor is not None:
            self._executor = executor

    def _resolve_executor(self) -> "Executor | None":
        """Materialise a string executor spec on first use."""
        if self._executor is not None:
            return self._executor
        spec = self._executor_spec
        if spec is None or spec == "local":
            return None
        # Lazy import: repro.distributed imports this module for the job
        # and entry-point types.
        from repro.distributed import TcpExecutor

        self._executor = TcpExecutor(bind=spec, cache=self.cache)
        self._owns_executor = True
        return self._executor

    def close(self) -> None:
        """Shut down an executor this runner built from a string spec.

        Backends passed in as instances belong to the caller and are
        left running; idempotent either way.
        """
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._owns_executor = False

    def _entry(self) -> Callable[[RunnerJob], JobOutcome]:
        # A record-persisting cache needs the per-invocation columns
        # back from the worker; otherwise ship only the summary.
        if self.cache is not None and self.cache.store_records:
            return execute_job_with_records
        return execute_job

    def run(self, jobs: Sequence[RunnerJob]) -> list[ResultSummary]:
        """Execute all jobs (cache-first), preserving job order."""
        jobs = list(jobs)
        executor = self._resolve_executor()
        if executor is None and self.n_workers == 1:
            return self._run_serial(jobs)

        results: list[ResultSummary | None] = [None] * len(jobs)
        pending: list[int] = []
        for i, job in enumerate(jobs):
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)

        if pending:
            if executor is None and len(pending) == 1:
                # A single miss is not worth a pool spin-up.
                [i] = pending
                summary, records = unpack_outcome(self._entry()(jobs[i]))
                results[i] = summary
                if self.cache is not None:
                    self.cache.put(jobs[i], summary, records=records)
            elif executor is None:
                local = LocalPoolExecutor(min(self.n_workers, len(pending)))
                try:
                    self._run_on(local, jobs, pending, results)
                finally:
                    local.shutdown()
            else:
                self._run_on(executor, jobs, pending, results)

        return list(results)  # type: ignore[arg-type]

    def _run_serial(self, jobs: Sequence[RunnerJob]) -> list[ResultSummary]:
        """In-process path: one cache round-trip per job, in order."""
        if self.cache is None:
            return [execute_job(job) for job in jobs]
        entry = self._entry()
        return [self.cache.fetch_or_run(job, entry) for job in jobs]

    def _run_on(
        self,
        executor: "Executor",
        jobs: Sequence[RunnerJob],
        pending: Sequence[int],
        results: "list[ResultSummary | None]",
    ) -> None:
        """Fan the pending jobs out over ``executor`` and collect.

        Results are committed as they land so record arrays are dropped
        immediately -- peak memory stays one in-flight result per
        worker, not the whole grid's records. Crash-type failures
        (``BrokenProcessPool`` from the local pool, retry-exhausted
        :class:`JobFailedError` from retrying backends) are aggregated
        into one :class:`WorkerCrashError`; any other exception is a
        bug in the job itself and re-raises directly.
        """
        cache = self.cache if not executor.commits_results else None
        with_records = self.cache is not None and self.cache.store_records
        index_of: dict[concurrent.futures.Future[JobOutcome], int] = {
            executor.submit(jobs[i], with_records=with_records): i
            for i in pending
        }
        failed: list[int] = []
        first_exc: BaseException | None = None
        for future in executor.as_completed():
            i = index_of[future]
            exc = future.exception()
            if exc is None:
                summary, records = unpack_outcome(future.result())
                results[i] = summary
                if cache is not None:
                    cache.put(jobs[i], summary, records=records)
            elif isinstance(exc, (BrokenProcessPool, JobFailedError)):
                failed.append(i)
                if first_exc is None:
                    first_exc = exc
            else:
                raise exc

        if failed:
            labels = [
                f"{jobs[i].scheduler} @ {jobs[i].scenario_label}"
                for i in sorted(failed)
            ]
            raise WorkerCrashError(
                labels, completed=len(jobs) - len(failed)
            ) from first_exc

    def run_grid(
        self,
        grid: ScenarioGrid | Iterable[ScenarioSpec],
        schedulers: Sequence[str],
        config: EcoLifeConfig | None = None,
        shards: int = 1,
    ) -> GridResult:
        """Run every scheduler over every scenario of the grid."""
        if isinstance(grid, ScenarioGrid):
            jobs = grid.jobs(schedulers, config=config, shards=shards)
        else:
            jobs = [
                RunnerJob(scheduler=name, spec=spec, config=config, shards=shards)
                for spec in grid
                for name in schedulers
            ]
        summaries = self.run(jobs)
        return GridResult(jobs=tuple(jobs), summaries=tuple(summaries))
