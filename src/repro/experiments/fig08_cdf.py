"""Fig. 8: per-invocation CDFs of service time and carbon, EcoLife vs ORACLE.

Because every scheme replays the *same* trace, invocation ``i`` is the same
request under every scheduler; the paper plots the per-invocation
distributions of:

- service time, as % increase w.r.t. SERVICE-TIME-OPT's same invocation;
- carbon, as % increase w.r.t. CO2-OPT's same invocation;

and reports that EcoLife's P95 service latency stays within 15% of ORACLE.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.reporting import ascii_table
from repro.analysis.stats import CDF, per_invocation_pct_increase
from repro.baselines import co2_opt, oracle, service_time_opt
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_suite,
)


@dataclass(frozen=True)
class Fig08Result:
    service_cdf: dict[str, CDF]  # scheme -> CDF of per-invocation svc +%
    carbon_cdf: dict[str, CDF]  # scheme -> CDF of per-invocation co2 +%
    p95_service_vs_oracle_pct: float
    scenario_label: str

    def render(self) -> str:
        rows = []
        for scheme in self.service_cdf:
            s, c = self.service_cdf[scheme], self.carbon_cdf[scheme]
            rows.append(
                [
                    scheme,
                    s.percentile(50),
                    s.percentile(95),
                    c.percentile(50),
                    c.percentile(95),
                ]
            )
        table = ascii_table(
            ["scheme", "svc p50 +%", "svc p95 +%", "co2 p50 +%", "co2 p95 +%"],
            rows,
            title=f"Fig. 8 -- per-invocation CDFs ({self.scenario_label})",
        )
        return (
            f"{table}\n"
            f"EcoLife P95 service vs ORACLE P95: "
            f"+{self.p95_service_vs_oracle_pct:.1f}% (paper: within 15%)"
        )


def run_fig08(scenario: Scenario | None = None) -> Fig08Result:
    """Compute per-invocation CDFs of EcoLife and ORACLE."""
    scenario = scenario or default_scenario()
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": ecolife_factory(),
    }
    results = run_suite(schemes, scenario)

    svc_ref = results["service-time-opt"].service_times()
    co2_ref = results["co2-opt"].carbon_per_invocation()

    service_cdf: dict[str, CDF] = {}
    carbon_cdf: dict[str, CDF] = {}
    for scheme in ("oracle", "ecolife"):
        r = results[scheme]
        service_cdf[scheme] = CDF.of(
            per_invocation_pct_increase(r.service_times(), svc_ref)
        )
        carbon_cdf[scheme] = CDF.of(
            per_invocation_pct_increase(r.carbon_per_invocation(), co2_ref)
        )

    p95_eco = results["ecolife"].p95_service_s
    p95_orc = results["oracle"].p95_service_s
    p95_gap = (p95_eco / p95_orc - 1.0) * 100.0 if p95_orc > 0 else 0.0

    return Fig08Result(
        service_cdf=service_cdf,
        carbon_cdf=carbon_cdf,
        p95_service_vs_oracle_pct=p95_gap,
        scenario_label=scenario.label,
    )
