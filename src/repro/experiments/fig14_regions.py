"""Fig. 14: robustness across carbon-intensity regions.

EcoLife vs ORACLE with carbon-intensity traces synthesized for Tennessee,
Texas, Florida, New York, and California; the paper reports EcoLife within
~7% (service) / ~6% (carbon) of ORACLE everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase
from repro.carbon.regions import REGION_NAMES, region_trace_for
from repro.experiments.common import Scenario, default_scenario
from repro.experiments.runner import ParallelRunner, RunnerJob


@dataclass(frozen=True)
class Fig14Point:
    region: str
    service_pct_vs_oracle: float
    carbon_pct_vs_oracle: float


@dataclass(frozen=True)
class Fig14Result:
    points: list[Fig14Point]
    scenario_label: str

    def get(self, region: str) -> Fig14Point:
        for p in self.points:
            if p.region == region:
                return p
        raise KeyError(region)

    @property
    def max_service_margin_pct(self) -> float:
        return max(p.service_pct_vs_oracle for p in self.points)

    @property
    def max_carbon_margin_pct(self) -> float:
        return max(p.carbon_pct_vs_oracle for p in self.points)

    def render(self) -> str:
        rows = [
            [p.region, p.service_pct_vs_oracle, p.carbon_pct_vs_oracle]
            for p in self.points
        ]
        table = ascii_table(
            ["region", "svc +% vs oracle", "co2 +% vs oracle"],
            rows,
            title=f"Fig. 14 -- regions ({self.scenario_label})",
        )
        return (
            f"{table}\nmax margins: {self.max_service_margin_pct:.1f}% service, "
            f"{self.max_carbon_margin_pct:.1f}% carbon (paper: ~7% / ~6%)"
        )


def run_fig14(
    scenario: Scenario | None = None, ci_seed: int = 0, n_workers: int = 1
) -> Fig14Result:
    """Measure EcoLife-vs-ORACLE margins on every region's CI trace.

    ``n_workers > 1`` fans the per-region runs out over a process pool via
    the sweep runner (identical numbers to the serial path).
    """
    scenario = scenario or default_scenario()
    horizon = scenario.trace.duration_s + 3600.0
    jobs = []
    for region in REGION_NAMES:
        ci = region_trace_for(region, horizon, seed=ci_seed, start_hour=8.0)
        region_scenario = scenario.with_ci(ci, label=f"{scenario.label}|{region}")
        jobs.append(RunnerJob(scheduler="oracle", scenario=region_scenario))
        jobs.append(RunnerJob(scheduler="ecolife", scenario=region_scenario))
    summaries = ParallelRunner(n_workers=n_workers).run(jobs)
    points = []
    for i, region in enumerate(REGION_NAMES):
        orc, eco = summaries[2 * i], summaries[2 * i + 1]
        points.append(
            Fig14Point(
                region=region,
                service_pct_vs_oracle=pct_increase(
                    eco.mean_service_s, orc.mean_service_s
                ),
                carbon_pct_vs_oracle=pct_increase(
                    eco.total_carbon_g, orc.total_carbon_g
                ),
            )
        )
    return Fig14Result(points=points, scenario_label=scenario.label)
