"""Fig. 11: warm-pool adjustment under memory pressure.

Sweeps the keep-alive memory capacity over old/new combinations and
compares EcoLife with and without the warm-pool adjustment mechanism on
service time, carbon, and the number of functions evicted. The paper's
15/15-GiB point: adjustment saves ~7.9% service time, ~3.7% carbon, and
keeps ~17% more functions alive.

The absolute capacities are scaled to this reproduction's trace (whose
aggregate warm-set demand differs from the paper's testbed): the sweep
covers the same *relative pressure* range -- severe (functions constantly
contending), moderate, and mild -- that the paper's 10/15/20 GiB covers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.core import EcoLifeConfig
from repro.experiments.common import Scenario, default_scenario

#: (old GiB, new GiB) capacity combinations, as in the paper's x-axis
#: (severe / moderate / mild pressure for the default trace).
MEMORY_COMBOS: tuple[tuple[float, float], ...] = (
    (6.0, 6.0),
    (8.0, 8.0),
    (12.0, 12.0),
)


@dataclass(frozen=True)
class Fig11Point:
    memory_label: str
    adjustment: bool
    mean_service_s: float
    total_carbon_g: float
    evicted: int
    dropped: int
    warm_ratio: float


@dataclass(frozen=True)
class Fig11Result:
    points: list[Fig11Point]
    scenario_label: str

    def get(self, memory_label: str, adjustment: bool) -> Fig11Point:
        for p in self.points:
            if p.memory_label == memory_label and p.adjustment == adjustment:
                return p
        raise KeyError((memory_label, adjustment))

    def savings(self, memory_label: str) -> tuple[float, float, float]:
        """(service %, carbon %, eviction reduction %) from adjustment."""
        with_ = self.get(memory_label, True)
        without = self.get(memory_label, False)
        svc = (1.0 - with_.mean_service_s / without.mean_service_s) * 100.0
        co2 = (1.0 - with_.total_carbon_g / without.total_carbon_g) * 100.0
        ev = (
            (1.0 - with_.evicted / without.evicted) * 100.0
            if without.evicted
            else 0.0
        )
        return svc, co2, ev

    def render(self) -> str:
        rows = [
            [
                p.memory_label,
                "w/" if p.adjustment else "w/o",
                p.mean_service_s,
                p.total_carbon_g,
                p.evicted,
                p.warm_ratio * 100.0,
            ]
            for p in self.points
        ]
        table = ascii_table(
            ["old/new GiB", "adjust", "svc s", "co2 g", "evicted", "warm %"],
            rows,
            title=f"Fig. 11 -- warm-pool adjustment ({self.scenario_label})",
        )
        extras = []
        for old_gb, new_gb in MEMORY_COMBOS:
            label = f"{old_gb:g}/{new_gb:g}"
            svc, co2, ev = self.savings(label)
            extras.append(
                f"{label}: adjustment saves {svc:.1f}% service, {co2:.1f}% "
                f"carbon, {ev:.0f}% fewer evictions"
            )
        return table + "\n" + "\n".join(extras)


def run_fig11(
    scenario: Scenario | None = None,
    config: EcoLifeConfig | None = None,
    n_workers: int = 1,
) -> Fig11Result:
    """Sweep pool memory with and without warm-pool adjustment.

    The (memory combo x adjustment) cross-product runs as
    :class:`~repro.experiments.runner.ParallelRunner` jobs; ``n_workers``
    fans the six replays out over a process pool with numbers identical
    to the serial path.
    """
    from repro.experiments.runner import ParallelRunner, RunnerJob

    scenario = scenario or default_scenario()
    cells = []
    jobs = []
    for old_gb, new_gb in MEMORY_COMBOS:
        label = f"{old_gb:g}/{new_gb:g}"
        tight = dataclasses.replace(
            scenario.with_capacity(old_gb, new_gb),
            label=f"{scenario.label}|mem{old_gb:g}-{new_gb:g}",
        )
        for adjustment in (True, False):
            cells.append((label, adjustment))
            jobs.append(
                RunnerJob(
                    scheduler="ecolife" if adjustment else "ecolife-no-adjust",
                    scenario=tight,
                    config=config,
                )
            )
    summaries = ParallelRunner(n_workers=n_workers).run(jobs)
    points = [
        Fig11Point(
            memory_label=label,
            adjustment=adjustment,
            mean_service_s=res.mean_service_s,
            total_carbon_g=res.total_carbon_g,
            evicted=res.evicted_count + res.dropped_count,
            dropped=res.dropped_count,
            warm_ratio=res.warm_ratio,
        )
        for (label, adjustment), res in zip(cells, summaries)
    ]
    return Fig11Result(points=points, scenario_label=scenario.label)
