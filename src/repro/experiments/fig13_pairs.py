"""Fig. 13: robustness across hardware pairs A / B / C.

EcoLife vs ORACLE per Table I pair; the paper reports EcoLife staying
within a ~7.5% margin of ORACLE on both metrics for every pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase
from repro.experiments.common import Scenario, default_scenario
from repro.experiments.runner import ParallelRunner, RunnerJob
from repro.hardware.catalog import get_pair

PAIR_NAMES: tuple[str, ...] = ("A", "B", "C")


@dataclass(frozen=True)
class Fig13Point:
    pair: str
    service_pct_vs_oracle: float
    carbon_pct_vs_oracle: float


@dataclass(frozen=True)
class Fig13Result:
    points: list[Fig13Point]
    scenario_label: str

    def get(self, pair: str) -> Fig13Point:
        for p in self.points:
            if p.pair == pair:
                return p
        raise KeyError(pair)

    @property
    def max_margin_pct(self) -> float:
        return max(
            max(p.service_pct_vs_oracle, p.carbon_pct_vs_oracle)
            for p in self.points
        )

    def render(self) -> str:
        rows = [
            [p.pair, p.service_pct_vs_oracle, p.carbon_pct_vs_oracle]
            for p in self.points
        ]
        table = ascii_table(
            ["pair", "svc +% vs oracle", "co2 +% vs oracle"],
            rows,
            title=f"Fig. 13 -- hardware pairs ({self.scenario_label})",
        )
        return (
            f"{table}\nmax margin: {self.max_margin_pct:.1f}% "
            f"(paper: within ~7.5%)"
        )


def run_fig13(scenario: Scenario | None = None, n_workers: int = 1) -> Fig13Result:
    """Measure EcoLife-vs-ORACLE margins on every Table I pair.

    ``n_workers > 1`` fans the 2 x len(PAIR_NAMES) runs out over a process
    pool via the sweep runner (identical numbers to the serial path).
    """
    scenario = scenario or default_scenario()
    jobs = []
    for name in PAIR_NAMES:
        pair_scenario = scenario.with_pair(get_pair(name))
        jobs.append(RunnerJob(scheduler="oracle", scenario=pair_scenario))
        jobs.append(RunnerJob(scheduler="ecolife", scenario=pair_scenario))
    summaries = ParallelRunner(n_workers=n_workers).run(jobs)
    points = []
    for i, name in enumerate(PAIR_NAMES):
        orc, eco = summaries[2 * i], summaries[2 * i + 1]
        points.append(
            Fig13Point(
                pair=name,
                service_pct_vs_oracle=pct_increase(
                    eco.mean_service_s, orc.mean_service_s
                ),
                carbon_pct_vs_oracle=pct_increase(
                    eco.total_carbon_g, orc.total_carbon_g
                ),
            )
        )
    return Fig13Result(points=points, scenario_label=scenario.label)
