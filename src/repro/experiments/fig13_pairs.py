"""Fig. 13: robustness across hardware pairs A / B / C.

EcoLife vs ORACLE per Table I pair; the paper reports EcoLife staying
within a ~7.5% margin of ORACLE on both metrics for every pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase
from repro.baselines import oracle
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_scheduler,
)
from repro.hardware.catalog import get_pair

PAIR_NAMES: tuple[str, ...] = ("A", "B", "C")


@dataclass(frozen=True)
class Fig13Point:
    pair: str
    service_pct_vs_oracle: float
    carbon_pct_vs_oracle: float


@dataclass(frozen=True)
class Fig13Result:
    points: list[Fig13Point]
    scenario_label: str

    def get(self, pair: str) -> Fig13Point:
        for p in self.points:
            if p.pair == pair:
                return p
        raise KeyError(pair)

    @property
    def max_margin_pct(self) -> float:
        return max(
            max(p.service_pct_vs_oracle, p.carbon_pct_vs_oracle)
            for p in self.points
        )

    def render(self) -> str:
        rows = [
            [p.pair, p.service_pct_vs_oracle, p.carbon_pct_vs_oracle]
            for p in self.points
        ]
        table = ascii_table(
            ["pair", "svc +% vs oracle", "co2 +% vs oracle"],
            rows,
            title=f"Fig. 13 -- hardware pairs ({self.scenario_label})",
        )
        return (
            f"{table}\nmax margin: {self.max_margin_pct:.1f}% "
            f"(paper: within ~7.5%)"
        )


def run_fig13(scenario: Scenario | None = None) -> Fig13Result:
    """Measure EcoLife-vs-ORACLE margins on every Table I pair."""
    scenario = scenario or default_scenario()
    points = []
    for name in PAIR_NAMES:
        pair_scenario = scenario.with_pair(get_pair(name))
        orc = run_scheduler(oracle, pair_scenario)
        eco = run_scheduler(ecolife_factory(), pair_scenario)
        points.append(
            Fig13Point(
                pair=name,
                service_pct_vs_oracle=pct_increase(
                    eco.mean_service_s, orc.mean_service_s
                ),
                carbon_pct_vs_oracle=pct_increase(
                    eco.total_carbon_g, orc.total_carbon_g
                ),
            )
        )
    return Fig13Result(points=points, scenario_label=scenario.label)
