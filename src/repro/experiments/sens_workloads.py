"""Workload-shape sensitivity: EcoLife-vs-ORACLE margins across trace families.

The paper evaluates on one Azure-shaped trace family, but carbon-aware
keep-alive policies are known to reorder under diurnal and bursty load
(GreenCourier, arXiv:2310.20375; "Green or Fast?", arXiv:2602.23935).
This driver sweeps the :mod:`repro.workloads.generators` families as a
grid axis through :class:`~repro.experiments.runner.ParallelRunner` and
reports, per workload family, the same margins the paper's Figs. 13/14
report per hardware pair / region -- plus Fig. 8-style per-invocation
percentiles rebuilt from persisted records when a record-persisting
cache is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase
from repro.experiments.common import Scenario
from repro.experiments.runner import (
    ParallelRunner,
    ResultCache,
    ScenarioGrid,
)
from repro.workloads.generators import WorkloadSpec

#: The default workload axis: the paper's family plus every new
#: parametric family (churn wraps the bursty MMPP, so retirement and
#: burstiness are exercised together).
DEFAULT_WORKLOADS: tuple[str, ...] = (
    "azure",
    "poisson",
    "diurnal",
    "mmpp",
    "pareto",
    "churn:inner=mmpp",
)


@dataclass(frozen=True)
class WorkloadPoint:
    """EcoLife-vs-ORACLE margins on one workload family."""

    workload: str
    n_invocations: int
    service_pct_vs_oracle: float
    carbon_pct_vs_oracle: float
    warm_ratio: float
    #: P95 per-invocation service time (s); None without record persistence.
    p95_service_s: float | None = None


@dataclass(frozen=True)
class WorkloadSensitivityResult:
    points: list[WorkloadPoint]
    scenario_label: str

    def get(self, workload: str | WorkloadSpec) -> WorkloadPoint:
        """Look up one point by workload -- accepts the canonical label
        (``churn[inner=mmpp]``), the CLI syntax (``churn:inner=mmpp``),
        or a :class:`WorkloadSpec`."""
        try:
            canonical = WorkloadSpec.of(workload).label
        except (ValueError, TypeError):
            canonical = None
        for p in self.points:
            if p.workload == workload or p.workload == canonical:
                return p
        raise KeyError(workload)

    @property
    def max_carbon_margin_pct(self) -> float:
        return max(p.carbon_pct_vs_oracle for p in self.points)

    @property
    def max_service_margin_pct(self) -> float:
        return max(p.service_pct_vs_oracle for p in self.points)

    def render(self) -> str:
        with_p95 = any(p.p95_service_s is not None for p in self.points)
        header = ["workload", "invocations", "svc +% vs oracle",
                  "co2 +% vs oracle", "warm %"]
        if with_p95:
            header.append("svc p95 (s)")
        rows = []
        for p in self.points:
            row = [
                p.workload,
                p.n_invocations,
                p.service_pct_vs_oracle,
                p.carbon_pct_vs_oracle,
                p.warm_ratio * 100.0,
            ]
            if with_p95:
                row.append(p.p95_service_s if p.p95_service_s is not None else "-")
            rows.append(row)
        table = ascii_table(
            header,
            rows,
            title=f"Workload-shape sensitivity ({self.scenario_label})",
        )
        return (
            f"{table}\nworst margins across workloads: "
            f"{self.max_service_margin_pct:+.1f}% service, "
            f"{self.max_carbon_margin_pct:+.1f}% carbon"
        )


def run_workload_sensitivity(
    scenario: Scenario | None = None,
    n_workers: int = 1,
    workloads: tuple[str | WorkloadSpec, ...] = DEFAULT_WORKLOADS,
    seed: int = 7,
    cache: ResultCache | None = None,
) -> WorkloadSensitivityResult:
    """EcoLife-vs-ORACLE margins per workload family.

    ``scenario`` only scales the grid (function count / trace hours are
    taken from it so ``--quick`` works); the traces themselves come from
    the workload generators. With a record-persisting ``cache`` the
    result also carries per-invocation P95 service times from the stored
    ``.npz`` columns.
    """
    if scenario is not None:
        n_functions = len(scenario.trace.functions)
        # duration_s ends at the last arrival; round up to a clean label.
        hours = max(round(scenario.trace.duration_s / 3600.0, 2), 0.5)
    else:
        n_functions, hours = 60, 6.0

    grid = ScenarioGrid(
        workloads=tuple(workloads),
        seeds=(seed,),
        n_functions=n_functions,
        hours=hours,
    )
    runner = ParallelRunner(n_workers=n_workers, cache=cache)
    result = runner.run_grid(grid, ["oracle", "ecolife"])

    store_records = cache is not None and cache.store_records
    points: list[WorkloadPoint] = []
    by_scenario = result.by_scenario()
    for spec, workload in zip(grid.specs(), grid.workloads):
        schemes = by_scenario[spec.label]
        orc, eco = schemes["oracle"], schemes["ecolife"]
        p95 = None
        if store_records:
            from repro.analysis.grid import record_cdfs

            eco_job = next(
                j for j in result.jobs
                if j.scenario_label == spec.label and j.scheduler == "ecolife"
            )
            records = cache.get_records(eco_job)
            if records is not None and len(records):
                p95 = record_cdfs(records)["service_s"].percentile(95)
        points.append(
            WorkloadPoint(
                workload=workload.label,
                n_invocations=eco.n_invocations,
                service_pct_vs_oracle=pct_increase(
                    eco.mean_service_s, orc.mean_service_s
                ),
                carbon_pct_vs_oracle=pct_increase(
                    eco.total_carbon_g, orc.total_carbon_g
                ),
                warm_ratio=eco.warm_ratio,
                p95_service_s=p95,
            )
        )
    label = (
        f"n{n_functions}-h{hours:g}-s{seed}, {len(workloads)} workload families"
    )
    return WorkloadSensitivityResult(points=points, scenario_label=label)
