"""Fig. 3: Case A vs Case B trade-off under two carbon intensities.

- **Case A**: keep alive for 15 min on C_OLD -> warm start, slower exec.
- **Case B**: keep alive for 10 min on C_NEW -> cold start, faster exec.

At CI=300 Case A wins both axes for all three functions; at CI=50 the
carbon saving *inverts* for DNA-visualization (the paper's "inverted
case"): the longer keep-alive's embodied carbon is no longer compensated by
the avoided cold-start operational carbon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.reporting import ascii_table
from repro.carbon import CarbonIntensityTrace, CarbonModel
from repro.hardware.catalog import PAIR_C
from repro.workloads.sebs import MOTIVATION_FUNCTIONS

CASE_A_KEEPALIVE_S = 15.0 * units.SECONDS_PER_MINUTE
CASE_B_KEEPALIVE_S = 10.0 * units.SECONDS_PER_MINUTE
CARBON_INTENSITIES: tuple[float, ...] = (300.0, 50.0)


@dataclass(frozen=True)
class Fig03Point:
    function: str
    ci: float
    service_a_s: float
    service_b_s: float
    co2_a_g: float
    co2_b_g: float

    @property
    def service_saving_pct(self) -> float:
        return (1.0 - self.service_a_s / self.service_b_s) * 100.0

    @property
    def co2_saving_pct(self) -> float:
        return (1.0 - self.co2_a_g / self.co2_b_g) * 100.0

    @property
    def inverted(self) -> bool:
        """True when Case A does *not* save carbon."""
        return self.co2_a_g >= self.co2_b_g


@dataclass(frozen=True)
class Fig03Result:
    points: list[Fig03Point]

    def get(self, function: str, ci: float) -> Fig03Point:
        for p in self.points:
            if p.function == function and p.ci == ci:
                return p
        raise KeyError((function, ci))

    def render(self) -> str:
        rows = [
            [
                p.function,
                p.ci,
                p.service_saving_pct,
                p.co2_saving_pct,
                "yes" if p.inverted else "no",
            ]
            for p in self.points
        ]
        return ascii_table(
            ["function", "CI", "svc saving %", "co2 saving %", "inverted"],
            rows,
            title=(
                "Fig. 3 -- Case A (15 min warm on C_OLD) vs "
                "Case B (10 min + cold on C_NEW)"
            ),
        )


def run_fig03() -> Fig03Result:
    """Compute the Case A vs Case B trade-off at CI = 300 and 50."""
    old, new = PAIR_C.old, PAIR_C.new
    points = []
    for ci in CARBON_INTENSITIES:
        model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
        for func in MOTIVATION_FUNCTIONS:
            # Case A: warm on old, 15-minute keep-alive fully accrued.
            service_a = func.service_time_s(old, cold=False)
            co2_a = (
                model.service(old, func.mem_gb, 0.0, func.exec_time_s(old)).total
                + model.keepalive(old, func.mem_gb, 0.0, CASE_A_KEEPALIVE_S).total
            )
            # Case B: cold on new, 10-minute keep-alive fully accrued.
            service_b = func.service_time_s(new, cold=True)
            co2_b = (
                model.service(
                    new,
                    func.mem_gb,
                    0.0,
                    func.exec_time_s(new),
                    func.cold_overhead_s(new),
                ).total
                + model.keepalive(new, func.mem_gb, 0.0, CASE_B_KEEPALIVE_S).total
            )
            points.append(
                Fig03Point(
                    function=func.name,
                    ci=ci,
                    service_a_s=service_a,
                    service_b_s=service_b,
                    co2_a_g=co2_a,
                    co2_b_g=co2_b,
                )
            )
    return Fig03Result(points=points)
