"""Fig. 10: the Dynamic-PSO ablation.

EcoLife with and without the DPSO extensions (dynamic w/c1/c2 weights and
the perception-response half-swarm redistribution). The paper reports that
dropping DPSO costs +5.6% service time and +16.9% carbon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.comparison import SchemePoint, relative_to_opts
from repro.analysis.reporting import scatter_table
from repro.baselines import co2_opt, oracle, service_time_opt
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments.common import (
    Scenario,
    default_scenario,
    ecolife_factory,
    run_suite,
)


@dataclass(frozen=True)
class Fig10Result:
    points: dict[str, SchemePoint]
    scenario_label: str

    @property
    def dpso_penalty_pct(self) -> tuple[float, float]:
        """(service, carbon) % penalty of removing DPSO (paper: 5.6 / 16.9)."""
        with_ = self.points["ecolife"]
        without = self.points["ecolife-no-dpso"]
        return (
            (without.service_s / with_.service_s - 1.0) * 100.0,
            (without.carbon_g / with_.carbon_g - 1.0) * 100.0,
        )

    def render(self) -> str:
        svc, co2 = self.dpso_penalty_pct
        table = scatter_table(
            self.points,
            title=f"Fig. 10 -- DPSO ablation ({self.scenario_label})",
            order=["oracle", "ecolife", "ecolife-no-dpso"],
        )
        return (
            f"{table}\n"
            f"Removing DPSO costs +{svc:.1f}% service, +{co2:.1f}% carbon "
            f"(paper: +5.6 / +16.9)"
        )


def run_fig10(
    scenario: Scenario | None = None, config: EcoLifeConfig | None = None
) -> Fig10Result:
    """Run EcoLife with and without the DPSO extensions."""
    scenario = scenario or default_scenario()
    schemes = {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "oracle": oracle,
        "ecolife": ecolife_factory(config),
        "ecolife-no-dpso": lambda: EcoLifeScheduler.without_dpso(config),
    }
    results = run_suite(schemes, scenario)
    # Rename the ablation key to a stable label.
    points = relative_to_opts(results)
    return Fig10Result(points=points, scenario_label=scenario.label)
