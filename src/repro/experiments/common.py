"""Shared experiment plumbing: scenarios, runners, and the scheme registry.

A :class:`Scenario` bundles everything one simulation needs -- hardware
pair, invocation trace, carbon-intensity trace, engine config. Experiment
drivers build scenarios (usually the paper's default: Pair A, Azure-shaped
trace, CISO carbon intensity) and run schedulers over them with
:func:`run_scheduler` / :func:`run_suite`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.experiments.runner import ResultSummary
    from repro.workloads.generators import WorkloadSpec

from repro import units
from repro.baselines import (
    co2_opt,
    energy_opt,
    new_only,
    old_only,
    oracle,
    service_time_opt,
)
from repro.carbon.intensity import CarbonIntensityTrace
from repro.carbon.regions import region_trace_for
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.hardware.catalog import get_pair
from repro.hardware.specs import HardwarePair
from repro.simulator import (
    BaseScheduler,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
)
from repro.workloads.trace import InvocationTrace

#: Anything that produces a fresh scheduler for one run.
SchedulerFactory = Callable[[], BaseScheduler]


@dataclass(frozen=True)
class Scenario:
    """One fully-specified simulation setting."""

    pair: HardwarePair
    trace: InvocationTrace
    ci_trace: CarbonIntensityTrace
    sim_config: SimulationConfig
    label: str = "scenario"

    def with_pair(self, pair: HardwarePair, label: str | None = None) -> "Scenario":
        return replace(self, pair=pair, label=label or f"{self.label}|{pair.name}")

    def with_ci(self, ci_trace: CarbonIntensityTrace, label: str | None = None) -> "Scenario":
        return replace(
            self, ci_trace=ci_trace, label=label or f"{self.label}|{ci_trace.name}"
        )

    def with_capacity(self, old_gb: float, new_gb: float) -> "Scenario":
        cfg = replace(
            self.sim_config,
            pool_capacity_old_gb=old_gb,
            pool_capacity_new_gb=new_gb,
        )
        return replace(self, sim_config=cfg)


def workload_scenario(
    workload: "WorkloadSpec | str" = "azure",
    n_functions: int = 60,
    hours: float = 6.0,
    seed: int = 7,
    region: str = "CAL",
    pair: str = "A",
    pool_gb: float = 32.0,
    kmax_minutes: float = 30.0,
    start_hour: float = 8.0,
    label: str | None = None,
) -> Scenario:
    """A scenario whose trace comes from any registered workload generator.

    Everything except the invocation trace matches :func:`default_scenario`
    (region CI trace, pool/kmax simulation config); the trace is built by
    the :mod:`repro.workloads.generators` family named by ``workload``.
    """
    from repro.workloads.generators import WorkloadSpec, build_trace

    workload = WorkloadSpec.of(workload)
    duration_s = hours * units.SECONDS_PER_HOUR
    trace = build_trace(workload, n_functions, duration_s, seed)
    ci = region_trace_for(
        region, duration_s + units.SECONDS_PER_HOUR, seed=seed, start_hour=start_hour
    )
    cfg = SimulationConfig(
        pool_capacity_old_gb=pool_gb,
        pool_capacity_new_gb=pool_gb,
        kmax_minutes=kmax_minutes,
    )
    return Scenario(
        pair=get_pair(pair),
        trace=trace,
        ci_trace=ci,
        sim_config=cfg,
        label=label
        or f"{workload.label}-n{n_functions}-h{hours:g}-s{seed}-{region}-pair{pair}",
    )


def trace_scenario(
    trace_path: str,
    seed: int = 7,
    region: str = "CAL",
    pair: str = "A",
    pool_gb: float = 32.0,
    kmax_minutes: float = 30.0,
    start_hour: float = 8.0,
    mmap: bool = True,
    label: str | None = None,
) -> Scenario:
    """A scenario replaying a compiled columnar trace file.

    The invocation trace is memory-mapped from the ``.npz`` written by
    :meth:`InvocationTrace.save` (or ``ecolife trace compile``); the
    synthetic region carbon-intensity trace is sized to cover the
    replay's full span plus an hour of keep-alive tail, exactly like
    :func:`workload_scenario` does for generated traces.
    """
    trace = InvocationTrace.open(trace_path, mmap=mmap)
    ci = region_trace_for(
        region,
        trace.duration_s + units.SECONDS_PER_HOUR,
        seed=seed,
        start_hour=start_hour,
    )
    cfg = SimulationConfig(
        pool_capacity_old_gb=pool_gb,
        pool_capacity_new_gb=pool_gb,
        kmax_minutes=kmax_minutes,
    )
    import os

    return Scenario(
        pair=get_pair(pair),
        trace=trace,
        ci_trace=ci,
        sim_config=cfg,
        label=label
        or f"file[{os.path.basename(trace_path)}]-s{seed}-{region}-pair{pair}",
    )


def default_scenario(
    n_functions: int = 60,
    hours: float = 6.0,
    seed: int = 7,
    region: str = "CAL",
    pair: str = "A",
    pool_gb: float = 32.0,
    kmax_minutes: float = 30.0,
    start_hour: float = 8.0,
) -> Scenario:
    """The paper's default evaluation setting (Sec. V).

    Pair A hardware, Azure-shaped trace, CISO (CAL) carbon intensity.
    The trace goes through the ``azure`` generator family, which is
    bit-identical to :func:`repro.workloads.azure.generate_azure_trace`.
    """
    return workload_scenario(
        workload="azure",
        n_functions=n_functions,
        hours=hours,
        seed=seed,
        region=region,
        pair=pair,
        pool_gb=pool_gb,
        kmax_minutes=kmax_minutes,
        start_hour=start_hour,
    )


def quick_scenario(seed: int = 7) -> Scenario:
    """A small scenario for quickstarts and fast tests (~1-2k invocations)."""
    return default_scenario(n_functions=25, hours=2.0, seed=seed)


def run_scheduler(
    scheduler: BaseScheduler | SchedulerFactory,
    scenario: Scenario,
    shards: int = 1,
    foreign_fast_path: bool = True,
) -> SimulationResult:
    """Run one scheduler over a scenario (fresh engine each call).

    Oracle schedulers that declare ``wants_uncapped_memory`` run with
    unlimited keep-alive memory, as in the paper. With ``shards > 1``
    the replay executes function-partitioned on the in-process
    :class:`~repro.simulator.shard.ThreadShardRunner` -- bit-identical
    to ``shards=1`` (the scheduler must declare ``supports_sharding``,
    so a factory is required: each shard gets its own instance).
    ``foreign_fast_path=False`` forces per-event foreign replay (an A/B
    identity knob; bit-identical either way).
    """
    if shards > 1:
        if not callable(scheduler):
            raise ValueError(
                "sharded runs need a scheduler *factory* (one fresh "
                "instance per shard), not a scheduler object"
            )
        from repro.simulator.shard import ThreadShardRunner

        probe = scheduler()
        cfg = scenario.sim_config
        if getattr(probe, "wants_uncapped_memory", False):
            cfg = cfg.uncapped()
        result = ThreadShardRunner(
            shards, foreign_fast_path=foreign_fast_path
        ).run(
            pair=scenario.pair,
            trace=scenario.trace,
            ci_trace=scenario.ci_trace,
            scheduler_factory=scheduler,
            config=cfg,
        )
        result.meta["scenario"] = scenario.label
        return result
    sched = scheduler() if callable(scheduler) else scheduler
    cfg = scenario.sim_config
    if getattr(sched, "wants_uncapped_memory", False):
        cfg = cfg.uncapped()
    engine = SimulationEngine(
        pair=scenario.pair,
        trace=scenario.trace,
        ci_trace=scenario.ci_trace,
        config=cfg,
    )
    result = engine.run(sched)
    result.meta["scenario"] = scenario.label
    return result


def run_suite(
    schedulers: dict[str, SchedulerFactory | str],
    scenario: Scenario,
    n_workers: int = 1,
    config: EcoLifeConfig | None = None,
) -> dict[str, SimulationResult | "ResultSummary"]:
    """Run several schedulers over the same scenario.

    Values may be factories (callables) or sweep-runner registry names
    (strings, see :data:`repro.experiments.runner.SCHEDULERS`). With
    ``n_workers > 1`` every scheduler must be a registry name; the suite
    then fans out over a process pool and returns
    :class:`~repro.experiments.runner.ResultSummary` aggregates (identical
    numbers to the serial path, but without per-invocation records).
    ``config`` reaches registry-name schedulers (EcoLife variants) on both
    paths; factories close over their own config.
    """
    if n_workers > 1:
        from repro.experiments.runner import ParallelRunner, RunnerJob

        non_names = [n for n, f in schedulers.items() if not isinstance(f, str)]
        if non_names:
            raise ValueError(
                "parallel run_suite needs registry scheduler names, got "
                f"factories for {non_names}; use n_workers=1 or names from "
                "repro.experiments.runner.SCHEDULERS"
            )
        jobs = [
            RunnerJob(scheduler=f, scenario=scenario, config=config)
            for f in schedulers.values()
        ]
        summaries = ParallelRunner(n_workers=n_workers).run(jobs)
        return dict(zip(schedulers, summaries))

    out: dict[str, SimulationResult] = {}
    for name, f in schedulers.items():
        if isinstance(f, str):
            from repro.experiments.runner import make_scheduler

            registry_name = f
            f = lambda: make_scheduler(registry_name, config)  # noqa: E731
        out[name] = run_scheduler(f, scenario)
    return out


# ---------------------------------------------------------------------------
# The paper's scheme registry (fresh factories; engines are single-use).
# ---------------------------------------------------------------------------


def ecolife_factory(config: EcoLifeConfig | None = None) -> SchedulerFactory:
    """Factory for the default EcoLife scheduler."""
    return lambda: EcoLifeScheduler(config or EcoLifeConfig())


def paper_schemes(config: EcoLifeConfig | None = None) -> dict[str, SchedulerFactory]:
    """The scheme set of Figs. 4/7/9: oracles, fixed baselines, EcoLife."""
    return {
        "co2-opt": co2_opt,
        "service-time-opt": service_time_opt,
        "energy-opt": energy_opt,
        "oracle": oracle,
        "new-only": new_only,
        "old-only": old_only,
        "ecolife": ecolife_factory(config),
    }
