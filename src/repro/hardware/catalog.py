"""Concrete hardware catalog: the paper's Table I multi-generation pairs.

The paper measured on AWS ``i3.metal`` (old) and ``m5zn.metal`` (new) for the
default Pair A, and lists Pairs B and C as additional old/new combinations.
Embodied-carbon constants follow the Boavizta / Teads EC2 methodology the
paper cites; power figures are TDP-derived. Exact vendor numbers are not
public at part granularity, so the constants below are calibrated to
reproduce the paper's *observed* first-order behaviour (see DESIGN.md
"Calibration targets"):

- old generations have lower per-core embodied carbon and lower per-core
  keep-alive power (more cores share the package uncore/idle power), hence
  lower keep-alive carbon;
- new generations execute faster and are more energy-efficient *per unit of
  work*, hence lower operational carbon during service;
- the C pair (one-year gap) is performance-close but keep-alive-cheap on the
  old side, which is what makes the paper's Fig. 2/3 C_OLD cases attractive.
"""

from __future__ import annotations

from repro.hardware.specs import (
    CPUSpec,
    DRAMSpec,
    Generation,
    HardwarePair,
    ServerSpec,
)

# ---------------------------------------------------------------------------
# CPU specs. ``idle_power_w`` is the package power attributable to resident
# (kept-alive, paused) containers; divided by core count it yields the
# per-core keep-alive power used by the paper's CPU keep-alive terms.
#
# ``embodied_kg`` follows the Teads/Boavizta EC2 methodology the paper cites
# (ref [34]): it covers the *compute platform* attributed to the CPU --
# package plus motherboard/VRM/cooling/chassis share -- which is why the
# values are an order of magnitude above bare-die ACT estimates. Server-level
# manufacturing footprints in that dataset are O(1000) kgCO2e; embodied
# carbon is a first-class term of the paper's trade-off (Energy-Opt being
# far from CO2-Opt, Fig. 4, hinges on it).
# ---------------------------------------------------------------------------

XEON_E5_2686 = CPUSpec(
    name="Intel Xeon E5-2686 v4",
    year=2016,
    cores=36,  # i3.metal: 2 sockets x 18 cores
    full_power_w=290.0,  # 2 x 145 W TDP
    idle_power_w=35.0,  # => 0.97 W/core keep-alive
    embodied_kg=140.0,  # => 3.9 kg/core
)

XEON_8124M = CPUSpec(
    name="Intel Xeon Platinum 8124M",
    year=2017,
    cores=36,  # 2 sockets x 18 cores
    full_power_w=430.0,  # 2 x 215 W sustained
    idle_power_w=38.0,  # => 1.06 W/core
    embodied_kg=168.0,  # => 4.7 kg/core
)

XEON_8275L = CPUSpec(
    name="Intel Xeon Platinum 8275L",
    year=2019,
    cores=48,  # 2 sockets x 24 cores
    full_power_w=375.0,  # 2 x ~188 W sustained (L-series power-optimised)
    idle_power_w=40.0,  # => 0.83 W/core
    embodied_kg=280.0,  # two XCC (28-core-die) packages => 5.8 kg/core
)

XEON_8252C = CPUSpec(
    name="Intel Xeon Platinum 8252C",
    year=2020,
    cores=24,  # m5zn.metal: 2 sockets x 12 cores
    full_power_w=300.0,  # 2 x 150 W TDP
    idle_power_w=38.0,  # => 1.58 W/core (few cores share uncore power)
    embodied_kg=210.0,  # => 8.75 kg/core
)

# ---------------------------------------------------------------------------
# DRAM specs. Older modules use lower-density dies, i.e. *more* wafer area
# (and thus more embodied carbon) per GB -- the ACT/Boavizta direction --
# while newer modules are more power-efficient per GB.
# ---------------------------------------------------------------------------

MICRON_512 = DRAMSpec(
    name="Micron-512",
    year=2018,
    capacity_gb=512.0,
    embodied_kg_per_gb=1.50,
    power_w_per_gb=0.38,
)

MICRON_192 = DRAMSpec(
    name="Micron-192",
    year=2018,
    capacity_gb=192.0,
    embodied_kg_per_gb=1.50,
    power_w_per_gb=0.37,
)

SAMSUNG_192 = DRAMSpec(
    name="Samsung-192",
    year=2019,
    capacity_gb=192.0,
    embodied_kg_per_gb=1.20,
    power_w_per_gb=0.33,
)

# ---------------------------------------------------------------------------
# Servers. ``perf_index`` is relative execution speed (new = 1.0); function
# profiles scale it by a per-function sensitivity, so e.g. video-processing
# on A_OLD is ~16% slower (paper Sec. III) while memory-bound functions are
# hit harder.
# ---------------------------------------------------------------------------

A_OLD = ServerSpec(
    key="a_old",
    generation=Generation.OLD,
    cpu=XEON_E5_2686,
    dram=MICRON_512,
    perf_index=0.75,
)

A_NEW = ServerSpec(
    key="a_new",
    generation=Generation.NEW,
    cpu=XEON_8252C,
    dram=SAMSUNG_192,
    perf_index=1.0,
)

B_OLD = ServerSpec(
    key="b_old",
    generation=Generation.OLD,
    cpu=XEON_8124M,
    dram=MICRON_192,
    perf_index=0.85,
)

B_NEW = ServerSpec(
    key="b_new",
    generation=Generation.NEW,
    cpu=XEON_8252C,
    dram=SAMSUNG_192,
    perf_index=1.0,
)

C_OLD = ServerSpec(
    key="c_old",
    generation=Generation.OLD,
    cpu=XEON_8275L,
    dram=SAMSUNG_192,
    perf_index=0.88,
)

C_NEW = ServerSpec(
    key="c_new",
    generation=Generation.NEW,
    cpu=XEON_8252C,
    dram=SAMSUNG_192,
    perf_index=1.0,
)

PAIR_A = HardwarePair(
    name="A",
    old=A_OLD,
    new=A_NEW,
    description="i3.metal (2016) vs m5zn.metal (2020): four-year gap",
)

PAIR_B = HardwarePair(
    name="B",
    old=B_OLD,
    new=B_NEW,
    description="Xeon 8124M (2017) vs 8252C (2020): three-year gap",
)

PAIR_C = HardwarePair(
    name="C",
    old=C_OLD,
    new=C_NEW,
    description="Xeon 8275L (2019) vs 8252C (2020): one-year gap",
)

#: All Table I pairs keyed by name.
PAIRS: dict[str, HardwarePair] = {"A": PAIR_A, "B": PAIR_B, "C": PAIR_C}

#: The paper's default evaluation configuration (Sec. V).
DEFAULT_PAIR = PAIR_A


def get_pair(name: str) -> HardwarePair:
    """Look up a Table I pair by name (case-insensitive: ``"A"``/``"a"``)."""
    key = name.strip().upper()
    try:
        return PAIRS[key]
    except KeyError:
        raise KeyError(
            f"unknown hardware pair {name!r}; available: {sorted(PAIRS)}"
        ) from None


def single_generation_pair(pair: HardwarePair, generation: Generation) -> HardwarePair:
    """Build a degenerate pair where both slots hold the same physical server.

    Used by the Eco-Old / Eco-New robustness study (Fig. 12): EcoLife's
    machinery runs unchanged, but both keep-alive locations resolve to a
    single hardware generation. The two slots keep their OLD/NEW labels so
    the rest of the stack does not need special-casing.
    """
    import dataclasses

    base = pair.server(generation)
    old = dataclasses.replace(base, key=f"{base.key}#old", generation=Generation.OLD)
    new = dataclasses.replace(base, key=f"{base.key}#new", generation=Generation.NEW)
    return HardwarePair(
        name=f"{pair.name}-{generation.value}-only",
        old=old,
        new=new,
        description=f"degenerate pair: both slots are {base.key}",
    )
