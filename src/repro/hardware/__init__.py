"""Hardware substrate: server specs, the Table I catalog, and the energy model."""

from repro.hardware.catalog import (
    DEFAULT_PAIR,
    PAIR_A,
    PAIR_B,
    PAIR_C,
    PAIRS,
    get_pair,
    single_generation_pair,
)
from repro.hardware.power import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.hardware.specs import (
    GENERATIONS,
    CPUSpec,
    DRAMSpec,
    Generation,
    HardwarePair,
    ServerSpec,
)

__all__ = [
    "CPUSpec",
    "DRAMSpec",
    "ServerSpec",
    "HardwarePair",
    "Generation",
    "GENERATIONS",
    "PAIRS",
    "PAIR_A",
    "PAIR_B",
    "PAIR_C",
    "DEFAULT_PAIR",
    "get_pair",
    "single_generation_pair",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
]
