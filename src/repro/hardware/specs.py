"""Hardware specification dataclasses.

The paper (Table I, Sec. V) characterises each testing node by its CPU model,
DRAM model, core count, memory capacity, embodied carbon and lifetime. This
module defines the immutable spec types; concrete values for the paper's
multi-generation pairs live in :mod:`repro.hardware.catalog`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro import units


class Generation(enum.Enum):
    """Which side of a multi-generation hardware pair a server belongs to."""

    OLD = "old"
    NEW = "new"

    @property
    def other(self) -> "Generation":
        """The opposite generation (used by warm-pool spill-over)."""
        return Generation.NEW if self is Generation.OLD else Generation.OLD

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Iteration order used whenever code enumerates "all locations".
GENERATIONS: tuple[Generation, Generation] = (Generation.OLD, Generation.NEW)


@dataclass(frozen=True)
class CPUSpec:
    """A CPU package (possibly multi-socket, treated as one unit).

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Intel Xeon E5-2686 v4"``.
    year:
        Release year (drives the old/new pairing narrative).
    cores:
        Total physical cores across sockets. The paper attributes
        ``EC_CPU / Core_num`` embodied carbon and one core's power during
        keep-alive.
    full_power_w:
        Package power while executing a serverless function (the paper
        assigns the *entire* CPU to the running function during service).
    idle_power_w:
        Package power attributable to keeping containers resident; divided
        by ``cores`` to obtain the per-core keep-alive power. Older parts
        have more cores sharing the uncore power, which is one of the two
        reasons their keep-alive carbon is lower.
    embodied_kg:
        Total manufacturing (embodied) carbon of the package in kgCO2e,
        following the Boavizta/ACT methodology referenced by the paper.
    """

    name: str
    year: int
    cores: int
    full_power_w: float
    idle_power_w: float
    embodied_kg: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be > 0, got {self.cores}")
        units.require_positive(self.full_power_w, "full_power_w")
        units.require_non_negative(self.idle_power_w, "idle_power_w")
        units.require_positive(self.embodied_kg, "embodied_kg")

    @property
    def embodied_g(self) -> float:
        """Total embodied carbon in grams."""
        return self.embodied_kg * 1000.0

    @property
    def embodied_per_core_g(self) -> float:
        """Embodied carbon attributed to a single core (``EC_CPU/Core_num``)."""
        return self.embodied_g / self.cores

    @property
    def keepalive_core_power_w(self) -> float:
        """Power of the one core that keeps a function alive."""
        return self.idle_power_w / self.cores


@dataclass(frozen=True)
class DRAMSpec:
    """A DRAM configuration (all DIMMs of a server, treated as one unit).

    The paper attributes DRAM carbon by the memory-usage ratio
    ``Mf / M_DRAM`` in every phase, so what matters per function is the
    per-GB embodied carbon and per-GB power.
    """

    name: str
    year: int
    capacity_gb: float
    embodied_kg_per_gb: float
    power_w_per_gb: float

    def __post_init__(self) -> None:
        units.require_positive(self.capacity_gb, "capacity_gb")
        units.require_positive(self.embodied_kg_per_gb, "embodied_kg_per_gb")
        units.require_positive(self.power_w_per_gb, "power_w_per_gb")

    @property
    def embodied_g(self) -> float:
        """Total embodied carbon of the whole DRAM complement, in grams."""
        return self.embodied_kg_per_gb * self.capacity_gb * 1000.0

    @property
    def total_power_w(self) -> float:
        """Power of the whole DRAM complement (refresh-dominated, ~constant)."""
        return self.power_w_per_gb * self.capacity_gb


@dataclass(frozen=True)
class ServerSpec:
    """A complete testing node: CPU + DRAM + performance index + lifetime.

    Attributes
    ----------
    key:
        Short identifier, e.g. ``"a_old"`` -- used in reports and configs.
    perf_index:
        Relative single-function execution speed, with the newest
        generation normalised to 1.0. Function profiles translate this
        into per-function slowdowns (see
        :meth:`repro.workloads.functions.FunctionProfile.exec_time_s`).
    lifetime_years:
        Amortisation horizon for embodied carbon; the paper uses a typical
        four-year lifetime for both CPU and DRAM.
    platform_embodied_kg:
        Optional extra embodied carbon for the rest of the platform
        (storage, motherboard, power unit, chassis). Zero by default; the
        "other components" sensitivity study (Sec. VI-C) turns it on.
    """

    key: str
    generation: Generation
    cpu: CPUSpec
    dram: DRAMSpec
    perf_index: float
    lifetime_years: float = 4.0
    platform_embodied_kg: float = 0.0

    def __post_init__(self) -> None:
        units.require_positive(self.perf_index, "perf_index")
        units.require_positive(self.lifetime_years, "lifetime_years")
        units.require_non_negative(self.platform_embodied_kg, "platform_embodied_kg")

    @property
    def lifetime_s(self) -> float:
        """Amortisation lifetime in seconds (shared by CPU and DRAM)."""
        return units.years(self.lifetime_years)

    @property
    def slowdown(self) -> float:
        """Base execution-time multiplier relative to the newest generation."""
        return 1.0 / self.perf_index

    def scaled_embodied(self, scale: float) -> "ServerSpec":
        """Return a copy with all embodied-carbon constants scaled by ``scale``.

        Used by the +/-10% embodied-carbon sensitivity experiment.
        """
        units.require_positive(scale, "scale")
        return replace(
            self,
            cpu=replace(self.cpu, embodied_kg=self.cpu.embodied_kg * scale),
            dram=replace(
                self.dram, embodied_kg_per_gb=self.dram.embodied_kg_per_gb * scale
            ),
            platform_embodied_kg=self.platform_embodied_kg * scale,
        )

    def with_platform_overhead(self, extra_kg: float) -> "ServerSpec":
        """Return a copy with platform (storage/motherboard/PSU) embodied carbon."""
        units.require_non_negative(extra_kg, "extra_kg")
        return replace(self, platform_embodied_kg=extra_kg)


@dataclass(frozen=True)
class HardwarePair:
    """An old-generation/new-generation server pair (Table I row)."""

    name: str
    old: ServerSpec
    new: ServerSpec
    description: str = ""

    def __post_init__(self) -> None:
        if self.old.generation is not Generation.OLD:
            raise ValueError(f"pair {self.name}: 'old' server must be Generation.OLD")
        if self.new.generation is not Generation.NEW:
            raise ValueError(f"pair {self.name}: 'new' server must be Generation.NEW")

    def server(self, generation: Generation) -> ServerSpec:
        """Return the server on one side of the pair."""
        return self.old if generation is Generation.OLD else self.new

    def __getitem__(self, generation: Generation) -> ServerSpec:
        return self.server(generation)

    @property
    def servers(self) -> dict[Generation, ServerSpec]:
        """Mapping of both servers, keyed by generation."""
        return {Generation.OLD: self.old, Generation.NEW: self.new}

    def map_servers(self, fn) -> "HardwarePair":
        """Return a new pair with ``fn`` applied to both servers."""
        return HardwarePair(
            name=self.name,
            old=fn(self.old),
            new=fn(self.new),
            description=self.description,
        )
