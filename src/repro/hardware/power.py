"""Parametric energy model (substitute for the paper's Likwid/RAPL readings).

The carbon model of Sec. II consumes four scalar energies per function and
phase:

- ``E_service_CPU``  -- whole-package CPU energy while the function runs
  (cold-start overhead + execution; the paper assigns the entire CPU to the
  running function during service);
- ``E_service_DRAM`` -- whole-DRAM energy during service (the carbon layer
  applies the ``Mf / M_DRAM`` share);
- ``E_keepalive_CPU`` -- whole-package idle energy during keep-alive (the
  carbon layer divides by ``Core_num``: one core keeps the function alive);
- ``E_keepalive_DRAM`` -- whole-DRAM energy during keep-alive.

All methods return watt-hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.hardware.specs import ServerSpec


@dataclass(frozen=True)
class EnergyModel:
    """Computes per-phase energies for a server.

    ``coldstart_power_fraction`` allows modelling the (I/O heavy) cold-start
    window at less than full CPU power; the default of 1.0 matches the
    paper's framing of a "high operational carbon footprint during the
    cold-start period".
    """

    coldstart_power_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.coldstart_power_fraction <= 1.0:
            raise ValueError(
                "coldstart_power_fraction must be in (0, 1], got "
                f"{self.coldstart_power_fraction}"
            )

    # -- service phase ----------------------------------------------------

    def cpu_service_wh(
        self, server: ServerSpec, busy_s: float, cold_overhead_s: float = 0.0
    ) -> float:
        """Whole-package CPU energy during service.

        ``busy_s`` is the execution (+ setup) time at full power;
        ``cold_overhead_s`` is the additional cold-start window, billed at
        ``coldstart_power_fraction`` of full power.
        """
        units.require_non_negative(busy_s, "busy_s")
        units.require_non_negative(cold_overhead_s, "cold_overhead_s")
        full = units.energy_wh(server.cpu.full_power_w, busy_s)
        cold = units.energy_wh(
            server.cpu.full_power_w * self.coldstart_power_fraction, cold_overhead_s
        )
        return full + cold

    def dram_service_wh(self, server: ServerSpec, service_s: float) -> float:
        """Whole-DRAM energy during the full service window."""
        units.require_non_negative(service_s, "service_s")
        return units.energy_wh(server.dram.total_power_w, service_s)

    # -- keep-alive phase --------------------------------------------------

    def cpu_keepalive_wh(self, server: ServerSpec, duration_s: float) -> float:
        """Whole-package idle CPU energy over a keep-alive window.

        The carbon layer divides this by ``Core_num`` per the paper's
        ``E_keepalive_CPU / Core_num`` attribution.
        """
        units.require_non_negative(duration_s, "duration_s")
        return units.energy_wh(server.cpu.idle_power_w, duration_s)

    def dram_keepalive_wh(self, server: ServerSpec, duration_s: float) -> float:
        """Whole-DRAM energy over a keep-alive window."""
        units.require_non_negative(duration_s, "duration_s")
        return units.energy_wh(server.dram.total_power_w, duration_s)

    # -- per-function attributed powers (for rate-style estimates) ---------

    def keepalive_power_attributed_w(self, server: ServerSpec, mem_gb: float) -> float:
        """Power attributed to one kept-alive function of size ``mem_gb``.

        One CPU core plus the function's DRAM share; multiplying by a
        duration and CI reproduces the operational keep-alive carbon.
        """
        units.require_non_negative(mem_gb, "mem_gb")
        share = mem_gb / server.dram.capacity_gb
        return server.cpu.keepalive_core_power_w + share * server.dram.total_power_w

    def service_power_attributed_w(self, server: ServerSpec, mem_gb: float) -> float:
        """Power attributed to an executing function (whole CPU + DRAM share)."""
        units.require_non_negative(mem_gb, "mem_gb")
        share = mem_gb / server.dram.capacity_gb
        return server.cpu.full_power_w + share * server.dram.total_power_w


#: Default model used across the package.
DEFAULT_ENERGY_MODEL = EnergyModel()
