"""Programmatic validation of the DESIGN.md calibration targets.

The reproduction stands on a calibrated substrate (hardware constants,
workload profiles, region generators). This module re-checks every
calibration target from DESIGN.md as executable assertions, so a user
changing constants immediately sees which paper shapes break. It backs both
``ecolife validate`` on the CLI and the regression tests in
``tests/test_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon import CarbonIntensityTrace, CarbonModel, generate_region_trace
from repro.hardware import PAIRS, PAIR_A, PAIR_C
from repro.workloads import MOTIVATION_FUNCTIONS


@dataclass(frozen=True)
class Check:
    """One calibration target with its measured value and pass verdict."""

    name: str
    detail: str
    measured: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high

    def render(self) -> str:
        flag = "PASS" if self.ok else "FAIL"
        return (
            f"[{flag}] {self.name}: {self.measured:.3f} "
            f"(target [{self.low:g}, {self.high:g}]) -- {self.detail}"
        )


def _flat_model(ci: float) -> CarbonModel:
    return CarbonModel(trace=CarbonIntensityTrace.constant(ci))


def _total(model, server, func, keepalive_s, cold=False) -> float:
    overhead = func.cold_overhead_s(server) if cold else 0.0
    return (
        model.service(server, func.mem_gb, 0.0, func.exec_time_s(server), overhead).total
        + model.keepalive(server, func.mem_gb, 0.0, keepalive_s).total
    )


def check_fig1_keepalive_fractions() -> list[Check]:
    """Fig. 1: Graph-BFS keep-alive share ~18% @2min -> ~52% @10min."""
    model = _flat_model(250.0)
    bfs = MOTIVATION_FUNCTIONS[1]
    new = PAIR_A.new
    sc = model.service(new, bfs.mem_gb, 0.0, bfs.exec_time_s(new)).total
    ka2 = model.keepalive(new, bfs.mem_gb, 0.0, 120.0).total
    ka10 = model.keepalive(new, bfs.mem_gb, 0.0, 600.0).total
    return [
        Check(
            "fig1.bfs_ka_share_2min",
            "keep-alive share of total carbon at k=2min (paper ~0.18)",
            ka2 / (ka2 + sc), 0.10, 0.35,
        ),
        Check(
            "fig1.bfs_ka_share_10min",
            "keep-alive share of total carbon at k=10min (paper ~0.52)",
            ka10 / (ka10 + sc), 0.40, 0.70,
        ),
    ]


def check_fig2_pair_a_tradeoff() -> list[Check]:
    """Fig. 2: A_OLD saves carbon (~23.8%) but is slower (~15.9%)."""
    model = _flat_model(250.0)
    video = MOTIVATION_FUNCTIONS[0]
    saving = 1.0 - _total(model, PAIR_A.old, video, 600.0) / _total(
        model, PAIR_A.new, video, 600.0
    )
    slowdown = video.exec_time_s(PAIR_A.old) / video.exec_time_s(PAIR_A.new) - 1.0
    return [
        Check(
            "fig2.video_carbon_saving_on_old",
            "total-carbon saving of A_OLD at 10-min keep-alive (paper ~0.238)",
            saving, 0.10, 0.35,
        ),
        Check(
            "fig2.video_exec_slowdown_on_old",
            "execution slowdown on A_OLD (paper ~0.159)",
            slowdown, 0.10, 0.25,
        ),
    ]


def check_fig3_inversion() -> list[Check]:
    """Fig. 3: Case A wins at CI=300; DNA-visualization inverts at CI=50."""
    checks = []
    for ci, expect_win in ((300.0, True), (50.0, False)):
        model = _flat_model(ci)
        dna = MOTIVATION_FUNCTIONS[2]
        a = _total(model, PAIR_C.old, dna, 900.0)
        b = _total(model, PAIR_C.new, dna, 600.0, cold=True)
        margin = (b - a) / b  # positive = Case A saves carbon
        if expect_win:
            checks.append(
                Check(
                    "fig3.dna_case_a_wins_at_high_ci",
                    "carbon margin of Case A at CI=300 (must be > 0)",
                    margin, 0.0, 1.0,
                )
            )
        else:
            checks.append(
                Check(
                    "fig3.dna_inverts_at_low_ci",
                    "carbon margin of Case A at CI=50 (must be < 0)",
                    margin, -1.0, 0.0,
                )
            )
    video = MOTIVATION_FUNCTIONS[0]
    s_a = video.exec_time_s(PAIR_C.old)
    s_b = video.exec_time_s(PAIR_C.new) + video.cold_overhead_s(PAIR_C.new)
    checks.append(
        Check(
            "fig3.video_service_saving",
            "Case A service-time saving for video-processing (paper ~0.523)",
            1.0 - s_a / s_b, 0.40, 0.60,
        )
    )
    return checks


def check_catalog_orderings() -> list[Check]:
    """Table I invariants: old is slower but keep-alive-cheaper everywhere."""
    checks = []
    for name, pair in PAIRS.items():
        checks.append(
            Check(
                f"catalog.{name}.perf_ordering",
                "old perf index minus new (must be negative)",
                pair.old.perf_index - pair.new.perf_index, -1.0, -1e-9,
            )
        )
        checks.append(
            Check(
                f"catalog.{name}.keepalive_rate_ordering",
                "old-minus-new per-function keep-alive carbon rate at CI=250 "
                "(must be negative)",
                _flat_model(250.0).est_keepalive_rate_g_per_s(pair.old, 0.5, 250.0)
                - _flat_model(250.0).est_keepalive_rate_g_per_s(pair.new, 0.5, 250.0),
                -1.0, -1e-15,
            )
        )
    return checks


def check_region_statistics() -> list[Check]:
    """CISO calibration: ~6.75% hourly fluctuation, std ~59 (paper Sec. V)."""
    traces = [generate_region_trace("CAL", days=3, seed=s) for s in range(4)]
    fluct = float(np.mean([t.hourly_fluctuation_pct() for t in traces]))
    std = float(np.mean([t.std() for t in traces]))
    return [
        Check(
            "regions.ciso_hourly_fluctuation_pct",
            "mean hourly CI fluctuation (paper 6.75%)",
            fluct, 4.5, 9.0,
        ),
        Check(
            "regions.ciso_std",
            "CI standard deviation (paper 59.24)",
            std, 40.0, 80.0,
        ),
    ]


def run_all_checks() -> list[Check]:
    """Every calibration target, in DESIGN.md order."""
    checks: list[Check] = []
    checks += check_fig1_keepalive_fractions()
    checks += check_fig2_pair_a_tradeoff()
    checks += check_fig3_inversion()
    checks += check_catalog_orderings()
    checks += check_region_statistics()
    return checks


def render_report(checks: list[Check] | None = None) -> str:
    """Human-readable validation report (used by ``ecolife validate``)."""
    checks = checks if checks is not None else run_all_checks()
    lines = [c.render() for c in checks]
    n_fail = sum(0 if c.ok else 1 for c in checks)
    lines.append(
        f"\n{len(checks) - n_fail}/{len(checks)} calibration targets hold"
        + ("" if n_fail == 0 else f" -- {n_fail} FAILED")
    )
    return "\n".join(lines)
