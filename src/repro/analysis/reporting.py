"""Plain-text rendering of experiment outputs (tables and series).

Every experiment driver prints the same rows/series its paper figure shows,
through these helpers, so benchmark logs double as the reproduction record.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.comparison import SchemePoint


def fmt(value, width: int = 10, prec: int = 2) -> str:
    """Format one cell: floats to ``prec`` decimals, rest via str()."""
    if isinstance(value, float):
        return f"{value:>{width}.{prec}f}"
    return f"{str(value):>{width}}"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    prec: int = 2,
) -> str:
    """Render a fixed-width table."""
    rows = [list(r) for r in rows]
    widths = [
        max(len(str(h)), *(len(fmt(r[i], 0, prec).strip()) for r in rows))
        if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    widths = [max(w, 6) for w in widths]

    def render_row(cells) -> str:
        return " | ".join(
            fmt(c, widths[i], prec) if isinstance(c, float) else f"{str(c):>{widths[i]}}"
            for i, c in enumerate(cells)
        )

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(render_row(headers))
    out.append(sep)
    out.extend(render_row(r) for r in rows)
    return "\n".join(out)


def scatter_table(
    points: dict[str, SchemePoint], title: str, order: Sequence[str] | None = None
) -> str:
    """The paper's scatter coordinates as a table."""
    names = list(order) if order else list(points)
    rows = [
        [
            n,
            points[n].carbon_pct,
            points[n].service_pct,
            points[n].carbon_g,
            points[n].service_s,
            points[n].warm_ratio * 100.0,
        ]
        for n in names
        if n in points
    ]
    return ascii_table(
        [
            "scheme",
            "co2 +% ",
            "svc +% ",
            "co2 (g)",
            "svc (s)",
            "warm %",
        ],
        rows,
        title=title,
    )
