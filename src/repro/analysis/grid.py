"""Aggregation of scenario-grid sweeps into the paper's relative tables.

The sweep runner (:mod:`repro.experiments.runner`) produces
``{scenario label: {scheduler name: result}}`` mappings, where each result
is anything exposing ``total_carbon_g`` / ``mean_service_s`` /
``warm_ratio`` (a full ``SimulationResult`` or the runner's
``ResultSummary``). These helpers pivot such mappings into the paper's
"% vs oracle" framing (Figs. 13/14 generalised to arbitrary grids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.comparison import SchemePoint, relative_to_oracle
from repro.analysis.reporting import ascii_table
from repro.analysis.stats import pct_increase


@dataclass(frozen=True)
class GridGapRow:
    """One (scenario, scheduler) cell of a vs-reference gap table."""

    scenario: str
    scheduler: str
    service_pct: float
    carbon_pct: float
    warm_ratio: float


def grid_points(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
) -> dict[str, dict[str, SchemePoint]]:
    """Per-scenario scheme points relative to ``reference``."""
    return {
        label: relative_to_oracle(dict(results), oracle_name=reference)
        for label, results in by_scenario.items()
    }


def grid_gap_rows(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
) -> list[GridGapRow]:
    """Flatten a grid into gap rows, excluding the reference itself."""
    rows: list[GridGapRow] = []
    for label, points in grid_points(by_scenario, reference).items():
        for name, point in points.items():
            if name == reference:
                continue
            rows.append(
                GridGapRow(
                    scenario=label,
                    scheduler=name,
                    service_pct=point.service_pct,
                    carbon_pct=point.carbon_pct,
                    warm_ratio=point.warm_ratio,
                )
            )
    return rows


def mean_margins(
    rows: list[GridGapRow], scheduler: str
) -> tuple[float, float]:
    """Mean (service %, carbon %) margin of one scheduler across scenarios."""
    picked = [r for r in rows if r.scheduler == scheduler]
    if not picked:
        raise KeyError(f"no rows for scheduler {scheduler!r}")
    n = len(picked)
    return (
        sum(r.service_pct for r in picked) / n,
        sum(r.carbon_pct for r in picked) / n,
    )


def worst_margins(
    rows: list[GridGapRow], scheduler: str
) -> tuple[float, float]:
    """Worst-case (service %, carbon %) margin across scenarios."""
    picked = [r for r in rows if r.scheduler == scheduler]
    if not picked:
        raise KeyError(f"no rows for scheduler {scheduler!r}")
    return (
        max(r.service_pct for r in picked),
        max(r.carbon_pct for r in picked),
    )


def grid_gap_table(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
    title: str | None = None,
) -> str:
    """Render the whole grid as one "% vs reference" ASCII table."""
    rows = grid_gap_rows(by_scenario, reference)
    body = [
        [r.scenario, r.scheduler, r.service_pct, r.carbon_pct, r.warm_ratio * 100.0]
        for r in rows
    ]
    return ascii_table(
        ["scenario", "scheme", f"svc +% vs {reference}", f"co2 +% vs {reference}",
         "warm %"],
        body,
        title=title or f"scenario grid vs {reference}",
    )


def pairwise_gap(
    results: Mapping[str, object], a: str, b: str
) -> tuple[float, float]:
    """(service %, carbon %) increase of scheme ``a`` over scheme ``b``."""
    ra, rb = results[a], results[b]
    return (
        pct_increase(ra.mean_service_s, rb.mean_service_s),
        pct_increase(ra.total_carbon_g, rb.total_carbon_g),
    )
