"""Aggregation of scenario-grid sweeps into the paper's relative tables.

The sweep runner (:mod:`repro.experiments.runner`) produces
``{scenario label: {scheduler name: result}}`` mappings, where each result
is anything exposing ``total_carbon_g`` / ``mean_service_s`` /
``warm_ratio`` (a full ``SimulationResult`` or the runner's
``ResultSummary``). These helpers pivot such mappings into the paper's
"% vs oracle" framing (Figs. 13/14 generalised to arbitrary grids).

When the sweep ran with a record-persisting cache
(``ResultCache(store_records=True)``), :func:`grid_record_cdfs` /
:func:`record_cdfs` additionally rebuild Fig. 8-style per-invocation
CDFs (service time, per-decision carbon) from the stored ``.npz``
columns -- across the whole grid, without re-simulating anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.analysis.comparison import SchemePoint, relative_to_oracle
from repro.analysis.reporting import ascii_table
from repro.analysis.stats import CDF, pct_increase

if TYPE_CHECKING:
    from repro.experiments.runner import ResultCache, RunnerJob
    from repro.simulator.records import RecordArrays

#: The per-invocation columns the CDF helpers expose.
RECORD_CDF_FIELDS: tuple[str, ...] = ("service_s", "carbon_g", "energy_wh")


@dataclass(frozen=True)
class GridGapRow:
    """One (scenario, scheduler) cell of a vs-reference gap table."""

    scenario: str
    scheduler: str
    service_pct: float
    carbon_pct: float
    warm_ratio: float


def grid_points(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
) -> dict[str, dict[str, SchemePoint]]:
    """Per-scenario scheme points relative to ``reference``."""
    return {
        label: relative_to_oracle(dict(results), oracle_name=reference)
        for label, results in by_scenario.items()
    }


def grid_gap_rows(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
) -> list[GridGapRow]:
    """Flatten a grid into gap rows, excluding the reference itself."""
    rows: list[GridGapRow] = []
    for label, points in grid_points(by_scenario, reference).items():
        for name, point in points.items():
            if name == reference:
                continue
            rows.append(
                GridGapRow(
                    scenario=label,
                    scheduler=name,
                    service_pct=point.service_pct,
                    carbon_pct=point.carbon_pct,
                    warm_ratio=point.warm_ratio,
                )
            )
    return rows


def mean_margins(
    rows: list[GridGapRow], scheduler: str
) -> tuple[float, float]:
    """Mean (service %, carbon %) margin of one scheduler across scenarios."""
    picked = [r for r in rows if r.scheduler == scheduler]
    if not picked:
        raise KeyError(f"no rows for scheduler {scheduler!r}")
    n = len(picked)
    return (
        sum(r.service_pct for r in picked) / n,
        sum(r.carbon_pct for r in picked) / n,
    )


def worst_margins(
    rows: list[GridGapRow], scheduler: str
) -> tuple[float, float]:
    """Worst-case (service %, carbon %) margin across scenarios."""
    picked = [r for r in rows if r.scheduler == scheduler]
    if not picked:
        raise KeyError(f"no rows for scheduler {scheduler!r}")
    return (
        max(r.service_pct for r in picked),
        max(r.carbon_pct for r in picked),
    )


def grid_gap_table(
    by_scenario: Mapping[str, Mapping[str, object]],
    reference: str = "oracle",
    title: str | None = None,
) -> str:
    """Render the whole grid as one "% vs reference" ASCII table."""
    rows = grid_gap_rows(by_scenario, reference)
    body = [
        [r.scenario, r.scheduler, r.service_pct, r.carbon_pct, r.warm_ratio * 100.0]
        for r in rows
    ]
    return ascii_table(
        ["scenario", "scheme", f"svc +% vs {reference}", f"co2 +% vs {reference}",
         "warm %"],
        body,
        title=title or f"scenario grid vs {reference}",
    )


def pairwise_gap(
    results: Mapping[str, object], a: str, b: str
) -> tuple[float, float]:
    """(service %, carbon %) increase of scheme ``a`` over scheme ``b``."""
    ra, rb = results[a], results[b]
    return (
        pct_increase(ra.mean_service_s, rb.mean_service_s),
        pct_increase(ra.total_carbon_g, rb.total_carbon_g),
    )


# ---------------------------------------------------------------------------
# Per-invocation CDFs from persisted record arrays.
# ---------------------------------------------------------------------------


def record_cdfs(records: "RecordArrays") -> dict[str, CDF]:
    """Fig. 8-style CDFs of one run's per-invocation columns."""
    return {
        field: CDF.of(getattr(records, field)) for field in RECORD_CDF_FIELDS
    }


def grid_record_cdfs(
    cache: "ResultCache", jobs: Sequence["RunnerJob"]
) -> dict[str, dict[str, CDF]]:
    """Pool persisted per-invocation records into per-scheduler CDFs.

    ``{scheduler name: {column: CDF}}`` over *all* of a grid's scenarios,
    loaded from a record-persisting :class:`ResultCache` (run the grid
    with ``ResultCache(store_records=True)`` first). Jobs whose records
    were never persisted raise -- a partial CDF would silently misstate
    the distribution. Schedulers whose pooled records hold zero
    invocations (a very-low-rate generated workload can legitimately
    produce an empty trace) are omitted rather than crashing ``CDF.of``.
    """
    pooled: dict[str, dict[str, list[np.ndarray]]] = {}
    for job in jobs:
        records = cache.get_records(job)
        if records is None:
            raise KeyError(
                f"no persisted records for job ({job.scheduler!r}, "
                f"{job.scenario_label!r}); run the grid with "
                "ResultCache(store_records=True) first"
            )
        per = pooled.setdefault(
            job.scheduler, {field: [] for field in RECORD_CDF_FIELDS}
        )
        for field in RECORD_CDF_FIELDS:
            per[field].append(getattr(records, field))
    return {
        scheduler: {
            field: CDF.of(np.concatenate(chunks))
            for field, chunks in columns.items()
        }
        for scheduler, columns in pooled.items()
        if sum(c.size for c in columns[RECORD_CDF_FIELDS[0]]) > 0
    }


def record_cdf_table(
    cdfs: Mapping[str, Mapping[str, CDF]], title: str | None = None
) -> str:
    """Render pooled per-invocation CDFs as p50/p95/p99 rows."""
    rows = []
    for scheduler, columns in cdfs.items():
        svc, co2 = columns["service_s"], columns["carbon_g"]
        rows.append(
            [
                scheduler,
                svc.percentile(50), svc.percentile(95), svc.percentile(99),
                co2.percentile(50) * 1000.0, co2.percentile(95) * 1000.0,
            ]
        )
    return ascii_table(
        ["scheme", "svc p50 (s)", "svc p95 (s)", "svc p99 (s)",
         "co2 p50 (mg)", "co2 p95 (mg)"],
        rows,
        title=title or "per-invocation CDFs (pooled over grid)",
    )
