"""Statistical helpers: CDFs and percentile summaries for Fig. 8-style plots."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CDF:
    """An empirical cumulative distribution function."""

    values: np.ndarray  # sorted
    probs: np.ndarray  # in (0, 1]

    @classmethod
    def of(cls, samples) -> "CDF":
        x = np.sort(np.asarray(samples, dtype=float))
        if x.size == 0:
            raise ValueError("cannot build a CDF from zero samples")
        p = np.arange(1, x.size + 1) / x.size
        return cls(values=x, probs=p)

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100)."""
        return float(np.percentile(self.values, q))

    def prob_at(self, value: float) -> float:
        """P(X <= value)."""
        idx = int(np.searchsorted(self.values, value, side="right"))
        return idx / self.values.size

    def series(self, points: int = 50) -> list[tuple[float, float]]:
        """Down-sampled (value, prob) pairs for printing/plotting."""
        if self.values.size <= points:
            return list(zip(self.values.tolist(), self.probs.tolist()))
        idx = np.linspace(0, self.values.size - 1, points).astype(int)
        return list(zip(self.values[idx].tolist(), self.probs[idx].tolist()))


def pct_increase(value: float, reference: float) -> float:
    """Percent increase of ``value`` over ``reference`` (0 if ref is 0)."""
    if reference == 0.0:
        return 0.0
    return (value / reference - 1.0) * 100.0


def per_invocation_pct_increase(values, references) -> np.ndarray:
    """Element-wise percent increase, guarding zero references."""
    v = np.asarray(values, dtype=float)
    r = np.asarray(references, dtype=float)
    if v.shape != r.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {r.shape}")
    safe = np.where(r == 0.0, 1.0, r)
    out = (v / safe - 1.0) * 100.0
    return np.where(r == 0.0, 0.0, out)
