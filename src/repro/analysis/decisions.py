"""Decision-behaviour analysis: *why* a scheduler's numbers look the way
they do.

The aggregate metrics (service time, carbon) say who wins; these helpers
say how: the distribution of chosen keep-alive periods, the keep-alive
location split as a function of carbon intensity, and per-function
summaries. Used by the examples and handy when tuning EcoLife configs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.carbon.intensity import CarbonIntensityTrace
from repro.hardware.specs import Generation
from repro.simulator.records import SimulationResult


@dataclass(frozen=True)
class KeepAliveBehaviour:
    """Summary of a run's keep-alive decisions."""

    k_minutes: np.ndarray  # decided periods (minutes), one per invocation
    locations: list[Generation]
    no_keepalive_fraction: float

    @property
    def median_k_min(self) -> float:
        positive = self.k_minutes[self.k_minutes > 0]
        return float(np.median(positive)) if positive.size else 0.0

    @property
    def old_fraction(self) -> float:
        """Share of positive keep-alive decisions placed on old hardware."""
        kept = [
            loc
            for loc, k in zip(self.locations, self.k_minutes)
            if k > 0
        ]
        if not kept:
            return 0.0
        return sum(1 for g in kept if g is Generation.OLD) / len(kept)


def keepalive_behaviour(result: SimulationResult) -> KeepAliveBehaviour:
    """Extract the keep-alive decision profile from a run."""
    ks, locs = [], []
    for r in result.records:
        d = r.keepalive_decision
        if d is None:
            ks.append(0.0)
            locs.append(r.location)
        else:
            ks.append(d.duration_s / 60.0)
            locs.append(d.location)
    k = np.asarray(ks, dtype=float)
    return KeepAliveBehaviour(
        k_minutes=k,
        locations=locs,
        no_keepalive_fraction=float(np.mean(k == 0.0)) if k.size else 0.0,
    )


def location_split_by_ci(
    result: SimulationResult,
    ci_trace: CarbonIntensityTrace,
    n_bins: int = 4,
) -> list[tuple[str, int, int, float]]:
    """Keep-alive location split per carbon-intensity quantile bin.

    Returns rows of (bin label, old count, new count, old fraction) for
    positive keep-alive decisions -- the signature of carbon-aware
    behaviour is the old fraction rising with CI.
    """
    entries = []
    for r in result.records:
        d = r.keepalive_decision
        if d is None or d.duration_s <= 0:
            continue
        entries.append((ci_trace.at(r.t), d.location))
    if not entries:
        return []
    cis = np.array([e[0] for e in entries])
    edges = np.quantile(cis, np.linspace(0.0, 1.0, n_bins + 1))
    rows = []
    for i in range(n_bins):
        lo, hi = edges[i], edges[i + 1]
        mask = (
            (cis >= lo) & (cis <= hi if i == n_bins - 1 else cis < hi)
        )
        locs = [entries[j][1] for j in np.flatnonzero(mask)]
        old = sum(1 for g in locs if g is Generation.OLD)
        new = len(locs) - old
        frac = old / len(locs) if locs else 0.0
        rows.append((f"{lo:.0f}-{hi:.0f}", old, new, frac))
    return rows


def per_function_table(result: SimulationResult, top: int = 10) -> str:
    """Per-function breakdown of the most-invoked functions."""
    by_func: dict[str, list] = defaultdict(list)
    for r in result.records:
        by_func[r.func_name].append(r)
    ranked = sorted(by_func.items(), key=lambda kv: -len(kv[1]))[:top]
    rows = []
    for name, records in ranked:
        warm = sum(0 if r.cold else 1 for r in records) / len(records)
        carbon = sum(r.carbon_g for r in records)
        svc = float(np.mean([r.service_s for r in records]))
        ka = float(np.mean([r.keepalive_s for r in records]))
        rows.append([name, len(records), warm * 100.0, svc, carbon, ka / 60.0])
    return ascii_table(
        ["function", "invocations", "warm %", "svc (s)", "co2 (g)", "KA (min)"],
        rows,
        title=f"per-function behaviour ({result.scheduler_name})",
    )
