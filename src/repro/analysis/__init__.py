"""Result analysis: CDFs, relative-increase comparisons, text reporting."""

from repro.analysis.decisions import (
    KeepAliveBehaviour,
    keepalive_behaviour,
    location_split_by_ci,
    per_function_table,
)
from repro.analysis.comparison import (
    SchemePoint,
    gap_pp,
    relative_to_opts,
    relative_to_oracle,
)
from repro.analysis.grid import (
    RECORD_CDF_FIELDS,
    GridGapRow,
    grid_gap_rows,
    grid_gap_table,
    grid_points,
    grid_record_cdfs,
    mean_margins,
    pairwise_gap,
    record_cdf_table,
    record_cdfs,
    worst_margins,
)
from repro.analysis.reporting import ascii_table, fmt, scatter_table
from repro.analysis.stats import CDF, pct_increase, per_invocation_pct_increase

__all__ = [
    "CDF",
    "pct_increase",
    "per_invocation_pct_increase",
    "SchemePoint",
    "relative_to_opts",
    "relative_to_oracle",
    "gap_pp",
    "GridGapRow",
    "grid_gap_rows",
    "grid_gap_table",
    "grid_points",
    "mean_margins",
    "worst_margins",
    "pairwise_gap",
    "RECORD_CDF_FIELDS",
    "grid_record_cdfs",
    "record_cdfs",
    "record_cdf_table",
    "ascii_table",
    "scatter_table",
    "fmt",
    "KeepAliveBehaviour",
    "keepalive_behaviour",
    "location_split_by_ci",
    "per_function_table",
]
