"""Scheme comparisons in the paper's "% increase w.r.t. X-Opt" framing.

Most evaluation figures plot every scheme at the coordinates::

    x = % increase of total carbon over CO2-OPT
    y = % increase of service time over SERVICE-TIME-OPT

(Figs. 4, 7, 9) or relative to ORACLE (Figs. 13, 14). These helpers turn a
``{name: SimulationResult}`` dict into those coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import pct_increase
from repro.simulator.records import SimulationResult


@dataclass(frozen=True)
class SchemePoint:
    """One scheme's coordinates in a relative-increase scatter."""

    name: str
    carbon_pct: float
    service_pct: float
    carbon_g: float
    service_s: float
    warm_ratio: float


def relative_to_opts(
    results: dict[str, SimulationResult],
    carbon_ref: str = "co2-opt",
    service_ref: str = "service-time-opt",
) -> dict[str, SchemePoint]:
    """Coordinates relative to the single-metric optima (Figs. 4/7/9)."""
    for ref in (carbon_ref, service_ref):
        if ref not in results:
            raise KeyError(f"reference scheme {ref!r} missing from results")
    carbon0 = results[carbon_ref].total_carbon_g
    service0 = results[service_ref].mean_service_s
    return {
        name: SchemePoint(
            name=name,
            carbon_pct=pct_increase(r.total_carbon_g, carbon0),
            service_pct=pct_increase(r.mean_service_s, service0),
            carbon_g=r.total_carbon_g,
            service_s=r.mean_service_s,
            warm_ratio=r.warm_ratio,
        )
        for name, r in results.items()
    }


def relative_to_oracle(
    results: dict[str, SimulationResult], oracle_name: str = "oracle"
) -> dict[str, SchemePoint]:
    """Coordinates relative to ORACLE (robustness figures 13/14)."""
    if oracle_name not in results:
        raise KeyError(f"reference scheme {oracle_name!r} missing from results")
    ref = results[oracle_name]
    return {
        name: SchemePoint(
            name=name,
            carbon_pct=pct_increase(r.total_carbon_g, ref.total_carbon_g),
            service_pct=pct_increase(r.mean_service_s, ref.mean_service_s),
            carbon_g=r.total_carbon_g,
            service_s=r.mean_service_s,
            warm_ratio=r.warm_ratio,
        )
        for name, r in results.items()
    }


def gap_pp(points: dict[str, SchemePoint], a: str, b: str) -> tuple[float, float]:
    """(service, carbon) gap in percentage points between two schemes."""
    return (
        points[a].service_pct - points[b].service_pct,
        points[a].carbon_pct - points[b].carbon_pct,
    )
