"""Baselines and oracle solutions from the paper's evaluation (Sec. V)."""

from repro.baselines.fixed import (
    SingleGenerationFixedScheduler,
    new_only,
    old_only,
)
from repro.baselines.heuristic import ga_scheduler, sa_scheduler
from repro.baselines.oracle import (
    OracleObjective,
    OracleScheduler,
    co2_opt,
    energy_opt,
    oracle,
    service_time_opt,
)
from repro.baselines.static_eco import eco_new, eco_old

__all__ = [
    "SingleGenerationFixedScheduler",
    "new_only",
    "old_only",
    "OracleScheduler",
    "OracleObjective",
    "oracle",
    "co2_opt",
    "service_time_opt",
    "energy_opt",
    "eco_old",
    "eco_new",
    "ga_scheduler",
    "sa_scheduler",
]
