"""GA- and SA-driven keep-alive schedulers.

Paper Sec. IV-C compares PSO against a Genetic Algorithm (crossover 0.6,
mutation 0.01, population 15) and Simulated Annealing (T0=100, T_stop=1,
cooling 0.9). These schedulers reuse EcoLife's full machinery -- objective,
EPDM, warm-pool adjustment -- and swap only the KDM's optimizer, so the
comparison isolates the meta-heuristic exactly as the paper describes.
"""

from __future__ import annotations

from repro.core.config import EcoLifeConfig, OptimizerKind
from repro.core.scheduler import EcoLifeScheduler


def ga_scheduler(config: EcoLifeConfig | None = None) -> EcoLifeScheduler:
    """EcoLife with a Genetic Algorithm KDM."""
    return EcoLifeScheduler.with_optimizer(OptimizerKind.GENETIC, config)


def sa_scheduler(config: EcoLifeConfig | None = None) -> EcoLifeScheduler:
    """EcoLife with a Simulated Annealing KDM."""
    return EcoLifeScheduler.with_optimizer(OptimizerKind.ANNEALING, config)
