"""Eco-Old / Eco-New: EcoLife restricted to a single hardware generation.

Paper Sec. V: "These schemes are static versions of EcoLife, and we use
single-generation hardware to schedule functions. Eco-New and Eco-Old
primarily emphasize the determination of keep-alive periods while
overlooking the trade-off between older and newer hardware."
"""

from __future__ import annotations

from repro.core.config import EcoLifeConfig
from repro.core.scheduler import EcoLifeScheduler
from repro.hardware.specs import Generation


def eco_old(config: EcoLifeConfig | None = None) -> EcoLifeScheduler:
    """EcoLife's KDM on old-generation hardware only."""
    sched = EcoLifeScheduler.single_generation(Generation.OLD, config)
    sched.name = "eco-old"
    return sched


def eco_new(config: EcoLifeConfig | None = None) -> EcoLifeScheduler:
    """EcoLife's KDM on new-generation hardware only."""
    sched = EcoLifeScheduler.single_generation(Generation.NEW, config)
    sched.name = "eco-new"
    return sched
