"""Fixed-policy single-generation baselines: NEW-ONLY and OLD-ONLY.

Paper Sec. V: "NEW-ONLY, OLD-ONLY follow a ten (10) minutes keep-alive
policy of OpenWhisk. The NEW-ONLY scheme prioritizes the utilization of
faster, newer hardware ... The OLD-ONLY scheme operates in the opposite
manner." Neither uses multi-generation keep-alive, so spill-over to the
other pool is disabled and pool overflow falls back to OpenWhisk-style
evict-the-soonest-to-expire (the default ranking in
:class:`~repro.simulator.scheduler.BaseScheduler`).
"""

from __future__ import annotations

from repro.hardware.specs import Generation
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import (
    DEFAULT_KEEPALIVE_S,
    BaseScheduler,
    KeepAliveRequest,
    PlacementRequest,
)


class SingleGenerationFixedScheduler(BaseScheduler):
    """Always one generation, fixed keep-alive period."""

    allow_spill = False

    def __init__(
        self,
        generation: Generation,
        keepalive_s: float = DEFAULT_KEEPALIVE_S,
    ) -> None:
        super().__init__()
        if keepalive_s < 0.0:
            raise ValueError("keepalive_s must be >= 0")
        self.generation = generation
        self.keepalive_s = keepalive_s
        self.name = f"{generation.value}-only"

    def place(self, req: PlacementRequest) -> Generation:
        # Warm containers only ever exist on our generation; prefer them.
        if self.generation in req.warm_locations:
            return self.generation
        return self.generation

    def keepalive(self, req: KeepAliveRequest) -> KeepAliveDecision:
        return KeepAliveDecision(
            location=self.generation, duration_s=self.keepalive_s
        )


def new_only(keepalive_s: float = DEFAULT_KEEPALIVE_S) -> SingleGenerationFixedScheduler:
    """The paper's NEW-ONLY scheme."""
    return SingleGenerationFixedScheduler(Generation.NEW, keepalive_s)


def old_only(keepalive_s: float = DEFAULT_KEEPALIVE_S) -> SingleGenerationFixedScheduler:
    """The paper's OLD-ONLY scheme."""
    return SingleGenerationFixedScheduler(Generation.OLD, keepalive_s)
