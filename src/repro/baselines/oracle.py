"""Oracle solutions: ORACLE, CO2-OPT, SERVICE-TIME-OPT, ENERGY-OPT.

Paper Sec. V: "These solutions utilize heterogeneous hardware and present
the theoretical upper bounds, which are computed via brute-forcing every
possible scheduling option for each function invocation." Brute-forcing a
per-invocation decision requires knowing when the function is invoked next,
so these schedulers declare ``requires_lookahead`` and read the trace's
next-arrival index; they also run with uncapped pool memory (the paper
calls them "impractical in real-world systems").

For every completed invocation the oracle enumerates all (location,
keep-alive period) pairs on the K_AT grid, computes the *exact* consequence
of each pair -- next service time, next service carbon, keep-alive carbon
integrated over the real CI trace -- and picks the minimum of its
objective:

- ``ORACLE``: the paper's weighted objective (Sec. IV-A) with exact values;
- ``CO2_OPT``: carbon only;
- ``SERVICE_TIME_OPT``: service time only;
- ``ENERGY_OPT``: attributed energy only (the "traditional and naive"
  scheme that ignores embodied carbon and CI variation).

Secondary tie-breaking (1e-6-weighted) keeps decisions deterministic and
avoids pathological carbon waste on service-time ties.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.hardware.specs import GENERATIONS, Generation
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import (
    BaseScheduler,
    KeepAliveRequest,
    PlacementRequest,
)
from repro.workloads.functions import FunctionProfile


class OracleObjective(enum.Enum):
    """What the brute force minimises."""

    ORACLE = "oracle"
    CO2_OPT = "co2-opt"
    SERVICE_TIME_OPT = "service-time-opt"
    ENERGY_OPT = "energy-opt"


class OracleScheduler(BaseScheduler):
    """Per-invocation brute force with trace lookahead."""

    requires_lookahead = True
    #: The experiment runner gives oracles unlimited keep-alive memory.
    wants_uncapped_memory = True
    allow_spill = True

    def __init__(
        self,
        objective: OracleObjective = OracleObjective.ORACLE,
        lambda_s: float = 0.5,
        lambda_c: float = 0.5,
    ) -> None:
        super().__init__()
        self.objective = objective
        self.lambda_s = lambda_s
        self.lambda_c = lambda_c
        self.name = objective.value

    # ------------------------------------------------------------------
    # Cost primitives
    # ------------------------------------------------------------------

    def _service_time(self, func: FunctionProfile, gen: Generation, cold: bool) -> float:
        return func.service_time_s(
            self.env.server(gen), cold=cold, setup_s=self.env.setup_delay_s
        )

    def _service_carbon(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        server = self.env.server(gen)
        busy = self.env.setup_delay_s + func.exec_time_s(server)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        return self.env.carbon_model.est_service_g(
            server, func.mem_gb, busy, overhead, ci
        )

    def _service_energy(
        self, func: FunctionProfile, gen: Generation, cold: bool
    ) -> float:
        server = self.env.server(gen)
        busy = self.env.setup_delay_s + func.exec_time_s(server)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        return self.env.carbon_model.service_energy_wh(
            server, func.mem_gb, busy, overhead
        )

    def _placement_cost(
        self, func: FunctionProfile, gen: Generation, cold: bool, t: float
    ) -> float:
        """Objective-specific cost of executing at ``gen`` now."""
        ci = self.env.ci_at(t)
        s = self._service_time(func, gen, cold)
        g = self._service_carbon(func, gen, cold, ci)
        e = self._service_energy(func, gen, cold)
        if self.objective is OracleObjective.SERVICE_TIME_OPT:
            return s + 1e-6 * g
        if self.objective is OracleObjective.CO2_OPT:
            return g + 1e-6 * s
        if self.objective is OracleObjective.ENERGY_OPT:
            return e + 1e-6 * s
        # Weighted ORACLE: normalised fscore (Sec. IV-D shape).
        s_max = max(self._service_time(func, x, True) for x in GENERATIONS)
        sc_max = max(
            self._service_carbon(func, x, True, max(ci, 1e-9)) for x in GENERATIONS
        )
        return self.lambda_s * s / s_max + self.lambda_c * g / max(sc_max, 1e-12)

    # ------------------------------------------------------------------
    # Engine protocol
    # ------------------------------------------------------------------

    def place(self, req: PlacementRequest) -> Generation:
        if req.warm_locations:
            return min(
                req.warm_locations,
                key=lambda g: self._placement_cost(req.func, g, False, req.t),
            )
        return min(
            GENERATIONS,
            key=lambda g: self._placement_cost(req.func, g, True, req.t),
        )

    def keepalive(self, req: KeepAliveRequest) -> KeepAliveDecision:
        func = req.func
        t_end = req.t_end
        t_next = self.env.next_arrival(func.name, req.record.t)
        if t_next is None or t_next <= t_end:
            # No future invocation (or it arrives mid-execution and will be
            # cold regardless): any keep-alive is pure cost.
            return KeepAliveDecision.none()

        delta = t_next - t_end
        best_cost = np.inf
        best: tuple[Generation, float] = (Generation.NEW, 0.0)
        for gen in GENERATIONS:
            ks = self.env.keepalive_grid_s()
            costs = self._keepalive_costs(func, gen, ks, t_end, t_next, delta)
            i = int(np.argmin(costs))
            if costs[i] < best_cost:
                best_cost = float(costs[i])
                best = (gen, float(ks[i]))
        return KeepAliveDecision(location=best[0], duration_s=best[1])

    # ------------------------------------------------------------------
    # Brute force over the keep-alive grid (vectorised per location)
    # ------------------------------------------------------------------

    def _keepalive_costs(
        self,
        func: FunctionProfile,
        gen: Generation,
        ks: np.ndarray,
        t_end: float,
        t_next: float,
        delta: float,
    ) -> np.ndarray:
        model = self.env.carbon_model
        server = self.env.server(gen)
        warm = ks > delta  # expiry at exactly t_next counts as cold

        ci_next = self.env.ci_at(t_next)

        # Exact keep-alive carbon: until the hit when warm, full k when cold.
        ka_carbon = np.empty_like(ks)
        ka_energy = np.empty_like(ks)
        warm_carbon = model.keepalive(server, func.mem_gb, t_end, t_next).total
        warm_energy = model.keepalive_energy_wh(server, func.mem_gb, delta)
        for i, k in enumerate(ks):
            if warm[i]:
                ka_carbon[i] = warm_carbon
                ka_energy[i] = warm_energy
            elif k > 0.0:
                ka_carbon[i] = model.keepalive(
                    server, func.mem_gb, t_end, t_end + k
                ).total
                ka_energy[i] = model.keepalive_energy_wh(server, func.mem_gb, k)
            else:
                ka_carbon[i] = 0.0
                ka_energy[i] = 0.0

        # Next invocation's service, given the keep-alive outcome.
        cold_gen = min(
            GENERATIONS,
            key=lambda g: self._placement_cost(func, g, True, t_next),
        )
        s_next = np.where(
            warm,
            self._service_time(func, gen, cold=False),
            self._service_time(func, cold_gen, cold=True),
        )
        sc_next = np.where(
            warm,
            self._service_carbon(func, gen, cold=False, ci=ci_next),
            self._service_carbon(func, cold_gen, cold=True, ci=ci_next),
        )
        e_next = np.where(
            warm,
            self._service_energy(func, gen, cold=False),
            self._service_energy(func, cold_gen, cold=True),
        )

        if self.objective is OracleObjective.SERVICE_TIME_OPT:
            return s_next + 1e-6 * (sc_next + ka_carbon)
        if self.objective is OracleObjective.CO2_OPT:
            return sc_next + ka_carbon + 1e-6 * s_next
        if self.objective is OracleObjective.ENERGY_OPT:
            return e_next + ka_energy + 1e-6 * s_next

        # Weighted ORACLE: the Sec. IV-A objective with exact terms.
        s_max = max(self._service_time(func, x, True) for x in GENERATIONS)
        ci_ref = max(self.env.ci_max_observed(t_next), 1e-9)
        sc_max = max(
            self._service_carbon(func, x, True, ci_ref) for x in GENERATIONS
        )
        kc_max = max(
            model.est_keepalive_rate_g_per_s(self.env.server(x), func.mem_gb, ci_ref)
            for x in GENERATIONS
        ) * max(self.env.kmax_s, 1e-9)
        return (
            self.lambda_s * s_next / max(s_max, 1e-12)
            + self.lambda_c * sc_next / max(sc_max, 1e-12)
            + self.lambda_c * ka_carbon / max(kc_max, 1e-12)
        )


def oracle() -> OracleScheduler:
    """The paper's ORACLE (joint optimum)."""
    return OracleScheduler(OracleObjective.ORACLE)


def co2_opt() -> OracleScheduler:
    """The paper's CO2-OPT (carbon-only optimum)."""
    return OracleScheduler(OracleObjective.CO2_OPT)


def service_time_opt() -> OracleScheduler:
    """The paper's SERVICE-TIME-OPT (performance-only optimum)."""
    return OracleScheduler(OracleObjective.SERVICE_TIME_OPT)


def energy_opt() -> OracleScheduler:
    """The paper's ENERGY-OPT (energy-only, carbon-blind)."""
    return OracleScheduler(OracleObjective.ENERGY_OPT)
