"""Asyncio HTTP front-end for the decision service (stdlib only).

A deliberately small HTTP/1.1 server over ``asyncio`` streams -- no web
framework, no new dependencies. One :class:`DecisionServer` owns one
:class:`~repro.service.online.DecisionService`; requests serialise
through an ``asyncio.Lock`` (the engine is single-threaded state; the
fused batch kernels want batching, not concurrency -- POST batched
arrivals for throughput).

Endpoints (all JSON):

- ``POST /decide`` -- body ``{"arrivals": [{"t_s": ..., "function":
  ...}, ...]}`` (or one bare arrival object). Arrivals must be
  time-ordered and at-or-after everything already decided. Responds
  ``{"decisions": [...]}``; 400 on bad input, 503 while the intensity
  feed is stale.
- ``GET /healthz`` -- 200 when the provider is fresh, 503 otherwise.
- ``GET /metrics`` -- decision counters, p50/p99 latency, provider
  staleness, live/archived swarm gauges.
- ``POST /checkpoint`` -- body optionally ``{"dir": ...}``; persists
  full scheduler + engine state via the retire/spill machinery and
  keeps serving.

Graceful shutdown (:meth:`DecisionServer.stop`) checkpoints into the
service's configured checkpoint directory if it has one.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable

from repro.service.online import DecisionService, StaleCarbonFeed

_MAX_BODY_BYTES = 64 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class DecisionServer:
    """Serve one :class:`DecisionService` over HTTP.

    ``clock`` supplies "now" for health/metrics endpoints; the default
    (``None``) uses the service's event time -- correct for replayed or
    benchmarked traffic. Live deployments pass a real clock (the CLI's
    ``electricity-maps`` mode wires one rebased to process start) so
    staleness is judged against real time.
    """

    def __init__(
        self,
        service: DecisionService,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.clock = clock
        self._lock = asyncio.Lock()
        self._server: asyncio.Server | None = None

    def _now(self) -> float | None:
        return self.clock() if self.clock is not None else None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self, checkpoint: bool = True) -> None:
        """Stop accepting connections; checkpoint if configured."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if checkpoint and self.service.checkpoint_dir is not None:
            async with self._lock:
                self.service.checkpoint()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- request plumbing --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = await self._route(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # Loop teardown cancels handler tasks parked on an idle
                # keep-alive connection; swallowing here keeps shutdown
                # quiet (there is nothing left to clean up).
                asyncio.CancelledError,
            ):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return "BAD", "/", {}, b""
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", length)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, object],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, object]]:
        path = path.split("?", 1)[0]
        routes: dict[
            tuple[str, str], Callable[[bytes], Awaitable[tuple[int, dict[str, object]]]]
        ] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics,
            ("POST", "/decide"): self._decide,
            ("POST", "/checkpoint"): self._checkpoint,
        }
        handler = routes.get((method, path))
        if handler is None:
            known = {p for _, p in routes}
            if path in known:
                return 405, {"error": f"method {method} not allowed on {path}"}
            return 404, {"error": f"no such endpoint: {path}"}
        try:
            return await handler(body)
        except StaleCarbonFeed as exc:
            return 503, {"error": str(exc), "stale": True}
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _healthz(self, body: bytes) -> tuple[int, dict[str, object]]:
        now = self._now()
        healthy = self.service.healthy(now)
        payload: dict[str, object] = {
            "status": "ok" if healthy else "stale",
            "provider": self.service.provider.name,
            "staleness_s": self.service.provider.staleness_s(
                self.service.last_t if now is None else now
            ),
        }
        return (200 if healthy else 503), payload

    async def _metrics(self, body: bytes) -> tuple[int, dict[str, object]]:
        async with self._lock:
            return 200, self.service.metrics_snapshot(self._now())

    async def _decide(self, body: bytes) -> tuple[int, dict[str, object]]:
        payload = json.loads(body.decode("utf-8")) if body else {}
        if isinstance(payload, dict) and "arrivals" in payload:
            raw = payload["arrivals"]
        elif isinstance(payload, dict) and "t_s" in payload:
            raw = [payload]
        else:
            raise ValueError(
                'expected {"arrivals": [{"t_s", "function"}, ...]} '
                'or one {"t_s", "function"} object'
            )
        if not isinstance(raw, list):
            raise ValueError("arrivals must be a list")
        arrivals = [(float(a["t_s"]), str(a["function"])) for a in raw]
        async with self._lock:
            decisions = self.service.decide(arrivals)
        return 200, {"decisions": decisions}

    async def _checkpoint(self, body: bytes) -> tuple[int, dict[str, object]]:
        payload = json.loads(body.decode("utf-8")) if body else {}
        directory = payload.get("dir") if isinstance(payload, dict) else None
        async with self._lock:
            summary = self.service.checkpoint(directory)
        return 200, {"checkpoint": summary}
