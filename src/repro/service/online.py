"""Online carbon-aware decision service.

Wraps the replay engine's incremental stepping API
(:meth:`~repro.simulator.engine.SimulationEngine.start` /
``step_batch`` / ``finish``) around live inputs: arrival events arrive
over HTTP instead of from a recorded trace, and carbon intensity comes
from a pluggable :class:`~repro.carbon.providers.CarbonIntensityProvider`
instead of a static file. Everything downstream -- EPDM placement, KDM
swarms, warm-pool accounting -- is the *same code* the replay engine
runs, which is what makes the service's decisions bit-identical to a
replay of the same arrivals against the same intensity data (the e2e
test in ``tests/test_service.py`` asserts exactly that).

Equivalence contract (see ``docs/service.md``): a ``decide()`` batch is
stepped through the engine exactly like a slice of a replayed trace.
Decision grouping never changes decisions (the PR-2/PR-5 batching
contract), so *how* arrivals are split across ``decide()`` calls does
not matter -- with one caveat: the DPSO's dF perception reads the
trailing arrival *rate*, and a replayed trace exposes all arrivals up
to the query instant, including ones later in the batch. The service
reproduces that by logging the whole batch into its arrival view before
stepping it; bit-identity against a replay therefore holds per POSTed
batch (POST everything at once to reproduce a full replay; split
batches are the honest online semantics where the rate can only see
POSTed arrivals).

Checkpointing rides the PR-4/5 retirement machinery: ``checkpoint()``
retires every live function (an identity for decisions), exports the
archives and estimator shelf into :class:`~repro.core.spill.ArchiveSpill`
stores under the checkpoint directory, and pickles the engine runtime
(records, event heap, warm pools). ``restore()`` rebuilds a fresh
service and imports everything; functions rehydrate through the normal
on-arrival path, bit-identically.
"""

from __future__ import annotations

import json
import pathlib
import pickle
import time
from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.carbon.providers import CarbonIntensityProvider
from repro.core.arrival import ArrivalEstimator
from repro.core.config import EcoLifeConfig
from repro.core.kdm import RetiredFunction
from repro.core.scheduler import EcoLifeScheduler
from repro.core.spill import ArchiveSpill
from repro.hardware.catalog import DEFAULT_PAIR
from repro.hardware.specs import HardwarePair
from repro.service.metrics import ServiceMetrics
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.simulator.records import InvocationRecord
from repro.workloads.functions import FunctionProfile
from repro.workloads.sebs import SEBS_FUNCTIONS

#: Version 2: the engine's single push counter became the deterministic
#: pair (expiry-only ``seq``, global invocation ``next_index``) when the
#: sharded replay landed; v1 checkpoints cannot restore the split.
CHECKPOINT_VERSION = 2


class StaleCarbonFeed(RuntimeError):
    """The intensity provider's data is too old to decide against."""


class LiveArrivalLog:
    """Arrival view over events observed so far (no trace, no lookahead).

    Satisfies :class:`~repro.simulator.scheduler.ArrivalView` for the
    engine's env: ``rate_per_minute`` runs the exact
    :class:`~repro.workloads.trace.InvocationTrace` formula over the
    logged arrival times, so the DPSO's dF perception sees the same
    numbers it would in a replay of the same arrivals. Times older than
    ``retention_s`` behind the newest arrival are pruned (queries only
    ever look back one rate window, 60 s by default); lookahead is
    structurally impossible and loudly refused.
    """

    def __init__(self, retention_s: float = 3600.0) -> None:
        if retention_s <= 0.0:
            raise ValueError("retention_s must be > 0")
        self.retention_s = retention_s
        self._times: list[float] = []
        self._array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def last_t(self) -> float | None:
        return self._times[-1] if self._times else None

    def extend(self, times: Sequence[float]) -> None:
        """Log arrivals (non-decreasing, and never behind the log)."""
        if not times:
            return
        last = self._times[-1] if self._times else float("-inf")
        for t in times:
            if t < last:
                raise ValueError(
                    f"arrivals must be logged in time order ({t} < {last})"
                )
            last = t
        self._times.extend(float(t) for t in times)
        self._array = None

    def prune(self, decided_t: float) -> None:
        """Drop times more than ``retention_s`` behind ``decided_t``.

        Pruning keys off the newest *decided* time, never the newest
        logged time: the service logs a whole batch before stepping it
        (see the module docstring), and early decisions in that batch
        must still see their full trailing rate window. The service
        prunes between batches.
        """
        cutoff = decided_t - self.retention_s
        if self._times and self._times[0] < cutoff:
            keep = int(np.searchsorted(self.times_s, cutoff, side="left"))
            del self._times[:keep]
            self._array = None

    @property
    def times_s(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(self._times, dtype=float)
        return self._array

    def rate_per_minute(self, t: float, window_s: float = 60.0) -> float:
        """Logged invocations per minute over ``[t - window_s, t]``.

        Bit-identical to ``InvocationTrace.rate_per_minute`` over the
        same arrival times (same searchsorted expression).
        """
        times = self.times_s
        lo = int(np.searchsorted(times, t - window_s, side="right"))
        hi = int(np.searchsorted(times, t, side="right"))
        if window_s <= 0.0:
            return 0.0
        return (hi - lo) * 60.0 / window_s

    def next_arrival(self, name: str, after_t: float) -> float | None:
        raise RuntimeError(
            "live arrival logs cannot look ahead; lookahead schedulers "
            "are replay-only"
        )


class DecisionService:
    """The online KDM: arrivals in, (placement, keep-alive) decisions out.

    One service owns one single-use engine + EcoLife scheduler and steps
    them with whatever the network delivers. Retirement is always on
    (``retire_after_s=inf`` if the config left it off -- zero idle
    retirement, but the archive machinery that checkpoints ride on is
    live). Time is *event time*: the arrival timestamps in requests,
    which is also the clock providers are polled and health-checked
    against (a wall clock would make replayed traffic instantly stale).
    """

    def __init__(
        self,
        provider: CarbonIntensityProvider,
        pair: HardwarePair = DEFAULT_PAIR,
        config: EcoLifeConfig | None = None,
        sim_config: SimulationConfig | None = None,
        functions: Mapping[str, FunctionProfile] | None = None,
        checkpoint_dir: str | None = None,
    ) -> None:
        cfg = config or EcoLifeConfig()
        if not cfg.retirement_enabled:
            # Legal no-op retirement: one empty sweep, then the archive
            # machinery sits ready for retire_all()/checkpoint().
            cfg = replace(cfg, retire_after_s=float("inf"))
        self.config = cfg
        self.provider = provider
        self.pair = pair
        self.functions: dict[str, FunctionProfile] = dict(
            SEBS_FUNCTIONS if functions is None else functions
        )
        self.checkpoint_dir = checkpoint_dir
        self.metrics = ServiceMetrics()
        self._log = LiveArrivalLog()
        self._last_t: float | None = None
        # The engine never measures per-decision wall overhead here: the
        # service times whole batches end to end instead.
        self.sim_config = sim_config or SimulationConfig(
            measure_decision_overhead=False
        )
        self._engine = SimulationEngine(
            pair=pair,
            trace=self._log,
            ci_trace=provider.trace(),
            config=self.sim_config,
        )
        self._scheduler = EcoLifeScheduler(cfg)
        self._engine.start(self._scheduler)

    # -- introspection ---------------------------------------------------------

    @property
    def last_t(self) -> float:
        """Event time: the newest arrival timestamp seen (0 before any)."""
        return 0.0 if self._last_t is None else self._last_t

    @property
    def scheduler_name(self) -> str:
        return self._scheduler.name

    def healthy(self, now_s: float | None = None) -> bool:
        return self.provider.healthy(self.last_t if now_s is None else now_s)

    def register_function(self, profile: FunctionProfile) -> None:
        """Add a function to the serving catalog."""
        self.functions[profile.name] = profile

    def metrics_snapshot(self, now_s: float | None = None) -> dict[str, object]:
        now = self.last_t if now_s is None else now_s
        kdm = self._scheduler.kdm
        assert kdm is not None
        out = self.metrics.snapshot()
        out.update(
            {
                "scheduler": self.scheduler_name,
                "provider": self.provider.name,
                "provider_staleness_s": self.provider.staleness_s(now),
                "provider_healthy": self.provider.healthy(now),
                "event_time_s": self.last_t,
                "swarms_live": kdm.live_count,
                "swarms_archived": kdm.archived_count,
                "swarms_retired_total": kdm.retired,
                "swarms_rehydrated_total": kdm.rehydrated,
                "swarms_peak_live": kdm.peak_live,
            }
        )
        return out

    # -- the decision path -----------------------------------------------------

    def decide(
        self, arrivals: Sequence[tuple[float, str]]
    ) -> list[dict[str, object]]:
        """Decide one batch of ``(t_s, function_name)`` arrivals.

        Raises ``ValueError`` for out-of-order times or unknown
        functions (HTTP 400) and :class:`StaleCarbonFeed` when the
        provider's data is older than its ``max_staleness_s`` (503) --
        refusing to answer beats deciding on stale intensity.
        """
        if not arrivals:
            return []
        batch: list[tuple[float, FunctionProfile]] = []
        prev = self.last_t if self._last_t is not None else float("-inf")
        for t_s, name in arrivals:
            t = float(t_s)
            if t < prev:
                raise ValueError(
                    f"arrivals must be time-ordered: {t} is behind {prev}"
                )
            prev = t
            profile = self.functions.get(str(name))
            if profile is None:
                raise ValueError(f"unknown function: {name!r}")
            batch.append((t, profile))
        now = batch[-1][0]

        # Refresh intensity *before* deciding, against event time.
        self.provider.poll(now)
        trace = self.provider.trace()
        if trace is not self._engine.carbon_model.trace:
            self._engine.update_ci_trace(trace)
        if not self.provider.healthy(now):
            raise StaleCarbonFeed(
                f"{self.provider.name}: intensity data is "
                f"{self.provider.staleness_s(now):.0f}s old at t={now:.0f}s "
                f"(max {self.provider.max_staleness_s:.0f}s)"
            )

        # Log the whole batch first so the dF rate perception sees the
        # same trailing counts a replayed trace would (see module doc).
        self._log.extend([t for t, _ in batch])
        # ecolint: disable=ECO002 -- end-to-end serving-latency telemetry (p50/p99 in /metrics), never feeds a decision
        wall_start = time.perf_counter()
        records = self._engine.step_batch(batch)
        # ecolint: disable=ECO002 -- closes the serving-latency measurement started above
        wall = time.perf_counter() - wall_start
        self._last_t = now
        self._log.prune(now)
        self.metrics.observe_batch(len(records), wall)
        return [self._decision_payload(r) for r in records]

    @staticmethod
    def _decision_payload(record: InvocationRecord) -> dict[str, object]:
        decision = record.keepalive_decision
        assert decision is not None  # step_batch always flushes its groups
        return {
            "index": record.index,
            "function": record.func_name,
            "t_s": record.t,
            "location": record.location.value,
            "cold": record.cold,
            "service_s": record.service_s,
            "t_end_s": record.t + record.service_s,
            "keepalive": {
                "location": decision.location.value,
                "duration_s": decision.duration_s,
            },
        }

    # -- checkpoint / restore ---------------------------------------------------

    def checkpoint(self, directory: str | None = None) -> dict[str, object]:
        """Persist full scheduler + engine state; the service keeps running.

        Every live function is retired first (``retire_all`` -- an
        identity for decisions: each rehydrates on its next arrival), so
        the KDM archives plus the estimator shelf *are* the complete
        per-function state. Returns a small summary (path, counts).
        """
        target = directory or self.checkpoint_dir
        if target is None:
            raise ValueError("no checkpoint directory configured")
        root = pathlib.Path(target)
        root.mkdir(parents=True, exist_ok=True)
        kdm = self._scheduler.kdm
        arrivals = self._scheduler.arrivals
        assert kdm is not None and arrivals is not None

        kdm.retire_all()
        archives = kdm.export_archives()
        shelf = arrivals.export_shelf()

        kdm_store = ArchiveSpill(root / "kdm")
        for name, record in archives.items():
            kdm_store.put(name, record)
        shelf_store = ArchiveSpill(root / "arrivals")
        for name, est in shelf.items():
            shelf_store.put(name, est)

        runtime = {
            "records": self._engine.records,
            "events": self._engine._events,
            "seq": self._engine._expiry_seq,
            "next_index": self._engine._next_index,
            "token": self._engine._token,
            "horizon": self._engine._horizon,
            "pools": dict(self._engine.pools),
            "log_times": list(self._log._times),
            "last_t": self._last_t,
            "counters": {
                "decisions": kdm.decisions,
                "redistributions": kdm.redistributions,
                "retired": kdm.retired,
                "rehydrated": kdm.rehydrated,
                "peak_live": kdm.peak_live,
            },
        }
        runtime_path = root / "runtime.pkl"
        with open(runtime_path, "wb") as fh:
            pickle.dump(runtime, fh, protocol=pickle.HIGHEST_PROTOCOL)

        manifest = {
            "version": CHECKPOINT_VERSION,
            "scheduler": self.scheduler_name,
            "kdm": {
                "root": str(kdm_store.root.relative_to(root)),
                "files": kdm_store.manifest(),
            },
            "arrivals": {
                "root": str(shelf_store.root.relative_to(root)),
                "files": shelf_store.manifest(),
            },
            "runtime": runtime_path.name,
        }
        tmp = root / "manifest.json.tmp"
        tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        tmp.replace(root / "manifest.json")
        self.metrics.checkpoints += 1
        return {
            "path": str(root),
            "functions": len(archives),
            "estimators": len(shelf),
            "records": len(self._engine.records),
        }

    @classmethod
    def restore(
        cls,
        directory: str,
        provider: CarbonIntensityProvider,
        pair: HardwarePair = DEFAULT_PAIR,
        config: EcoLifeConfig | None = None,
        sim_config: SimulationConfig | None = None,
        functions: Mapping[str, FunctionProfile] | None = None,
        checkpoint_dir: str | None = None,
    ) -> "DecisionService":
        """Rebuild a service from :meth:`checkpoint` output.

        The caller supplies the same config/pair the checkpointed
        service ran with (config is code, not data -- exactly like the
        sweep cache); the checkpoint supplies every byte of mutable
        state. Restoring is non-destructive: the directory can be
        restored from again.
        """
        root = pathlib.Path(directory)
        manifest = json.loads((root / "manifest.json").read_text("utf-8"))
        if manifest["version"] != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {manifest['version']!r}"
            )
        service = cls(
            provider=provider,
            pair=pair,
            config=config,
            sim_config=sim_config,
            functions=functions,
            checkpoint_dir=checkpoint_dir or directory,
        )
        kdm = service._scheduler.kdm
        arrivals = service._scheduler.arrivals
        assert kdm is not None and arrivals is not None

        kdm_store = ArchiveSpill.attach(
            root / manifest["kdm"]["root"], manifest["kdm"]["files"]
        )
        for name in kdm_store.names():
            record = kdm_store.peek(name)
            assert isinstance(record, RetiredFunction)
            kdm.import_archive(name, record)
        shelf_store = ArchiveSpill.attach(
            root / manifest["arrivals"]["root"], manifest["arrivals"]["files"]
        )
        for name in shelf_store.names():
            est = shelf_store.peek(name)
            assert isinstance(est, ArrivalEstimator)
            arrivals.import_shelved(name, est)

        with open(root / manifest["runtime"], "rb") as fh:
            runtime = pickle.load(fh)
        engine = service._engine
        engine.records[:] = runtime["records"]
        engine._events[:] = runtime["events"]
        engine._expiry_seq = runtime["seq"]
        engine._next_index = runtime["next_index"]
        engine._token = runtime["token"]
        engine._horizon = runtime["horizon"]
        # engine.pools is shared by reference with the scheduler env's
        # view; replace the dict's items, never the dict.
        for gen, pool in runtime["pools"].items():
            engine.pools[gen] = pool
        service._log.extend(runtime["log_times"])
        service._last_t = runtime["last_t"]
        counters = runtime["counters"]
        kdm.decisions = counters["decisions"]
        kdm.redistributions = counters["redistributions"]
        kdm.retired = counters["retired"]
        kdm.rehydrated = counters["rehydrated"]
        kdm.peak_live = counters["peak_live"]
        return service
