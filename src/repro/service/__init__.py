"""Online serving layer: live decisions from the replay-grade engine.

See ``docs/service.md``. The decision path is the exact replay code --
:class:`DecisionService` steps the engine incrementally with network
arrivals; :class:`DecisionServer` fronts it with a stdlib asyncio HTTP
server; carbon intensity comes from the pluggable providers in
:mod:`repro.carbon.providers`.
"""

from repro.service.http import DecisionServer
from repro.service.metrics import LatencyWindow, ServiceMetrics
from repro.service.online import DecisionService, LiveArrivalLog, StaleCarbonFeed
from repro.service.sharded import ShardedDecisionService

__all__ = [
    "DecisionServer",
    "DecisionService",
    "LatencyWindow",
    "LiveArrivalLog",
    "ServiceMetrics",
    "ShardedDecisionService",
    "StaleCarbonFeed",
]
