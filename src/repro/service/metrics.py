"""Serving telemetry: latency percentiles and decision counters.

Kept deliberately tiny and stdlib-only. The latency window is a bounded
deque of recent per-decision latencies; percentiles use the
nearest-rank method over that window (the usual shape for service
dashboards -- recent behaviour, not lifetime averages).
"""

from __future__ import annotations

from collections import deque


class LatencyWindow:
    """Bounded sample window with nearest-rank percentiles."""

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self.count += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the window; None when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]


class ServiceMetrics:
    """Everything ``/metrics`` reports about one decision service."""

    def __init__(self, window: int = 4096) -> None:
        self.decisions = 0
        self.batches = 0
        self.checkpoints = 0
        self.latency = LatencyWindow(maxlen=window)

    def observe_batch(self, n_decisions: int, wall_s: float) -> None:
        """Account one /decide call: n decisions in ``wall_s`` seconds."""
        self.decisions += n_decisions
        self.batches += 1
        if n_decisions > 0:
            per_decision = wall_s / n_decisions
            for _ in range(n_decisions):
                self.latency.observe(per_decision)

    def snapshot(self) -> dict[str, object]:
        p50 = self.latency.percentile(50.0)
        p99 = self.latency.percentile(99.0)
        return {
            "decisions_total": self.decisions,
            "decide_batches_total": self.batches,
            "checkpoints_total": self.checkpoints,
            "decision_latency_p50_ms": None if p50 is None else p50 * 1e3,
            "decision_latency_p99_ms": None if p99 is None else p99 * 1e3,
            "latency_window_samples": len(self.latency),
        }
