"""Multi-worker serving: one front door, per-shard decision services.

:class:`ShardedDecisionService` fronts ``n_shards`` independent
:class:`~repro.service.online.DecisionService` instances and routes
every arrival in a ``/decide`` batch by the stable function-name hash
(:func:`repro.workloads.trace.shard_of`) -- the same partition the
sharded replay uses, so a function's estimator history and swarm always
live on exactly one shard no matter which process or request carried the
arrival.

Unlike the sharded *replay* (which needs barriers because shards share
warm pools), serving shards here are fully independent worlds: each
shard's engine owns the pools for its functions. That is the right
trade for the online path -- decisions stream out with no cross-shard
synchronization -- and matches how a fleet would actually deploy: N
service processes behind a router, each sized for its partition. The
shared capacity semantics stay the replay's job.

The facade mirrors the single service's surface (``decide``,
``healthy``, ``metrics_snapshot``, ``checkpoint``/``restore``,
``last_t``), so :class:`~repro.service.http.DecisionServer` serves
either without knowing which it holds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.carbon.providers import CarbonIntensityProvider
from repro.hardware.catalog import DEFAULT_PAIR
from repro.hardware.specs import HardwarePair
from repro.service.online import DecisionService
from repro.simulator.engine import SimulationConfig
from repro.workloads.functions import FunctionProfile
from repro.workloads.trace import shard_of


class ShardedDecisionService:
    """Route ``/decide`` batches across per-shard decision services."""

    def __init__(
        self,
        provider: CarbonIntensityProvider,
        n_shards: int,
        pair: HardwarePair = DEFAULT_PAIR,
        config=None,
        sim_config: SimulationConfig | None = None,
        functions: Mapping[str, FunctionProfile] | None = None,
        checkpoint_dir: str | None = None,
        shards: Sequence[DecisionService] | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.provider = provider
        self.checkpoint_dir = checkpoint_dir
        if shards is not None:
            if len(shards) != n_shards:
                raise ValueError("shards must match n_shards")
            self.shards = list(shards)
        else:
            # Every shard knows the full catalog: routing (not catalog
            # membership) decides ownership, so registrations and
            # restores stay symmetric.
            self.shards = [
                DecisionService(
                    provider=provider,
                    pair=pair,
                    config=config,
                    sim_config=sim_config,
                    functions=functions,
                    checkpoint_dir=(
                        None
                        if checkpoint_dir is None
                        else f"{checkpoint_dir}/shard-{i}"
                    ),
                )
                for i in range(n_shards)
            ]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # -- single-service facade ----------------------------------------------

    @property
    def last_t(self) -> float:
        return max(s.last_t for s in self.shards)

    @property
    def scheduler_name(self) -> str:
        return f"{self.shards[0].scheduler_name}@{self.n_shards}shards"

    def healthy(self, now_s: float | None = None) -> bool:
        return self.provider.healthy(self.last_t if now_s is None else now_s)

    def register_function(self, profile: FunctionProfile) -> None:
        for s in self.shards:
            s.register_function(profile)

    def metrics_snapshot(self, now_s: float | None = None) -> dict[str, object]:
        now = self.last_t if now_s is None else now_s
        shards = [s.metrics_snapshot(now) for s in self.shards]
        out: dict[str, object] = {
            "scheduler": self.scheduler_name,
            "provider": self.provider.name,
            "provider_staleness_s": self.provider.staleness_s(now),
            "provider_healthy": self.provider.healthy(now),
            "event_time_s": self.last_t,
            "n_shards": self.n_shards,
            "shards": shards,
        }
        for key in (
            "decisions_total",
            "decide_batches_total",
            "checkpoints_total",
            "swarms_live",
            "swarms_archived",
            "swarms_retired_total",
            "swarms_rehydrated_total",
        ):
            out[key] = sum(int(s[key] or 0) for s in shards)  # type: ignore[call-overload]
        return out

    # -- the decision path ---------------------------------------------------

    def decide(
        self, arrivals: Sequence[tuple[float, str]]
    ) -> list[dict[str, object]]:
        """Route one time-ordered batch and reassemble in arrival order.

        Routing is stable-hash by function name, so sub-batches stay
        time-ordered; responses come back in the input order with
        ``shard`` annotated. Validation (time order, unknown functions,
        stale intensity) happens in the owning shard services exactly as
        unsharded.
        """
        if not arrivals:
            return []
        routed: dict[int, list[tuple[int, tuple[float, str]]]] = {}
        for pos, (t_s, name) in enumerate(arrivals):
            routed.setdefault(shard_of(str(name), self.n_shards), []).append(
                (pos, (float(t_s), str(name)))
            )
        out: list[dict[str, object] | None] = [None] * len(arrivals)
        for shard_id in sorted(routed):
            positions = [pos for pos, _ in routed[shard_id]]
            decisions = self.shards[shard_id].decide(
                [arr for _, arr in routed[shard_id]]
            )
            for pos, decision in zip(positions, decisions):
                decision["shard"] = shard_id
                out[pos] = decision
        assert all(d is not None for d in out)
        return out  # type: ignore[return-value]

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self, directory: str | None = None) -> dict[str, object]:
        """Checkpoint every shard into ``<dir>/shard-<i>`` subdirectories."""
        target = directory or self.checkpoint_dir
        if target is None:
            raise ValueError("no checkpoint directory configured")
        infos = [
            s.checkpoint(f"{target}/shard-{i}")
            for i, s in enumerate(self.shards)
        ]
        return {
            "path": str(target),
            "n_shards": self.n_shards,
            "shards": infos,
            "records": sum(int(i["records"]) for i in infos),  # type: ignore[call-overload]
        }

    @classmethod
    def restore(
        cls,
        directory: str,
        provider: CarbonIntensityProvider,
        n_shards: int,
        pair: HardwarePair = DEFAULT_PAIR,
        config=None,
        sim_config: SimulationConfig | None = None,
        functions: Mapping[str, FunctionProfile] | None = None,
        checkpoint_dir: str | None = None,
    ) -> "ShardedDecisionService":
        """Rebuild every shard from a :meth:`checkpoint` directory."""
        shards = [
            DecisionService.restore(
                f"{directory}/shard-{i}",
                provider=provider,
                pair=pair,
                config=config,
                sim_config=sim_config,
                functions=functions,
                checkpoint_dir=(
                    None
                    if (checkpoint_dir or directory) is None
                    else f"{checkpoint_dir or directory}/shard-{i}"
                ),
            )
            for i in range(n_shards)
        ]
        return cls(
            provider=provider,
            n_shards=n_shards,
            checkpoint_dir=checkpoint_dir or directory,
            shards=shards,
        )
