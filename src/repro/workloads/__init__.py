"""Workload substrate: SeBS profiles, invocation traces, Azure synthesizer."""

from repro.workloads.azure import (
    AzureTraceConfig,
    SyntheticFunctionSpec,
    generate_azure_trace,
)
from repro.workloads.functions import FunctionProfile
from repro.workloads.generators import (
    AZURE_WORKLOAD,
    GENERATORS,
    GeneratedFunctionSpec,
    TraceGenerator,
    WorkloadSpec,
    build_trace,
    generator_names,
    make_generator,
)
from repro.workloads.sebs import (
    MOTIVATION_FUNCTIONS,
    SEBS_FUNCTIONS,
    get_function,
)
from repro.workloads.trace import Invocation, InvocationTrace

__all__ = [
    "FunctionProfile",
    "SEBS_FUNCTIONS",
    "MOTIVATION_FUNCTIONS",
    "get_function",
    "Invocation",
    "InvocationTrace",
    "AzureTraceConfig",
    "SyntheticFunctionSpec",
    "generate_azure_trace",
    "AZURE_WORKLOAD",
    "GENERATORS",
    "GeneratedFunctionSpec",
    "TraceGenerator",
    "WorkloadSpec",
    "build_trace",
    "generator_names",
    "make_generator",
]
