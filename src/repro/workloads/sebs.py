"""SeBS benchmark function catalog.

The paper's workloads come from the SeBS suite (Copik et al., Middleware'21)
measured on the Table I nodes. The profiles below are calibrated so that the
paper's motivational figures reproduce:

- Fig. 1 magnitudes: total per-invocation carbon of order 0.1 g at a 10 min
  keep-alive, with the keep-alive share of Graph-BFS moving from ~18% at
  2 min to ~52% at 10 min;
- Fig. 2 service times: video-processing ~2-3 s, Graph-BFS up to ~7 s,
  DNA-visualization up to ~15 s on old hardware with a cold start;
- Fig. 3 sensitivities: video-processing ~16% slower on A_OLD.

``perf_sensitivity`` encodes how CPU-bound each function is: graph
workloads suffer most on older memory subsystems, I/O-ish functions least.
"""

from __future__ import annotations

from repro.workloads.functions import FunctionProfile

VIDEO_PROCESSING = FunctionProfile(
    name="video-processing",
    mem_gb=1.10,
    exec_ref_s=1.90,
    cold_ref_s=2.30,
    perf_sensitivity=0.48,
)

GRAPH_BFS = FunctionProfile(
    name="graph-bfs",
    mem_gb=0.45,
    exec_ref_s=3.00,
    cold_ref_s=1.80,
    perf_sensitivity=0.90,
)

DNA_VISUALIZATION = FunctionProfile(
    name="dna-visualization",
    mem_gb=1.80,
    exec_ref_s=9.00,
    cold_ref_s=4.50,
    perf_sensitivity=1.35,  # memory-bandwidth bound: superlinear on old DRAM
)

THUMBNAILER = FunctionProfile(
    name="thumbnailer",
    mem_gb=0.25,
    exec_ref_s=0.45,
    cold_ref_s=1.20,
    perf_sensitivity=0.55,
)

COMPRESSION = FunctionProfile(
    name="compression",
    mem_gb=0.60,
    exec_ref_s=4.20,
    cold_ref_s=1.60,
    perf_sensitivity=0.65,
)

GRAPH_PAGERANK = FunctionProfile(
    name="graph-pagerank",
    mem_gb=0.50,
    exec_ref_s=2.40,
    cold_ref_s=1.80,
    perf_sensitivity=0.85,
)

GRAPH_MST = FunctionProfile(
    name="graph-mst",
    mem_gb=0.50,
    exec_ref_s=2.00,
    cold_ref_s=1.80,
    perf_sensitivity=0.85,
)

IMAGE_RECOGNITION = FunctionProfile(
    name="image-recognition",
    mem_gb=1.60,
    exec_ref_s=1.40,
    cold_ref_s=3.80,  # model load dominates the cold start
    perf_sensitivity=0.60,
)

UPLOADER = FunctionProfile(
    name="uploader",
    mem_gb=0.20,
    exec_ref_s=0.90,
    cold_ref_s=1.10,
    perf_sensitivity=0.35,  # network bound
)

DYNAMIC_HTML = FunctionProfile(
    name="dynamic-html",
    mem_gb=0.15,
    exec_ref_s=0.15,
    cold_ref_s=0.90,
    perf_sensitivity=0.45,
)

#: All catalog functions keyed by name.
SEBS_FUNCTIONS: dict[str, FunctionProfile] = {
    f.name: f
    for f in (
        VIDEO_PROCESSING,
        GRAPH_BFS,
        DNA_VISUALIZATION,
        THUMBNAILER,
        COMPRESSION,
        GRAPH_PAGERANK,
        GRAPH_MST,
        IMAGE_RECOGNITION,
        UPLOADER,
        DYNAMIC_HTML,
    )
}

#: The three functions the paper uses throughout its motivation (Figs. 1-3).
MOTIVATION_FUNCTIONS: tuple[FunctionProfile, ...] = (
    VIDEO_PROCESSING,
    GRAPH_BFS,
    DNA_VISUALIZATION,
)


def get_function(name: str) -> FunctionProfile:
    """Look up a SeBS profile by name."""
    try:
        return SEBS_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown SeBS function {name!r}; available: {sorted(SEBS_FUNCTIONS)}"
        ) from None


def sample_profile_clones(
    rng,
    n: int,
    mem_scale_range: tuple[float, float] = (0.7, 1.3),
    exec_scale_range: tuple[float, float] = (0.85, 1.15),
) -> list[tuple[FunctionProfile, str]]:
    """Perturbed SeBS clones, uniformly over the catalog.

    The paper's Azure mapping in reverse: every synthetic app is *near*
    but not identical to its SeBS proxy. Returns ``(clone, base name)``
    pairs; draw order per app is (base pick, mem scale, exec scale),
    which both the Azure synthesizer and the parametric generators rely
    on for seed-stable traces.
    """
    base_names = sorted(SEBS_FUNCTIONS)
    out: list[tuple[FunctionProfile, str]] = []
    for i in range(n):
        base = SEBS_FUNCTIONS[base_names[int(rng.integers(len(base_names)))]]
        clone = base.clone(
            name=f"app-{i:03d}:{base.name}",
            mem_scale=float(rng.uniform(*mem_scale_range)),
            exec_scale=float(rng.uniform(*exec_scale_range)),
        )
        out.append((clone, base.name))
    return out
