"""Azure-Functions-shaped invocation trace synthesizer.

The paper replays the Microsoft Azure production trace (Shahrad et al., ATC
2020), sampling its functions "randomly, but uniformly" and mapping each to
the closest SeBS profile by memory and execution time. The raw trace is not
available offline, so this module synthesizes traces reproducing the
published *shape* of that workload -- which is what the keep-alive problem
actually depends on:

- **heavy-tailed popularity**: per-function average rates follow a
  log-normal distribution spanning several orders of magnitude (a few hot
  functions, a long tail of rare ones);
- **a large class of timer-triggered functions**: near-perfectly periodic
  arrivals at common periods (1/5/15/60 min);
- **irregular functions**: Poisson arrivals modulated by a diurnal load
  curve;
- **bursts**: short episodes of strongly elevated rate, which stress the
  warm-pool adjustment (Fig. 11) and the DPSO perception mechanism
  (Fig. 10).

Every function instance is a clone of a SeBS profile with mildly perturbed
memory/exec-time (the "closest match" mapping in reverse). Generation is
fully deterministic given the config's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.workloads.functions import FunctionProfile
from repro.workloads.sebs import sample_profile_clones
from repro.workloads.trace import InvocationTrace


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic Azure-shaped workload."""

    n_functions: int = 60
    duration_s: float = 6.0 * units.SECONDS_PER_HOUR
    seed: int = 7
    # Popularity: log-normal over mean inter-arrival time (seconds).
    median_interarrival_s: float = 450.0
    interarrival_sigma: float = 1.1
    min_interarrival_s: float = 15.0
    max_interarrival_s: float = 2.0 * units.SECONDS_PER_HOUR
    # Mixture weights.
    periodic_fraction: float = 0.4
    periods_s: tuple[float, ...] = (60.0, 300.0, 900.0, 3600.0)
    period_weights: tuple[float, ...] = (0.25, 0.35, 0.25, 0.15)
    period_jitter_frac: float = 0.02
    # Diurnal modulation of Poisson functions.
    diurnal_amplitude: float = 0.35
    # Burst episodes.
    burst_probability: float = 0.15
    burst_rate_multiplier: float = 15.0
    burst_duration_s: float = 300.0
    # Profile-clone perturbations.
    mem_scale_range: tuple[float, float] = (0.7, 1.3)
    exec_scale_range: tuple[float, float] = (0.85, 1.15)

    def __post_init__(self) -> None:
        if self.n_functions <= 0:
            raise ValueError("n_functions must be > 0")
        units.require_positive(self.duration_s, "duration_s")
        if not 0.0 <= self.periodic_fraction <= 1.0:
            raise ValueError("periodic_fraction must be in [0, 1]")
        if len(self.periods_s) != len(self.period_weights):
            raise ValueError("periods_s and period_weights must align")


@dataclass(frozen=True)
class SyntheticFunctionSpec:
    """Bookkeeping for one synthesized function (exposed for tests/analysis)."""

    profile: FunctionProfile
    base_profile: str
    mean_interarrival_s: float
    periodic: bool
    period_s: float | None
    bursty: bool


def _sample_profiles(cfg: AzureTraceConfig, rng: np.random.Generator):
    """Assign each synthetic app a perturbed SeBS profile, uniformly."""
    return sample_profile_clones(
        rng, cfg.n_functions, cfg.mem_scale_range, cfg.exec_scale_range
    )


def _periodic_arrivals(
    cfg: AzureTraceConfig, rng: np.random.Generator, period: float
) -> np.ndarray:
    """Timer-triggered arrivals: fixed period, small jitter, random phase."""
    phase = float(rng.uniform(0.0, period))
    n = int((cfg.duration_s - phase) // period) + 1
    if n <= 0:
        return np.empty(0)
    base = phase + np.arange(n) * period
    jitter = rng.normal(0.0, cfg.period_jitter_frac * period, size=n)
    t = np.clip(base + jitter, 0.0, cfg.duration_s)
    return np.sort(t)


def _poisson_arrivals(
    cfg: AzureTraceConfig,
    rng: np.random.Generator,
    mean_iat: float,
    diurnal_phase: float,
) -> np.ndarray:
    """Inhomogeneous Poisson arrivals via thinning against the diurnal curve."""
    lam_max = (1.0 + cfg.diurnal_amplitude) / mean_iat
    # Candidate homogeneous process at the envelope rate.
    n_expected = cfg.duration_s * lam_max
    n_candidates = int(n_expected + 6.0 * np.sqrt(n_expected + 1.0)) + 8
    gaps = rng.exponential(1.0 / lam_max, size=n_candidates)
    t = np.cumsum(gaps)
    t = t[t < cfg.duration_s]
    if t.size == 0:
        return t
    # Thin by the diurnal intensity.
    day_frac = t / units.SECONDS_PER_DAY
    intensity = 1.0 + cfg.diurnal_amplitude * np.sin(
        2.0 * np.pi * (day_frac + diurnal_phase)
    )
    keep = rng.uniform(size=t.size) < intensity / (1.0 + cfg.diurnal_amplitude)
    return t[keep]


def _burst_arrivals(
    cfg: AzureTraceConfig, rng: np.random.Generator, mean_iat: float
) -> np.ndarray:
    """One short high-rate episode at a random point of the trace."""
    start = float(rng.uniform(0.0, max(cfg.duration_s - cfg.burst_duration_s, 1.0)))
    rate = cfg.burst_rate_multiplier / mean_iat
    n = rng.poisson(rate * cfg.burst_duration_s)
    if n <= 0:
        return np.empty(0)
    return np.sort(start + rng.uniform(0.0, cfg.burst_duration_s, size=n))


def generate_azure_trace(
    cfg: AzureTraceConfig | None = None,
) -> tuple[InvocationTrace, list[SyntheticFunctionSpec]]:
    """Generate an Azure-shaped trace; returns (trace, per-function specs)."""
    cfg = cfg or AzureTraceConfig()
    rng = np.random.default_rng(cfg.seed)
    profiles = _sample_profiles(cfg, rng)

    events: list[tuple[float, FunctionProfile]] = []
    specs: list[SyntheticFunctionSpec] = []
    for profile, base_name in profiles:
        mean_iat = float(
            np.clip(
                cfg.median_interarrival_s
                * np.exp(rng.normal(0.0, cfg.interarrival_sigma)),
                cfg.min_interarrival_s,
                cfg.max_interarrival_s,
            )
        )
        periodic = bool(rng.uniform() < cfg.periodic_fraction)
        period: float | None = None
        if periodic:
            weights = np.asarray(cfg.period_weights, dtype=float)
            weights = weights / weights.sum()
            period = float(rng.choice(np.asarray(cfg.periods_s), p=weights))
            arrivals = _periodic_arrivals(cfg, rng, period)
        else:
            arrivals = _poisson_arrivals(cfg, rng, mean_iat, float(rng.uniform()))

        bursty = bool(rng.uniform() < cfg.burst_probability)
        if bursty:
            arrivals = np.sort(
                np.concatenate([arrivals, _burst_arrivals(cfg, rng, mean_iat)])
            )

        events.extend((float(t), profile) for t in arrivals)
        specs.append(
            SyntheticFunctionSpec(
                profile=profile,
                base_profile=base_name,
                mean_interarrival_s=period if periodic else mean_iat,
                periodic=periodic,
                period_s=period,
                bursty=bursty,
            )
        )

    trace = InvocationTrace.from_events(events, functions=[p for p, _ in profiles])
    return trace, specs
