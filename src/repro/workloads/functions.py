"""Serverless function profiles.

A :class:`FunctionProfile` captures everything the schedulers and the carbon
model need to know about one function: memory footprint, execution time on
the newest hardware, cold-start overhead, and how sensitive the function is
to running on older silicon. The paper measures these with the SeBS
benchmark suite on real nodes; the concrete catalog lives in
:mod:`repro.workloads.sebs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units
from repro.hardware.specs import ServerSpec


@dataclass(frozen=True)
class FunctionProfile:
    """Performance/footprint profile of one serverless function.

    Attributes
    ----------
    name:
        Unique identifier (e.g. ``"graph-bfs"`` or ``"app-017:graph-bfs"``
        for Azure-trace clones).
    mem_gb:
        Warm-container memory footprint; drives warm-pool occupancy and all
        DRAM carbon shares.
    exec_ref_s:
        Execution time on a ``perf_index = 1.0`` (newest) server.
    cold_ref_s:
        Cold-start overhead (image pull + container boot) on the newest
        server.
    perf_sensitivity:
        How strongly execution time reacts to slower hardware.
        ``exec(l) = exec_ref * (1 + sens * (1/perf_index(l) - 1))`` --
        a sensitivity of 1 means the function scales exactly with the
        hardware's performance index, 0 means it is insensitive (e.g.
        I/O bound).
    cold_sensitivity:
        Same scaling for the cold-start window (container boot is mostly
        I/O, so this is typically ~0.5).
    """

    name: str
    mem_gb: float
    exec_ref_s: float
    cold_ref_s: float
    perf_sensitivity: float = 0.6
    cold_sensitivity: float = 0.5

    def __post_init__(self) -> None:
        units.require_positive(self.mem_gb, "mem_gb")
        units.require_positive(self.exec_ref_s, "exec_ref_s")
        units.require_non_negative(self.cold_ref_s, "cold_ref_s")
        units.require_non_negative(self.perf_sensitivity, "perf_sensitivity")
        units.require_non_negative(self.cold_sensitivity, "cold_sensitivity")

    # -- timing on a concrete server ---------------------------------------

    def exec_time_s(self, server: ServerSpec) -> float:
        """Execution time on ``server``."""
        return self.exec_ref_s * (
            1.0 + self.perf_sensitivity * (server.slowdown - 1.0)
        )

    def cold_overhead_s(self, server: ServerSpec) -> float:
        """Cold-start overhead on ``server`` (zero for warm starts)."""
        return self.cold_ref_s * (
            1.0 + self.cold_sensitivity * (server.slowdown - 1.0)
        )

    def service_time_s(
        self, server: ServerSpec, cold: bool, setup_s: float = 0.0
    ) -> float:
        """Service time = cold-start overhead (if cold) + setup + execution."""
        s = setup_s + self.exec_time_s(server)
        if cold:
            s += self.cold_overhead_s(server)
        return s

    # -- derivation helpers --------------------------------------------------

    def clone(
        self,
        name: str,
        mem_scale: float = 1.0,
        exec_scale: float = 1.0,
        cold_scale: float = 1.0,
    ) -> "FunctionProfile":
        """Derive a variant profile (used by the Azure-trace mapper).

        The paper maps every Azure-trace function to "the closest match,
        considering the memory and execution time" among the SeBS
        functions; cloning with mild scale factors represents that each
        production function is *near* but not identical to its SeBS proxy.
        """
        units.require_positive(mem_scale, "mem_scale")
        units.require_positive(exec_scale, "exec_scale")
        units.require_positive(cold_scale, "cold_scale")
        return replace(
            self,
            name=name,
            mem_gb=self.mem_gb * mem_scale,
            exec_ref_s=self.exec_ref_s * exec_scale,
            cold_ref_s=self.cold_ref_s * cold_scale,
        )
