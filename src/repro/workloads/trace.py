"""Invocation traces: the event stream that drives the simulator.

An :class:`InvocationTrace` is a time-ordered sequence of (timestamp,
function) pairs plus the profile of every function appearing in it. It also
provides the per-function *lookahead index* (``next_arrival``) that the
oracle schedulers use -- the paper's Oracle/CO2-Opt/Service-Time-Opt brute
force "every possible scheduling option for each function invocation",
which requires knowing when each function is invoked next.

Storage is columnar: the hot representation is a pair of parallel arrays
(``times_s: float64``, ``func_ids: int32``) plus an intern table
``names`` mapping ids back to function names. ``func_names`` and
iteration remain as lazy views so generator labels, cache keys, and
subset semantics are unchanged from the list-of-names era. The columns
are what make Azure-day-scale replays (millions of invocations) fit in
commodity memory and stream from disk (:meth:`save` / :meth:`open`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.workloads.functions import FunctionProfile

if TYPE_CHECKING:
    import pathlib


@lru_cache(maxsize=None)
def _crc32(name: str) -> int:
    """CRC32 of the UTF-8 name, memoized per unique function name."""
    return zlib.crc32(name.encode("utf-8"))


def shard_of(name: str, n_shards: int) -> int:
    """Stable shard assignment for a function name.

    CRC32 of the UTF-8 name, reduced modulo the shard count: the same
    deterministic-hash idiom the KDM uses for seeding, and -- unlike
    builtin ``hash`` -- independent of ``PYTHONHASHSEED``, so every
    worker process (and every future run) agrees on the assignment.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return _crc32(name) % n_shards


def shard_ids(names: Sequence[str], n_shards: int) -> np.ndarray:
    """Vectorized :func:`shard_of` over a name table.

    Returns an ``int32`` array with ``shard_of(names[i], n_shards)`` at
    position ``i``. Routing a trace is then one table lookup
    (``shard_ids(trace.names, n)[trace.func_ids]``) -- O(unique
    functions) hashing instead of per-event CRC32.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    crcs = np.fromiter(
        (_crc32(n) for n in names), dtype=np.int64, count=len(names)
    )
    return (crcs % n_shards).astype(np.int32)


@dataclass(frozen=True)
class Invocation:
    """One invocation request: function ``func`` arriving at time ``t``."""

    index: int
    t: float
    func: FunctionProfile


class InvocationTrace:
    """A sorted stream of invocations with per-function views.

    Build with :meth:`from_events`; direct construction expects
    already-sorted data, as either a per-event name list
    (``func_names=``, the legacy interface) or interned id columns
    (``func_ids=``, an int32 index into ``list(functions)``).
    """

    #: The intern table: ``names[func_ids[i]]`` is event *i*'s function.
    #: Always identical to ``list(self.functions)``.
    names: list[str]

    def __init__(
        self,
        functions: dict[str, FunctionProfile],
        times_s: np.ndarray,
        func_names: Sequence[str] | None = None,
        *,
        func_ids: np.ndarray | None = None,
    ) -> None:
        if (func_names is None) == (func_ids is None):
            raise ValueError("provide exactly one of func_names / func_ids")
        self.functions = dict(functions)
        self.names = list(self.functions)
        t = np.asarray(times_s, dtype=float)
        n_events = len(func_names) if func_ids is None else np.asarray(func_ids).size
        if t.ndim != 1 or t.size != n_events:
            raise ValueError("times_s and func_names must have equal length")
        if t.size and np.any(np.diff(t) < 0.0):
            raise ValueError("times_s must be sorted (non-decreasing)")
        if func_ids is None:
            assert func_names is not None
            index = {name: i for i, name in enumerate(self.names)}
            missing = set(func_names) - set(index)
            if missing:
                raise ValueError(
                    f"trace references unknown functions: {sorted(missing)}"
                )
            ids = np.fromiter(
                (index[n] for n in func_names),
                dtype=np.int32,
                count=len(func_names),
            )
        else:
            ids = np.asarray(func_ids, dtype=np.int32)
            if ids.ndim != 1:
                raise ValueError("func_ids must be one-dimensional")
            if ids.size and (
                int(ids.min()) < 0 or int(ids.max()) >= len(self.names)
            ):
                raise ValueError(
                    "func_ids reference ids outside the intern table"
                )
        self.times_s = t
        self.func_ids = ids
        self._reset_caches()

    def _reset_caches(self) -> None:
        self._func_names: list[str] | None = None
        #: Lazily-built per-function time index; building on first access
        #: keeps constructions that never look it up (e.g. ``subset``
        #: chains over generated traces) O(n) instead of O(n + functions).
        self._per_func_times: dict[str, np.ndarray] | None = None
        self._shard_tables: dict[int, np.ndarray] = {}

    # -- back-compat views ----------------------------------------------------

    @property
    def func_names(self) -> list[str]:
        """Per-event function names, materialized lazily from the columns."""
        if self._func_names is None:
            names = self.names
            self._func_names = [names[i] for i in self.func_ids.tolist()]
        return self._func_names

    @property
    def _per_func(self) -> dict[str, np.ndarray]:
        """The per-function index, built on first use via one argsort.

        Every function of the trace gets an entry -- functions with zero
        invocations (produced e.g. by low-rate generators or churn
        windows) map to an empty array, so lookups stay consistent
        across ``subset`` round trips.
        """
        if self._per_func_times is None:
            order = np.argsort(self.func_ids, kind="stable")
            sorted_ids = self.func_ids[order]
            sorted_times = self.times_s[order]
            # Arrivals are time-sorted and the argsort is stable, so each
            # function's slice keeps its original arrival order.
            sorted_times.flags.writeable = False
            bounds = np.searchsorted(
                sorted_ids, np.arange(len(self.names) + 1, dtype=np.int32)
            )
            self._per_func_times = {
                name: sorted_times[bounds[i] : bounds[i + 1]]
                for i, name in enumerate(self.names)
            }
        return self._per_func_times

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        events: Iterable[tuple[float, FunctionProfile]],
        functions: Iterable[FunctionProfile] | None = None,
    ) -> "InvocationTrace":
        """Build a trace from (time, profile) pairs (sorted internally)."""
        ev = sorted(events, key=lambda e: e[0])
        funcs: dict[str, FunctionProfile] = {}
        if functions is not None:
            funcs.update({f.name: f for f in functions})
        for _, f in ev:
            existing = funcs.setdefault(f.name, f)
            if existing is not f and existing != f:
                raise ValueError(f"conflicting profiles for function {f.name!r}")
        index = {name: i for i, name in enumerate(funcs)}
        return cls(
            functions=funcs,
            times_s=np.array([t for t, _ in ev], dtype=float),
            func_ids=np.fromiter(
                (index[f.name] for _, f in ev), dtype=np.int32, count=len(ev)
            ),
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path: "str | pathlib.Path", *, compress: bool = False) -> None:
        """Write the columnar on-disk format (see ``workloads/tracefile.py``).

        Uncompressed by default so :meth:`open` can memory-map the event
        columns; ``compress=True`` trades the mmap fast path for a
        smaller archival file.
        """
        from repro.workloads.tracefile import save_trace

        save_trace(self, path, compress=compress)

    @classmethod
    def open(
        cls, path: "str | pathlib.Path", *, mmap: bool = True
    ) -> "InvocationTrace":
        """Reopen a saved trace, memory-mapping the event columns.

        With ``mmap=True`` (and an uncompressed file) the ``times_s`` /
        ``func_ids`` columns are OS page-cache backed: a shard worker's
        resident set stays far below a fully materialized Python trace.
        """
        from repro.workloads.tracefile import open_trace

        return open_trace(path, mmap=mmap)

    def __getstate__(self) -> dict:
        # Materialize any memory-mapped columns and drop caches: a
        # pickled trace (e.g. a ShardJob on the TCP fabric) must be
        # self-contained and as small as the columns themselves.
        return {
            "functions": self.functions,
            "times_s": np.asarray(self.times_s),
            "func_ids": np.asarray(self.func_ids),
        }

    def __setstate__(self, state: dict) -> None:
        self.functions = state["functions"]
        self.names = list(self.functions)
        self.times_s = state["times_s"]
        self.func_ids = state["func_ids"]
        self._reset_caches()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InvocationTrace):
            return NotImplemented
        return (
            self.functions == other.functions
            and self.names == other.names
            and np.array_equal(self.times_s, other.times_s)
            and np.array_equal(self.func_ids, other.func_ids)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable, like the dataclass era

    def __repr__(self) -> str:
        return (
            f"InvocationTrace(functions={len(self.functions)}, "
            f"events={len(self)}, duration_s={self.duration_s:g})"
        )

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return int(self.times_s.size)

    def __iter__(self) -> Iterator[Invocation]:
        profiles = [self.functions[n] for n in self.names]
        for i, (t, fid) in enumerate(
            zip(self.times_s.tolist(), self.func_ids.tolist())
        ):
            yield Invocation(index=i, t=t, func=profiles[fid])

    @property
    def duration_s(self) -> float:
        """Span from time zero to the last invocation."""
        return float(self.times_s[-1]) if len(self) else 0.0

    def invocation_counts(self) -> dict[str, int]:
        """Number of invocations per function (zero-invocation ones included)."""
        counts = np.bincount(self.func_ids, minlength=len(self.names))
        return dict(zip(self.names, (int(c) for c in counts)))

    def times_of(self, name: str) -> np.ndarray:
        """All invocation times of one function (empty if it never arrives)."""
        if name not in self.functions:
            raise KeyError(f"unknown function {name!r}")
        return self._per_func[name]

    def interarrival_s(self, name: str) -> np.ndarray:
        """Observed inter-arrival times of one function (may be empty)."""
        return np.diff(self.times_of(name))

    # -- lookahead (oracle) ----------------------------------------------------

    def next_arrival(self, name: str, after_t: float) -> float | None:
        """First invocation of ``name`` strictly after ``after_t`` (or None)."""
        ts = self._per_func.get(name)
        if ts is None or not ts.size:
            return None
        i = int(np.searchsorted(ts, after_t, side="right"))
        return float(ts[i]) if i < ts.size else None

    # -- aggregate statistics (used by DPSO's dF perception and reports) ------

    def rate_per_minute(self, t: float, window_s: float = 60.0) -> float:
        """Invocations per minute over ``[t - window_s, t]``."""
        lo = int(np.searchsorted(self.times_s, t - window_s, side="right"))
        hi = int(np.searchsorted(self.times_s, t, side="right"))
        if window_s <= 0.0:
            return 0.0
        return (hi - lo) * 60.0 / window_s

    def subset(self, names: Iterable[str]) -> "InvocationTrace":
        """Restrict the trace to a set of functions (keeps ordering)."""
        keep = set(names)
        functions = {n: f for n, f in self.functions.items() if n in keep}
        keep_table = np.fromiter(
            (n in keep for n in self.names), dtype=bool, count=len(self.names)
        )
        mask = keep_table[self.func_ids]
        new_index = {n: i for i, n in enumerate(functions)}
        remap = np.fromiter(
            (new_index.get(n, -1) for n in self.names),
            dtype=np.int32,
            count=len(self.names),
        )
        return InvocationTrace(
            functions=functions,
            times_s=self.times_s[mask],
            func_ids=remap[self.func_ids[mask]],
        )

    # -- sharding --------------------------------------------------------------

    def shard_table(self, n_shards: int) -> np.ndarray:
        """``shard_of`` over the intern table (cached per shard count)."""
        table = self._shard_tables.get(n_shards)
        if table is None:
            table = shard_ids(self.names, n_shards)
            table.flags.writeable = False
            self._shard_tables[n_shards] = table
        return table

    def event_mask(self, names: Iterable[str]) -> np.ndarray:
        """Boolean per-event mask: True where the event's function is in
        ``names``. One O(unique) table build + one O(n) gather."""
        keep = set(names)
        table = np.fromiter(
            (n in keep for n in self.names), dtype=bool, count=len(self.names)
        )
        return table[self.func_ids]

    def own_mask(self, shard_id: int, n_shards: int) -> np.ndarray:
        """Per-event ownership mask under hash sharding (:func:`shard_of`)."""
        return (self.shard_table(n_shards) == shard_id)[self.func_ids]

    def partition_names(self, n_shards: int, by: str = "hash") -> list[set[str]]:
        """Assign every function to exactly one of ``n_shards`` buckets.

        ``by="hash"`` uses :func:`shard_of` (stable across processes and
        runs; what the sharded replay and the sharded decision service
        use, since both sides of a wire only share the name). ``by="load"``
        balances invocation counts instead: functions are placed
        heaviest-first onto the currently lightest shard, with
        deterministic (count-then-name) ordering so the split is
        reproducible. Zero-invocation functions are assigned too -- the
        buckets are a disjoint cover of ``self.functions``.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        buckets: list[set[str]] = [set() for _ in range(n_shards)]
        if by == "hash":
            table = self.shard_table(n_shards)
            for name, sid in zip(self.names, table.tolist()):
                buckets[sid].add(name)
        elif by == "load":
            counts = self.invocation_counts()
            loads = [0] * n_shards
            for name in sorted(counts, key=lambda n: (-counts[n], n)):
                lightest = min(range(n_shards), key=lambda i: (loads[i], i))
                buckets[lightest].add(name)
                loads[lightest] += counts[name]
        else:
            raise ValueError(f"unknown partition strategy {by!r}")
        return buckets

    def partition(self, n_shards: int, by: str = "hash") -> list["InvocationTrace"]:
        """Split into ``n_shards`` disjoint per-function sub-traces.

        Each shard trace keeps the original arrival ordering of the
        functions it owns (it is exactly ``subset(bucket)``), so the
        concatenation-by-time of all shards reproduces the full trace.
        """
        return [self.subset(b) for b in self.partition_names(n_shards, by=by)]
