"""Invocation traces: the event stream that drives the simulator.

An :class:`InvocationTrace` is a time-ordered sequence of (timestamp,
function) pairs plus the profile of every function appearing in it. It also
provides the per-function *lookahead index* (``next_arrival``) that the
oracle schedulers use -- the paper's Oracle/CO2-Opt/Service-Time-Opt brute
force "every possible scheduling option for each function invocation",
which requires knowing when each function is invoked next.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.workloads.functions import FunctionProfile


def shard_of(name: str, n_shards: int) -> int:
    """Stable shard assignment for a function name.

    CRC32 of the UTF-8 name, reduced modulo the shard count: the same
    deterministic-hash idiom the KDM uses for seeding, and -- unlike
    builtin ``hash`` -- independent of ``PYTHONHASHSEED``, so every
    worker process (and every future run) agrees on the assignment.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return zlib.crc32(name.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class Invocation:
    """One invocation request: function ``func`` arriving at time ``t``."""

    index: int
    t: float
    func: FunctionProfile


@dataclass
class InvocationTrace:
    """A sorted stream of invocations with per-function views.

    Build with :meth:`from_events`; direct construction expects
    already-sorted data.
    """

    functions: dict[str, FunctionProfile]
    times_s: np.ndarray
    func_names: list[str]
    #: Lazily-built per-function time index; rebuilding on first access
    #: keeps constructions that never look it up (e.g. ``subset`` chains
    #: over generated traces) O(n) instead of O(n + functions).
    _per_func_times: dict[str, list[float]] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        t = np.asarray(self.times_s, dtype=float)
        if t.ndim != 1 or t.size != len(self.func_names):
            raise ValueError("times_s and func_names must have equal length")
        if t.size and np.any(np.diff(t) < 0.0):
            raise ValueError("times_s must be sorted (non-decreasing)")
        missing = {n for n in self.func_names} - set(self.functions)
        if missing:
            raise ValueError(f"trace references unknown functions: {sorted(missing)}")
        object.__setattr__(self, "times_s", t)
        self._per_func_times = None

    @property
    def _per_func(self) -> dict[str, list[float]]:
        """The per-function index, built on first use.

        Every function of the trace gets an entry -- functions with zero
        invocations (produced e.g. by low-rate generators or churn
        windows) map to an empty list, so lookups stay consistent across
        ``subset`` round trips.
        """
        if self._per_func_times is None:
            per: dict[str, list[float]] = {name: [] for name in self.functions}
            for ts, name in zip(self.times_s, self.func_names):
                per[name].append(float(ts))
            self._per_func_times = per
        return self._per_func_times

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        events: Iterable[tuple[float, FunctionProfile]],
        functions: Iterable[FunctionProfile] | None = None,
    ) -> "InvocationTrace":
        """Build a trace from (time, profile) pairs (sorted internally)."""
        ev = sorted(events, key=lambda e: e[0])
        funcs: dict[str, FunctionProfile] = {}
        if functions is not None:
            funcs.update({f.name: f for f in functions})
        for _, f in ev:
            existing = funcs.setdefault(f.name, f)
            if existing is not f and existing != f:
                raise ValueError(f"conflicting profiles for function {f.name!r}")
        return cls(
            functions=funcs,
            times_s=np.array([t for t, _ in ev], dtype=float),
            func_names=[f.name for _, f in ev],
        )

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return int(self.times_s.size)

    def __iter__(self) -> Iterator[Invocation]:
        for i, (t, name) in enumerate(zip(self.times_s, self.func_names)):
            yield Invocation(index=i, t=float(t), func=self.functions[name])

    @property
    def duration_s(self) -> float:
        """Span from time zero to the last invocation."""
        return float(self.times_s[-1]) if len(self) else 0.0

    def invocation_counts(self) -> dict[str, int]:
        """Number of invocations per function (zero-invocation ones included)."""
        return {name: len(ts) for name, ts in self._per_func.items()}

    def times_of(self, name: str) -> np.ndarray:
        """All invocation times of one function (empty if it never arrives)."""
        if name not in self.functions:
            raise KeyError(f"unknown function {name!r}")
        return np.asarray(self._per_func[name], dtype=float)

    def interarrival_s(self, name: str) -> np.ndarray:
        """Observed inter-arrival times of one function (may be empty)."""
        return np.diff(self.times_of(name))

    # -- lookahead (oracle) ----------------------------------------------------

    def next_arrival(self, name: str, after_t: float) -> float | None:
        """First invocation of ``name`` strictly after ``after_t`` (or None)."""
        ts = self._per_func.get(name)
        if not ts:
            return None
        i = bisect.bisect_right(ts, after_t)
        return ts[i] if i < len(ts) else None

    # -- aggregate statistics (used by DPSO's dF perception and reports) ------

    def rate_per_minute(self, t: float, window_s: float = 60.0) -> float:
        """Invocations per minute over ``[t - window_s, t]``."""
        lo = int(np.searchsorted(self.times_s, t - window_s, side="right"))
        hi = int(np.searchsorted(self.times_s, t, side="right"))
        if window_s <= 0.0:
            return 0.0
        return (hi - lo) * 60.0 / window_s

    def subset(self, names: Iterable[str]) -> "InvocationTrace":
        """Restrict the trace to a set of functions (keeps ordering)."""
        keep = set(names)
        mask = [n in keep for n in self.func_names]
        return InvocationTrace(
            functions={n: f for n, f in self.functions.items() if n in keep},
            times_s=self.times_s[np.array(mask, dtype=bool)]
            if len(self)
            else self.times_s,
            func_names=[n for n in self.func_names if n in keep],
        )

    # -- sharding --------------------------------------------------------------

    def partition_names(self, n_shards: int, by: str = "hash") -> list[set[str]]:
        """Assign every function to exactly one of ``n_shards`` buckets.

        ``by="hash"`` uses :func:`shard_of` (stable across processes and
        runs; what the sharded replay and the sharded decision service
        use, since both sides of a wire only share the name). ``by="load"``
        balances invocation counts instead: functions are placed
        heaviest-first onto the currently lightest shard, with
        deterministic (count-then-name) ordering so the split is
        reproducible. Zero-invocation functions are assigned too -- the
        buckets are a disjoint cover of ``self.functions``.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        buckets: list[set[str]] = [set() for _ in range(n_shards)]
        if by == "hash":
            for name in self.functions:
                buckets[shard_of(name, n_shards)].add(name)
        elif by == "load":
            counts = self.invocation_counts()
            loads = [0] * n_shards
            for name in sorted(counts, key=lambda n: (-counts[n], n)):
                lightest = min(range(n_shards), key=lambda i: (loads[i], i))
                buckets[lightest].add(name)
                loads[lightest] += counts[name]
        else:
            raise ValueError(f"unknown partition strategy {by!r}")
        return buckets

    def partition(self, n_shards: int, by: str = "hash") -> list["InvocationTrace"]:
        """Split into ``n_shards`` disjoint per-function sub-traces.

        Each shard trace keeps the original arrival ordering of the
        functions it owns (it is exactly ``subset(bucket)``), so the
        concatenation-by-time of all shards reproduces the full trace.
        """
        return [self.subset(b) for b in self.partition_names(n_shards, by=by)]
