"""Parametric workload-trace generators behind a common registry.

The paper evaluates every claim on one Azure-shaped trace family, but the
keep-alive/hardware trade-off is highly sensitive to arrival burstiness
and inter-arrival shape (GreenCourier, arXiv:2310.20375; "Green or
Fast?", arXiv:2602.23935). This module opens the workload axis: a
registry of :class:`TraceGenerator` implementations that all synthesize
an :class:`~repro.workloads.trace.InvocationTrace` from the same three
scalars -- ``(n_functions, duration_s, seed)`` -- so the sweep runner can
treat "which workload" as just another grid axis.

Families (registry names):

- ``azure``    -- the existing Azure-shaped synthesizer (delegation).
- ``poisson``  -- constant-rate homogeneous Poisson arrivals.
- ``diurnal``  -- sinusoidal-rate NHPP, sampled via thinning.
- ``mmpp``     -- 2-state (on/off) Markov-modulated Poisson: bursty
  episodes at a multiple of the base rate separated by quiet periods.
- ``pareto``   -- heavy-tailed renewal process with Pareto inter-arrivals.
- ``churn``    -- wrapper that phases function cohorts in and out over
  the trace (multi-tenant arrival/retirement churn).

Every generator shares the Azure synthesizer's popularity model (a
log-normal over per-function mean inter-arrival time, clipped to
configured bounds) and profile model (perturbed SeBS clones), and is
fully deterministic given the seed: profiles are drawn first, then each
function's arrivals, in registration order.

:class:`WorkloadSpec` is the picklable, hashable handle the experiment
layer uses -- a generator name plus a sorted tuple of scalar parameter
overrides -- with a stable ``label`` that doubles as cache identity and a
``parse`` for the CLI's ``name:key=value,key=value`` syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, ClassVar, Iterable, Protocol, runtime_checkable

import numpy as np

from repro import units
from repro.workloads.functions import FunctionProfile
from repro.workloads.sebs import sample_profile_clones
from repro.workloads.trace import InvocationTrace

#: Scalar parameter values a WorkloadSpec may carry (keeps labels stable).
ParamValue = float | int | str | bool


@dataclass(frozen=True)
class GeneratedFunctionSpec:
    """Bookkeeping for one synthesized function (exposed for tests/analysis)."""

    profile: FunctionProfile
    base_profile: str
    mean_interarrival_s: float
    #: Interval of the trace in which the function is live (churn wrapper);
    #: ``None`` means the whole trace.
    active_window_s: tuple[float, float] | None = None


@runtime_checkable
class TraceGenerator(Protocol):
    """Common protocol of all workload generators.

    Implementations are frozen dataclasses whose fields are the family's
    tunable parameters; ``generate`` must be deterministic in ``seed``.
    """

    name: ClassVar[str]

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        """Synthesize a trace of ``n_functions`` over ``[0, duration_s]``."""
        ...


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

GENERATORS: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a generator family to the registry."""
    name = cls.name
    if name in GENERATORS:
        raise ValueError(f"duplicate generator name {name!r}")
    GENERATORS[name] = cls
    return cls


def generator_names() -> tuple[str, ...]:
    return tuple(sorted(GENERATORS))


def make_generator(spec: "WorkloadSpec | str") -> TraceGenerator:
    """Instantiate a registered generator from a spec (or bare name)."""
    spec = WorkloadSpec.of(spec)
    try:
        cls = GENERATORS[spec.generator]
    except KeyError:
        raise KeyError(
            f"unknown workload generator {spec.generator!r}; "
            f"registered: {list(generator_names())}"
        ) from None
    valid = {f.name for f in fields(cls)}
    unknown = [k for k, _ in spec.params if k not in valid]
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for generator "
            f"{spec.generator!r}; accepts: {sorted(valid)}"
        )
    return cls(**dict(spec.params))


def build_trace(
    spec: "WorkloadSpec | str", n_functions: int, duration_s: float, seed: int
) -> InvocationTrace:
    """One-call convenience: spec -> trace (specs metadata discarded)."""
    trace, _ = make_generator(spec).generate(n_functions, duration_s, seed)
    return trace


# ---------------------------------------------------------------------------
# WorkloadSpec: the picklable handle the experiment layer passes around.
# ---------------------------------------------------------------------------


def _coerce_scalar(text: str) -> ParamValue:
    """CLI value -> int/float/bool/str (ints before floats: ``5`` stays int)."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class WorkloadSpec:
    """A generator name plus sorted scalar parameter overrides.

    Hashable and picklable by construction so it can ride inside
    :class:`~repro.experiments.runner.ScenarioSpec`; :attr:`label` is a
    deterministic function of its contents and is part of the scenario's
    cache identity (an unparameterised ``azure`` spec labels as plain
    ``"azure"``, keeping pre-existing cache keys valid).
    """

    generator: str = "azure"
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.params))
        if len({k for k, _ in ordered}) != len(ordered):
            raise ValueError(f"duplicate parameter names in {self.params!r}")
        object.__setattr__(self, "params", ordered)

    @classmethod
    def make(cls, generator: str, **params: ParamValue) -> "WorkloadSpec":
        return cls(generator=generator, params=tuple(params.items()))

    @classmethod
    def of(cls, value: "WorkloadSpec | str") -> "WorkloadSpec":
        """Accept a spec, a bare generator name, or ``name:k=v,...``."""
        if isinstance(value, cls):
            return value
        return cls.parse(value)

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse the CLI syntax ``name`` or ``name:key=val,key=val``."""
        name, sep, rest = text.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"empty generator name in workload {text!r}")
        params: dict[str, ParamValue] = {}
        if sep and rest.strip():
            for item in rest.split(","):
                key, eq, val = item.partition("=")
                if not eq or not key.strip():
                    raise ValueError(
                        f"malformed workload parameter {item!r} in {text!r}; "
                        "expected key=value"
                    )
                params[key.strip()] = _coerce_scalar(val.strip())
        return cls.make(name, **params)

    @property
    def label(self) -> str:
        """Stable display/cache token, e.g. ``mmpp[burst_rate_mult=20]``."""
        if not self.params:
            return self.generator
        inner = ",".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                         for k, v in self.params)
        return f"{self.generator}[{inner}]"


#: The default workload: the paper's Azure-shaped trace family.
AZURE_WORKLOAD = WorkloadSpec("azure")


# ---------------------------------------------------------------------------
# Shared building blocks (popularity + profile models).
# ---------------------------------------------------------------------------


def _sample_mean_iats(
    rng: np.random.Generator,
    n: int,
    median_s: float,
    sigma: float,
    lo_s: float,
    hi_s: float,
) -> np.ndarray:
    """Heavy-tailed popularity: log-normal mean inter-arrival, clipped."""
    return np.clip(
        median_s * np.exp(rng.normal(0.0, sigma, size=n)), lo_s, hi_s
    )


def _assemble(
    profiles: list[tuple[FunctionProfile, str]],
    arrivals_of: Callable[[int, FunctionProfile], np.ndarray],
    mean_iats: np.ndarray,
    windows: Iterable[tuple[float, float] | None] | None = None,
) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
    """Common tail of every generator: per-function arrivals -> trace."""
    windows = list(windows) if windows is not None else [None] * len(profiles)
    events: list[tuple[float, FunctionProfile]] = []
    specs: list[GeneratedFunctionSpec] = []
    for i, (profile, base_name) in enumerate(profiles):
        arrivals = arrivals_of(i, profile)
        events.extend((float(t), profile) for t in arrivals)
        specs.append(
            GeneratedFunctionSpec(
                profile=profile,
                base_profile=base_name,
                mean_interarrival_s=float(mean_iats[i]),
                active_window_s=windows[i],
            )
        )
    trace = InvocationTrace.from_events(events, functions=[p for p, _ in profiles])
    return trace, specs


@dataclass(frozen=True)
class _PopularityMixin:
    """Fields shared by all non-Azure families (popularity + bounds)."""

    median_interarrival_s: float = 450.0
    interarrival_sigma: float = 1.1
    min_interarrival_s: float = 15.0
    max_interarrival_s: float = 2.0 * units.SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        units.require_positive(self.median_interarrival_s, "median_interarrival_s")
        units.require_positive(self.min_interarrival_s, "min_interarrival_s")
        if self.max_interarrival_s < self.min_interarrival_s:
            raise ValueError("max_interarrival_s must be >= min_interarrival_s")
        if self.interarrival_sigma < 0.0:
            raise ValueError("interarrival_sigma must be >= 0")

    def _mean_iats(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return _sample_mean_iats(
            rng,
            n,
            self.median_interarrival_s,
            self.interarrival_sigma,
            self.min_interarrival_s,
            self.max_interarrival_s,
        )


def _homogeneous_poisson(
    rng: np.random.Generator, rate: float, duration_s: float
) -> np.ndarray:
    """Exponential-gap arrivals at a constant rate over ``[0, duration)``."""
    if rate <= 0.0 or duration_s <= 0.0:
        return np.empty(0)
    # Draw enough candidates in one vectorised shot (6 sigma of slack),
    # topping up in the (rare) short-draw case.
    n_expected = rate * duration_s
    n = int(n_expected + 6.0 * np.sqrt(n_expected + 1.0)) + 8
    t = np.cumsum(rng.exponential(1.0 / rate, size=n))
    while t.size and t[-1] < duration_s:
        extra = np.cumsum(rng.exponential(1.0 / rate, size=n)) + t[-1]
        t = np.concatenate([t, extra])
    return t[t < duration_s]


# ---------------------------------------------------------------------------
# Families.
# ---------------------------------------------------------------------------


@register
@dataclass(frozen=True)
class AzureGenerator:
    """The Azure-shaped synthesizer behind the generator protocol.

    Parameters mirror the scalar knobs of
    :class:`~repro.workloads.azure.AzureTraceConfig`; with defaults the
    produced trace is *identical* to ``generate_azure_trace`` (and hence to
    ``default_scenario``) for the same ``(n_functions, duration_s, seed)``.
    """

    name: ClassVar[str] = "azure"

    periodic_fraction: float = 0.4
    diurnal_amplitude: float = 0.35
    burst_probability: float = 0.15
    burst_rate_multiplier: float = 15.0
    median_interarrival_s: float = 450.0
    interarrival_sigma: float = 1.1

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        from repro.workloads.azure import AzureTraceConfig, generate_azure_trace

        trace, azure_specs = generate_azure_trace(
            AzureTraceConfig(
                n_functions=n_functions,
                duration_s=duration_s,
                seed=seed,
                periodic_fraction=self.periodic_fraction,
                diurnal_amplitude=self.diurnal_amplitude,
                burst_probability=self.burst_probability,
                burst_rate_multiplier=self.burst_rate_multiplier,
                median_interarrival_s=self.median_interarrival_s,
                interarrival_sigma=self.interarrival_sigma,
            )
        )
        specs = [
            GeneratedFunctionSpec(
                profile=s.profile,
                base_profile=s.base_profile,
                mean_interarrival_s=s.mean_interarrival_s,
            )
            for s in azure_specs
        ]
        return trace, specs


@register
@dataclass(frozen=True)
class PoissonGenerator(_PopularityMixin):
    """Constant-rate Poisson arrivals (the memoryless reference family)."""

    name: ClassVar[str] = "poisson"

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        rng = np.random.default_rng(seed)
        profiles = sample_profile_clones(rng, n_functions)
        mean_iats = self._mean_iats(rng, n_functions)

        def arrivals(i: int, _profile: FunctionProfile) -> np.ndarray:
            return _homogeneous_poisson(rng, 1.0 / mean_iats[i], duration_s)

        return _assemble(profiles, arrivals, mean_iats)


@register
@dataclass(frozen=True)
class DiurnalGenerator(_PopularityMixin):
    """Sinusoidal-rate NHPP via thinning.

    The intensity of function *i* is
    ``lambda_i(t) = (1/iat_i) * (1 + A sin(2 pi (t/period + phase_i)))``
    with ``A = amplitude`` in ``[0, 1)`` -- rates stay within
    ``(1 +/- A)/iat_i`` by construction. ``phase`` aligns the global peak;
    ``phase_jitter`` desynchronises functions slightly so the peak is not
    a single spike.
    """

    name: ClassVar[str] = "diurnal"

    amplitude: float = 0.6
    period_s: float = units.SECONDS_PER_DAY
    phase: float = 0.25
    phase_jitter: float = 0.05

    def __post_init__(self) -> None:
        _PopularityMixin.__post_init__(self)
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        units.require_positive(self.period_s, "period_s")
        if self.phase_jitter < 0.0:
            raise ValueError("phase_jitter must be >= 0")

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        rng = np.random.default_rng(seed)
        profiles = sample_profile_clones(rng, n_functions)
        mean_iats = self._mean_iats(rng, n_functions)
        phases = self.phase + rng.normal(0.0, self.phase_jitter, size=n_functions)

        def arrivals(i: int, _profile: FunctionProfile) -> np.ndarray:
            lam_max = (1.0 + self.amplitude) / mean_iats[i]
            t = _homogeneous_poisson(rng, lam_max, duration_s)
            if t.size == 0:
                return t
            intensity = 1.0 + self.amplitude * np.sin(
                2.0 * np.pi * (t / self.period_s + phases[i])
            )
            keep = rng.uniform(size=t.size) < intensity / (1.0 + self.amplitude)
            return t[keep]

        return _assemble(profiles, arrivals, mean_iats)


@register
@dataclass(frozen=True)
class MMPPGenerator(_PopularityMixin):
    """2-state on/off Markov-modulated Poisson process (bursty).

    Each function alternates exponential ON/OFF sojourns; arrivals are
    Poisson at ``burst_rate_mult / iat_i`` while ON and
    ``idle_rate_mult / iat_i`` while OFF. With the defaults the
    *time-average* rate stays near ``1/iat_i`` while arrivals concentrate
    in short bursts -- the regime where keep-alive policies reorder.
    """

    name: ClassVar[str] = "mmpp"

    on_duration_s: float = 300.0
    off_duration_s: float = 1500.0
    burst_rate_mult: float = 5.0
    idle_rate_mult: float = 0.2

    def __post_init__(self) -> None:
        _PopularityMixin.__post_init__(self)
        units.require_positive(self.on_duration_s, "on_duration_s")
        units.require_positive(self.off_duration_s, "off_duration_s")
        units.require_positive(self.burst_rate_mult, "burst_rate_mult")
        units.require_non_negative(self.idle_rate_mult, "idle_rate_mult")

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        rng = np.random.default_rng(seed)
        profiles = sample_profile_clones(rng, n_functions)
        mean_iats = self._mean_iats(rng, n_functions)

        def arrivals(i: int, _profile: FunctionProfile) -> np.ndarray:
            base = 1.0 / mean_iats[i]
            chunks: list[np.ndarray] = []
            t = 0.0
            on = bool(rng.uniform() < 0.5)  # random initial state
            while t < duration_s:
                mean_stay = self.on_duration_s if on else self.off_duration_s
                stay = float(rng.exponential(mean_stay))
                end = min(t + stay, duration_s)
                rate = base * (self.burst_rate_mult if on else self.idle_rate_mult)
                seg = _homogeneous_poisson(rng, rate, end - t)
                if seg.size:
                    chunks.append(t + seg)
                t = end
                on = not on
            if not chunks:
                return np.empty(0)
            return np.concatenate(chunks)

        return _assemble(profiles, arrivals, mean_iats)


@register
@dataclass(frozen=True)
class ParetoGenerator(_PopularityMixin):
    """Heavy-tailed renewal arrivals: Pareto(Lomax) inter-arrival gaps.

    Gaps are ``x_m * (1 + Pareto(alpha))`` scaled so the mean gap equals
    the function's sampled ``iat_i`` (requires ``alpha > 1``); small
    ``alpha`` gives occasional very long silences between arrival
    clusters, the worst case for history-based arrival estimators.
    """

    name: ClassVar[str] = "pareto"

    alpha: float = 1.5

    def __post_init__(self) -> None:
        _PopularityMixin.__post_init__(self)
        if self.alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean inter-arrival)")

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        rng = np.random.default_rng(seed)
        profiles = sample_profile_clones(rng, n_functions)
        mean_iats = self._mean_iats(rng, n_functions)

        def arrivals(i: int, _profile: FunctionProfile) -> np.ndarray:
            # Mean of x_m * (1 + Pareto(alpha)) is x_m * alpha / (alpha - 1).
            x_m = mean_iats[i] * (self.alpha - 1.0) / self.alpha
            n_expected = duration_s / mean_iats[i]
            n = int(n_expected + 6.0 * np.sqrt(n_expected + 1.0)) + 8
            gaps = x_m * (1.0 + rng.pareto(self.alpha, size=n))
            t = np.cumsum(gaps)
            while t.size and t[-1] < duration_s:
                extra = x_m * (1.0 + rng.pareto(self.alpha, size=n))
                t = np.concatenate([t, t[-1] + np.cumsum(extra)])
            return t[t < duration_s]

        return _assemble(profiles, arrivals, mean_iats)


@register
@dataclass(frozen=True)
class ChurnGenerator:
    """Phases function cohorts in and out over the trace (tenant churn).

    Wraps any registered inner family: the inner generator synthesizes the
    full-duration trace, then each function is restricted to its cohort's
    active window. Cohort *c* of ``cohorts`` covers
    ``[c, c + 1 + overlap] * duration / cohorts`` (clipped), so functions
    continuously retire while new ones appear -- the multi-tenant pattern
    that exercises scheduler state for functions that stop arriving
    (e.g. :class:`~repro.optimizers.batch.SwarmFleet` slots that go idle
    and are never stepped again).
    """

    name: ClassVar[str] = "churn"

    inner: str = "poisson"
    cohorts: int = 4
    overlap: float = 0.25

    def __post_init__(self) -> None:
        if self.cohorts < 1:
            raise ValueError("cohorts must be >= 1")
        if self.overlap < 0.0:
            raise ValueError("overlap must be >= 0")
        if self.inner == self.name:
            raise ValueError("churn cannot wrap itself")
        # Validate at construction so the CLI/grid layer rejects bad
        # specs before any worker starts simulating.
        if self.inner not in GENERATORS:
            raise KeyError(
                f"unknown inner generator {self.inner!r}; "
                f"registered: {list(generator_names())}"
            )

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        trace, specs = GENERATORS[self.inner]().generate(
            n_functions, duration_s, seed
        )
        width = duration_s / self.cohorts
        events: list[tuple[float, FunctionProfile]] = []
        out_specs: list[GeneratedFunctionSpec] = []
        for i, spec in enumerate(specs):
            cohort = i % self.cohorts
            lo = cohort * width
            hi = min(duration_s, (cohort + 1.0 + self.overlap) * width)
            name = spec.profile.name
            ts = trace.times_of(name)
            ts = ts[(ts >= lo) & (ts < hi)]
            events.extend((float(t), spec.profile) for t in ts)
            out_specs.append(
                GeneratedFunctionSpec(
                    profile=spec.profile,
                    base_profile=spec.base_profile,
                    mean_interarrival_s=spec.mean_interarrival_s,
                    active_window_s=(lo, hi),
                )
            )
        churned = InvocationTrace.from_events(
            events, functions=[s.profile for s in specs]
        )
        return churned, out_specs


@register
@dataclass(frozen=True)
class FileGenerator:
    """Replays a compiled columnar trace file (``ecolife trace compile``).

    The odd one out: arrivals come from disk, not a synthesizer, so
    ``n_functions``/``duration_s``/``seed`` are ignored -- the file *is*
    the workload. Registering it as a family lets real traces ride the
    sweep grid (``--workloads file:path=azure_day.npz``) with caching and
    distribution unchanged; cache identity comes from the spec label,
    which embeds the path.
    """

    name: ClassVar[str] = "file"

    path: str = ""
    #: Memory-map the columns (uncompressed files only) instead of
    #: loading them; each worker then shares the page cache.
    mmap: bool = True

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError(
                "the file workload needs a path parameter "
                "(e.g. file:path=azure_day.npz)"
            )

    def generate(
        self, n_functions: int, duration_s: float, seed: int
    ) -> tuple[InvocationTrace, list[GeneratedFunctionSpec]]:
        trace = InvocationTrace.open(self.path, mmap=self.mmap)
        counts = trace.invocation_counts()
        duration = trace.duration_s
        specs = [
            GeneratedFunctionSpec(
                profile=trace.functions[name],
                base_profile=trace.functions[name].name,
                mean_interarrival_s=(
                    duration / counts[name] if counts[name] else float("inf")
                ),
            )
            for name in trace.names
        ]
        return trace, specs
