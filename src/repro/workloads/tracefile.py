"""Columnar on-disk trace format + chunked Azure-CSV compiler.

One Azure day is millions of invocations. Pickling a full Python
:class:`~repro.workloads.trace.InvocationTrace` per shard worker (names
as a ``list[str]``, times boxed on iteration) is what made that
impossible; this module is the streaming side of the columnar core:

**Format (version 1)** -- a NumPy ``.npz`` archive:

========================  =========  ==========================================
member                    dtype      contents
========================  =========  ==========================================
``format_version``        int32      ``[1]``
``times_s``               float64    sorted arrival times (the hot column)
``func_ids``              int32      per-event index into ``names``
``names``                 unicode    intern table, position == id
``prof_mem_gb``           float64    per-id :class:`FunctionProfile` columns
``prof_exec_ref_s``       float64    ...
``prof_cold_ref_s``       float64    ...
``prof_perf_sensitivity`` float64    ...
``prof_cold_sensitivity`` float64    ...
========================  =========  ==========================================

Saved uncompressed (the default), the two event columns are STORED zip
members, so :func:`open_trace` can hand them straight to ``np.memmap``:
a shard worker's resident set is then the intern/profile tables plus
whatever event pages the OS keeps warm -- not one full in-memory trace
per process. ``compress=True`` produces a smaller archival file that
reopens into RAM instead.

The compiler (:func:`compile_azure_csv`) streams ``app,func,
end_timestamp,duration`` CSV rows (the Azure Functions 2021 trace
layout) in bounded-memory chunks, interning names as it goes, and
synthesizes a deterministic SeBS-clone profile per function (CRC32-seeded
base pick + memory perturbation, execution time calibrated to the mean
observed duration) -- so recompiling the same CSV anywhere yields a
bit-identical trace.
"""

from __future__ import annotations

import csv
import pathlib
import struct
import zipfile
from typing import Iterator, Sequence

import numpy as np

from repro.workloads.functions import FunctionProfile
from repro.workloads.sebs import SEBS_FUNCTIONS
from repro.workloads.trace import InvocationTrace, _crc32

FORMAT_VERSION = 1

#: Per-id profile columns, in FunctionProfile field order.
_PROFILE_COLUMNS = (
    "prof_mem_gb",
    "prof_exec_ref_s",
    "prof_cold_ref_s",
    "prof_perf_sensitivity",
    "prof_cold_sensitivity",
)

_CSV_HEADER = ("app", "func", "end_timestamp", "duration")


# ---------------------------------------------------------------------------
# Save / open.
# ---------------------------------------------------------------------------


def save_trace(
    trace: InvocationTrace,
    path: "str | pathlib.Path",
    *,
    compress: bool = False,
) -> None:
    """Write ``trace`` in the columnar format (uncompressed => mmap-able)."""
    profiles = [trace.functions[n] for n in trace.names]
    arrays = {
        "format_version": np.array([FORMAT_VERSION], dtype=np.int32),
        "times_s": np.ascontiguousarray(trace.times_s, dtype=np.float64),
        "func_ids": np.ascontiguousarray(trace.func_ids, dtype=np.int32),
        "names": np.array(trace.names, dtype=np.str_),
        "prof_mem_gb": np.array([p.mem_gb for p in profiles]),
        "prof_exec_ref_s": np.array([p.exec_ref_s for p in profiles]),
        "prof_cold_ref_s": np.array([p.cold_ref_s for p in profiles]),
        "prof_perf_sensitivity": np.array(
            [p.perf_sensitivity for p in profiles]
        ),
        "prof_cold_sensitivity": np.array(
            [p.cold_sensitivity for p in profiles]
        ),
    }
    writer = np.savez_compressed if compress else np.savez
    writer(pathlib.Path(path), **arrays)


def _mmap_member(path: pathlib.Path, member: str) -> np.ndarray | None:
    """Memory-map one STORED ``.npy`` member of an npz archive.

    ``np.load(mmap_mode=...)`` refuses zip archives, but an uncompressed
    member is a verbatim ``.npy`` byte range: locate it via the zip
    local header, parse the npy header, and map the data that follows.
    Returns None when the member is compressed (caller falls back to a
    RAM load).
    """
    with zipfile.ZipFile(path) as zf:
        try:
            info = zf.getinfo(member)
        except KeyError:
            return None
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        header_offset = info.header_offset
    with open(path, "rb") as fh:
        fh.seek(header_offset)
        local = fh.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        fh.seek(header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            return None
        if fortran:
            return None
        offset = fh.tell()
    return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)


def open_trace(
    path: "str | pathlib.Path", *, mmap: bool = True
) -> InvocationTrace:
    """Reopen a saved trace; event columns memory-mapped when possible."""
    path = pathlib.Path(path)
    times: np.ndarray | None = None
    ids: np.ndarray | None = None
    with np.load(path, allow_pickle=False) as npz:
        version = int(npz["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: trace format version {version} is not supported "
                f"(expected {FORMAT_VERSION})"
            )
        names = [str(n) for n in npz["names"]]
        prof = {col: npz[col] for col in _PROFILE_COLUMNS}
        if not mmap:
            times, ids = npz["times_s"], npz["func_ids"]
    if mmap:
        times = _mmap_member(path, "times_s.npy")
        ids = _mmap_member(path, "func_ids.npy")
        if times is None or ids is None:  # compressed archive: RAM load
            with np.load(path, allow_pickle=False) as npz:
                times, ids = npz["times_s"], npz["func_ids"]
    functions = {
        name: FunctionProfile(
            name=name,
            mem_gb=float(prof["prof_mem_gb"][i]),
            exec_ref_s=float(prof["prof_exec_ref_s"][i]),
            cold_ref_s=float(prof["prof_cold_ref_s"][i]),
            perf_sensitivity=float(prof["prof_perf_sensitivity"][i]),
            cold_sensitivity=float(prof["prof_cold_sensitivity"][i]),
        )
        for i, name in enumerate(names)
    }
    return InvocationTrace(functions=functions, times_s=times, func_ids=ids)


def trace_info(path: "str | pathlib.Path") -> dict:
    """Cheap metadata for ``ecolife trace info`` (no full materialization)."""
    path = pathlib.Path(path)
    with zipfile.ZipFile(path) as zf:
        stored = {
            i.filename: i.compress_type == zipfile.ZIP_STORED
            for i in zf.infolist()
        }
    with np.load(path, allow_pickle=False) as npz:
        version = int(npz["format_version"][0])
        n_functions = int(npz["names"].shape[0])
    times = _mmap_member(path, "times_s.npy")
    if times is None:
        with np.load(path, allow_pickle=False) as npz:
            times = npz["times_s"]
    return {
        "path": str(path),
        "format_version": version,
        "size_bytes": path.stat().st_size,
        "mmap_able": stored.get("times_s.npy", False)
        and stored.get("func_ids.npy", False),
        "n_functions": n_functions,
        "n_invocations": int(times.size),
        "duration_s": float(times[-1]) if times.size else 0.0,
    }


# ---------------------------------------------------------------------------
# Azure-CSV compiler.
# ---------------------------------------------------------------------------


def _calibrated_profile(name: str, mean_duration_s: float) -> FunctionProfile:
    """Deterministic SeBS-clone profile for one trace function.

    Seeded by the name's CRC32 (the repo's deterministic-hash idiom), so
    every compilation of the same CSV -- on any host, in any process --
    produces the same profile: base SeBS pick + memory perturbation from
    the seeded RNG, execution time calibrated to the mean duration
    observed in the CSV.
    """
    base_names = sorted(SEBS_FUNCTIONS)
    crc = _crc32(name)
    base = SEBS_FUNCTIONS[base_names[crc % len(base_names)]]
    rng = np.random.default_rng(crc)
    mem_scale = float(rng.uniform(0.7, 1.3))
    if mean_duration_s > 0.0:
        exec_scale = float(
            np.clip(mean_duration_s / base.exec_ref_s, 0.05, 50.0)
        )
    else:
        exec_scale = 1.0
    return base.clone(name=name, mem_scale=mem_scale, exec_scale=exec_scale)


def _read_csv_chunks(
    csv_path: pathlib.Path, chunk_rows: int
) -> Iterator[list[Sequence[str]]]:
    with open(csv_path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or tuple(
            h.strip().lower() for h in header
        ) != _CSV_HEADER:
            raise ValueError(
                f"{csv_path}: expected CSV header {','.join(_CSV_HEADER)!r}, "
                f"got {header!r}"
            )
        chunk: list[Sequence[str]] = []
        for row in reader:
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(
                    f"{csv_path}: malformed row {row!r} (expected 4 columns)"
                )
            chunk.append(row)
            if len(chunk) >= chunk_rows:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def compile_azure_csv(
    csv_path: "str | pathlib.Path",
    out_path: "str | pathlib.Path",
    *,
    chunk_rows: int = 100_000,
    compress: bool = False,
) -> dict:
    """Compile an Azure-layout CSV into the columnar trace format.

    Rows are ``app,func,end_timestamp,duration`` (seconds); the arrival
    instant is ``end_timestamp - duration``. Reading is chunked
    (``chunk_rows`` at a time) so compilation memory is the columns
    themselves, never a per-row Python object per event. Returns the
    :func:`trace_info` dict of the compiled file plus ``n_rows``.
    """
    csv_path = pathlib.Path(csv_path)
    intern: dict[str, int] = {}
    time_chunks: list[np.ndarray] = []
    id_chunks: list[np.ndarray] = []
    dur_sum: list[float] = []
    dur_count: list[int] = []
    for chunk in _read_csv_chunks(csv_path, chunk_rows):
        ids = np.empty(len(chunk), dtype=np.int32)
        times = np.empty(len(chunk), dtype=np.float64)
        for i, (app, func, end_ts, duration) in enumerate(chunk):
            name = f"{app}:{func}"
            fid = intern.get(name)
            if fid is None:
                fid = intern[name] = len(intern)
                dur_sum.append(0.0)
                dur_count.append(0)
            dur = float(duration)
            ids[i] = fid
            times[i] = float(end_ts) - dur
            dur_sum[fid] += dur
            dur_count[fid] += 1
        time_chunks.append(times)
        id_chunks.append(ids)
    if time_chunks:
        all_times = np.concatenate(time_chunks)
        all_ids = np.concatenate(id_chunks)
    else:
        all_times = np.empty(0, dtype=np.float64)
        all_ids = np.empty(0, dtype=np.int32)
    order = np.argsort(all_times, kind="stable")
    functions = {
        name: _calibrated_profile(
            name, dur_sum[fid] / dur_count[fid] if dur_count[fid] else 0.0
        )
        for name, fid in intern.items()
    }
    trace = InvocationTrace(
        functions=functions,
        times_s=all_times[order],
        func_ids=all_ids[order],
    )
    save_trace(trace, out_path, compress=compress)
    info = trace_info(out_path)
    info["n_rows"] = int(all_times.size)
    return info


def write_azure_sample_csv(
    path: "str | pathlib.Path",
    *,
    n_functions: int = 128,
    duration_hours: float = 24.0,
    seed: int = 2024,
    duration_noise: float = 0.05,
    median_interarrival_s: float | None = None,
    exec_floor_s: float = 0.0,
) -> int:
    """Write a deterministic downsampled Azure-day CSV sample.

    The sample is the synthetic Azure-shaped workload
    (:func:`~repro.workloads.azure.generate_azure_trace`) serialized in
    the CSV layout the compiler reads -- the bundled stand-in for the
    real (non-redistributable) Azure Functions trace that the
    ``azure-scale-smoke`` CI job compiles and replays. Deterministic
    given the arguments. Returns the number of data rows written.

    ``median_interarrival_s`` overrides the popularity median (lower =
    denser arrivals); ``exec_floor_s`` clamps every written duration
    from below. A floor widens the sharding barrier width (which is a
    minimum over per-function runtimes of the compiled profiles), so
    the trace bench uses it to build a long-inert-run replay sample.
    """
    from repro import units
    from repro.workloads.azure import AzureTraceConfig, generate_azure_trace

    overrides: dict = {}
    if median_interarrival_s is not None:
        overrides["median_interarrival_s"] = median_interarrival_s
        overrides["min_interarrival_s"] = min(
            median_interarrival_s, AzureTraceConfig.min_interarrival_s
        )
    cfg = AzureTraceConfig(
        n_functions=n_functions,
        duration_s=duration_hours * units.SECONDS_PER_HOUR,
        seed=seed,
        **overrides,
    )
    trace, _specs = generate_azure_trace(cfg)
    rng = np.random.default_rng(seed)
    noise = 1.0 + duration_noise * rng.standard_normal(len(trace))
    path = pathlib.Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for inv, scale in zip(trace, np.clip(noise, 0.5, 1.5).tolist()):
            app, func = inv.func.name.split(":", 1)
            dur = max(inv.func.exec_ref_s, exec_floor_s) * scale
            writer.writerow(
                (app, func, f"{inv.t + dur:.6f}", f"{dur:.6f}")
            )
    return len(trace)
