"""EcoLife core: the paper's contribution (Sec. IV)."""

from repro.core.adjustment import WarmPoolAdjuster
from repro.core.arrival import ArrivalBatch, ArrivalEstimator, ArrivalRegistry
from repro.core.config import EcoLifeConfig, KeepAliveExpectation, OptimizerKind
from repro.core.epdm import ExecutionPlacementDecisionMaker
from repro.core.kdm import KeepAliveDecisionMaker
from repro.core.objective import CostModel, ObjectiveBuilder
from repro.core.scheduler import EcoLifeScheduler

__all__ = [
    "EcoLifeConfig",
    "OptimizerKind",
    "KeepAliveExpectation",
    "ArrivalBatch",
    "ArrivalEstimator",
    "ArrivalRegistry",
    "CostModel",
    "ObjectiveBuilder",
    "KeepAliveDecisionMaker",
    "ExecutionPlacementDecisionMaker",
    "WarmPoolAdjuster",
    "EcoLifeScheduler",
]
