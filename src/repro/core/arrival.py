"""Per-function arrival statistics.

The KDM's objective needs, for every candidate keep-alive period ``k``:

- ``P(warm | k)`` -- the probability the next invocation lands inside the
  keep-alive window, i.e. ``P(IAT <= k)``;
- ``E[min(IAT, k)]`` -- the expected keep-alive duration actually accrued
  (a warm hit ends the window early).

Both come from the empirical inter-arrival distribution of the function's
recent history ("different serverless functions need to be kept alive for
different amounts of time depending on a function's arrival probability",
Sec. I). With little history the estimator blends in an exponential prior
so brand-new functions get sensible keep-alive decisions instead of
extremes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence, cast

import numpy as np
import numpy.typing as npt

from repro.core.spill import ArchiveSpill


class ArrivalEstimator:
    """Sliding-window empirical IAT distribution for one function."""

    def __init__(
        self,
        history: int = 64,
        prior_mean_iat_s: float = 600.0,
        prior_strength: float = 2.0,
    ) -> None:
        if history < 2:
            raise ValueError("history must be >= 2")
        if prior_mean_iat_s <= 0.0:
            raise ValueError("prior_mean_iat_s must be > 0")
        if prior_strength < 0.0:
            raise ValueError("prior_strength must be >= 0")
        self.history = history
        self.prior_mean = prior_mean_iat_s
        self.prior_strength = prior_strength
        self._iats: deque[float] = deque(maxlen=history)
        self._last_arrival: float | None = None
        self._sorted: np.ndarray | None = None
        self._prefix: np.ndarray | None = None

    # -- observation ----------------------------------------------------------

    def observe(self, t: float) -> None:
        """Record an invocation arrival at time ``t``."""
        if self._last_arrival is not None:
            iat = t - self._last_arrival
            if iat < 0.0:
                raise ValueError("arrivals must be observed in time order")
            self._iats.append(iat)
            self._sorted = None  # invalidate cache
        self._last_arrival = t

    def observe_many(self, times: npt.ArrayLike) -> None:
        """Record a sorted run of arrivals in one call.

        Bit-identical to calling :meth:`observe` per instant: the gaps
        are float64 differences of the same operands (IEEE subtraction
        does not care whether the operands were boxed), appended as
        Python floats so the deque state -- including pickle/checkpoint
        round trips -- matches the per-event path exactly.
        """
        if isinstance(times, np.ndarray) and times.size > 32:
            ts = times.astype(float, copy=False)
            gaps_arr = (
                np.diff(ts)
                if self._last_arrival is None
                else np.concatenate(
                    ([float(ts[0]) - self._last_arrival], np.diff(ts))
                )
            )
            if gaps_arr.size and float(gaps_arr.min()) < 0.0:
                raise ValueError("arrivals must be observed in time order")
            if gaps_arr.size:
                # Only the trailing window survives the deque's maxlen.
                self._iats.extend(gaps_arr[-self.history :].tolist())
                self._sorted = None
            self._last_arrival = float(ts[-1])
            return
        # Short runs (the common sharded-replay chunk is a handful of
        # instants) skip ndarray round trips: float64 subtraction gives
        # the same IEEE doubles whether or not the operands were boxed.
        ts_list = times if type(times) is list else [float(t) for t in times]
        if not ts_list:
            return
        if len(ts_list) == 1:
            self.observe(ts_list[0])
            return
        prev = self._last_arrival
        if prev is None:
            prev = ts_list[0]
            rest = ts_list[1:]
        else:
            rest = ts_list
        gaps = []
        for t in rest:
            gaps.append(t - prev)
            prev = t
        if gaps and min(gaps) < 0.0:
            raise ValueError("arrivals must be observed in time order")
        if gaps:
            self._iats.extend(gaps[-self.history :])
            self._sorted = None
        self._last_arrival = ts_list[-1]

    @property
    def n_samples(self) -> int:
        return len(self._iats)

    @property
    def mean_iat_s(self) -> float:
        """Blended mean inter-arrival time (prior + observations)."""
        n = self.n_samples
        if n == 0:
            return self.prior_mean
        emp = float(np.mean(self._iats))
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * self.prior_mean

    # -- queries (vectorised over candidate keep-alive periods) ---------------

    def _ensure_cache(self) -> None:
        if self._sorted is None:
            arr = np.sort(np.asarray(self._iats, dtype=float))
            self._sorted = arr
            self._prefix = np.concatenate(([0.0], np.cumsum(arr)))

    def p_warm(self, k_s: npt.ArrayLike) -> np.ndarray:
        """P(next IAT <= k) for an array of keep-alive periods (seconds)."""
        k = np.atleast_1d(np.asarray(k_s, dtype=float))
        prior = 1.0 - np.exp(-k / self.prior_mean)
        n = self.n_samples
        if n == 0:
            return prior
        self._ensure_cache()
        assert self._sorted is not None
        emp = np.searchsorted(self._sorted, k, side="right") / n
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * prior

    def expected_keepalive_s(self, k_s: npt.ArrayLike) -> np.ndarray:
        """E[min(IAT, k)] for an array of keep-alive periods (seconds)."""
        k = np.atleast_1d(np.asarray(k_s, dtype=float))
        # Exponential prior: E[min(X, k)] = mean * (1 - exp(-k/mean)).
        prior = self.prior_mean * (1.0 - np.exp(-k / self.prior_mean))
        n = self.n_samples
        if n == 0:
            return prior
        self._ensure_cache()
        assert self._sorted is not None and self._prefix is not None
        idx = np.searchsorted(self._sorted, k, side="right")
        below_sum = self._prefix[idx]
        above_count = n - idx
        emp = (below_sum + k * above_count) / n
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * prior


class ArrivalBatch:
    """Padded row-stack of several estimators' empirical IAT state.

    The batched objective (:meth:`repro.core.objective.ObjectiveBuilder.
    batch_fitness`) needs ``P(warm | k)`` and ``E[min(IAT, k)]`` for
    *every* function in the batch. Querying each
    :class:`ArrivalEstimator` in a Python loop was the last per-function
    loop inside the fused decision step; this class snapshots the
    estimators' sorted histories into inf-padded ``(n_funcs, history)``
    matrices once per decision and answers both queries for the whole
    batch in a handful of broadcast ops.

    **Bit-identity contract** (property-tested in
    ``tests/test_core_arrival.py``): row ``i`` of every query equals the
    scalar ``estimators[i].p_warm(k[i])`` / ``expected_keepalive_s(k[i])``
    to the last ULP. Three details make that exact rather than
    approximate:

    - ``searchsorted(sorted, k, side="right")`` counts elements
      ``<= k``; with rows padded by ``+inf`` the broadcast comparison-sum
      produces the identical integer count.
    - the empirical/prior blend keeps the scalar expression shape
      (``w * emp + (1 - w) * prior``) with per-function ``w`` broadcast
      as a column -- elementwise float64 arithmetic is IEEE-identical
      regardless of batch shape.
    - empty-history rows force ``w = 0`` and ``emp = 0``, and
      ``0.0 * 0.0 + 1.0 * prior`` reproduces the scalar path's early
      ``return prior`` bit for bit (prior values are non-negative, so
      the ``+ 0.0`` cannot flip a signed zero).

    The snapshot is read-only: later ``observe`` calls on the estimators
    do not flow into an existing batch (matching how a decision's
    fitness closure captures the world at build time).
    """

    def __init__(self, estimators: Sequence[ArrivalEstimator]) -> None:
        f = len(estimators)
        n = np.empty(f, dtype=np.intp)
        prior_mean = np.empty(f)
        strength = np.empty(f)
        for i, est in enumerate(estimators):
            n[i] = est.n_samples
            prior_mean[i] = est.prior_mean
            strength[i] = est.prior_strength
        h = int(n.max()) if f else 0
        sorted_pad = np.full((f, h), np.inf)
        prefix_pad = np.zeros((f, h + 1))
        for i, est in enumerate(estimators):
            if n[i]:
                est._ensure_cache()
                assert est._sorted is not None and est._prefix is not None
                sorted_pad[i, : n[i]] = est._sorted
                prefix_pad[i, : n[i] + 1] = est._prefix
        self.n_funcs = f
        self._n_col = n[:, None]
        # max(n, 1) keeps empty rows off the 0/0 path; their w == 0.0
        # blend discards the dummy quotient entirely.
        self._n_safe = np.maximum(n, 1)[:, None]
        # n == 0 with prior_strength == 0 is a transient 0/0 that the
        # where() discards; silence it rather than warn per batch.
        with np.errstate(invalid="ignore"):
            self._w = np.where(n > 0, n / (n + strength), 0.0)[:, None]
        self._prior_mean = prior_mean[:, None]
        self._sorted = sorted_pad
        self._prefix = prefix_pad

    def _counts(self, k: np.ndarray) -> np.ndarray:
        """Per-row ``searchsorted(side="right")`` as one broadcast op."""
        return (self._sorted[:, None, :] <= k[..., None]).sum(axis=-1)

    def _require_rows(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=float)
        if k.ndim != 2 or k.shape[0] != self.n_funcs:
            raise ValueError(
                f"expected ({self.n_funcs}, rows) keep-alive matrix, "
                f"got shape {k.shape}"
            )
        return k

    def p_warm(self, k_s: np.ndarray) -> np.ndarray:
        """Row-wise ``P(next IAT <= k)`` for a ``(n_funcs, rows)`` matrix."""
        k = self._require_rows(k_s)
        prior = 1.0 - np.exp(-k / self._prior_mean)
        emp = self._counts(k) / self._n_safe
        return self._w * emp + (1.0 - self._w) * prior

    def expected_keepalive_s(self, k_s: np.ndarray) -> np.ndarray:
        """Row-wise ``E[min(IAT, k)]`` for a ``(n_funcs, rows)`` matrix."""
        k = self._require_rows(k_s)
        prior = self._prior_mean * (1.0 - np.exp(-k / self._prior_mean))
        idx = self._counts(k)
        below_sum = np.take_along_axis(self._prefix, idx, axis=1)
        above_count = self._n_col - idx
        emp = (below_sum + k * above_count) / self._n_safe
        return self._w * emp + (1.0 - self._w) * prior


class ArrivalRegistry:
    """One :class:`ArrivalEstimator` per function, with a retirement shelf.

    The KDM's state-retirement sweep moves idle functions' estimators to
    an internal archive (:meth:`retire`) and brings them back when the
    function reappears (:meth:`revive`). :meth:`get` *peeks* at archived
    estimators without reviving them: readers that consult a retired
    function's history -- e.g. the warm-pool adjuster ranking a container
    that outlived its function's last decision -- see exactly the data a
    never-retired run would, which keeps overflow rankings bit-identical,
    without promoting the function back to the live ledger.

    When constructed with a ``spill`` store, the shelf itself is bounded:
    once more than ``spill_after`` estimators are archived, the
    least-recently-shelved overflow to disk. Estimators pickle exactly
    (a float deque plus cached numpy arrays), so a spilled history read
    back through :meth:`get` or :meth:`revive` is bit-identical to one
    that never left memory -- the peek path *reads through* the spill
    tier, parking the loaded estimator back on the in-memory shelf
    (most-recent, so it does not bounce straight back out) without
    promoting the function to the live ledger.
    """

    def __init__(
        self,
        history: int = 64,
        prior_mean_iat_s: float = 600.0,
        prior_strength: float = 2.0,
        spill: ArchiveSpill | None = None,
        spill_after: int = 256,
    ) -> None:
        if spill_after < 0:
            raise ValueError("spill_after must be >= 0")
        self._kw: dict[str, Any] = dict(
            history=history,
            prior_mean_iat_s=prior_mean_iat_s,
            prior_strength=prior_strength,
        )
        self._by_name: dict[str, ArrivalEstimator] = {}
        self._archived: dict[str, ArrivalEstimator] = {}
        self._spill = spill
        self._spill_after = spill_after

    def get(self, name: str) -> ArrivalEstimator:
        est = self._by_name.get(name)
        if est is None:
            # Read-only peek at archived history; revival is the KDM's
            # call (on the function's next arrival/decision).
            est = self._archived.get(name)
            if est is None and self._spill is not None and name in self._spill:
                # Peek-through: load the spilled history back onto the
                # in-memory shelf (still archived, not revived).
                est = cast(ArrivalEstimator, self._spill.take(name))
                self._archived[name] = est
                self._maybe_spill()
            if est is None:
                est = ArrivalEstimator(**self._kw)
                self._by_name[name] = est
        return est

    def observe(self, name: str, t: float) -> ArrivalEstimator:
        est = self.get(name)
        est.observe(t)
        return est

    def observe_run(self, name: str, times: npt.ArrayLike) -> ArrivalEstimator:
        """Batched :meth:`observe` for a sorted run of one function's
        arrivals (the sharded foreign fast path)."""
        est = self.get(name)
        est.observe_many(times)
        return est

    def retire(self, name: str) -> None:
        """Shelve one function's estimator (state-retirement sweep).

        No-op if the function was never observed. The estimator object
        and its history survive untouched; only the live ledger shrinks.
        With a spill store attached, shelf overflow goes to disk.
        """
        est = self._by_name.pop(name, None)
        if est is not None:
            self._archived[name] = est
            self._maybe_spill()

    def revive(self, name: str) -> None:
        """Promote a shelved estimator back to the live ledger
        (rehydration). No-op if nothing is archived under ``name``
        in either shelf tier."""
        est = self._archived.pop(name, None)
        if est is None and self._spill is not None and name in self._spill:
            est = cast(ArrivalEstimator, self._spill.take(name))
        if est is not None:
            self._by_name[name] = est

    def export_shelf(self) -> dict[str, ArrivalEstimator]:
        """Every estimator (live, shelved, and spilled), for checkpoints.

        Non-destructive: spilled estimators are peeked, not taken, so
        the spill tier (which may sit on a checkpoint directory) keeps
        its records. Deterministic dict order: live ledger, in-memory
        shelf, then disk, each in insertion order.
        """
        out: dict[str, ArrivalEstimator] = dict(self._by_name)
        out.update(self._archived)
        if self._spill is not None:
            for name in self._spill.names():
                if name not in out:
                    out[name] = cast(ArrivalEstimator, self._spill.peek(name))
        return out

    def import_shelved(self, name: str, est: ArrivalEstimator) -> None:
        """Adopt one estimator onto the shelf (checkpoint restore).

        It stays archived -- exactly the state after a retirement sweep
        -- and revives through the normal path on the function's next
        arrival. Overflow spills to disk as usual.
        """
        if name in self._by_name or name in self._archived or (
            self._spill is not None and name in self._spill
        ):
            raise ValueError(f"estimator already present: {name!r}")
        self._archived[name] = est
        self._maybe_spill()

    def _maybe_spill(self) -> None:
        """Move least-recently-shelved estimators to disk past the cap."""
        if self._spill is None:
            return
        while len(self._archived) > self._spill_after:
            oldest = next(iter(self._archived))
            self._spill.put(oldest, self._archived.pop(oldest))

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def archived_count(self) -> int:
        """Shelved estimators across both tiers (memory + disk)."""
        return len(self._archived) + self.spilled_count

    @property
    def spilled_count(self) -> int:
        """Shelved estimators currently resident on disk only."""
        return len(self._spill) if self._spill is not None else 0
