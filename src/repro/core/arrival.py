"""Per-function arrival statistics.

The KDM's objective needs, for every candidate keep-alive period ``k``:

- ``P(warm | k)`` -- the probability the next invocation lands inside the
  keep-alive window, i.e. ``P(IAT <= k)``;
- ``E[min(IAT, k)]`` -- the expected keep-alive duration actually accrued
  (a warm hit ends the window early).

Both come from the empirical inter-arrival distribution of the function's
recent history ("different serverless functions need to be kept alive for
different amounts of time depending on a function's arrival probability",
Sec. I). With little history the estimator blends in an exponential prior
so brand-new functions get sensible keep-alive decisions instead of
extremes.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class ArrivalEstimator:
    """Sliding-window empirical IAT distribution for one function."""

    def __init__(
        self,
        history: int = 64,
        prior_mean_iat_s: float = 600.0,
        prior_strength: float = 2.0,
    ) -> None:
        if history < 2:
            raise ValueError("history must be >= 2")
        if prior_mean_iat_s <= 0.0:
            raise ValueError("prior_mean_iat_s must be > 0")
        if prior_strength < 0.0:
            raise ValueError("prior_strength must be >= 0")
        self.history = history
        self.prior_mean = prior_mean_iat_s
        self.prior_strength = prior_strength
        self._iats: deque[float] = deque(maxlen=history)
        self._last_arrival: float | None = None
        self._sorted: np.ndarray | None = None
        self._prefix: np.ndarray | None = None

    # -- observation ----------------------------------------------------------

    def observe(self, t: float) -> None:
        """Record an invocation arrival at time ``t``."""
        if self._last_arrival is not None:
            iat = t - self._last_arrival
            if iat < 0.0:
                raise ValueError("arrivals must be observed in time order")
            self._iats.append(iat)
            self._sorted = None  # invalidate cache
        self._last_arrival = t

    @property
    def n_samples(self) -> int:
        return len(self._iats)

    @property
    def mean_iat_s(self) -> float:
        """Blended mean inter-arrival time (prior + observations)."""
        n = self.n_samples
        if n == 0:
            return self.prior_mean
        emp = float(np.mean(self._iats))
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * self.prior_mean

    # -- queries (vectorised over candidate keep-alive periods) ---------------

    def _ensure_cache(self) -> None:
        if self._sorted is None:
            arr = np.sort(np.asarray(self._iats, dtype=float))
            self._sorted = arr
            self._prefix = np.concatenate(([0.0], np.cumsum(arr)))

    def p_warm(self, k_s) -> np.ndarray:
        """P(next IAT <= k) for an array of keep-alive periods (seconds)."""
        k = np.atleast_1d(np.asarray(k_s, dtype=float))
        prior = 1.0 - np.exp(-k / self.prior_mean)
        n = self.n_samples
        if n == 0:
            return prior
        self._ensure_cache()
        emp = np.searchsorted(self._sorted, k, side="right") / n
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * prior

    def expected_keepalive_s(self, k_s) -> np.ndarray:
        """E[min(IAT, k)] for an array of keep-alive periods (seconds)."""
        k = np.atleast_1d(np.asarray(k_s, dtype=float))
        # Exponential prior: E[min(X, k)] = mean * (1 - exp(-k/mean)).
        prior = self.prior_mean * (1.0 - np.exp(-k / self.prior_mean))
        n = self.n_samples
        if n == 0:
            return prior
        self._ensure_cache()
        idx = np.searchsorted(self._sorted, k, side="right")
        below_sum = self._prefix[idx]
        above_count = n - idx
        emp = (below_sum + k * above_count) / n
        w = n / (n + self.prior_strength)
        return w * emp + (1.0 - w) * prior


class ArrivalRegistry:
    """One :class:`ArrivalEstimator` per function, with a retirement shelf.

    The KDM's state-retirement sweep moves idle functions' estimators to
    an internal archive (:meth:`retire`) and brings them back when the
    function reappears (:meth:`revive`). :meth:`get` *peeks* at archived
    estimators without reviving them: readers that consult a retired
    function's history -- e.g. the warm-pool adjuster ranking a container
    that outlived its function's last decision -- see exactly the data a
    never-retired run would, which keeps overflow rankings bit-identical,
    without promoting the function back to the live ledger.
    """

    def __init__(
        self,
        history: int = 64,
        prior_mean_iat_s: float = 600.0,
        prior_strength: float = 2.0,
    ) -> None:
        self._kw = dict(
            history=history,
            prior_mean_iat_s=prior_mean_iat_s,
            prior_strength=prior_strength,
        )
        self._by_name: dict[str, ArrivalEstimator] = {}
        self._archived: dict[str, ArrivalEstimator] = {}

    def get(self, name: str) -> ArrivalEstimator:
        est = self._by_name.get(name)
        if est is None:
            # Read-only peek at archived history; revival is the KDM's
            # call (on the function's next arrival/decision).
            est = self._archived.get(name)
            if est is None:
                est = ArrivalEstimator(**self._kw)
                self._by_name[name] = est
        return est

    def observe(self, name: str, t: float) -> ArrivalEstimator:
        est = self.get(name)
        est.observe(t)
        return est

    def retire(self, name: str) -> None:
        """Shelve one function's estimator (state-retirement sweep).

        No-op if the function was never observed. The estimator object
        and its history survive untouched; only the live ledger shrinks.
        """
        est = self._by_name.pop(name, None)
        if est is not None:
            self._archived[name] = est

    def revive(self, name: str) -> None:
        """Promote a shelved estimator back to the live ledger
        (rehydration). No-op if nothing is archived under ``name``."""
        est = self._archived.pop(name, None)
        if est is not None:
            self._by_name[name] = est

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def archived_count(self) -> int:
        return len(self._archived)
