"""Keeping-alive Decision Maker (KDM, paper Sec. IV-C).

One persistent optimizer per serverless function ("for each new invocation
of a serverless function, EcoLife assigns a PSO optimizer and preserves it
... for the next function invocation"). Before every decision the KDM:

1. measures the environment deltas -- change in system-wide invocation rate
   (dF) and carbon intensity (dCI) since this function's last decision;
2. feeds them to the DPSO perception-response mechanism (weight adaptation
   plus half-swarm redistribution);
3. advances the optimizer a few iterations against the current objective;
4. decodes the swarm's best position into (location, keep-alive period).

With ``config.batch_swarms`` (the default) the per-function swarms live
in one :class:`~repro.optimizers.batch.SwarmFleet` and same-tick
decisions for distinct functions step together through fused kernels
(:meth:`KeepAliveDecisionMaker.decide_batch`) -- bit-identical to the
per-function path, see ``docs/optimizers.md``.

The GA/SA backends exist for the paper's in-text optimizer comparison and
share the exact same objective; they always use the per-function path.

Under function churn the per-function state (slots/optimizers, arrival
estimators, perception scalars) grows without bound, so the KDM also
runs an optional **state-retirement sweep** (``config.retire_after_s`` /
``config.max_live_swarms``): idle functions are archived into compact
:class:`RetiredFunction` records -- swarm rows plus RNG stream state --
and rehydrated bit-identically when they reappear. Sweeps trigger on
decision traffic and on the engine's container-expiry notifications;
they bound memory without changing a single decision.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.arrival import ArrivalRegistry
from repro.core.config import EcoLifeConfig, OptimizerKind
from repro.core.objective import ObjectiveBuilder
from repro.core.spill import ArchiveSpill
from repro.optimizers.annealing import SimulatedAnnealing
from repro.optimizers.base import ContinuousOptimizer
from repro.optimizers.batch import SwarmArchive, SwarmFleet
from repro.optimizers.dynamic_pso import DynamicPSO
from repro.optimizers.genetic import GeneticOptimizer
from repro.optimizers.pso import ParticleSwarm
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


def _stable_seed(root_seed: int, name: str) -> np.random.Generator:
    """Per-function RNG that is stable across processes and runs."""
    return np.random.default_rng(
        np.random.SeedSequence([root_seed, zlib.crc32(name.encode("utf-8"))])
    )


@dataclass
class RetiredFunction:
    """Archived per-function scheduler state (state-retirement sweep).

    Everything the KDM must restore for the function's next decision to
    be bit-identical to a never-retired run: the swarm archive (fleet
    path) *or* the optimizer object (sequential/GA/SA path) and the
    perception scalars. The arrival estimator is shelved inside the
    :class:`~repro.core.arrival.ArrivalRegistry` by the same sweep --
    readers such as the warm-pool adjuster may still need its history
    while the function is retired (a container can outlive its
    function's last decision). ``None`` fields simply never existed at
    retirement time.
    """

    swarm: SwarmArchive | None
    optimizer: object | None
    last_ci: float | None
    last_rate: float | None
    last_seen: float


class KeepAliveDecisionMaker:
    """Per-function optimizer registry + decision logic."""

    def __init__(
        self,
        env: SchedulerEnv,
        config: EcoLifeConfig,
        arrivals: ArrivalRegistry,
        builder: ObjectiveBuilder | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.arrivals = arrivals
        self.builder = builder or ObjectiveBuilder(env, config)
        self._optimizers: dict[str, ContinuousOptimizer] = {}
        self._last_ci: dict[str, float] = {}
        self._last_rate: dict[str, float] = {}
        self.decisions = 0
        self.redistributions = 0
        # Batched path: one SwarmFleet slot per function instead of one
        # optimizer object. Only the PSO backends vectorise this way.
        self.use_fleet = config.batch_swarms and config.optimizer is OptimizerKind.PSO
        self._fleet: SwarmFleet | None = None
        self._slots: dict[str, int] = {}
        # State retirement (config.retire_after_s / max_live_swarms):
        # idle functions are swept into compact archives and rehydrated
        # bit-identically on their next appearance. ``_last_seen`` is
        # kept in least-recently-touched order (every touch moves the
        # name to the end), so sweeps read their victims off the front
        # instead of sorting the whole live set.
        self._retirement = config.retirement_enabled
        self._archives: dict[str, RetiredFunction] = {}
        self._last_seen: dict[str, float] = {}
        self._next_sweep_t = float("-inf")
        self._spill = (
            ArchiveSpill(config.spill_dir)
            if self._retirement and config.spill_dir is not None
            else None
        )
        self.retired = 0
        self.rehydrated = 0
        self.peak_live = 0

    # -- optimizer lifecycle -----------------------------------------------------

    def _new_optimizer(self, name: str) -> ContinuousOptimizer:
        rng = _stable_seed(self.config.seed, name)
        kind = self.config.optimizer
        if kind is OptimizerKind.GENETIC:
            return GeneticOptimizer(
                dim=2,
                rng=rng,
                population=self.config.n_particles,
                crossover_prob=0.6,
                mutation_prob=0.01,
            )
        if kind is OptimizerKind.ANNEALING:
            return SimulatedAnnealing(dim=2, rng=rng)
        if self.config.use_dynamic_pso:
            return DynamicPSO(
                dim=2,
                rng=rng,
                n_particles=self.config.n_particles,
                params=self.config.dpso,
            )
        swarm = ParticleSwarm(
            dim=2,
            rng=rng,
            n_particles=self.config.n_particles,
            omega=self.config.vanilla_omega,
            c1=self.config.vanilla_c,
            c2=self.config.vanilla_c,
        )
        return swarm

    def optimizer_for(self, name: str) -> ContinuousOptimizer:
        opt = self._optimizers.get(name)
        if opt is None:
            if self._has_archive(name):
                self._rehydrate(name)
                opt = self._optimizers.get(name)
            if opt is None:
                opt = self._new_optimizer(name)
                self._optimizers[name] = opt
        return opt

    @property
    def optimizer_count(self) -> int:
        """Live per-function optimizer states (archived ones excluded)."""
        return len(self._slots) if self.use_fleet else len(self._optimizers)

    # -- fleet lifecycle ---------------------------------------------------------

    def _fleet_for_config(self) -> SwarmFleet:
        """The lazily-created fleet matching this KDM's PSO configuration."""
        if self._fleet is None:
            cfg = self.config
            if cfg.use_dynamic_pso:
                self._fleet = SwarmFleet(
                    dim=2,
                    n_particles=cfg.n_particles,
                    params=cfg.dpso,
                    rng_mode=cfg.rng_mode,
                )
            else:
                self._fleet = SwarmFleet(
                    dim=2,
                    n_particles=cfg.n_particles,
                    omega=cfg.vanilla_omega,
                    c1=cfg.vanilla_c,
                    c2=cfg.vanilla_c,
                    rng_mode=cfg.rng_mode,
                )
        return self._fleet

    def _slot_for(self, name: str) -> int:
        """The fleet slot of one function, seeding a new swarm on first use.

        The swarm draws from the same stable per-function RNG stream the
        per-function path seeds its optimizer with, which is what makes
        the two paths bit-identical.
        """
        slot = self._slots.get(name)
        if slot is None:
            if self._has_archive(name):
                self._rehydrate(name)
                slot = self._slots.get(name)
            if slot is None:
                slot = self._fleet_for_config().add_swarm(
                    _stable_seed(self.config.seed, name)
                )
                self._slots[name] = slot
        return slot

    # -- state retirement --------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Functions with live (non-archived) scheduler state."""
        return len(self._last_seen) if self._retirement else self.optimizer_count

    @property
    def archived_count(self) -> int:
        """Archived functions, in memory and spilled to disk combined."""
        spilled = len(self._spill) if self._spill is not None else 0
        return len(self._archives) + spilled

    @property
    def spilled_count(self) -> int:
        """Archives currently resident on disk rather than in memory."""
        return len(self._spill) if self._spill is not None else 0

    def _has_archive(self, name: str) -> bool:
        return name in self._archives or (
            self._spill is not None and name in self._spill
        )

    @property
    def fleet_capacity(self) -> int:
        """Allocated fleet slots (0 when the fleet was never created)."""
        return self._fleet.capacity if self._fleet is not None else 0

    def on_arrival(self, name: str, t: float) -> None:
        """Note an invocation arrival (the scheduler's place-time hook).

        Must run before the arrival estimator is updated: it rehydrates
        any archived state so a retired-then-returning function's
        estimator keeps its history and its decisions stay bit-identical
        to a never-retired run.
        """
        if not self._retirement:
            return
        if self._has_archive(name):
            self._rehydrate(name)
        self._touch(name, t)

    def maybe_sweep(self, now: float) -> None:
        """Opportunistic retirement sweep (decision and expiry hooks).

        The O(live) idle scan is throttled to a few times per
        ``retire_after_s`` window; the ``max_live_swarms`` cap check is
        O(1) and runs every call. Sweeping never changes decisions --
        retire/rehydrate is an identity -- so the trigger cadence only
        shapes memory, not results.
        """
        if not self._retirement:
            return
        cfg = self.config
        over = (
            cfg.max_live_swarms is not None
            and len(self._last_seen) > cfg.max_live_swarms
        )
        idle_due = cfg.retire_after_s is not None and now >= self._next_sweep_t
        if idle_due:
            self._next_sweep_t = now + cfg.retire_after_s / 4.0
        if idle_due or over:
            self.sweep(now)

    def sweep(self, now: float) -> int:
        """Retire idle functions; returns how many were archived.

        Policy: everything idle longer than ``retire_after_s`` goes;
        then, if still above ``max_live_swarms``, the least-recently
        touched functions go until the cap holds. ``_last_seen`` is
        maintained in touch-recency order (:meth:`_touch` re-inserts at
        the end), so the cap's victims are simply the first surviving
        entries -- no O(live log live) sort. Touch recency can lag
        strict ``last_seen`` order by at most one in-flight service
        time (decisions land at ``t_end``, out of arrival order), which
        may shuffle victim *selection* at the margin but can never
        change a decision: retire/rehydrate is an identity. The fleet
        is compacted after a non-empty sweep (slot remaps are applied
        to the registry).
        """
        cfg = self.config
        victims: list[str] = []
        chosen: set[str] = set()
        if cfg.retire_after_s is not None:
            cutoff = now - cfg.retire_after_s
            victims = [n for n, t in self._last_seen.items() if t <= cutoff]
            chosen = set(victims)
        if cfg.max_live_swarms is not None:
            excess = len(self._last_seen) - len(victims) - cfg.max_live_swarms
            if excess > 0:
                lru = (n for n in self._last_seen if n not in chosen)
                victims.extend(itertools.islice(lru, excess))
        for name in victims:
            self._retire(name)
        if victims and self._fleet is not None:
            remap = self._fleet.compact()
            if remap:
                self._slots = {
                    n: remap.get(s, s) for n, s in self._slots.items()
                }
        return len(victims)

    def _retire(self, name: str) -> None:
        swarm = None
        slot = self._slots.pop(name, None)
        if slot is not None:
            swarm = self._fleet.retire(slot)
        self.arrivals.retire(name)
        # Cost caches are pure functions of the profile; rebuilds are
        # bit-identical, so eviction only bounds memory.
        self.builder.costs.evict(name)
        self._archives[name] = RetiredFunction(
            swarm=swarm,
            optimizer=self._optimizers.pop(name, None),
            last_ci=self._last_ci.pop(name, None),
            last_rate=self._last_rate.pop(name, None),
            last_seen=self._last_seen.pop(name),
        )
        self.retired += 1
        self._maybe_spill()

    def _maybe_spill(self) -> None:
        """Move the oldest in-memory archives to disk past the cap.

        Archives are retired oldest-first, so dict insertion order *is*
        retirement order and the front entries are the least likely to
        rehydrate soon. Records round-trip through pickle losslessly,
        so spilling never changes a decision.
        """
        if self._spill is None:
            return
        cap = self.config.spill_archives_after
        while len(self._archives) > cap:
            oldest = next(iter(self._archives))
            self._spill.put(oldest, self._archives.pop(oldest))

    def _rehydrate(self, name: str) -> None:
        arch = self._archives.pop(name, None)
        if arch is None:
            arch = self._spill.take(name)
        self.arrivals.revive(name)
        if arch.last_ci is not None:
            self._last_ci[name] = arch.last_ci
        if arch.last_rate is not None:
            self._last_rate[name] = arch.last_rate
        if arch.optimizer is not None:
            self._optimizers[name] = arch.optimizer
        if arch.swarm is not None:
            self._slots[name] = self._fleet_for_config().rehydrate(arch.swarm)
        self._touch(name, arch.last_seen)
        self.rehydrated += 1

    # -- checkpoint export/import -------------------------------------------------

    def retire_all(self) -> int:
        """Archive every live function (checkpoint / graceful shutdown).

        Retire/rehydrate is an identity, so a service that archives its
        whole live set, exports the archives, and keeps running answers
        exactly the decisions it would have without the checkpoint --
        each function rehydrates on its next arrival through the normal
        path. Requires retirement to be enabled (the online service
        forces it on with ``retire_after_s=inf``, which legally enables
        the machinery with zero idle retirement).
        """
        if not self._retirement:
            raise RuntimeError(
                "retire_all() needs retirement enabled "
                "(set retire_after_s -- inf works -- or max_live_swarms)"
            )
        victims = list(self._last_seen)
        for name in victims:
            self._retire(name)
        if victims and self._fleet is not None:
            remap = self._fleet.compact()
            if remap:  # pragma: no cover - retire_all empties the slot map
                self._slots = {
                    n: remap.get(s, s) for n, s in self._slots.items()
                }
        return len(victims)

    def export_archives(self) -> dict[str, RetiredFunction]:
        """All archived state, in-memory shelf first then spilled records.

        Non-destructive (spilled records are peeked, not taken) and
        deterministic: both tiers iterate in their insertion order.
        Call after :meth:`retire_all` to capture the full per-function
        state for a checkpoint.
        """
        out: dict[str, RetiredFunction] = dict(self._archives)
        if self._spill is not None:
            for name in self._spill.names():
                record = self._spill.peek(name)
                assert isinstance(record, RetiredFunction)
                out[name] = record
        return out

    def import_archive(self, name: str, record: RetiredFunction) -> None:
        """Adopt one archived function (checkpoint restore).

        The record lands on the in-memory shelf (spilling past the
        configured cap as usual) and rehydrates through the normal
        on-arrival path when the function next appears.
        """
        if self._has_archive(name) or name in self._last_seen:
            raise ValueError(f"function state already present: {name!r}")
        self._archives[name] = record
        self._maybe_spill()

    def _touch(self, name: str, t: float) -> None:
        """Record activity for the idle sweep (and the peak-live gauge).

        Re-inserting at the end keeps ``_last_seen`` in touch-recency
        order -- the LRU index :meth:`sweep` reads its cap victims from.
        """
        prev = self._last_seen.pop(name, None)
        self._last_seen[name] = t if prev is None or t > prev else prev
        live = len(self._last_seen)
        if live > self.peak_live:
            self.peak_live = live

    # -- decision ------------------------------------------------------------------

    def decide(self, func: FunctionProfile, t: float) -> KeepAliveDecision:
        """Choose (keep-alive location, keep-alive period) for ``func`` at ``t``."""
        self.maybe_sweep(t)
        if self.use_fleet:
            return self._decide_fleet([(func, t)])[0]
        opt = self.optimizer_for(func.name)

        ci = self.env.ci_at(t)
        rate = self.env.rate_per_minute(t)
        if isinstance(opt, DynamicPSO):
            delta_ci = abs(ci - self._last_ci.get(func.name, ci))
            delta_f = abs(rate - self._last_rate.get(func.name, rate))
            if opt.perceive(delta_f, delta_ci):
                self.redistributions += 1
        self._last_ci[func.name] = ci
        self._last_rate[func.name] = rate

        arrival = self.arrivals.get(func.name)
        fitness = self.builder.fitness(func, t, arrival)
        iterations = self._iterations_for(opt)
        opt.step(fitness, iterations=iterations)

        position = (
            opt.gbest_position
            if isinstance(opt, ParticleSwarm)
            else opt.best_position
        )
        location, k_s = self.builder.decode_single(position)
        self.decisions += 1
        self._touch(func.name, t)
        return KeepAliveDecision(location=location, duration_s=k_s)

    def decide_batch(
        self, items: Sequence[tuple[FunctionProfile, float]]
    ) -> list[KeepAliveDecision]:
        """Decide for several (function, decision time) pairs at once.

        With the fleet enabled, runs of *distinct* functions step through
        the batched swarm engine in fused kernels; a repeated function
        splits the batch (its second decision depends on its first, so
        the sub-batches run in order). Without the fleet (or for the
        GA/SA backends) this degrades to sequential :meth:`decide` calls.
        Either way the decisions are identical to calling :meth:`decide`
        item by item.
        """
        if not self.use_fleet:
            return [self.decide(func, t) for func, t in items]
        if items:
            self.maybe_sweep(items[0][1])
        out: list[KeepAliveDecision] = []
        batch: list[tuple[FunctionProfile, float]] = []
        seen: set[str] = set()
        for func, t in items:
            if func.name in seen:
                out.extend(self._decide_fleet(batch))
                batch, seen = [], set()
            batch.append((func, t))
            seen.add(func.name)
        if batch:
            out.extend(self._decide_fleet(batch))
        return out

    def _decide_fleet(
        self, batch: Sequence[tuple[FunctionProfile, float]]
    ) -> list[KeepAliveDecision]:
        """Step distinct functions' swarms together through the fleet."""
        fleet = self._fleet_for_config()
        indices = [self._slot_for(func.name) for func, _ in batch]

        dynamic = self.config.use_dynamic_pso
        deltas_f: list[float] = []
        deltas_ci: list[float] = []
        for func, t in batch:
            ci = self.env.ci_at(t)
            rate = self.env.rate_per_minute(t)
            if dynamic:
                deltas_ci.append(abs(ci - self._last_ci.get(func.name, ci)))
                deltas_f.append(abs(rate - self._last_rate.get(func.name, rate)))
            self._last_ci[func.name] = ci
            self._last_rate[func.name] = rate
        if dynamic:
            # One fused perception pass (weight math vectorised for the
            # whole batch; counter mode also fuses the redistribution
            # draws -- bit-identical to per-swarm perceive either way).
            fired = fleet.perceive_batch(indices, deltas_f, deltas_ci)
            self.redistributions += int(fired.sum())

        iterations = self.config.iterations_per_invocation
        if len(batch) == 1:
            # Nothing to fuse: use the per-function closure and the
            # fleet's view-based single-swarm kernel (no batch overhead).
            func, t = batch[0]
            fitness = self.builder.fitness(func, t, self.arrivals.get(func.name))
            fleet.step_one(indices[0], fitness, iterations=iterations)
        else:
            fitness = self.builder.batch_fitness(
                [func for func, _ in batch],
                [t for _, t in batch],
                [self.arrivals.get(func.name) for func, _ in batch],
            )
            fleet.step(indices, fitness, iterations=iterations)

        decisions = []
        for position in fleet.gbest_positions(indices):
            location, k_s = self.builder.decode_single(position)
            decisions.append(KeepAliveDecision(location=location, duration_s=k_s))
        self.decisions += len(batch)
        for func, t in batch:
            self._touch(func.name, t)
        return decisions

    def _iterations_for(self, opt: ContinuousOptimizer) -> int:
        """Roughly matched evaluation budgets across backends.

        SA evaluates a whole 100->1 cooling schedule (~44 candidates) per
        iteration, so it gets a single schedule per decision; PSO/GA run
        the configured number of swarm/generation steps.
        """
        if isinstance(opt, SimulatedAnnealing):
            return 1
        return self.config.iterations_per_invocation
