"""Keeping-alive Decision Maker (KDM, paper Sec. IV-C).

One persistent optimizer per serverless function ("for each new invocation
of a serverless function, EcoLife assigns a PSO optimizer and preserves it
... for the next function invocation"). Before every decision the KDM:

1. measures the environment deltas -- change in system-wide invocation rate
   (dF) and carbon intensity (dCI) since this function's last decision;
2. feeds them to the DPSO perception-response mechanism (weight adaptation
   plus half-swarm redistribution);
3. advances the optimizer a few iterations against the current objective;
4. decodes the swarm's best position into (location, keep-alive period).

With ``config.batch_swarms`` (the default) the per-function swarms live
in one :class:`~repro.optimizers.batch.SwarmFleet` and same-tick
decisions for distinct functions step together through fused kernels
(:meth:`KeepAliveDecisionMaker.decide_batch`) -- bit-identical to the
per-function path, see ``docs/optimizers.md``.

The GA/SA backends exist for the paper's in-text optimizer comparison and
share the exact same objective; they always use the per-function path.
"""

from __future__ import annotations

import zlib
from typing import Sequence

import numpy as np

from repro.core.arrival import ArrivalRegistry
from repro.core.config import EcoLifeConfig, OptimizerKind
from repro.core.objective import ObjectiveBuilder
from repro.optimizers.annealing import SimulatedAnnealing
from repro.optimizers.batch import SwarmFleet
from repro.optimizers.dynamic_pso import DynamicPSO
from repro.optimizers.genetic import GeneticOptimizer
from repro.optimizers.pso import ParticleSwarm
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


def _stable_seed(root_seed: int, name: str) -> np.random.Generator:
    """Per-function RNG that is stable across processes and runs."""
    return np.random.default_rng(
        np.random.SeedSequence([root_seed, zlib.crc32(name.encode("utf-8"))])
    )


class KeepAliveDecisionMaker:
    """Per-function optimizer registry + decision logic."""

    def __init__(
        self,
        env: SchedulerEnv,
        config: EcoLifeConfig,
        arrivals: ArrivalRegistry,
        builder: ObjectiveBuilder | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.arrivals = arrivals
        self.builder = builder or ObjectiveBuilder(env, config)
        self._optimizers: dict[str, object] = {}
        self._last_ci: dict[str, float] = {}
        self._last_rate: dict[str, float] = {}
        self.decisions = 0
        self.redistributions = 0
        # Batched path: one SwarmFleet slot per function instead of one
        # optimizer object. Only the PSO backends vectorise this way.
        self.use_fleet = config.batch_swarms and config.optimizer is OptimizerKind.PSO
        self._fleet: SwarmFleet | None = None
        self._slots: dict[str, int] = {}

    # -- optimizer lifecycle -----------------------------------------------------

    def _new_optimizer(self, name: str):
        rng = _stable_seed(self.config.seed, name)
        kind = self.config.optimizer
        if kind is OptimizerKind.GENETIC:
            return GeneticOptimizer(
                dim=2,
                rng=rng,
                population=self.config.n_particles,
                crossover_prob=0.6,
                mutation_prob=0.01,
            )
        if kind is OptimizerKind.ANNEALING:
            return SimulatedAnnealing(dim=2, rng=rng)
        if self.config.use_dynamic_pso:
            return DynamicPSO(
                dim=2,
                rng=rng,
                n_particles=self.config.n_particles,
                params=self.config.dpso,
            )
        swarm = ParticleSwarm(
            dim=2,
            rng=rng,
            n_particles=self.config.n_particles,
            omega=self.config.vanilla_omega,
            c1=self.config.vanilla_c,
            c2=self.config.vanilla_c,
        )
        return swarm

    def optimizer_for(self, name: str):
        opt = self._optimizers.get(name)
        if opt is None:
            opt = self._new_optimizer(name)
            self._optimizers[name] = opt
        return opt

    @property
    def optimizer_count(self) -> int:
        return len(self._slots) if self.use_fleet else len(self._optimizers)

    # -- fleet lifecycle ---------------------------------------------------------

    def _fleet_for_config(self) -> SwarmFleet:
        """The lazily-created fleet matching this KDM's PSO configuration."""
        if self._fleet is None:
            cfg = self.config
            if cfg.use_dynamic_pso:
                self._fleet = SwarmFleet(
                    dim=2, n_particles=cfg.n_particles, params=cfg.dpso
                )
            else:
                self._fleet = SwarmFleet(
                    dim=2,
                    n_particles=cfg.n_particles,
                    omega=cfg.vanilla_omega,
                    c1=cfg.vanilla_c,
                    c2=cfg.vanilla_c,
                )
        return self._fleet

    def _slot_for(self, name: str) -> int:
        """The fleet slot of one function, seeding a new swarm on first use.

        The swarm draws from the same stable per-function RNG stream the
        per-function path seeds its optimizer with, which is what makes
        the two paths bit-identical.
        """
        slot = self._slots.get(name)
        if slot is None:
            slot = self._fleet_for_config().add_swarm(
                _stable_seed(self.config.seed, name)
            )
            self._slots[name] = slot
        return slot

    # -- decision ------------------------------------------------------------------

    def decide(self, func: FunctionProfile, t: float) -> KeepAliveDecision:
        """Choose (keep-alive location, keep-alive period) for ``func`` at ``t``."""
        if self.use_fleet:
            return self._decide_fleet([(func, t)])[0]
        opt = self.optimizer_for(func.name)

        ci = self.env.ci_at(t)
        rate = self.env.rate_per_minute(t)
        if isinstance(opt, DynamicPSO):
            delta_ci = abs(ci - self._last_ci.get(func.name, ci))
            delta_f = abs(rate - self._last_rate.get(func.name, rate))
            if opt.perceive(delta_f, delta_ci):
                self.redistributions += 1
        self._last_ci[func.name] = ci
        self._last_rate[func.name] = rate

        arrival = self.arrivals.get(func.name)
        fitness = self.builder.fitness(func, t, arrival)
        iterations = self._iterations_for(opt)
        opt.step(fitness, iterations=iterations)

        position = (
            opt.gbest_position
            if isinstance(opt, ParticleSwarm)
            else opt.best_position
        )
        location, k_s = self.builder.decode_single(position)
        self.decisions += 1
        return KeepAliveDecision(location=location, duration_s=k_s)

    def decide_batch(
        self, items: Sequence[tuple[FunctionProfile, float]]
    ) -> list[KeepAliveDecision]:
        """Decide for several (function, decision time) pairs at once.

        With the fleet enabled, runs of *distinct* functions step through
        the batched swarm engine in fused kernels; a repeated function
        splits the batch (its second decision depends on its first, so
        the sub-batches run in order). Without the fleet (or for the
        GA/SA backends) this degrades to sequential :meth:`decide` calls.
        Either way the decisions are identical to calling :meth:`decide`
        item by item.
        """
        if not self.use_fleet:
            return [self.decide(func, t) for func, t in items]
        out: list[KeepAliveDecision] = []
        batch: list[tuple[FunctionProfile, float]] = []
        seen: set[str] = set()
        for func, t in items:
            if func.name in seen:
                out.extend(self._decide_fleet(batch))
                batch, seen = [], set()
            batch.append((func, t))
            seen.add(func.name)
        if batch:
            out.extend(self._decide_fleet(batch))
        return out

    def _decide_fleet(
        self, batch: Sequence[tuple[FunctionProfile, float]]
    ) -> list[KeepAliveDecision]:
        """Step distinct functions' swarms together through the fleet."""
        fleet = self._fleet_for_config()
        indices = [self._slot_for(func.name) for func, _ in batch]

        dynamic = self.config.use_dynamic_pso
        for (func, t), slot in zip(batch, indices):
            ci = self.env.ci_at(t)
            rate = self.env.rate_per_minute(t)
            if dynamic:
                delta_ci = abs(ci - self._last_ci.get(func.name, ci))
                delta_f = abs(rate - self._last_rate.get(func.name, rate))
                if fleet.perceive(slot, delta_f, delta_ci):
                    self.redistributions += 1
            self._last_ci[func.name] = ci
            self._last_rate[func.name] = rate

        iterations = self.config.iterations_per_invocation
        if len(batch) == 1:
            # Nothing to fuse: use the per-function closure and the
            # fleet's view-based single-swarm kernel (no batch overhead).
            func, t = batch[0]
            fitness = self.builder.fitness(func, t, self.arrivals.get(func.name))
            fleet.step_one(indices[0], fitness, iterations=iterations)
        else:
            fitness = self.builder.batch_fitness(
                [func for func, _ in batch],
                [t for _, t in batch],
                [self.arrivals.get(func.name) for func, _ in batch],
            )
            fleet.step(indices, fitness, iterations=iterations)

        decisions = []
        for position in fleet.gbest_positions(indices):
            location, k_s = self.builder.decode_single(position)
            decisions.append(KeepAliveDecision(location=location, duration_s=k_s))
        self.decisions += len(batch)
        return decisions

    def _iterations_for(self, opt) -> int:
        """Roughly matched evaluation budgets across backends.

        SA evaluates a whole 100->1 cooling schedule (~44 candidates) per
        iteration, so it gets a single schedule per decision; PSO/GA run
        the configured number of swarm/generation steps.
        """
        if isinstance(opt, SimulatedAnnealing):
            return 1
        return self.config.iterations_per_invocation
