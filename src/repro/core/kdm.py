"""Keeping-alive Decision Maker (KDM, paper Sec. IV-C).

One persistent optimizer per serverless function ("for each new invocation
of a serverless function, EcoLife assigns a PSO optimizer and preserves it
... for the next function invocation"). Before every decision the KDM:

1. measures the environment deltas -- change in system-wide invocation rate
   (dF) and carbon intensity (dCI) since this function's last decision;
2. feeds them to the DPSO perception-response mechanism (weight adaptation
   plus half-swarm redistribution);
3. advances the optimizer a few iterations against the current objective;
4. decodes the swarm's best position into (location, keep-alive period).

The GA/SA backends exist for the paper's in-text optimizer comparison and
share the exact same objective.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.arrival import ArrivalRegistry
from repro.core.config import EcoLifeConfig, OptimizerKind
from repro.core.objective import ObjectiveBuilder
from repro.optimizers.annealing import SimulatedAnnealing
from repro.optimizers.dynamic_pso import DynamicPSO
from repro.optimizers.genetic import GeneticOptimizer
from repro.optimizers.pso import ParticleSwarm
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


def _stable_seed(root_seed: int, name: str) -> np.random.Generator:
    """Per-function RNG that is stable across processes and runs."""
    return np.random.default_rng(
        np.random.SeedSequence([root_seed, zlib.crc32(name.encode("utf-8"))])
    )


class KeepAliveDecisionMaker:
    """Per-function optimizer registry + decision logic."""

    def __init__(
        self,
        env: SchedulerEnv,
        config: EcoLifeConfig,
        arrivals: ArrivalRegistry,
        builder: ObjectiveBuilder | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.arrivals = arrivals
        self.builder = builder or ObjectiveBuilder(env, config)
        self._optimizers: dict[str, object] = {}
        self._last_ci: dict[str, float] = {}
        self._last_rate: dict[str, float] = {}
        self.decisions = 0
        self.redistributions = 0

    # -- optimizer lifecycle -----------------------------------------------------

    def _new_optimizer(self, name: str):
        rng = _stable_seed(self.config.seed, name)
        kind = self.config.optimizer
        if kind is OptimizerKind.GENETIC:
            return GeneticOptimizer(
                dim=2,
                rng=rng,
                population=self.config.n_particles,
                crossover_prob=0.6,
                mutation_prob=0.01,
            )
        if kind is OptimizerKind.ANNEALING:
            return SimulatedAnnealing(dim=2, rng=rng)
        if self.config.use_dynamic_pso:
            return DynamicPSO(
                dim=2,
                rng=rng,
                n_particles=self.config.n_particles,
                params=self.config.dpso,
            )
        swarm = ParticleSwarm(
            dim=2,
            rng=rng,
            n_particles=self.config.n_particles,
            omega=self.config.vanilla_omega,
            c1=self.config.vanilla_c,
            c2=self.config.vanilla_c,
        )
        return swarm

    def optimizer_for(self, name: str):
        opt = self._optimizers.get(name)
        if opt is None:
            opt = self._new_optimizer(name)
            self._optimizers[name] = opt
        return opt

    @property
    def optimizer_count(self) -> int:
        return len(self._optimizers)

    # -- decision ------------------------------------------------------------------

    def decide(self, func: FunctionProfile, t: float) -> KeepAliveDecision:
        """Choose (keep-alive location, keep-alive period) for ``func`` at ``t``."""
        opt = self.optimizer_for(func.name)

        ci = self.env.ci_at(t)
        rate = self.env.rate_per_minute(t)
        if isinstance(opt, DynamicPSO):
            delta_ci = abs(ci - self._last_ci.get(func.name, ci))
            delta_f = abs(rate - self._last_rate.get(func.name, rate))
            if opt.perceive(delta_f, delta_ci):
                self.redistributions += 1
        self._last_ci[func.name] = ci
        self._last_rate[func.name] = rate

        arrival = self.arrivals.get(func.name)
        fitness = self.builder.fitness(func, t, arrival)
        iterations = self._iterations_for(opt)
        opt.step(fitness, iterations=iterations)

        position = (
            opt.gbest_position
            if isinstance(opt, ParticleSwarm)
            else opt.best_position
        )
        location, k_s = self.builder.decode_single(position)
        self.decisions += 1
        return KeepAliveDecision(location=location, duration_s=k_s)

    def _iterations_for(self, opt) -> int:
        """Roughly matched evaluation budgets across backends.

        SA evaluates a whole 100->1 cooling schedule (~44 candidates) per
        iteration, so it gets a single schedule per decision; PSO/GA run
        the configured number of swarm/generation steps.
        """
        if isinstance(opt, SimulatedAnnealing):
            return 1
        return self.config.iterations_per_invocation
