"""The EcoLife scheduler (paper Algorithm 1): KDM + EPDM + adjustment.

Per invocation:

1. :meth:`EcoLifeScheduler.place` -- record the arrival in the function's
   inter-arrival estimator and let the EPDM choose the execution location
   (warm if possible).
2. :meth:`EcoLifeScheduler.keepalive` -- after execution, the KDM's
   per-function dynamic PSO perceives the environment change (dF, dCI) and
   produces the (keep-alive location, keep-alive period) decision.
3. :meth:`EcoLifeScheduler.rank_keepalive_candidates` -- on pool overflow,
   the warm-pool adjuster ranks candidates by their warm-vs-cold benefit.

Named variants of the paper are exposed as small factory helpers:
``EcoLifeScheduler.without_dpso()`` (Fig. 10), ``.without_adjustment()``
(Fig. 11), ``.single_generation()`` (Eco-Old / Eco-New, Fig. 12), and
``.with_optimizer()`` (GA/SA comparison).
"""

from __future__ import annotations

from typing import Sequence, cast

import numpy.typing as npt

from repro.core.adjustment import WarmPoolAdjuster
from repro.core.arrival import ArrivalRegistry
from repro.core.config import EcoLifeConfig, OptimizerKind
from repro.core.epdm import ExecutionPlacementDecisionMaker
from repro.core.kdm import KeepAliveDecisionMaker
from repro.core.objective import ObjectiveBuilder
from repro.core.spill import ArchiveSpill
from repro.hardware.specs import Generation
from repro.simulator.records import KeepAliveDecision
from repro.simulator.scheduler import (
    AdjustmentRequest,
    BaseScheduler,
    KeepAliveRequest,
    PlacementRequest,
    PoolCandidate,
    SchedulerEnv,
)
from repro.workloads.functions import FunctionProfile


class EcoLifeScheduler(BaseScheduler):
    """Carbon-aware keep-alive scheduling with multi-generation hardware."""

    name = "ecolife"

    def __init__(self, config: EcoLifeConfig | None = None) -> None:
        super().__init__()
        self.config = config or EcoLifeConfig()
        self.allow_spill = self.config.use_warm_pool_adjustment
        # Same-tick decision grouping only pays off on the fleet path.
        self.supports_keepalive_batch = (
            self.config.batch_swarms and self.config.optimizer is OptimizerKind.PSO
        )
        # Cross-tick batching on continuous traces (accuracy knob);
        # meaningless without the batch path.
        self.decision_quantum_s = (
            self.config.decision_quantum_s
            if self.supports_keepalive_batch
            else 0.0
        )
        # Self-tuning tick width off the observed minimum service time;
        # equally meaningless without the batch path.
        self.adaptive_decision_quantum = (
            self.config.adaptive_decision_quantum
            and self.supports_keepalive_batch
        )
        # Expiry notifications drive KDM retirement sweeps during quiet
        # periods (no decision traffic); pointless without retirement.
        self.wants_expiry_events = self.config.retirement_enabled
        # Placement is a pure function of (warm locations, CI at t), so
        # foreign arrivals replay exactly; see place_foreign.
        self.supports_sharding = True
        # A cold foreign placement's only side effect is the estimator
        # observation (the EPDM choice is pure and its return value is
        # unused when nothing is warm), so inert runs may be absorbed in
        # bulk; see observe_foreign_run.
        self.foreign_batch_safe = True
        # Components are created at bind() time (they need the env).
        self.arrivals: ArrivalRegistry | None = None
        self.kdm: KeepAliveDecisionMaker | None = None
        self.epdm: ExecutionPlacementDecisionMaker | None = None
        self.adjuster: WarmPoolAdjuster | None = None
        self._builder: ObjectiveBuilder | None = None
        if self.name == "ecolife":
            self.name = self._derive_name()

    def _derive_name(self) -> str:
        cfg = self.config
        parts = ["ecolife"]
        if cfg.optimizer is OptimizerKind.GENETIC:
            parts.append("ga")
        elif cfg.optimizer is OptimizerKind.ANNEALING:
            parts.append("sa")
        if not cfg.use_dynamic_pso and cfg.optimizer is OptimizerKind.PSO:
            parts.append("no-dpso")
        if not cfg.use_warm_pool_adjustment:
            parts.append("no-adjust")
        if len(cfg.locations) == 1:
            parts.append(f"{cfg.locations[0].value}-only")
        return "-".join(parts)

    # -- engine protocol ------------------------------------------------------

    def bind(self, env: SchedulerEnv) -> None:
        super().bind(env)
        cfg = self.config
        # Estimator shelf spills to disk alongside the KDM's swarm
        # archives (its own ArchiveSpill instance -> its own unique
        # subdirectory of spill_dir; the stores never collide).
        self.arrivals = ArrivalRegistry(
            history=cfg.arrival_history,
            prior_mean_iat_s=cfg.prior_mean_iat_s,
            prior_strength=cfg.prior_strength,
            spill=(
                ArchiveSpill(cfg.spill_dir)
                if cfg.retirement_enabled and cfg.spill_dir is not None
                else None
            ),
            spill_after=cfg.spill_archives_after,
        )
        self._builder = ObjectiveBuilder(env, cfg)
        self.kdm = KeepAliveDecisionMaker(env, cfg, self.arrivals, self._builder)
        self.epdm = ExecutionPlacementDecisionMaker(env, cfg, self._builder.costs)
        self.adjuster = WarmPoolAdjuster(env, cfg, self._builder.costs, self.arrivals)

    def place(self, req: PlacementRequest) -> Generation:
        # Rehydrate any retired state for this function *before* the
        # estimator observes the arrival (keeps histories bit-identical).
        self.kdm.on_arrival(req.func.name, req.t)
        self.arrivals.observe(req.func.name, req.t)
        return self.epdm.choose(req.func, req.t, req.warm_locations)

    def place_foreign(self, req: PlacementRequest) -> Generation:
        # Foreign arrivals still feed the estimator (the warm-pool
        # adjuster's arrival-mass ranking reads every function's p_warm),
        # and their placement replays bit-identically because the EPDM
        # choice depends only on the warm locations in the request and
        # the shared carbon-intensity clock -- never on KDM/swarm state.
        # No kdm.on_arrival: the owning shard keeps the only swarm.
        self.arrivals.observe(req.func.name, req.t)
        return self.epdm.choose(req.func, req.t, req.warm_locations)

    def observe_foreign_run(
        self, groups: Sequence[tuple[FunctionProfile, npt.ArrayLike]]
    ) -> None:
        # The bulk form of place_foreign for an inert run: nothing is
        # warm (so the pure EPDM choice is dead code) and no kdm state
        # exists for foreign functions, leaving exactly the estimator
        # observations -- applied batched, bit-identical to per-event.
        # Most groups are singletons (a hash-partitioned run rarely
        # repeats a function), so dispatch straight to the estimator.
        seqs = cast("Sequence[tuple[FunctionProfile, Sequence[float]]]", groups)
        get = self.arrivals.get
        for func, times in seqs:
            est = get(func.name)
            if len(times) == 1:
                est.observe(float(times[0]))
            else:
                est.observe_many(times)

    def keepalive(self, req: KeepAliveRequest) -> KeepAliveDecision:
        return self.kdm.decide(req.func, req.t_end)

    def keepalive_batch(
        self, reqs: Sequence[KeepAliveRequest]
    ) -> list[KeepAliveDecision]:
        return self.kdm.decide_batch([(r.func, r.t_end) for r in reqs])

    def on_container_expired(
        self, name: str, generation: Generation, t: float
    ) -> None:
        self.kdm.maybe_sweep(t)

    def rank_keepalive_candidates(
        self, req: AdjustmentRequest
    ) -> list[PoolCandidate]:
        if not self.config.use_warm_pool_adjustment:
            # Ablation: incumbents keep their slots; the incoming container
            # only gets leftover space (and nothing spills -- allow_spill is
            # False in this mode).
            incumbents = [c for c in req.candidates if not c.is_incoming]
            incoming = [c for c in req.candidates if c.is_incoming]
            return incumbents + incoming
        return self.adjuster.rank(req)

    # -- paper-variant factories -------------------------------------------------

    @classmethod
    def without_dpso(cls, config: EcoLifeConfig | None = None) -> "EcoLifeScheduler":
        """EcoLife w/o dynamic PSO (Fig. 10): vanilla PSO weights, no
        perception-response."""
        return cls((config or EcoLifeConfig()).without_dpso())

    @classmethod
    def without_adjustment(
        cls, config: EcoLifeConfig | None = None
    ) -> "EcoLifeScheduler":
        """EcoLife w/o warm-pool adjustment (Fig. 11)."""
        return cls((config or EcoLifeConfig()).without_adjustment())

    @classmethod
    def single_generation(
        cls, generation: Generation, config: EcoLifeConfig | None = None
    ) -> "EcoLifeScheduler":
        """Eco-Old / Eco-New (Fig. 12): one generation for keep-alive and
        execution alike."""
        return cls((config or EcoLifeConfig()).single_generation(generation))

    @classmethod
    def with_optimizer(
        cls, kind: OptimizerKind, config: EcoLifeConfig | None = None
    ) -> "EcoLifeScheduler":
        """GA-/SA-driven EcoLife for the in-text optimizer comparison."""
        return cls((config or EcoLifeConfig()).with_optimizer(kind))
