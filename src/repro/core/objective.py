"""EcoLife's objective function (paper Sec. IV-A) and shared cost estimates.

The KDM minimises, over keep-alive location ``l`` and period ``k``::

    lambda_s * E[S_{f,l,k}] / S_f_max
  + lambda_c * E[SC_{f,l,k}] / SC_f_max
  + lambda_c * KC_{f,l,k} / KC_fk_max

where the expectations come from the function's arrival statistics: with
probability ``P(IAT <= k)`` the next invocation is warm on ``l`` (execution
only), otherwise it pays a cold start at the EPDM's best cold location.
``KC`` is the keep-alive carbon; see
:class:`repro.core.config.KeepAliveExpectation` for the two charging modes.

:class:`CostModel` centralises every decision-time estimate (service time,
service carbon, keep-alive rate, normalisers, EPDM scores) so the KDM, the
EPDM and the warm-pool adjuster stay numerically consistent with each other
-- and, through :class:`~repro.carbon.footprint.CarbonModel`, with the
simulator's exact accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrival import ArrivalEstimator
from repro.core.config import EcoLifeConfig, KeepAliveExpectation
from repro.hardware.specs import Generation
from repro.optimizers.base import FitnessFn
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


class CostModel:
    """Decision-time estimates shared by KDM, EPDM and the adjuster."""

    def __init__(self, env: SchedulerEnv, config: EcoLifeConfig) -> None:
        self.env = env
        self.config = config

    # -- primitives ------------------------------------------------------------

    def service_time(
        self, func: FunctionProfile, gen: Generation, cold: bool
    ) -> float:
        return func.service_time_s(
            self.env.server(gen), cold=cold, setup_s=self.env.setup_delay_s
        )

    def service_carbon(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        server = self.env.server(gen)
        busy = self.env.setup_delay_s + func.exec_time_s(server)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        return self.env.carbon_model.est_service_g(
            server, func.mem_gb, busy, overhead, ci
        )

    def keepalive_rate(
        self, func: FunctionProfile, gen: Generation, ci: float
    ) -> float:
        return self.env.carbon_model.est_keepalive_rate_g_per_s(
            self.env.server(gen), func.mem_gb, ci
        )

    # -- normalisers -------------------------------------------------------------

    def s_max(self, func: FunctionProfile) -> float:
        """Max service time: cold start on the slowest allowed location."""
        return max(
            self.service_time(func, g, cold=True) for g in self.config.locations
        )

    def sc_max(self, func: FunctionProfile, ci_ref: float) -> float:
        """Max service carbon across allowed locations at the reference CI."""
        return max(
            self.service_carbon(func, g, cold=True, ci=ci_ref)
            for g in self.config.locations
        )

    def kc_max(self, func: FunctionProfile, ci_ref: float) -> float:
        """Max keep-alive carbon: highest-rate location for the full k_max."""
        rate = max(
            self.keepalive_rate(func, g, ci_ref) for g in self.config.locations
        )
        return rate * self.env.kmax_s

    # -- EPDM -----------------------------------------------------------------------

    def fscore(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        """The EPDM placement score (Sec. IV-D): weighted time + carbon."""
        s_max = self.s_max(func)
        sc_max = self.sc_max(func, max(ci, 1e-12)) or 1.0
        s = self.service_time(func, gen, cold)
        sc = self.service_carbon(func, gen, cold, ci)
        return (
            self.config.lambda_s * s / s_max
            + self.config.lambda_c * sc / sc_max
        )

    def best_cold(
        self, func: FunctionProfile, ci: float
    ) -> tuple[Generation, float, float]:
        """The EPDM's cold-placement choice: (location, S, SC)."""
        best = min(
            self.config.locations,
            key=lambda g: self.fscore(func, g, cold=True, ci=ci),
        )
        return (
            best,
            self.service_time(func, best, cold=True),
            self.service_carbon(func, best, cold=True, ci=ci),
        )


class ObjectiveBuilder:
    """Builds the KDM's vectorised fitness over the unit box.

    Position encoding: ``x0`` selects the keep-alive location among the
    allowed generations, ``x1`` the keep-alive period on the discrete grid
    ``K_AT = {0, step, 2*step, ..., k_max}``.
    """

    def __init__(self, env: SchedulerEnv, config: EcoLifeConfig) -> None:
        self.env = env
        self.config = config
        self.costs = CostModel(env, config)

    # -- decoding ---------------------------------------------------------------

    def decode_locations(self, x0: np.ndarray) -> np.ndarray:
        """Map x0 in [0,1] to indices into ``config.locations``."""
        n_loc = len(self.config.locations)
        idx = np.minimum((np.asarray(x0) * n_loc).astype(int), n_loc - 1)
        return idx

    def decode_k(self, x1: np.ndarray) -> np.ndarray:
        """Map x1 in [0,1] to the keep-alive grid (seconds)."""
        step = self.env.k_step_s
        kmax = self.env.kmax_s
        return np.clip(np.round(np.asarray(x1) * kmax / step) * step, 0.0, kmax)

    def decode_single(self, position: np.ndarray) -> tuple[Generation, float]:
        """Decode one position into a (location, keep-alive seconds) pair."""
        idx = int(self.decode_locations(np.array([position[0]]))[0])
        k = float(self.decode_k(np.array([position[1]]))[0])
        return self.config.locations[idx], k

    # -- fitness ------------------------------------------------------------------

    def fitness(
        self, func: FunctionProfile, t: float, arrival: ArrivalEstimator
    ) -> FitnessFn:
        """Build the objective for one decision instant.

        All scalars (CI, normalisers, per-location services) are captured
        once, so evaluating a swarm costs a handful of numpy ops.
        """
        cfg = self.config
        ci = self.env.ci_at(t)
        ci_ref = max(self.env.ci_max_observed(t), 1e-9)

        s_max = max(self.costs.s_max(func), 1e-9)
        sc_max = max(self.costs.sc_max(func, ci_ref), 1e-12)
        kc_max = max(self.costs.kc_max(func, ci_ref), 1e-12)

        _, s_cold, sc_cold = self.costs.best_cold(func, ci)
        locations = cfg.locations
        s_warm = np.array(
            [self.costs.service_time(func, g, cold=False) for g in locations]
        )
        sc_warm = np.array(
            [self.costs.service_carbon(func, g, cold=False, ci=ci) for g in locations]
        )
        ka_rate = np.array(
            [self.costs.keepalive_rate(func, g, ci) for g in locations]
        )
        expected_mode = cfg.keepalive_expectation is KeepAliveExpectation.EXPECTED_MIN

        def fitness_fn(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            loc = self.decode_locations(x[:, 0])
            k = self.decode_k(x[:, 1])
            p = arrival.p_warm(k)
            ka_duration = arrival.expected_keepalive_s(k) if expected_mode else k

            e_s = p * s_warm[loc] + (1.0 - p) * s_cold
            e_sc = p * sc_warm[loc] + (1.0 - p) * sc_cold
            kc = ka_rate[loc] * ka_duration

            return (
                cfg.lambda_s * e_s / s_max
                + cfg.lambda_c * e_sc / sc_max
                + cfg.lambda_c * kc / kc_max
            )

        return fitness_fn
