"""EcoLife's objective function (paper Sec. IV-A) and shared cost estimates.

The KDM minimises, over keep-alive location ``l`` and period ``k``::

    lambda_s * E[S_{f,l,k}] / S_f_max
  + lambda_c * E[SC_{f,l,k}] / SC_f_max
  + lambda_c * KC_{f,l,k} / KC_fk_max

where the expectations come from the function's arrival statistics: with
probability ``P(IAT <= k)`` the next invocation is warm on ``l`` (execution
only), otherwise it pays a cold start at the EPDM's best cold location.
``KC`` is the keep-alive carbon; see
:class:`repro.core.config.KeepAliveExpectation` for the two charging modes.

:class:`CostModel` centralises every decision-time estimate (service time,
service carbon, keep-alive rate, normalisers, EPDM scores) so the KDM, the
EPDM and the warm-pool adjuster stay numerically consistent with each other
-- and, through :class:`~repro.carbon.footprint.CarbonModel`, with the
simulator's exact accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import units
from repro.core.arrival import ArrivalBatch, ArrivalEstimator
from repro.core.config import EcoLifeConfig, KeepAliveExpectation
from repro.hardware.specs import Generation
from repro.optimizers.base import FitnessFn
from repro.optimizers.batch import BatchFitnessFn
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


@dataclass(frozen=True)
class FunctionCostVectors:
    """CI-independent per-location cost vectors of one function.

    Arrays are indexed by position in ``config.locations`` (the same
    indexing :meth:`ObjectiveBuilder.decode_locations` produces). Carbon
    estimates split into an energy/power part (scaled by the queried CI)
    and a constant embodied part, so re-evaluating at a new intensity is a
    couple of vector ops instead of per-location Python loops.
    """

    s_warm: np.ndarray  # warm service time per location (s)
    s_cold: np.ndarray  # cold service time per location (s)
    s_max: float  # max cold service time across locations (s)
    warm_energy_wh: np.ndarray
    warm_emb_g: np.ndarray
    cold_energy_wh: np.ndarray
    cold_emb_g: np.ndarray
    ka_power_w: np.ndarray  # attributed keep-alive power per location (W)
    ka_emb_g_per_s: np.ndarray

    def sc_warm(self, ci: float) -> np.ndarray:
        """Warm service carbon per location at intensity ``ci``."""
        return units.operational_carbon_g(self.warm_energy_wh, ci) + self.warm_emb_g

    def sc_cold(self, ci: float) -> np.ndarray:
        """Cold service carbon per location at intensity ``ci``."""
        return units.operational_carbon_g(self.cold_energy_wh, ci) + self.cold_emb_g

    def ka_rate(self, ci: float) -> np.ndarray:
        """Keep-alive carbon rate (g/s) per location at intensity ``ci``."""
        return (
            units.operational_carbon_g(units.energy_wh(self.ka_power_w, 1.0), ci)
            + self.ka_emb_g_per_s
        )


class CostModel:
    """Decision-time estimates shared by KDM, EPDM and the adjuster.

    Hot-path note: one EcoLife run asks for these estimates thousands of
    times (every KDM decision rebuilds its fitness closure), so the
    CI-independent pieces -- service times, energy/embodied splits,
    keep-alive power -- are computed once per function and cached as
    per-location vectors (:class:`FunctionCostVectors`), and the guarded
    normalisers are memoised per ``(function, reference CI)``. Functions
    are keyed by name; the trace guarantees names map to unique profiles.
    """

    def __init__(self, env: SchedulerEnv, config: EcoLifeConfig) -> None:
        self.env = env
        self.config = config
        self._vectors: dict[str, FunctionCostVectors] = {}
        #: Per-function: reference CI -> guarded normaliser triple.
        self._normalisers: dict[str, dict[float, tuple[float, float, float]]] = {}

    # -- cache -----------------------------------------------------------------

    def vectors(self, func: FunctionProfile) -> FunctionCostVectors:
        """The cached CI-independent cost vectors of ``func``."""
        cached = self._vectors.get(func.name)
        if cached is None:
            cached = self._build_vectors(func)
            self._vectors[func.name] = cached
        return cached

    def _build_vectors(self, func: FunctionProfile) -> FunctionCostVectors:
        model = self.env.carbon_model
        s_warm, s_cold = [], []
        warm_energy, warm_emb, cold_energy, cold_emb = [], [], [], []
        ka_power, ka_emb = [], []
        for gen in self.config.locations:
            server = self.env.server(gen)
            busy = self.env.setup_delay_s + func.exec_time_s(server)
            overhead = func.cold_overhead_s(server)
            s_warm.append(self.service_time(func, gen, cold=False))
            s_cold.append(self.service_time(func, gen, cold=True))
            e_w, m_w = model.est_service_split(server, func.mem_gb, busy, 0.0)
            e_c, m_c = model.est_service_split(server, func.mem_gb, busy, overhead)
            warm_energy.append(e_w)
            warm_emb.append(m_w)
            cold_energy.append(e_c)
            cold_emb.append(m_c)
            p, m = model.est_keepalive_rate_split(server, func.mem_gb)
            ka_power.append(p)
            ka_emb.append(m)
        return FunctionCostVectors(
            s_warm=np.array(s_warm),
            s_cold=np.array(s_cold),
            s_max=max(s_cold),
            warm_energy_wh=np.array(warm_energy),
            warm_emb_g=np.array(warm_emb),
            cold_energy_wh=np.array(cold_energy),
            cold_emb_g=np.array(cold_emb),
            ka_power_w=np.array(ka_power),
            ka_emb_g_per_s=np.array(ka_emb),
        )

    def stacked_vectors(
        self, funcs: Sequence[FunctionProfile]
    ) -> FunctionCostVectors:
        """Row-stacked cost vectors for a batch of functions.

        Returns a :class:`FunctionCostVectors` whose arrays are
        ``(n_funcs, n_locations)`` stacks of the per-function cached
        vectors; the CI-dependent helpers (``sc_warm``/``sc_cold``/
        ``ka_rate``) then broadcast against an ``(n_funcs, 1)`` intensity
        column, which keeps every element's arithmetic identical to the
        per-function scalar path. ``s_max`` is the batch-wide maximum and
        only meaningful for the per-function vectors -- batch callers use
        :meth:`normalisers` per function instead.
        """
        vs = [self.vectors(f) for f in funcs]
        return FunctionCostVectors(
            s_warm=np.stack([v.s_warm for v in vs]),
            s_cold=np.stack([v.s_cold for v in vs]),
            s_max=max(v.s_max for v in vs),
            warm_energy_wh=np.stack([v.warm_energy_wh for v in vs]),
            warm_emb_g=np.stack([v.warm_emb_g for v in vs]),
            cold_energy_wh=np.stack([v.cold_energy_wh for v in vs]),
            cold_emb_g=np.stack([v.cold_emb_g for v in vs]),
            ka_power_w=np.stack([v.ka_power_w for v in vs]),
            ka_emb_g_per_s=np.stack([v.ka_emb_g_per_s for v in vs]),
        )

    def normalisers(
        self, func: FunctionProfile, ci_ref: float
    ) -> tuple[float, float, float]:
        """Guarded ``(s_max, sc_max, kc_max)`` at the reference intensity."""
        per_ci = self._normalisers.setdefault(func.name, {})
        cached = per_ci.get(ci_ref)
        if cached is None:
            v = self.vectors(func)
            cached = (
                max(v.s_max, 1e-9),
                max(float(v.sc_cold(ci_ref).max()), 1e-12),
                max(float(v.ka_rate(ci_ref).max()) * self.env.kmax_s, 1e-12),
            )
            per_ci[ci_ref] = cached
        return cached

    def evict(self, name: str) -> None:
        """Drop one function's cached cost state (state-retirement sweep).

        Without eviction the vector cache grows with the *ever-seen*
        cohort and the normaliser cache with ever-seen functions times
        distinct reference intensities. Both caches are pure functions of
        the profile, the config, and static hardware data, so a later
        rebuild -- including an adjuster peek at a retired-but-still-warm
        container -- is bit-identical.
        """
        self._vectors.pop(name, None)
        self._normalisers.pop(name, None)

    @property
    def cached_function_count(self) -> int:
        """Functions with live cache entries (memory-bounds telemetry)."""
        return len(self._vectors.keys() | self._normalisers.keys())

    # -- primitives ------------------------------------------------------------

    def service_time(
        self, func: FunctionProfile, gen: Generation, cold: bool
    ) -> float:
        return func.service_time_s(
            self.env.server(gen), cold=cold, setup_s=self.env.setup_delay_s
        )

    def service_carbon(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        server = self.env.server(gen)
        busy = self.env.setup_delay_s + func.exec_time_s(server)
        overhead = func.cold_overhead_s(server) if cold else 0.0
        return self.env.carbon_model.est_service_g(
            server, func.mem_gb, busy, overhead, ci
        )

    def keepalive_rate(
        self, func: FunctionProfile, gen: Generation, ci: float
    ) -> float:
        return self.env.carbon_model.est_keepalive_rate_g_per_s(
            self.env.server(gen), func.mem_gb, ci
        )

    # -- normalisers -------------------------------------------------------------

    def s_max(self, func: FunctionProfile) -> float:
        """Max service time: cold start on the slowest allowed location."""
        return self.vectors(func).s_max

    def sc_max(self, func: FunctionProfile, ci_ref: float) -> float:
        """Max service carbon across allowed locations at the reference CI."""
        return float(self.vectors(func).sc_cold(ci_ref).max())

    def kc_max(self, func: FunctionProfile, ci_ref: float) -> float:
        """Max keep-alive carbon: highest-rate location for the full k_max."""
        rate = float(self.vectors(func).ka_rate(ci_ref).max())
        return rate * self.env.kmax_s

    # -- EPDM -----------------------------------------------------------------------

    def fscore(
        self, func: FunctionProfile, gen: Generation, cold: bool, ci: float
    ) -> float:
        """The EPDM placement score (Sec. IV-D): weighted time + carbon.

        Normalisers are guarded the same way :meth:`ObjectiveBuilder.fitness`
        guards them, so a degenerate zero-cost configuration scores finite
        instead of dividing by zero.
        """
        s_max, sc_max, _ = self.normalisers(func, max(ci, 1e-12))
        s = self.service_time(func, gen, cold)
        sc = self.service_carbon(func, gen, cold, ci)
        return (
            self.config.lambda_s * s / s_max
            + self.config.lambda_c * sc / sc_max
        )

    def best_cold(
        self, func: FunctionProfile, ci: float
    ) -> tuple[Generation, float, float]:
        """The EPDM's cold-placement choice: (location, S, SC)."""
        v = self.vectors(func)
        s_max, sc_max, _ = self.normalisers(func, max(ci, 1e-12))
        sc_cold = v.sc_cold(ci)
        scores = (
            self.config.lambda_s * v.s_cold / s_max
            + self.config.lambda_c * sc_cold / sc_max
        )
        idx = int(np.argmin(scores))
        return self.config.locations[idx], float(v.s_cold[idx]), float(sc_cold[idx])


class ObjectiveBuilder:
    """Builds the KDM's vectorised fitness over the unit box.

    Position encoding: ``x0`` selects the keep-alive location among the
    allowed generations, ``x1`` the keep-alive period on the discrete grid
    ``K_AT = {0, step, 2*step, ..., k_max}``.
    """

    def __init__(self, env: SchedulerEnv, config: EcoLifeConfig) -> None:
        self.env = env
        self.config = config
        self.costs = CostModel(env, config)

    # -- decoding ---------------------------------------------------------------

    def decode_locations(self, x0: np.ndarray) -> np.ndarray:
        """Map x0 in [0,1] to indices into ``config.locations``."""
        n_loc = len(self.config.locations)
        idx = np.minimum((np.asarray(x0) * n_loc).astype(int), n_loc - 1)
        return idx

    def decode_k(self, x1: np.ndarray) -> np.ndarray:
        """Map x1 in [0,1] to the keep-alive grid (seconds).

        Grid midpoints round half-up (``floor(x + 0.5)``) -- ``np.round``'s
        banker's rounding would bias midpoint candidates toward even
        multiples of the step.
        """
        step = self.env.k_step_s
        kmax = self.env.kmax_s
        steps = np.floor(np.asarray(x1) * kmax / step + 0.5)
        return np.clip(steps * step, 0.0, kmax)

    def decode_single(self, position: np.ndarray) -> tuple[Generation, float]:
        """Decode one position into a (location, keep-alive seconds) pair."""
        idx = int(self.decode_locations(np.array([position[0]]))[0])
        k = float(self.decode_k(np.array([position[1]]))[0])
        return self.config.locations[idx], k

    # -- fitness ------------------------------------------------------------------

    def fitness(
        self, func: FunctionProfile, t: float, arrival: ArrivalEstimator
    ) -> FitnessFn:
        """Build the objective for one decision instant.

        All scalars (CI, normalisers, per-location services) are captured
        once, so evaluating a swarm costs a handful of numpy ops.
        """
        cfg = self.config
        ci = self.env.ci_at(t)
        ci_ref = max(self.env.ci_max_observed(t), 1e-9)

        s_max, sc_max, kc_max = self.costs.normalisers(func, ci_ref)

        _, s_cold, sc_cold = self.costs.best_cold(func, ci)
        vectors = self.costs.vectors(func)
        s_warm = vectors.s_warm
        sc_warm = vectors.sc_warm(ci)
        ka_rate = vectors.ka_rate(ci)
        expected_mode = cfg.keepalive_expectation is KeepAliveExpectation.EXPECTED_MIN

        def fitness_fn(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            loc = self.decode_locations(x[:, 0])
            k = self.decode_k(x[:, 1])
            p = arrival.p_warm(k)
            ka_duration = arrival.expected_keepalive_s(k) if expected_mode else k

            e_s = p * s_warm[loc] + (1.0 - p) * s_cold
            e_sc = p * sc_warm[loc] + (1.0 - p) * sc_cold
            kc = ka_rate[loc] * ka_duration

            return (
                cfg.lambda_s * e_s / s_max
                + cfg.lambda_c * e_sc / sc_max
                + cfg.lambda_c * kc / kc_max
            )

        return fitness_fn

    def batch_fitness(
        self,
        funcs: Sequence[FunctionProfile],
        ts: Sequence[float],
        arrivals: Sequence[ArrivalEstimator],
        vectorise_arrivals: bool = True,
    ) -> BatchFitnessFn:
        """Build one objective scoring several functions' swarms at once.

        Row ``i`` of the returned callable scores ``funcs[i]``'s particles
        at decision time ``ts[i]`` -- input ``(n_funcs, rows, 2)``, output
        ``(n_funcs, rows)``. Per-function scalars (CI, normalisers, the
        EPDM's cold fallback) become column vectors broadcast along the
        particle axis, and per-location vectors become row-stacked
        gathers, so each element's float arithmetic is identical to the
        per-function closure from :meth:`fitness` -- the bit-equivalence
        the :class:`~repro.optimizers.batch.SwarmFleet` contract relies
        on. The empirical arrival queries evaluate through an inf-padded
        :class:`~repro.core.arrival.ArrivalBatch` (one vectorised
        ECDF/quantile kernel for the whole batch, bit-identical to the
        scalar estimators); ``vectorise_arrivals=False`` keeps the
        per-function query loop as the equivalence reference for tests
        and benchmarks.
        """
        cfg = self.config
        s = len(funcs)
        if not (s == len(ts) == len(arrivals)):
            raise ValueError("funcs, ts and arrivals must have equal length")

        # Per-function scalars. The CI lookups are vectorised trace
        # queries; the normaliser loop is memoised dict lookups (cheap,
        # and the cache keys are per-function anyway).
        ci = np.asarray(self.env.ci_at_many(ts), dtype=float)
        ci_ref = self.env.ci_max_observed_many(ts)
        s_max = np.empty(s)
        sc_max = np.empty(s)
        kc_max = np.empty(s)
        cold_s_max = np.empty(s)
        cold_sc_max = np.empty(s)
        for i, func in enumerate(funcs):
            s_max[i], sc_max[i], kc_max[i] = self.costs.normalisers(
                func, max(float(ci_ref[i]), 1e-9)
            )
            # best_cold normalises at the *current* intensity.
            cold_s_max[i], cold_sc_max[i], _ = self.costs.normalisers(
                func, max(float(ci[i]), 1e-12)
            )

        vectors = self.costs.stacked_vectors(funcs)
        ci_col = ci[:, None]
        s_warm = vectors.s_warm  # (s, n_loc)
        sc_warm = vectors.sc_warm(ci_col)
        ka_rate = vectors.ka_rate(ci_col)

        # The EPDM's cold fallback for all functions at once -- the same
        # expression CostModel.best_cold evaluates per function, with
        # per-function scalars as columns (elementwise float-identical).
        sc_cold_all = vectors.sc_cold(ci_col)
        cold_scores = (
            cfg.lambda_s * vectors.s_cold / cold_s_max[:, None]
            + cfg.lambda_c * sc_cold_all / cold_sc_max[:, None]
        )
        best = np.argmin(cold_scores, axis=1)  # first-index ties, as argmin()
        r = np.arange(s)
        s_cold = vectors.s_cold[r, best][:, None]
        sc_cold = sc_cold_all[r, best][:, None]

        s_max = s_max[:, None]
        sc_max = sc_max[:, None]
        kc_max = kc_max[:, None]
        expected_mode = cfg.keepalive_expectation is KeepAliveExpectation.EXPECTED_MIN
        rows = np.arange(s)[:, None]
        batch_arrivals = ArrivalBatch(arrivals) if vectorise_arrivals else None

        def batch_fn(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            loc = self.decode_locations(x[..., 0])  # (s, r)
            k = self.decode_k(x[..., 1])
            if batch_arrivals is not None:
                p = batch_arrivals.p_warm(k)
                ka_duration = (
                    batch_arrivals.expected_keepalive_s(k) if expected_mode else k
                )
            else:
                p = np.empty_like(k)
                ka_duration = np.empty_like(k)
                for i, arrival in enumerate(arrivals):
                    p[i] = arrival.p_warm(k[i])
                    ka_duration[i] = (
                        arrival.expected_keepalive_s(k[i]) if expected_mode else k[i]
                    )

            e_s = p * s_warm[rows, loc] + (1.0 - p) * s_cold
            e_sc = p * sc_warm[rows, loc] + (1.0 - p) * sc_cold
            kc = ka_rate[rows, loc] * ka_duration

            return (
                cfg.lambda_s * e_s / s_max
                + cfg.lambda_c * e_sc / sc_max
                + cfg.lambda_c * kc / kc_max
            )

        return batch_fn
