"""EcoLife configuration.

Defaults follow the paper's Sec. V setup: equal optimization weights
(lambda_s = lambda_c = 0.5), 15 particles, w in [0.5, 1], c1/c2 in
[0.3, 1]. The ablation flags (``use_dynamic_pso``,
``use_warm_pool_adjustment``) and the ``optimizer`` selector exist because
the paper evaluates exactly those variants (Figs. 10-12 and the in-text
GA/SA comparison).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from repro.hardware.specs import GENERATIONS, Generation
from repro.optimizers.dynamic_pso import DPSOParams


def batch_swarms_default() -> bool:
    """Default for :attr:`EcoLifeConfig.batch_swarms`.

    Reads the ``ECOLIFE_BATCH_SWARMS`` environment variable (``0`` /
    ``false`` / ``off`` disable batching) so the whole test/benchmark
    suite can be driven down the sequential reference path without code
    changes -- the CI matrix runs both settings. Unset means batched.
    """
    # ecolint: disable=ECO002 -- config-construction-time default, resolved once per process by the CI matrix; never read on a replay path
    return os.environ.get("ECOLIFE_BATCH_SWARMS", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


def rng_mode_default() -> str:
    """Default for :attr:`EcoLifeConfig.rng_mode`.

    Reads the ``ECOLIFE_RNG_MODE`` environment variable (``stream`` or
    ``counter``) so a CI matrix leg can drive the whole suite through
    the counter-based batched RNG without code changes. Unset means
    ``stream`` -- the sequential-reference contract.
    """
    # ecolint: disable=ECO002 -- config-construction-time default, resolved once per process by the CI matrix; never read on a replay path
    return os.environ.get("ECOLIFE_RNG_MODE", "stream").strip().lower() or "stream"


class OptimizerKind(enum.Enum):
    """Which meta-heuristic drives the KDM."""

    PSO = "pso"
    GENETIC = "ga"
    ANNEALING = "sa"


class KeepAliveExpectation(enum.Enum):
    """How the objective charges the keep-alive term KC_{f,l,k}.

    ``FULL_K`` is the paper's literal formula (carbon of the full period
    ``k``) and the default: it penalises over-long keep-alive periods and
    drives the swarm toward the shortest period that still yields warm
    starts. ``EXPECTED_MIN`` charges ``E[min(IAT, k)]`` -- the keep-alive
    actually accrued in simulation (a warm hit ends the period early) --
    and is available for ablation.
    """

    FULL_K = "full_k"
    EXPECTED_MIN = "expected_min"


@dataclass(frozen=True)
class EcoLifeConfig:
    """All knobs of the EcoLife scheduler."""

    # Objective weights (paper: equal weights).
    lambda_s: float = 0.5
    lambda_c: float = 0.5
    # PSO setup.
    n_particles: int = 15
    iterations_per_invocation: int = 8
    dpso: DPSOParams = field(default_factory=DPSOParams)
    use_dynamic_pso: bool = True
    #: Vanilla-PSO weights used when ``use_dynamic_pso`` is off (midpoints
    #: of the paper's ranges).
    vanilla_omega: float = 0.75
    vanilla_c: float = 0.65
    # Warm-pool adjustment (Fig. 6) ablation switch.
    use_warm_pool_adjustment: bool = True
    #: Weight adjustment priorities by the probability the function arrives
    #: before its container expires (extension over the paper's raw
    #: cold-vs-warm benefit score; disable for the paper-literal ranking).
    adjustment_arrival_weighting: bool = True
    # Arrival estimation.
    arrival_history: int = 64
    prior_mean_iat_s: float = 600.0
    prior_strength: float = 2.0
    # Search space: which generations may host keep-alive/execution.
    locations: tuple[Generation, ...] = GENERATIONS
    # Keep-alive charging mode.
    keepalive_expectation: KeepAliveExpectation = KeepAliveExpectation.FULL_K
    # KDM optimizer backend (GA/SA exist for the in-text comparison).
    optimizer: OptimizerKind = OptimizerKind.PSO
    #: Step per-function swarms through the batched
    #: :class:`~repro.optimizers.batch.SwarmFleet` (grouping same-tick
    #: decisions into fused kernels) instead of one optimizer object per
    #: function. Bit-identical to the per-function path by construction
    #: (see ``docs/optimizers.md``); only applies to the PSO backends --
    #: GA/SA always use the per-function path. Turn off to force the
    #: sequential reference implementation (default honours the
    #: ``ECOLIFE_BATCH_SWARMS`` environment knob; see
    #: :func:`batch_swarms_default`).
    batch_swarms: bool = field(default_factory=batch_swarms_default)
    #: Which RNG feeds the fleet's per-iteration draws. ``"stream"``
    #: (default) keeps per-swarm ``np.random.Generator`` streams and the
    #: bit-identity contract with the sequential per-function path.
    #: ``"counter"`` switches the fleet to the counter-based batched RNG
    #: (vectorised Philox keyed by each swarm's private ``(key, step)``
    #: counters): all swarms' ``r1``/``r2`` come out of one fused kernel,
    #: trading the stream contract for a *self-consistent* one -- results
    #: differ from ``"stream"`` but are deterministic and independent of
    #: batch composition, slot placement, and retire/rehydrate/compact.
    #: Only the fleet path reads this knob; the sequential/GA/SA paths
    #: always use their own streams. Default honours ``ECOLIFE_RNG_MODE``.
    rng_mode: str = field(default_factory=rng_mode_default)
    #: Group continuous-trace decision instants into shared ticks of this
    #: many seconds so ``decide_batch`` fires on non-quantised traces too
    #: (0 = off, the default: only exactly-simultaneous arrivals batch).
    #: Replays stay *bit-identical* at any width: placements run one
    #: arrival at a time against fully drained pool state, every decision
    #: is evaluated at its own instant, and a group additionally closes
    #: before any arrival reaches its earliest staged completion time --
    #: which keeps the engine's event ordering exactly sequential. The
    #: knob therefore only bounds how far ahead the engine looks for
    #: batchable arrivals; the effective batch width is capped by the
    #: arrival density within one in-flight service time (measured by
    #: ``benchmarks/bench_swarm.py``; see ``docs/optimizers.md``).
    decision_quantum_s: float = 0.0
    #: Clamp the decision tick to the *observed minimum service time*:
    #: the engine tracks the shortest completed-request duration seen so
    #: far and uses ``min(decision_quantum_s, observed_min)`` as the
    #: effective tick (with ``decision_quantum_s == 0`` the observed
    #: minimum alone drives the width, so batching self-tunes on
    #: continuous traces without hand-picking a quantum). Since replays
    #: are bit-identical at *any* tick width -- including a varying one
    #: (see above) -- this is purely a look-ahead heuristic: a tick
    #: wider than the shortest service time cannot batch further anyway
    #: because groups close at the earliest staged completion.
    adaptive_decision_quantum: bool = False
    # State retirement under function churn (both default off = today's
    # unbounded per-function state). Retirement archives a function's
    # optimizer/swarm state (including its RNG stream state), arrival
    # estimator, and perception scalars, and rehydrates them on the
    # function's next appearance -- decisions are bit-identical either
    # way; the knobs only bound live memory.
    #: Retire a function's scheduler state once it has made no decision
    #: for this many seconds. ``None`` disables idle retirement.
    retire_after_s: float | None = None
    #: Soft cap on live per-function optimizer states: the idle sweep
    #: retires the longest-idle functions past it (new same-tick
    #: functions may transiently overshoot by one batch). Size it above
    #: the expected *active* working set: a cap below it stays
    #: bit-identical but degenerates into archive/rehydrate thrashing on
    #: every decision round (classic LRU behaviour when capacity <
    #: working set), costing replay throughput. ``None`` = uncapped.
    max_live_swarms: int | None = None
    #: Spill retired-function archives (swarm rows + RNG state) to disk
    #: under this directory once more than ``spill_archives_after`` sit
    #: in memory. ``None`` (default) keeps every archive in memory.
    #: Spilled archives are pickled :class:`~repro.core.kdm.
    #: RetiredFunction` records; rehydration reads them back
    #: bit-identically, so the knob only bounds resident memory for
    #: truly unbounded tenant counts. The arrival-estimator shelf spills
    #: under the same directory and cap (its own store instance): the
    #: warm-pool adjuster's peek-without-revive read path reads through
    #: the disk tier, so a spilled history looks exactly like a resident
    #: one.
    spill_dir: str | None = None
    #: In-memory archive count that triggers spilling (oldest first).
    spill_archives_after: int = 256
    # Determinism.
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.lambda_s < 0.0 or self.lambda_c < 0.0:
            raise ValueError("lambda weights must be >= 0")
        if self.lambda_s + self.lambda_c == 0.0:
            raise ValueError("at least one lambda weight must be positive")
        if self.n_particles < 2:
            raise ValueError("n_particles must be >= 2")
        if self.iterations_per_invocation < 1:
            raise ValueError("iterations_per_invocation must be >= 1")
        if not self.locations:
            raise ValueError("locations must be non-empty")
        if self.arrival_history < 2:
            raise ValueError("arrival_history must be >= 2")
        if self.prior_mean_iat_s <= 0.0:
            raise ValueError("prior_mean_iat_s must be > 0")
        if self.retire_after_s is not None and self.retire_after_s <= 0.0:
            raise ValueError("retire_after_s must be > 0 (or None)")
        if self.max_live_swarms is not None and self.max_live_swarms < 1:
            raise ValueError("max_live_swarms must be >= 1 (or None)")
        if self.rng_mode not in ("stream", "counter"):
            raise ValueError(
                f"rng_mode must be 'stream' or 'counter', got {self.rng_mode!r}"
            )
        if self.decision_quantum_s < 0.0:
            raise ValueError("decision_quantum_s must be >= 0")
        if self.spill_archives_after < 0:
            raise ValueError("spill_archives_after must be >= 0")

    @property
    def retirement_enabled(self) -> bool:
        """Whether any state-retirement knob is active."""
        return self.retire_after_s is not None or self.max_live_swarms is not None

    # -- variant constructors (the paper's named schemes) -------------------

    def without_dpso(self) -> "EcoLifeConfig":
        """EcoLife w/o DPSO (Fig. 10 ablation)."""
        return replace(self, use_dynamic_pso=False)

    def without_adjustment(self) -> "EcoLifeConfig":
        """EcoLife w/o warm-pool adjustment (Fig. 11 ablation)."""
        return replace(self, use_warm_pool_adjustment=False)

    def single_generation(self, generation: Generation) -> "EcoLifeConfig":
        """Eco-Old / Eco-New (Fig. 12): one generation for everything."""
        return replace(self, locations=(generation,))

    def with_optimizer(self, kind: OptimizerKind) -> "EcoLifeConfig":
        """GA-/SA-driven KDM for the in-text optimizer comparison."""
        return replace(self, optimizer=kind)

    def with_retirement(
        self,
        retire_after_s: float | None = None,
        max_live_swarms: int | None = None,
        spill_dir: str | None = None,
        spill_archives_after: int = 256,
    ) -> "EcoLifeConfig":
        """Bounded-state EcoLife: idle-sweep retirement of per-function
        scheduler state (bit-identical to the unbounded default),
        optionally spilling archives to disk past an in-memory count.

        Replaces the *whole* retirement/spill block: every knob not
        passed reverts to its default (idle retirement off, cap off,
        spill off, 256 resident archives) -- the helper describes a
        complete retirement policy, it does not merge with one already
        set on ``self``.
        """
        return replace(
            self,
            retire_after_s=retire_after_s,
            max_live_swarms=max_live_swarms,
            spill_dir=spill_dir,
            spill_archives_after=spill_archives_after,
        )
