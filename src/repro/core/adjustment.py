"""Warm-pool adjustment (paper Sec. IV-C "Warm Pool Adjustment", Fig. 6).

When a pool runs out of memory, EcoLife ranks every function already kept
alive *plus* the one about to be kept alive by a priority score: "the
difference in service time and carbon footprint between cold start and warm
start", i.e. the benefit the warm container provides if the function is
invoked again::

    score = lambda_s * (S_cold - S_warm) / S_f_max
          + lambda_c * (SC_cold - SC_warm) / SC_f_max

The engine then packs the pool greedily in score order; losers are spilled
to the other generation's pool when space allows ("evicted function is kept
warm in the other generation's memory if there is enough space").

On top of the paper's score we weight each candidate by the probability
that its function actually arrives before the container expires (estimated
from the function's inter-arrival history). A warm container that will
never be hit has no realisable benefit; this keeps the pool packed with
containers that convert memory into avoided cold starts. The weighting can
be disabled via ``EcoLifeConfig.adjustment_arrival_weighting`` to recover
the paper-literal ranking.
"""

from __future__ import annotations

from repro.core.arrival import ArrivalRegistry
from repro.core.config import EcoLifeConfig
from repro.core.objective import CostModel
from repro.simulator.scheduler import AdjustmentRequest, PoolCandidate, SchedulerEnv
from repro.workloads.functions import FunctionProfile


class WarmPoolAdjuster:
    """Score-based priority ranking for pool packing."""

    def __init__(
        self,
        env: SchedulerEnv,
        config: EcoLifeConfig,
        costs: CostModel,
        arrivals: ArrivalRegistry | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.costs = costs
        self.arrivals = arrivals

    def benefit_score(self, func: FunctionProfile, gen, ci: float) -> float:
        """Warm-vs-cold benefit of keeping ``func`` alive on ``gen``."""
        s_max = max(self.costs.s_max(func), 1e-9)
        sc_max = max(self.costs.sc_max(func, max(ci, 1e-12)), 1e-12)
        ds = self.costs.service_time(func, gen, cold=True) - self.costs.service_time(
            func, gen, cold=False
        )
        dsc = self.costs.service_carbon(
            func, gen, cold=True, ci=ci
        ) - self.costs.service_carbon(func, gen, cold=False, ci=ci)
        return (
            self.config.lambda_s * ds / s_max + self.config.lambda_c * dsc / sc_max
        )

    def arrival_mass(self, candidate: PoolCandidate, t: float) -> float:
        """P(the function arrives while this container is still warm)."""
        if self.arrivals is None or not self.config.adjustment_arrival_weighting:
            return 1.0
        remaining = max(candidate.expire_s - t, 0.0)
        est = self.arrivals.get(candidate.name)
        return float(est.p_warm([remaining])[0])

    def priority(self, candidate: PoolCandidate, req: AdjustmentRequest) -> float:
        """Expected realisable benefit of keeping this candidate warm."""
        ci = self.env.ci_at(req.t)
        return self.benefit_score(
            candidate.func, req.generation, ci
        ) * self.arrival_mass(candidate, req.t)

    def rank(self, req: AdjustmentRequest) -> list[PoolCandidate]:
        """Candidates ordered by descending expected keep-alive benefit.

        Deterministic tie-breaks: smaller memory footprint first (fits more
        functions), then name.
        """
        return sorted(
            req.candidates,
            key=lambda c: (-self.priority(c, req), c.mem_gb, c.name),
        )
