"""Disk spill store for retired per-function scheduler state.

The KDM's state-retirement sweep (PR 4) bounds *live* memory, but the
archive shelf itself still grows with the ever-seen cohort: one
:class:`~repro.core.kdm.RetiredFunction` -- swarm rows, RNG stream
state, perception scalars -- per dormant function. Long multi-tenant
runs with millions of tenants want those archives out of resident
memory entirely.

:class:`ArchiveSpill` is the smallest store that does that: pickled
records in a flat directory, one file per archived function, with the
name -> path map held in memory (a few dozen bytes per dormant
function instead of kilobytes of swarm arrays). Records round-trip
losslessly -- numpy arrays, RNG bit-generator state dicts, and counter
keys all pickle exactly -- so rehydrating from disk is bit-identical to
rehydrating from memory (``tests/test_retirement.py`` asserts this end
to end against a never-spilled replay).

Files use sequential names rather than the function name: function
names are workload-controlled strings and must not reach the
filesystem namespace (length limits, separators, case-folding
collisions). Each store instance writes into its own unique
subdirectory of ``root`` (``mkdtemp``), so several schedulers pointed
at one ``spill_dir`` -- e.g. sweep workers sharing an
:class:`~repro.core.config.EcoLifeConfig` -- can never clobber or
cross-read each other's records. The subdirectory is removed when the
store is garbage-collected with no spilled records left; a store
abandoned mid-run (crash) leaves its directory behind for inspection.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import shutil
import tempfile


class ArchiveSpill:
    """Pickle-per-record spill directory with an in-memory name index."""

    def __init__(self, root: str | os.PathLike) -> None:
        base = pathlib.Path(root)
        base.mkdir(parents=True, exist_ok=True)
        self.root = pathlib.Path(tempfile.mkdtemp(prefix="kdm-", dir=base))
        self._paths: dict[str, pathlib.Path] = {}
        self._seq = 0
        self._attached = False
        #: Lifetime gauges (memory-bounds telemetry).
        self.spilled = 0
        self.loaded = 0

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def put(self, name: str, record: object) -> None:
        """Spill one record; replaces any previous spill of ``name``."""
        old = self._paths.pop(name, None)
        if old is not None:
            old.unlink(missing_ok=True)
        path = self.root / f"archive-{self._seq:08d}.pkl"
        self._seq += 1
        with open(path, "wb") as fh:
            pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._paths[name] = path
        self.spilled += 1

    def take(self, name: str) -> object:
        """Load one record back and remove it from the store.

        Raises ``KeyError`` for names that were never spilled (callers
        check membership first -- the in-memory shelf is consulted before
        the spill store).
        """
        path = self._paths.pop(name)
        with open(path, "rb") as fh:
            record = pickle.load(fh)
        path.unlink(missing_ok=True)
        self.loaded += 1
        return record

    def peek(self, name: str) -> object:
        """Load one record without removing it from the store.

        The checkpoint/restore path reads records non-destructively:
        a checkpoint directory attached via :meth:`attach` must survive
        being restored from (restores may happen more than once -- e.g.
        a crash loop replaying the same checkpoint).
        """
        path = self._paths[name]
        with open(path, "rb") as fh:
            record = pickle.load(fh)
        self.loaded += 1
        return record

    def names(self) -> tuple[str, ...]:
        """Spilled names in insertion (spill) order."""
        return tuple(self._paths)

    def manifest(self) -> dict[str, str]:
        """Name -> filename map (relative to :attr:`root`), for checkpoints.

        The name index lives only in memory; a checkpoint must persist
        it alongside the record files so :meth:`attach` can rebuild the
        store in a fresh process.
        """
        return {name: path.name for name, path in self._paths.items()}

    @classmethod
    def attach(
        cls, root: str | os.PathLike, files: dict[str, str]
    ) -> "ArchiveSpill":
        """Open an existing spill directory from its checkpoint manifest.

        Unlike the constructor this does not create a fresh
        subdirectory: ``root`` is the exact directory holding the
        record files and ``files`` is a prior :meth:`manifest`. The
        attached store reads (and may extend) that directory in place.
        """
        store = cls.__new__(cls)
        store.root = pathlib.Path(root)
        store._paths = {}
        store._seq = 0
        store._attached = True
        store.spilled = 0
        store.loaded = 0
        for name, filename in files.items():
            path = store.root / filename
            if not path.is_file():
                raise FileNotFoundError(
                    f"checkpoint record missing: {path} (for {name!r})"
                )
            store._paths[name] = path
            # Continue sequential naming past the attached records.
            stem = filename.rsplit(".", 1)[0]
            try:
                seq = int(stem.rsplit("-", 1)[-1])
            except ValueError:
                seq = -1
            store._seq = max(store._seq, seq + 1)
        return store

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            # Attached stores sit on a user-owned checkpoint directory;
            # never remove those, even when fully drained.
            if not self._paths and not self._attached:
                shutil.rmtree(self.root, ignore_errors=True)
        except Exception:
            # Interpreter shutdown may have torn down globals already;
            # an undeleted empty spill subdirectory is harmless.
            pass
