"""Disk spill store for retired per-function scheduler state.

The KDM's state-retirement sweep (PR 4) bounds *live* memory, but the
archive shelf itself still grows with the ever-seen cohort: one
:class:`~repro.core.kdm.RetiredFunction` -- swarm rows, RNG stream
state, perception scalars -- per dormant function. Long multi-tenant
runs with millions of tenants want those archives out of resident
memory entirely.

:class:`ArchiveSpill` is the smallest store that does that: pickled
records in a flat directory, one file per archived function, with the
name -> path map held in memory (a few dozen bytes per dormant
function instead of kilobytes of swarm arrays). Records round-trip
losslessly -- numpy arrays, RNG bit-generator state dicts, and counter
keys all pickle exactly -- so rehydrating from disk is bit-identical to
rehydrating from memory (``tests/test_retirement.py`` asserts this end
to end against a never-spilled replay).

Files use sequential names rather than the function name: function
names are workload-controlled strings and must not reach the
filesystem namespace (length limits, separators, case-folding
collisions). Each store instance writes into its own unique
subdirectory of ``root`` (``mkdtemp``), so several schedulers pointed
at one ``spill_dir`` -- e.g. sweep workers sharing an
:class:`~repro.core.config.EcoLifeConfig` -- can never clobber or
cross-read each other's records. The subdirectory is removed when the
store is garbage-collected with no spilled records left; a store
abandoned mid-run (crash) leaves its directory behind for inspection.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import shutil
import tempfile


class ArchiveSpill:
    """Pickle-per-record spill directory with an in-memory name index."""

    def __init__(self, root: str | os.PathLike) -> None:
        base = pathlib.Path(root)
        base.mkdir(parents=True, exist_ok=True)
        self.root = pathlib.Path(tempfile.mkdtemp(prefix="kdm-", dir=base))
        self._paths: dict[str, pathlib.Path] = {}
        self._seq = 0
        #: Lifetime gauges (memory-bounds telemetry).
        self.spilled = 0
        self.loaded = 0

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def put(self, name: str, record: object) -> None:
        """Spill one record; replaces any previous spill of ``name``."""
        old = self._paths.pop(name, None)
        if old is not None:
            old.unlink(missing_ok=True)
        path = self.root / f"archive-{self._seq:08d}.pkl"
        self._seq += 1
        with open(path, "wb") as fh:
            pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._paths[name] = path
        self.spilled += 1

    def take(self, name: str) -> object:
        """Load one record back and remove it from the store.

        Raises ``KeyError`` for names that were never spilled (callers
        check membership first -- the in-memory shelf is consulted before
        the spill store).
        """
        path = self._paths.pop(name)
        with open(path, "rb") as fh:
            record = pickle.load(fh)
        path.unlink(missing_ok=True)
        self.loaded += 1
        return record

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if not self._paths:
                shutil.rmtree(self.root, ignore_errors=True)
        except Exception:
            # Interpreter shutdown may have torn down globals already;
            # an undeleted empty spill subdirectory is harmless.
            pass
