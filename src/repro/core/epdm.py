"""Execution Placement Decision Maker (EPDM, paper Sec. IV-D).

If the function is warm on some hardware, execute it there (no cold start);
if it is warm on both, pick the better warm ``fscore``. Otherwise choose
the cold execution location minimising::

    fscore = lambda_s * S_r / S_f_max + lambda_c * SC_r / SC_max
"""

from __future__ import annotations

from repro.core.config import EcoLifeConfig
from repro.core.objective import CostModel
from repro.hardware.specs import Generation
from repro.simulator.scheduler import SchedulerEnv
from repro.workloads.functions import FunctionProfile


class ExecutionPlacementDecisionMaker:
    """Chooses where each invocation executes."""

    def __init__(self, env: SchedulerEnv, config: EcoLifeConfig, costs: CostModel) -> None:
        self.env = env
        self.config = config
        self.costs = costs

    def choose(
        self,
        func: FunctionProfile,
        t: float,
        warm_locations: tuple[Generation, ...],
    ) -> Generation:
        """Pick the execution location for one invocation."""
        ci = self.env.ci_at(t)
        if warm_locations:
            if len(warm_locations) == 1:
                return warm_locations[0]
            return min(
                warm_locations,
                key=lambda g: self.costs.fscore(func, g, cold=False, ci=ci),
            )
        return min(
            self.config.locations,
            key=lambda g: self.costs.fscore(func, g, cold=True, ci=ci),
        )
