"""Shared unit conventions and conversion helpers.

Conventions used throughout the package (documented once here, relied on
everywhere):

- **time**: seconds (``float``). Minute/hour helpers are provided because the
  paper quotes keep-alive periods in minutes and carbon intensity at minute
  resolution.
- **carbon**: grams of CO2-equivalent (``float``).
- **carbon intensity**: grams CO2 per kilowatt-hour (gCO2/kWh), matching the
  Electricity Maps convention used by the paper.
- **energy**: watt-hours (Wh). Power is watts (W).
- **memory**: gigabytes (GB, decimal) -- function footprints and DRAM
  capacities.
"""

from __future__ import annotations

SECONDS_PER_MINUTE: float = 60.0
SECONDS_PER_HOUR: float = 3600.0
SECONDS_PER_DAY: float = 86400.0
SECONDS_PER_YEAR: float = 365.0 * SECONDS_PER_DAY

MB: float = 1.0 / 1024.0
"""One binary megabyte expressed in the package's GB unit."""


def minutes(m: float) -> float:
    """Convert minutes to seconds."""
    return m * SECONDS_PER_MINUTE


def hours(h: float) -> float:
    """Convert hours to seconds."""
    return h * SECONDS_PER_HOUR


def days(d: float) -> float:
    """Convert days to seconds."""
    return d * SECONDS_PER_DAY


def years(y: float) -> float:
    """Convert years to seconds."""
    return y * SECONDS_PER_YEAR


def watt_seconds_to_wh(joules: float) -> float:
    """Convert watt-seconds (joules) to watt-hours."""
    return joules / SECONDS_PER_HOUR


def energy_wh(power_w: float, duration_s: float) -> float:
    """Energy (Wh) drawn by a constant ``power_w`` load over ``duration_s``."""
    return power_w * duration_s / SECONDS_PER_HOUR


def operational_carbon_g(energy_wh_: float, ci_g_per_kwh: float) -> float:
    """Operational carbon (g) for ``energy_wh_`` at intensity ``ci_g_per_kwh``.

    This is the paper's ``energy x CI`` product with the kWh/Wh unit
    conversion folded in.
    """
    return energy_wh_ * ci_g_per_kwh / 1000.0


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive; return it unchanged."""
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0; return it unchanged."""
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)
