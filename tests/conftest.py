"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon import CarbonIntensityTrace, CarbonModel
from repro.hardware import PAIR_A, PAIR_B, PAIR_C
from repro.workloads import MOTIVATION_FUNCTIONS, SEBS_FUNCTIONS


@pytest.fixture
def pair_a():
    return PAIR_A


@pytest.fixture
def pair_b():
    return PAIR_B


@pytest.fixture
def pair_c():
    return PAIR_C


@pytest.fixture
def flat_trace():
    """A constant 250 g/kWh trace (CISO-mean level)."""
    return CarbonIntensityTrace.constant(250.0)


@pytest.fixture
def carbon_model(flat_trace):
    return CarbonModel(trace=flat_trace)


@pytest.fixture
def video():
    return MOTIVATION_FUNCTIONS[0]


@pytest.fixture
def graph_bfs():
    return MOTIVATION_FUNCTIONS[1]


@pytest.fixture
def dna_vis():
    return MOTIVATION_FUNCTIONS[2]


@pytest.fixture
def all_functions():
    return list(SEBS_FUNCTIONS.values())


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def batch_swarms_default():
    """Which swarm path this run exercises by default.

    ``True`` = batched :class:`SwarmFleet`, ``False`` = sequential
    per-function reference. Driven by the ``ECOLIFE_BATCH_SWARMS``
    environment knob, which the CI matrix sets to run the whole tier-1
    suite down both paths (they are bit-identical by contract, so every
    test must pass either way).
    """
    from repro.core.config import batch_swarms_default as knob

    return knob()
