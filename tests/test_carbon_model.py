"""Carbon accounting: the paper's Sec. II formulas and calibration shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.carbon import CarbonBreakdown, CarbonIntensityTrace, CarbonModel
from repro.hardware import PAIR_A, PAIR_C
from repro.workloads import MOTIVATION_FUNCTIONS


class TestCarbonBreakdown:
    def test_totals(self):
        b = CarbonBreakdown(op_cpu=1, op_dram=2, emb_cpu=3, emb_dram=4, emb_platform=5)
        assert b.operational == 3
        assert b.embodied == 12
        assert b.total == 15

    def test_add(self):
        a = CarbonBreakdown(op_cpu=1.0)
        b = CarbonBreakdown(emb_dram=2.0)
        c = a + b
        assert c.op_cpu == 1.0 and c.emb_dram == 2.0

    def test_sum_builtin(self):
        parts = [CarbonBreakdown(op_cpu=1.0), CarbonBreakdown(op_cpu=2.0)]
        assert sum(parts).op_cpu == 3.0


class TestPaperFormulas:
    """Hand-computed checks of the exact Sec. II equations."""

    def setup_method(self):
        self.ci = 250.0
        self.model = CarbonModel(trace=CarbonIntensityTrace.constant(self.ci))
        self.server = PAIR_A.new
        self.mem = 0.5  # GB

    def test_cpu_embodied_service(self):
        """CPU service embodied = S / LT * EC (whole package)."""
        s = 10.0
        b = self.model.service(self.server, self.mem, 0.0, s)
        expected = s / self.server.lifetime_s * self.server.cpu.embodied_g
        assert b.emb_cpu == pytest.approx(expected)

    def test_cpu_embodied_keepalive_per_core(self):
        """CPU keep-alive embodied = k / LT * EC / Core_num."""
        k = 600.0
        b = self.model.keepalive(self.server, self.mem, 0.0, k)
        expected = (
            k / self.server.lifetime_s
            * self.server.cpu.embodied_g
            / self.server.cpu.cores
        )
        assert b.emb_cpu == pytest.approx(expected)

    def test_dram_embodied_share(self):
        """DRAM embodied = duration / LT * (Mf / M_DRAM) * EC_DRAM."""
        k = 600.0
        b = self.model.keepalive(self.server, self.mem, 0.0, k)
        share = self.mem / self.server.dram.capacity_gb
        expected = k / self.server.lifetime_s * share * self.server.dram.embodied_g
        assert b.emb_dram == pytest.approx(expected)

    def test_cpu_operational_service(self):
        """CPU service operational = full power x time x CI."""
        s = 10.0
        b = self.model.service(self.server, self.mem, 0.0, s)
        expected = units.operational_carbon_g(
            units.energy_wh(self.server.cpu.full_power_w, s), self.ci
        )
        assert b.op_cpu == pytest.approx(expected)

    def test_cpu_operational_keepalive_one_core(self):
        """CPU keep-alive operational = (E_ka / Core_num) x CI."""
        k = 600.0
        b = self.model.keepalive(self.server, self.mem, 0.0, k)
        expected = units.operational_carbon_g(
            units.energy_wh(self.server.cpu.idle_power_w / self.server.cpu.cores, k),
            self.ci,
        )
        assert b.op_cpu == pytest.approx(expected)

    def test_dram_operational_share(self):
        k = 600.0
        b = self.model.keepalive(self.server, self.mem, 0.0, k)
        share = self.mem / self.server.dram.capacity_gb
        expected = units.operational_carbon_g(
            units.energy_wh(share * self.server.dram.total_power_w, k), self.ci
        )
        assert b.op_dram == pytest.approx(expected)

    def test_cold_start_adds_operational(self):
        warm = self.model.service(self.server, self.mem, 0.0, 5.0)
        cold = self.model.service(self.server, self.mem, 0.0, 5.0, cold_overhead_s=3.0)
        assert cold.total > warm.total
        assert cold.op_cpu == pytest.approx(
            warm.op_cpu
            + units.operational_carbon_g(
                units.energy_wh(self.server.cpu.full_power_w, 3.0), self.ci
            )
        )

    def test_estimates_match_exact_on_flat_trace(self):
        """The scalar-CI estimators agree with trace accounting when CI is flat."""
        exact = self.model.service(self.server, self.mem, 0.0, 7.0, 2.0)
        est = self.model.est_service_g(self.server, self.mem, 7.0, 2.0, self.ci)
        assert est == pytest.approx(exact.total)

        exact_ka = self.model.keepalive(self.server, self.mem, 100.0, 700.0)
        rate = self.model.est_keepalive_rate_g_per_s(self.server, self.mem, self.ci)
        assert rate * 600.0 == pytest.approx(exact_ka.total)

    def test_platform_overhead_counted(self):
        server = self.server.with_platform_overhead(60.0)
        with_pf = self.model.keepalive(server, self.mem, 0.0, 600.0)
        without = self.model.keepalive(self.server, self.mem, 0.0, 600.0)
        assert with_pf.emb_platform > 0.0
        assert with_pf.total > without.total

    def test_energy_attribution(self):
        wh = self.model.keepalive_energy_wh(self.server, self.mem, 3600.0)
        expected = (
            self.server.cpu.idle_power_w / self.server.cpu.cores
            + self.mem / self.server.dram.capacity_gb * self.server.dram.total_power_w
        )
        assert wh == pytest.approx(expected)


class TestVaryingTrace:
    def test_keepalive_integrates_trace(self):
        trace = CarbonIntensityTrace.from_minute_values([100.0, 300.0])
        model = CarbonModel(trace=trace)
        server = PAIR_A.new
        lo = model.keepalive(server, 0.5, 0.0, 60.0)
        hi = model.keepalive(server, 0.5, 60.0, 120.0)
        # Same embodied, operational scales with CI.
        assert lo.embodied == pytest.approx(hi.embodied)
        assert hi.operational == pytest.approx(3.0 * lo.operational)

    def test_with_trace_rebinds(self):
        m = CarbonModel(trace=CarbonIntensityTrace.constant(100.0))
        m2 = m.with_trace(CarbonIntensityTrace.constant(200.0))
        s = PAIR_A.new
        a = m.service(s, 0.5, 0.0, 10.0)
        b = m2.service(s, 0.5, 0.0, 10.0)
        assert b.operational == pytest.approx(2 * a.operational)
        assert b.embodied == pytest.approx(a.embodied)


class TestCalibrationShapes:
    """DESIGN.md calibration targets (the paper's Figs. 1-3 shapes)."""

    def test_fig1_keepalive_fraction_grows(self):
        """Graph-BFS keep-alive share: ~18% at 2 min -> ~52% at 10 min."""
        model = CarbonModel(trace=CarbonIntensityTrace.constant(250.0))
        bfs = MOTIVATION_FUNCTIONS[1]
        new = PAIR_A.new
        sc = model.service(new, bfs.mem_gb, 0.0, bfs.exec_time_s(new)).total
        ka2 = model.keepalive(new, bfs.mem_gb, 0.0, 120.0).total
        ka10 = model.keepalive(new, bfs.mem_gb, 0.0, 600.0).total
        assert 0.10 <= ka2 / (ka2 + sc) <= 0.30
        assert 0.40 <= ka10 / (ka10 + sc) <= 0.65

    def test_fig1_keepalive_linear_in_k(self):
        model = CarbonModel(trace=CarbonIntensityTrace.constant(250.0))
        new = PAIR_A.new
        f = MOTIVATION_FUNCTIONS[0]
        kas = [model.keepalive(new, f.mem_gb, 0.0, 60.0 * k).total for k in (2, 4, 8)]
        assert kas[1] == pytest.approx(2 * kas[0], rel=1e-6)
        assert kas[2] == pytest.approx(4 * kas[0], rel=1e-6)

    def test_fig2_video_old_saves_carbon_costs_time(self):
        """Pair A, video-processing, 10-min keep-alive: old saves 10-30%
        carbon and runs 10-25% slower (paper: -23.8% CO2, +15.9% time)."""
        model = CarbonModel(trace=CarbonIntensityTrace.constant(250.0))
        video = MOTIVATION_FUNCTIONS[0]
        old, new = PAIR_A.old, PAIR_A.new

        def total(server):
            return (
                model.service(server, video.mem_gb, 0.0, video.exec_time_s(server)).total
                + model.keepalive(server, video.mem_gb, 0.0, 600.0).total
            )

        saving = 1.0 - total(old) / total(new)
        slowdown = video.exec_time_s(old) / video.exec_time_s(new) - 1.0
        assert 0.10 <= saving <= 0.30
        assert 0.10 <= slowdown <= 0.25

    @staticmethod
    def _fig3_cases(func, ci):
        """Case A: 15-min keep-alive + warm exec on C_OLD.
        Case B: 10-min keep-alive + cold start + exec on C_NEW."""
        model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
        old, new = PAIR_C.old, PAIR_C.new
        a = (
            model.service(old, func.mem_gb, 0.0, func.exec_time_s(old)).total
            + model.keepalive(old, func.mem_gb, 0.0, 900.0).total
        )
        b = (
            model.service(
                new, func.mem_gb, 0.0, func.exec_time_s(new), func.cold_overhead_s(new)
            ).total
            + model.keepalive(new, func.mem_gb, 0.0, 600.0).total
        )
        return a, b

    def test_fig3_high_ci_old_warm_wins(self):
        """At CI=300 every motivation function saves carbon in Case A."""
        for func in MOTIVATION_FUNCTIONS:
            a, b = self._fig3_cases(func, 300.0)
            assert a < b, func.name

    def test_fig3_low_ci_inversion_for_dna(self):
        """At CI=50 the DNA-visualization case inverts (paper Fig. 3 bottom)."""
        dna = MOTIVATION_FUNCTIONS[2]
        a, b = self._fig3_cases(dna, 50.0)
        assert a > b

    def test_fig3_service_time_savings(self):
        """Case A cuts video-processing service time by ~half (paper: 52.3%)."""
        video = MOTIVATION_FUNCTIONS[0]
        old, new = PAIR_C.old, PAIR_C.new
        s_a = video.exec_time_s(old)
        s_b = video.exec_time_s(new) + video.cold_overhead_s(new)
        assert 0.40 <= 1.0 - s_a / s_b <= 0.60


# -- property-based invariants -------------------------------------------------


@given(
    mem=st.floats(0.05, 8.0),
    dur=st.floats(0.0, 3600.0),
    ci=st.floats(0.0, 800.0),
)
@settings(max_examples=50, deadline=None)
def test_keepalive_monotone_in_duration_and_ci(mem, dur, ci):
    model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
    server = PAIR_A.old
    g1 = model.keepalive(server, mem, 0.0, dur).total
    g2 = model.keepalive(server, mem, 0.0, dur + 60.0).total
    assert g2 >= g1
    rate = model.est_keepalive_rate_g_per_s(server, mem, ci)
    assert rate * dur == pytest.approx(g1, rel=1e-9, abs=1e-12)


@given(
    mem=st.floats(0.05, 8.0),
    busy=st.floats(0.01, 120.0),
    cold=st.floats(0.0, 30.0),
    ci=st.floats(0.0, 800.0),
)
@settings(max_examples=50, deadline=None)
def test_service_carbon_nonnegative_and_cold_dominates(mem, busy, cold, ci):
    model = CarbonModel(trace=CarbonIntensityTrace.constant(ci))
    server = PAIR_A.new
    warm = model.service(server, mem, 0.0, busy).total
    coldb = model.service(server, mem, 0.0, busy, cold).total
    assert warm >= 0.0
    # A sub-epsilon cold overhead can land one ULP below the warm total
    # through the energy-sum round-off, so compare with a tiny tolerance.
    assert coldb >= warm * (1.0 - 1e-12)
