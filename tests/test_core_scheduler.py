"""EcoLife scheduler end-to-end behaviour in the engine."""

import numpy as np
import pytest

from repro.carbon import CarbonIntensityTrace
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.core.config import OptimizerKind
from repro.hardware import PAIR_A, Generation
from repro.simulator import SimulationConfig, SimulationEngine
from repro.workloads import FunctionProfile, InvocationTrace


def _func(name="f", mem=0.5, exec_s=2.0, cold_s=1.5):
    return FunctionProfile(name=name, mem_gb=mem, exec_ref_s=exec_s, cold_ref_s=cold_s)


def run(events, scheduler, ci=250.0, **cfg_kw):
    trace = InvocationTrace.from_events(events)
    cfg = SimulationConfig(**cfg_kw)
    engine = SimulationEngine(
        pair=PAIR_A,
        trace=trace,
        ci_trace=CarbonIntensityTrace.constant(ci),
        config=cfg,
    )
    return engine.run(scheduler)


def periodic_events(func, period, n, start=0.0):
    return [(start + i * period, func) for i in range(n)]


class TestBasicBehaviour:
    def test_runs_clean_on_mixed_trace(self):
        fa, fb = _func("a"), _func("b", mem=1.2)
        events = periodic_events(fa, 120.0, 20) + periodic_events(fb, 300.0, 8, 7.0)
        res = run(events, EcoLifeScheduler())
        assert len(res) == 28
        assert res.scheduler_name == "ecolife"

    def test_warm_placement_enforced(self):
        """Once warm, EcoLife never pays a cold start for a hot function."""
        f = _func("hot")
        res = run(periodic_events(f, 120.0, 30), EcoLifeScheduler())
        # After a few observations the PSO should keep it warm.
        tail = res.records[10:]
        warm = sum(0 if r.cold else 1 for r in tail)
        assert warm / len(tail) > 0.8

    def test_rare_function_not_kept_alive_forever(self):
        """A 2-hour-periodic function should mostly get k = 0 decisions."""
        f = _func("rare")
        res = run(periodic_events(f, 7200.0, 6), EcoLifeScheduler())
        ka_time = sum(r.keepalive_s for r in res.records)
        # Much less than always-keep-30-min (6 * 1800 s).
        assert ka_time < 0.5 * 6 * 1800.0

    def test_deterministic_given_seed(self):
        f = _func("d")
        events = periodic_events(f, 180.0, 15)
        r1 = run(events, EcoLifeScheduler(EcoLifeConfig(seed=5)))
        r2 = run(events, EcoLifeScheduler(EcoLifeConfig(seed=5)))
        assert r1.total_carbon_g == r2.total_carbon_g
        assert [r.cold for r in r1.records] == [r.cold for r in r2.records]

    def test_decisions_counted(self):
        f = _func("c")
        sched = EcoLifeScheduler()
        run(periodic_events(f, 100.0, 10), sched)
        assert sched.kdm.decisions == 10
        assert sched.kdm.optimizer_count == 1


class TestVariants:
    def test_single_generation_old_never_uses_new(self):
        f = _func("x")
        sched = EcoLifeScheduler.single_generation(Generation.OLD)
        res = run(periodic_events(f, 120.0, 12), sched)
        assert all(r.location is Generation.OLD for r in res.records)
        assert "old-only" in res.scheduler_name

    def test_single_generation_new_never_uses_old(self):
        f = _func("x")
        sched = EcoLifeScheduler.single_generation(Generation.NEW)
        res = run(periodic_events(f, 120.0, 12), sched)
        assert all(r.location is Generation.NEW for r in res.records)

    def test_without_dpso_uses_vanilla_swarm(self):
        from repro.optimizers import DynamicPSO, ParticleSwarm

        sched = EcoLifeScheduler.without_dpso()
        run(periodic_events(_func("x"), 120.0, 5), sched)
        opt = sched.kdm.optimizer_for("x")
        assert isinstance(opt, ParticleSwarm)
        assert not isinstance(opt, DynamicPSO)

    def test_default_uses_dynamic_pso(self):
        from repro.optimizers import DynamicPSO

        sched = EcoLifeScheduler()
        run(periodic_events(_func("x"), 120.0, 5), sched)
        assert isinstance(sched.kdm.optimizer_for("x"), DynamicPSO)

    def test_ga_and_sa_variants(self):
        from repro.optimizers import GeneticOptimizer, SimulatedAnnealing

        for kind, cls in (
            (OptimizerKind.GENETIC, GeneticOptimizer),
            (OptimizerKind.ANNEALING, SimulatedAnnealing),
        ):
            sched = EcoLifeScheduler.with_optimizer(kind)
            res = run(periodic_events(_func("x"), 150.0, 6), sched)
            assert isinstance(sched.kdm.optimizer_for("x"), cls)
            assert len(res) == 6

    def test_variant_names(self):
        assert EcoLifeScheduler.without_dpso().name == "ecolife-no-dpso"
        assert EcoLifeScheduler.without_adjustment().name == "ecolife-no-adjust"
        assert (
            EcoLifeScheduler.with_optimizer(OptimizerKind.GENETIC).name
            == "ecolife-ga"
        )


class TestMemoryPressureBehaviour:
    def _pressure_events(self):
        rng = np.random.default_rng(3)
        funcs = [_func(f"f{i}", mem=1.0) for i in range(8)]
        events = []
        for i, f in enumerate(funcs):
            period = 120.0 + 30.0 * i
            events += periodic_events(f, period, 12, start=float(rng.uniform(0, 60)))
        return events

    def test_adjustment_respects_capacity_and_spills(self):
        res = run(
            self._pressure_events(),
            EcoLifeScheduler(),
            pool_capacity_old_gb=3.0,
            pool_capacity_new_gb=3.0,
        )
        # Memory pressure is real: something was spilled or evicted.
        assert res.spilled_count + res.evicted_count > 0

    def test_adjustment_beats_no_adjustment_under_pressure(self):
        events = self._pressure_events()
        with_adj = run(
            events, EcoLifeScheduler(),
            pool_capacity_old_gb=3.0, pool_capacity_new_gb=3.0,
        )
        without = run(
            events, EcoLifeScheduler.without_adjustment(),
            pool_capacity_old_gb=3.0, pool_capacity_new_gb=3.0,
        )
        # The paper's Fig. 11: adjustment keeps more functions warm.
        assert with_adj.warm_ratio >= without.warm_ratio

    def test_no_adjustment_ranking_keeps_incumbents(self):
        sched = EcoLifeScheduler.without_adjustment()
        assert sched.allow_spill is False
        res = run(
            self._pressure_events(), sched,
            pool_capacity_old_gb=3.0, pool_capacity_new_gb=3.0,
        )
        assert res.spilled_count == 0


class TestAdjusterScoring:
    def test_benefit_score_higher_for_expensive_cold_start(self):
        from repro.core import WarmPoolAdjuster
        from tests.test_core_objective import make_env

        env = make_env()
        cfg = EcoLifeConfig()
        from repro.core.objective import CostModel

        costs = CostModel(env, cfg)
        adj = WarmPoolAdjuster(env, cfg, costs)
        heavy_cold = _func("h", cold_s=6.0)
        light_cold = _func("l", cold_s=0.3)
        s_h = adj.benefit_score(heavy_cold, Generation.NEW, 250.0)
        s_l = adj.benefit_score(light_cold, Generation.NEW, 250.0)
        assert s_h > s_l
