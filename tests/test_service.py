"""Online decision service: replay parity, checkpointing, HTTP e2e.

The anchor assertions (ISSUE 7 acceptance): decisions served over
``/decide`` against a recorded fixture / wrapped trace are bit-identical
to the replay engine's decisions on the equivalent trace, including
across a checkpoint/restore cycle.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.carbon import RecordedFixtureProvider, TraceProvider
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import quick_scenario
from repro.service import (
    DecisionServer,
    DecisionService,
    LatencyWindow,
    LiveArrivalLog,
    ServiceMetrics,
    StaleCarbonFeed,
)
from repro.simulator.engine import SimulationEngine


def replay_payloads(scenario, config=None):
    """The replay engine's decisions, in the service's payload shape."""
    engine = SimulationEngine(
        pair=scenario.pair,
        trace=scenario.trace,
        ci_trace=scenario.ci_trace,
        config=scenario.sim_config,
    )
    result = engine.run(EcoLifeScheduler(config or EcoLifeConfig()))
    return [DecisionService._decision_payload(r) for r in result.records]


def scenario_service(scenario, provider=None, **kwargs):
    functions = {inv.func.name: inv.func for inv in scenario.trace}
    return DecisionService(
        provider or TraceProvider(scenario.ci_trace),
        pair=scenario.pair,
        config=EcoLifeConfig(),
        sim_config=scenario.sim_config,
        functions=functions,
        **kwargs,
    )


def scenario_arrivals(scenario):
    return [(inv.t, inv.func.name) for inv in scenario.trace]


class TestLatencyWindow:
    def test_percentiles_nearest_rank(self):
        w = LatencyWindow()
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            w.observe(v)
        assert w.percentile(50.0) == 3.0
        assert w.percentile(99.0) == 5.0
        assert w.percentile(0.0) == 1.0

    def test_empty_and_bounds(self):
        w = LatencyWindow(maxlen=2)
        assert w.percentile(50.0) is None
        with pytest.raises(ValueError):
            w.percentile(101.0)
        for v in (1.0, 2.0, 3.0):
            w.observe(v)
        assert len(w) == 2 and w.count == 3  # window bounded, count lifetime
        with pytest.raises(ValueError):
            LatencyWindow(maxlen=0)

    def test_metrics_snapshot_shape(self):
        m = ServiceMetrics()
        snap = m.snapshot()
        assert snap["decisions_total"] == 0
        assert snap["decision_latency_p99_ms"] is None
        m.observe_batch(4, 0.004)
        snap = m.snapshot()
        assert snap["decisions_total"] == 4
        assert snap["decide_batches_total"] == 1
        assert snap["decision_latency_p50_ms"] == pytest.approx(1.0)


class TestLiveArrivalLog:
    def test_rate_matches_invocation_trace_formula(self):
        scenario = quick_scenario(seed=3)
        log = LiveArrivalLog()
        log.extend([inv.t for inv in scenario.trace])
        rng = np.random.default_rng(0)
        for t in rng.uniform(0.0, scenario.trace.duration_s, 200):
            assert log.rate_per_minute(t) == scenario.trace.rate_per_minute(t)
            assert log.rate_per_minute(t, 300.0) == scenario.trace.rate_per_minute(
                t, 300.0
            )

    def test_rejects_out_of_order(self):
        log = LiveArrivalLog()
        log.extend([1.0, 2.0, 2.0])  # ties are fine
        with pytest.raises(ValueError, match="time order"):
            log.extend([1.5])
        with pytest.raises(ValueError, match="time order"):
            log.extend([3.0, 2.5])

    def test_prune_keys_off_decided_time(self):
        log = LiveArrivalLog(retention_s=100.0)
        log.extend([0.0, 50.0, 120.0, 200.0])
        # Nothing decided yet past 100s of the oldest: logging alone
        # never prunes (the service logs whole batches before stepping).
        assert len(log) == 4
        log.prune(decided_t=200.0)
        assert log.times_s.tolist() == [120.0, 200.0]

    def test_lookahead_refused(self):
        with pytest.raises(RuntimeError, match="look ahead"):
            LiveArrivalLog().next_arrival("f", 0.0)

    def test_zero_window_rate_is_zero(self):
        log = LiveArrivalLog()
        log.extend([1.0])
        assert log.rate_per_minute(1.0, 0.0) == 0.0


class TestDecisionParity:
    """/decide == replay, bit for bit (the acceptance criterion)."""

    def test_full_batch_bit_identical_to_replay(self):
        scenario = quick_scenario(seed=11)
        expected = replay_payloads(scenario)
        service = scenario_service(scenario)
        got = service.decide(scenario_arrivals(scenario))
        assert len(got) == len(expected) > 0
        assert got == expected

    def test_fixture_provider_matches_replay_on_equivalent_trace(self):
        """A RecordedFixtureProvider built from the scenario's CI trace
        (full-horizon reveal) reproduces the replay decisions."""
        scenario = quick_scenario(seed=11)
        samples = list(
            zip(scenario.ci_trace.times_s.tolist(), scenario.ci_trace.values.tolist())
        )
        provider = RecordedFixtureProvider(
            samples, forecast_horizon_s=float("inf")
        )
        provider.poll(0.0)
        service = scenario_service(scenario, provider=provider)
        assert service.decide(scenario_arrivals(scenario)) == replay_payloads(
            scenario
        )

    def test_empty_batch_is_a_noop(self):
        service = scenario_service(quick_scenario(seed=3))
        assert service.decide([]) == []
        assert service.metrics.batches == 0

    def test_validation_errors(self):
        scenario = quick_scenario(seed=3)
        service = scenario_service(scenario)
        arrivals = scenario_arrivals(scenario)
        with pytest.raises(ValueError, match="unknown function"):
            service.decide([(0.0, "no-such-function")])
        service.decide(arrivals[:10])
        with pytest.raises(ValueError, match="time-ordered"):
            service.decide([(arrivals[9][0] - 1.0, arrivals[0][1])])

    def test_stale_feed_refuses_to_decide(self):
        scenario = quick_scenario(seed=3)
        provider = RecordedFixtureProvider(
            [(0.0, 250.0)], max_staleness_s=100.0
        )
        service = scenario_service(scenario, provider=provider)
        arrivals = scenario_arrivals(scenario)
        late = [(t + 150.0, name) for t, name in arrivals[:5]]
        with pytest.raises(StaleCarbonFeed, match="old"):
            service.decide(late)
        assert service.metrics.decisions == 0

    def test_metrics_snapshot_after_decisions(self):
        scenario = quick_scenario(seed=3)
        service = scenario_service(scenario)
        n = len(service.decide(scenario_arrivals(scenario)[:50]))
        snap = service.metrics_snapshot()
        assert snap["decisions_total"] == n == 50
        assert snap["provider_healthy"] is True
        assert snap["swarms_live"] > 0
        assert snap["decision_latency_p99_ms"] > 0.0


class TestCheckpointRestore:
    def test_checkpoint_restore_bit_identical(self, tmp_path):
        """Decide half, checkpoint, restore into a fresh service, decide
        the rest: the concatenation equals an uninterrupted replay."""
        scenario = quick_scenario(seed=5)
        expected = replay_payloads(scenario)
        arrivals = scenario_arrivals(scenario)
        mid = len(arrivals) // 2

        service = scenario_service(scenario)
        first = service.decide(arrivals[:mid])
        summary = service.checkpoint(str(tmp_path / "ckpt"))
        assert summary["functions"] > 0 and summary["records"] == mid

        functions = {inv.func.name: inv.func for inv in scenario.trace}
        restored = DecisionService.restore(
            str(tmp_path / "ckpt"),
            provider=TraceProvider(scenario.ci_trace),
            pair=scenario.pair,
            config=EcoLifeConfig(),
            sim_config=scenario.sim_config,
            functions=functions,
        )
        second = restored.decide(arrivals[mid:])
        assert first + second == expected

    def test_checkpointed_service_keeps_serving_identically(self, tmp_path):
        """checkpoint() must not perturb the service it ran on."""
        scenario = quick_scenario(seed=5)
        expected = replay_payloads(scenario)
        arrivals = scenario_arrivals(scenario)
        mid = len(arrivals) // 2
        service = scenario_service(scenario)
        first = service.decide(arrivals[:mid])
        service.checkpoint(str(tmp_path / "ckpt"))
        second = service.decide(arrivals[mid:])
        assert first + second == expected

    def test_restore_is_non_destructive(self, tmp_path):
        scenario = quick_scenario(seed=3)
        arrivals = scenario_arrivals(scenario)
        service = scenario_service(scenario)
        service.decide(arrivals[:100])
        service.checkpoint(str(tmp_path / "ckpt"))
        functions = {inv.func.name: inv.func for inv in scenario.trace}
        for _ in range(2):  # the directory can be restored from twice
            restored = DecisionService.restore(
                str(tmp_path / "ckpt"),
                provider=TraceProvider(scenario.ci_trace),
                pair=scenario.pair,
                config=EcoLifeConfig(),
                sim_config=scenario.sim_config,
                functions=functions,
            )
            assert len(restored._engine.records) == 100

    def test_checkpoint_requires_a_directory(self):
        service = scenario_service(quick_scenario(seed=3))
        with pytest.raises(ValueError, match="checkpoint directory"):
            service.checkpoint()

    def test_restore_rejects_unknown_version(self, tmp_path):
        scenario = quick_scenario(seed=3)
        service = scenario_service(scenario)
        service.decide(scenario_arrivals(scenario)[:10])
        service.checkpoint(str(tmp_path / "ckpt"))
        manifest_path = tmp_path / "ckpt" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            DecisionService.restore(
                str(tmp_path / "ckpt"), provider=TraceProvider(scenario.ci_trace)
            )


async def _request(port, method, path, payload=None, close=True):
    """Minimal HTTP/1.1 client for the e2e tests."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        status, body = await _request_on(
            reader, writer, method, path, payload, close=close
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return status, body


async def _request_on(reader, writer, method, path, payload=None, close=True):
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    connection = "close" if close else "keep-alive"
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    raw = await reader.readexactly(int(headers["content-length"]))
    return status, json.loads(raw)


class TestHTTPServer:
    """End-to-end over real sockets: POST recorded arrivals, decisions
    bit-identical to the replay engine (ISSUE 7 acceptance)."""

    def test_e2e_decisions_bit_identical_to_replay(self, tmp_path):
        scenario = quick_scenario(seed=11)
        expected = replay_payloads(scenario)
        arrivals = [
            {"t_s": t, "function": name} for t, name in scenario_arrivals(scenario)
        ]

        async def drive():
            service = scenario_service(
                scenario, checkpoint_dir=str(tmp_path / "ckpt")
            )
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                status, health = await _request(server.port, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"

                status, body = await _request(
                    server.port, "POST", "/decide", {"arrivals": arrivals}
                )
                assert status == 200
                assert body["decisions"] == expected

                status, metrics = await _request(server.port, "GET", "/metrics")
                assert status == 200
                assert metrics["decisions_total"] == len(expected)
                assert metrics["decision_latency_p99_ms"] > 0.0

                status, ckpt = await _request(server.port, "POST", "/checkpoint")
                assert status == 200
                assert ckpt["checkpoint"]["records"] == len(expected)
            finally:
                await server.stop(checkpoint=False)

        asyncio.run(drive())

    def test_error_statuses_and_single_arrival_form(self):
        scenario = quick_scenario(seed=3)
        [expected_first] = replay_payloads(scenario)[:1]
        t0, name0 = scenario_arrivals(scenario)[0]

        async def drive():
            service = scenario_service(scenario)
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                # One bare arrival object is accepted.
                status, body = await _request(
                    server.port, "POST", "/decide", {"t_s": t0, "function": name0}
                )
                assert status == 200
                assert body["decisions"] == [expected_first]

                status, body = await _request(
                    server.port,
                    "POST",
                    "/decide",
                    {"arrivals": [{"t_s": t0 + 1.0, "function": "nope"}]},
                )
                assert status == 400 and "unknown function" in body["error"]

                status, body = await _request(
                    server.port, "POST", "/decide", {"bogus": 1}
                )
                assert status == 400

                status, body = await _request(server.port, "GET", "/nope")
                assert status == 404

                status, body = await _request(server.port, "GET", "/decide")
                assert status == 405
            finally:
                await server.stop(checkpoint=False)

        asyncio.run(drive())

    def test_keep_alive_connection_reuse(self):
        scenario = quick_scenario(seed=3)
        arrivals = scenario_arrivals(scenario)

        async def drive():
            service = scenario_service(scenario)
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    for i in range(3):
                        t, name = arrivals[i]
                        status, _ = await _request_on(
                            reader,
                            writer,
                            "POST",
                            "/decide",
                            {"t_s": t, "function": name},
                            close=(i == 2),
                        )
                        assert status == 200
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                assert service.metrics.decisions == 3
            finally:
                await server.stop(checkpoint=False)

        asyncio.run(drive())

    def test_stale_provider_maps_to_503(self):
        scenario = quick_scenario(seed=3)
        provider = RecordedFixtureProvider([(0.0, 250.0)], max_staleness_s=10.0)
        arrivals = scenario_arrivals(scenario)

        async def drive():
            service = scenario_service(scenario, provider=provider)
            server = DecisionServer(service, port=0)
            await server.start()
            try:
                t, name = arrivals[0]
                status, body = await _request(
                    server.port,
                    "POST",
                    "/decide",
                    {"t_s": t + 100.0, "function": name},
                )
                assert status == 503 and body["stale"] is True
            finally:
                await server.stop(checkpoint=False)

        asyncio.run(drive())

    def test_graceful_stop_checkpoints_when_configured(self, tmp_path):
        scenario = quick_scenario(seed=3)
        arrivals = scenario_arrivals(scenario)

        async def drive():
            service = scenario_service(
                scenario, checkpoint_dir=str(tmp_path / "ckpt")
            )
            server = DecisionServer(service, port=0)
            await server.start()
            t, name = arrivals[0]
            status, _ = await _request(
                server.port, "POST", "/decide", {"t_s": t, "function": name}
            )
            assert status == 200
            await server.stop()  # graceful shutdown checkpoints

        asyncio.run(drive())
        assert (tmp_path / "ckpt" / "manifest.json").exists()


class TestEngineGuards:
    def test_run_refuses_live_arrival_sources(self):
        scenario = quick_scenario(seed=3)
        log = LiveArrivalLog()
        engine = SimulationEngine(
            pair=scenario.pair,
            trace=log,
            ci_trace=scenario.ci_trace,
            config=scenario.sim_config,
        )
        with pytest.raises(TypeError, match="start\\(\\)"):
            engine.run(EcoLifeScheduler(EcoLifeConfig()))

    def test_step_before_start_refused(self):
        scenario = quick_scenario(seed=3)
        engine = SimulationEngine(
            pair=scenario.pair,
            trace=scenario.trace,
            ci_trace=scenario.ci_trace,
            config=scenario.sim_config,
        )
        func = next(iter(scenario.trace)).func
        with pytest.raises(RuntimeError):
            engine.step_arrival(0.0, func)
