"""Simulation engine semantics: warm/cold, accounting, adjustment, flush."""

import math

import pytest

from repro.carbon import CarbonIntensityTrace, CarbonModel
from repro.hardware import PAIR_A, Generation
from repro.simulator import (
    AdjustmentRequest,
    BaseScheduler,
    KeepAliveDecision,
    KeepAliveRequest,
    PlacementRequest,
    SimulationConfig,
    SimulationEngine,
)
from repro.workloads import FunctionProfile, InvocationTrace

CI = 250.0


class FixedTestScheduler(BaseScheduler):
    """Keep-alive for a fixed duration/location; prefer warm placement."""

    name = "fixed-test"

    def __init__(self, gen=Generation.NEW, keepalive_s=600.0, spill=True):
        super().__init__()
        self.gen = gen
        self.keepalive_s = keepalive_s
        self.allow_spill = spill

    def place(self, req: PlacementRequest) -> Generation:
        if req.warm_locations:
            return req.warm_locations[0]
        return self.gen

    def keepalive(self, req: KeepAliveRequest) -> KeepAliveDecision:
        return KeepAliveDecision(location=self.gen, duration_s=self.keepalive_s)


def _func(name="f", mem=1.0, exec_s=2.0, cold_s=1.0):
    return FunctionProfile(
        name=name, mem_gb=mem, exec_ref_s=exec_s, cold_ref_s=cold_s,
        perf_sensitivity=0.0, cold_sensitivity=0.0,
    )


def _engine(events, config=None, ci=CI):
    trace = InvocationTrace.from_events(events)
    return SimulationEngine(
        pair=PAIR_A,
        trace=trace,
        ci_trace=CarbonIntensityTrace.constant(ci),
        config=config or SimulationConfig(setup_delay_s=0.0),
    )


class TestWarmColdSemantics:
    def test_first_invocation_is_cold(self):
        f = _func()
        res = _engine([(0.0, f)]).run(FixedTestScheduler())
        assert len(res) == 1
        assert res.records[0].cold
        assert res.records[0].service_s == pytest.approx(3.0)  # cold 1 + exec 2

    def test_reinvocation_within_keepalive_is_warm(self):
        f = _func()
        # Second invocation 100 s after the first *completes* (3 s service).
        res = _engine([(0.0, f), (103.0, f)]).run(FixedTestScheduler())
        assert not res.records[1].cold
        assert res.records[1].service_s == pytest.approx(2.0)

    def test_reinvocation_after_keepalive_is_cold(self):
        f = _func()
        # Keep-alive 600 s starting at t=3; expired by t=800.
        res = _engine([(0.0, f), (800.0, f)]).run(FixedTestScheduler())
        assert res.records[1].cold

    def test_boundary_exactly_at_expiry_is_cold(self):
        f = _func()
        # Keep-alive ends at 3 + 600 = 603; invocation at exactly 603 misses.
        res = _engine([(0.0, f), (603.0, f)]).run(FixedTestScheduler())
        assert res.records[1].cold

    def test_just_before_expiry_is_warm(self):
        f = _func()
        res = _engine([(0.0, f), (602.9, f)]).run(FixedTestScheduler())
        assert not res.records[1].cold

    def test_no_keepalive_means_always_cold(self):
        f = _func()
        res = _engine([(0.0, f), (10.0, f)]).run(
            FixedTestScheduler(keepalive_s=0.0)
        )
        assert res.records[1].cold
        assert res.total_keepalive_carbon_g == 0.0

    def test_distinct_functions_do_not_share_warmth(self):
        fa, fb = _func("a"), _func("b")
        res = _engine([(0.0, fa), (10.0, fb)]).run(FixedTestScheduler())
        assert res.records[1].cold


class TestCarbonAccounting:
    def test_keepalive_truncated_by_warm_hit(self):
        """Keep-alive carbon accrues only until the next (warm) invocation."""
        f = _func()
        res = _engine([(0.0, f), (103.0, f)]).run(FixedTestScheduler())
        model = CarbonModel(trace=CarbonIntensityTrace.constant(CI))
        # Segment: from t=3 (first completion) to t=103 (warm hit).
        expected = model.keepalive(PAIR_A.new, f.mem_gb, 3.0, 103.0).total
        assert res.records[0].keepalive_carbon.total == pytest.approx(expected)
        assert res.records[0].keepalive_s == pytest.approx(100.0)

    def test_keepalive_full_period_on_expiry(self):
        f = _func()
        res = _engine([(0.0, f), (5000.0, f)]).run(FixedTestScheduler())
        assert res.records[0].keepalive_s == pytest.approx(600.0)

    def test_flush_accrues_trailing_containers(self):
        f = _func()
        res = _engine([(0.0, f)]).run(FixedTestScheduler())
        # No further invocation: the container expires naturally.
        assert res.records[0].keepalive_s == pytest.approx(600.0)

    def test_service_carbon_matches_model(self):
        f = _func()
        res = _engine([(0.0, f)]).run(FixedTestScheduler())
        model = CarbonModel(trace=CarbonIntensityTrace.constant(CI))
        expected = model.service(PAIR_A.new, f.mem_gb, 0.0, 2.0, 1.0).total
        assert res.records[0].service_carbon.total == pytest.approx(expected)

    def test_attribution_to_decider(self):
        """Each keep-alive segment lands on the invocation that decided it."""
        f = _func()
        res = _engine([(0.0, f), (103.0, f), (206.0, f)]).run(FixedTestScheduler())
        assert res.records[0].keepalive_s == pytest.approx(100.0)
        assert res.records[1].keepalive_s == pytest.approx(101.0)  # 105 -> 206
        assert res.records[2].keepalive_s == pytest.approx(600.0)  # expires

    def test_total_carbon_is_sum_of_parts(self):
        f = _func()
        res = _engine([(0.0, f), (50.0, f), (900.0, f)]).run(FixedTestScheduler())
        assert res.total_carbon_g == pytest.approx(
            res.total_service_carbon_g + res.total_keepalive_carbon_g
        )

    def test_old_placement_uses_old_server(self):
        f = _func()
        res = _engine([(0.0, f)]).run(FixedTestScheduler(gen=Generation.OLD))
        assert res.records[0].location is Generation.OLD
        model = CarbonModel(trace=CarbonIntensityTrace.constant(CI))
        expected = model.service(PAIR_A.old, f.mem_gb, 0.0, 2.0, 1.0).total
        assert res.records[0].service_carbon.total == pytest.approx(expected)


class TestMemoryPressure:
    def _config(self, old=2.0, new=2.0):
        return SimulationConfig(
            pool_capacity_old_gb=old, pool_capacity_new_gb=new, setup_delay_s=0.0
        )

    def test_default_ranking_evicts_earliest_expiry(self):
        """Two 1 GB functions fill a 2 GB pool; a third evicts the oldest."""
        fa, fb, fc = _func("a"), _func("b"), _func("c")
        sched = FixedTestScheduler(spill=False)
        res = _engine(
            [(0.0, fa), (10.0, fb), (20.0, fc), (25.0, fa)],
            config=self._config(),
        ).run(sched)
        # 'a' (earliest expiry) was evicted to fit 'c' at t=23 -> cold at 25.
        assert res.records[3].cold
        assert res.records[0].evicted
        # Its keep-alive was cut at the adjustment time (t=23).
        assert res.records[0].keepalive_s == pytest.approx(20.0)

    def test_spill_moves_to_other_pool(self):
        fa, fb, fc = _func("a"), _func("b"), _func("c")
        sched = FixedTestScheduler(spill=True)
        res = _engine(
            [(0.0, fa), (10.0, fb), (20.0, fc), (25.0, fa)],
            config=self._config(old=8.0),
        ).run(sched)
        # 'a' spilled to the old pool instead of dying -> warm at t=25.
        assert res.records[0].spilled
        assert not res.records[0].evicted
        assert not res.records[3].cold
        assert res.records[3].location is Generation.OLD

    def test_spilled_segment_split_accounting(self):
        """A moved container accrues old-pool rates after the move."""
        fa, fb, fc = _func("a"), _func("b"), _func("c")
        res = _engine(
            [(0.0, fa), (10.0, fb), (20.0, fc)],
            config=self._config(old=8.0),
        ).run(FixedTestScheduler(spill=True))
        model = CarbonModel(trace=CarbonIntensityTrace.constant(CI))
        # Segment 1: new pool from t=3 to t=23; segment 2: old pool 23..603.
        expected = (
            model.keepalive(PAIR_A.new, 1.0, 3.0, 23.0).total
            + model.keepalive(PAIR_A.old, 1.0, 23.0, 603.0).total
        )
        assert res.records[0].keepalive_carbon.total == pytest.approx(expected)

    def test_incoming_dropped_when_nothing_fits(self):
        """A function bigger than the pool is dropped outright."""
        big = _func("big", mem=5.0)
        res = _engine([(0.0, big)], config=self._config()).run(
            FixedTestScheduler(spill=False)
        )
        assert res.records[0].dropped
        assert res.records[0].keepalive_s == 0.0

    def test_oversized_function_executes_fine(self):
        """Memory caps only constrain keep-alive, not execution."""
        big = _func("big", mem=50.0)
        res = _engine([(0.0, big)], config=self._config()).run(FixedTestScheduler())
        assert len(res) == 1


class TestEngineLifecycle:
    def test_single_use(self):
        f = _func()
        eng = _engine([(0.0, f)])
        eng.run(FixedTestScheduler())
        with pytest.raises(RuntimeError, match="single-use"):
            eng.run(FixedTestScheduler())

    def test_lookahead_denied_without_flag(self):
        f = _func()

        class Peeker(FixedTestScheduler):
            def keepalive(self, req):
                self.env.next_arrival(req.func.name, req.t_end)
                return super().keepalive(req)

        with pytest.raises(PermissionError):
            _engine([(0.0, f)]).run(Peeker())

    def test_decision_overhead_measured(self):
        f = _func()
        res = _engine([(0.0, f), (10.0, f)]).run(FixedTestScheduler())
        assert all(r.decision_wall_s >= 0.0 for r in res.records)
        assert res.total_decision_wall_s > 0.0

    def test_overhead_measurement_can_be_disabled(self):
        f = _func()
        cfg = SimulationConfig(setup_delay_s=0.0, measure_decision_overhead=False)
        res = _engine([(0.0, f)], config=cfg).run(FixedTestScheduler())
        assert res.total_decision_wall_s == 0.0

    def test_uncapped_config(self):
        cfg = SimulationConfig().uncapped()
        assert cfg.pool_capacity_old_gb == math.inf

    def test_summary_renders(self):
        f = _func()
        res = _engine([(0.0, f), (10.0, f)]).run(FixedTestScheduler())
        text = res.summary()
        assert "fixed-test" in text
        assert "total carbon" in text


class TestMisbehavingScheduler:
    def test_bad_ranking_detected(self):
        class BadRanker(FixedTestScheduler):
            def rank_keepalive_candidates(self, req: AdjustmentRequest):
                return list(req.candidates)[:-1]  # drops one candidate

        fa, fb, fc = _func("a"), _func("b"), _func("c")
        cfg = SimulationConfig(
            pool_capacity_old_gb=2.0, pool_capacity_new_gb=2.0, setup_delay_s=0.0
        )
        with pytest.raises(RuntimeError, match="permutation"):
            _engine([(0.0, fa), (10.0, fb), (20.0, fc)], config=cfg).run(
                BadRanker(spill=False)
            )
