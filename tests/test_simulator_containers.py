"""Warm pool mechanics."""

import math

import pytest

from repro.hardware import Generation
from repro.simulator import PoolFullError, WarmContainer, WarmPool
from repro.workloads import FunctionProfile


def _container(name, mem=1.0, gen=Generation.NEW, start=0.0, expire=600.0, idx=0):
    func = FunctionProfile(name=name, mem_gb=mem, exec_ref_s=1.0, cold_ref_s=1.0)
    return WarmContainer(
        func=func, location=gen, segment_start_s=start, expire_s=expire,
        decider_index=idx,
    )


class TestWarmPool:
    def test_insert_and_lookup(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=4.0)
        c = _container("a", mem=1.5)
        pool.insert(c)
        assert "a" in pool
        assert pool.get("a") is c
        assert pool.used_gb == pytest.approx(1.5)
        assert pool.free_gb == pytest.approx(2.5)

    def test_capacity_enforced(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=1.5))
        assert not pool.fits(1.0)
        with pytest.raises(PoolFullError):
            pool.insert(_container("b", mem=1.0))

    def test_exact_fit_allowed(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=1.5))
        pool.insert(_container("b", mem=0.5))
        assert len(pool) == 2

    def test_remove_restores_capacity(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=2.0))
        pool.remove("a")
        assert pool.used_gb == 0.0
        pool.insert(_container("b", mem=2.0))

    def test_remove_missing_raises(self):
        pool = WarmPool(generation=Generation.NEW)
        with pytest.raises(KeyError):
            pool.remove("ghost")

    def test_duplicate_insert_rejected(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=10.0)
        pool.insert(_container("a"))
        with pytest.raises(ValueError, match="already"):
            pool.insert(_container("a"))

    def test_generation_mismatch_rejected(self):
        pool = WarmPool(generation=Generation.NEW)
        with pytest.raises(ValueError, match="location"):
            pool.insert(_container("a", gen=Generation.OLD))

    def test_unbounded_default(self):
        pool = WarmPool(generation=Generation.OLD)
        assert pool.capacity_gb == math.inf
        for i in range(50):
            pool.insert(_container(f"f{i}", mem=100.0, gen=Generation.OLD))
        assert len(pool) == 50

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WarmPool(generation=Generation.NEW, capacity_gb=-1.0)


class TestWarmContainer:
    def test_remaining(self):
        c = _container("a", expire=100.0)
        assert c.remaining_s(40.0) == 60.0
        assert c.remaining_s(150.0) == 0.0

    def test_properties(self):
        c = _container("a", mem=2.5)
        assert c.name == "a"
        assert c.mem_gb == 2.5
