"""Warm pool mechanics."""

import math

import pytest

from repro.hardware import Generation
from repro.simulator import PoolFullError, WarmContainer, WarmPool
from repro.workloads import FunctionProfile


def _container(name, mem=1.0, gen=Generation.NEW, start=0.0, expire=600.0, idx=0):
    func = FunctionProfile(name=name, mem_gb=mem, exec_ref_s=1.0, cold_ref_s=1.0)
    return WarmContainer(
        func=func, location=gen, segment_start_s=start, expire_s=expire,
        decider_index=idx,
    )


class TestWarmPool:
    def test_insert_and_lookup(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=4.0)
        c = _container("a", mem=1.5)
        pool.insert(c)
        assert "a" in pool
        assert pool.get("a") is c
        assert pool.used_gb == pytest.approx(1.5)
        assert pool.free_gb == pytest.approx(2.5)

    def test_capacity_enforced(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=1.5))
        assert not pool.fits(1.0)
        with pytest.raises(PoolFullError):
            pool.insert(_container("b", mem=1.0))

    def test_exact_fit_allowed(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=1.5))
        pool.insert(_container("b", mem=0.5))
        assert len(pool) == 2

    def test_remove_restores_capacity(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=2.0)
        pool.insert(_container("a", mem=2.0))
        pool.remove("a")
        assert pool.used_gb == 0.0
        pool.insert(_container("b", mem=2.0))

    def test_remove_missing_raises(self):
        pool = WarmPool(generation=Generation.NEW)
        with pytest.raises(KeyError):
            pool.remove("ghost")

    def test_duplicate_insert_rejected(self):
        pool = WarmPool(generation=Generation.NEW, capacity_gb=10.0)
        pool.insert(_container("a"))
        with pytest.raises(ValueError, match="already"):
            pool.insert(_container("a"))

    def test_generation_mismatch_rejected(self):
        pool = WarmPool(generation=Generation.NEW)
        with pytest.raises(ValueError, match="location"):
            pool.insert(_container("a", gen=Generation.OLD))

    def test_unbounded_default(self):
        pool = WarmPool(generation=Generation.OLD)
        assert pool.capacity_gb == math.inf
        for i in range(50):
            pool.insert(_container(f"f{i}", mem=100.0, gen=Generation.OLD))
        assert len(pool) == 50

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WarmPool(generation=Generation.NEW, capacity_gb=-1.0)

    def test_ledger_exact_under_long_churn(self):
        """The memory ledger must not drift: a running +=/-= ledger
        accumulates rounding error over insert/remove churn (0.1, 0.3,
        ... are not representable), which the old near-zero clamp only
        hid. ``used_gb`` must equal the exact (fsum) sum of the current
        members at every step, and exactly 0.0 whenever empty."""
        pool = WarmPool(generation=Generation.NEW, capacity_gb=64.0)
        sizes = [0.1, 0.3, 0.7, 1.1, 0.9, 0.2]
        live = {}
        for step in range(5000):
            name = f"f{step % 23}"
            if name in live:
                pool.remove(name)
                del live[name]
            else:
                mem = sizes[step % len(sizes)]
                pool.insert(_container(name, mem=mem))
                live[name] = mem
            assert pool.used_gb == math.fsum(live.values())
            assert pool.free_gb == pool.capacity_gb - pool.used_gb
        for name in list(live):
            pool.remove(name)
        assert pool.used_gb == 0.0
        assert len(pool) == 0

    def test_ledger_exact_at_capacity_boundary(self):
        """Ten 0.1 GB inserts then removes: the drifting ledger answered
        ``fits(0.5)`` wrong near the boundary; the exact one must accept
        a container that exactly fills remaining capacity."""
        pool = WarmPool(generation=Generation.NEW, capacity_gb=1.0)
        for i in range(10):
            pool.insert(_container(f"f{i}", mem=0.1))
        for i in range(9):
            pool.remove(f"f{i}")
        assert pool.used_gb == 0.1
        assert pool.fits(0.9)


class TestWarmContainer:
    def test_remaining(self):
        c = _container("a", expire=100.0)
        assert c.remaining_s(40.0) == 60.0
        assert c.remaining_s(150.0) == 0.0

    def test_properties(self):
        c = _container("a", mem=2.5)
        assert c.name == "a"
        assert c.mem_gb == 2.5
