"""Warm-pool adjuster: ranking, arrival weighting, determinism."""

import numpy as np
import pytest

from repro.core import ArrivalRegistry, EcoLifeConfig, WarmPoolAdjuster
from repro.core.objective import CostModel
from repro.hardware import Generation
from repro.simulator.scheduler import AdjustmentRequest, PoolCandidate
from repro.workloads import FunctionProfile
from tests.test_core_objective import make_env


def _candidate(name, mem=1.0, cold_s=2.0, expire=600.0, incoming=False):
    func = FunctionProfile(
        name=name, mem_gb=mem, exec_ref_s=2.0, cold_ref_s=cold_s
    )
    return PoolCandidate(func=func, expire_s=expire, is_incoming=incoming)


def _adjuster(arrivals=None, **cfg_kw):
    env = make_env()
    cfg = EcoLifeConfig(**cfg_kw)
    return WarmPoolAdjuster(env, cfg, CostModel(env, cfg), arrivals)


def _request(candidates, t=0.0):
    return AdjustmentRequest(
        t=t,
        generation=Generation.NEW,
        candidates=tuple(candidates),
        capacity_gb=2.0,
    )


class TestRanking:
    def test_higher_cold_benefit_ranks_first(self):
        adj = _adjuster()
        heavy = _candidate("heavy", cold_s=6.0)
        light = _candidate("light", cold_s=0.3)
        ranked = adj.rank(_request([light, heavy]))
        assert [c.name for c in ranked] == ["heavy", "light"]

    def test_permutation_preserved(self):
        adj = _adjuster()
        cands = [_candidate(f"f{i}", cold_s=0.5 + i) for i in range(5)]
        ranked = adj.rank(_request(cands))
        assert sorted(c.name for c in ranked) == sorted(c.name for c in cands)

    def test_deterministic_tiebreak(self):
        adj = _adjuster()
        a = _candidate("aa", mem=0.5)
        b = _candidate("bb", mem=0.5)
        r1 = adj.rank(_request([a, b]))
        r2 = adj.rank(_request([b, a]))
        assert [c.name for c in r1] == [c.name for c in r2]


class TestArrivalWeighting:
    def _arrivals_with_period(self, name, period, n=40):
        reg = ArrivalRegistry()
        for t in np.arange(n) * period:
            reg.observe(name, float(t))
        return reg

    def test_imminent_function_outranks_idle_one(self):
        """Same cold-start benefit, but one function returns every 2 min
        while the other returns every 2 h: the hot one keeps its slot."""
        reg = self._arrivals_with_period("hot", 120.0)
        for t in np.arange(3) * 7200.0:
            reg.observe("cold", float(t))
        adj = _adjuster(arrivals=reg)
        hot = _candidate("hot", expire=600.0)
        idle = _candidate("cold", expire=600.0)
        ranked = adj.rank(_request([idle, hot]))
        assert ranked[0].name == "hot"

    def test_weighting_can_be_disabled(self):
        reg = self._arrivals_with_period("hot", 120.0)
        for t in np.arange(3) * 7200.0:
            reg.observe("cold", float(t))
        adj = _adjuster(arrivals=reg, adjustment_arrival_weighting=False)
        hot = _candidate("hot", expire=600.0)
        idle = _candidate("cold", expire=600.0)
        # Identical profiles -> identical paper-literal scores; arrival
        # statistics must not influence the ranking when disabled.
        assert adj.priority(hot, _request([hot, idle])) == pytest.approx(
            adj.priority(idle, _request([hot, idle]))
        )

    def test_arrival_mass_bounds(self):
        reg = self._arrivals_with_period("f", 120.0)
        adj = _adjuster(arrivals=reg)
        c_soon = _candidate("f", expire=600.0)
        c_expired = _candidate("f", expire=0.0)
        assert 0.0 <= adj.arrival_mass(c_expired, t=10.0) <= adj.arrival_mass(
            c_soon, t=10.0
        ) <= 1.0

    def test_no_registry_means_neutral_weight(self):
        adj = _adjuster(arrivals=None)
        assert adj.arrival_mass(_candidate("x"), t=0.0) == 1.0
