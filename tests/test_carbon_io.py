"""Carbon-intensity CSV I/O."""

import numpy as np
import pytest

from repro.carbon import generate_region_trace
from repro.carbon.io import load_ci_csv, save_ci_csv


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        original = generate_region_trace("NY", days=0.1, seed=2)
        path = tmp_path / "ny.csv"
        save_ci_csv(original, path)
        loaded = load_ci_csv(path)
        assert loaded.values.size == original.values.size
        assert np.allclose(loaded.values, original.values, atol=1e-3)
        assert np.allclose(loaded.times_s, original.times_s, atol=0.1)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "grid.csv"
        save_ci_csv(generate_region_trace("NY", days=0.05, seed=0), path)
        assert load_ci_csv(path).name == "grid"


class TestLoading:
    def test_header_skipped_and_rows_sorted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,ci\n120,300\n0,100\n60,200\n")
        tr = load_ci_csv(path)
        assert tr.times_s.tolist() == [0.0, 60.0, 120.0]
        assert tr.at(61.0) == 200.0

    def test_iso_timestamps_rebased(self, tmp_path):
        path = tmp_path / "iso.csv"
        path.write_text(
            "2024-01-01T00:00:00,100\n"
            "2024-01-01T00:01:00,200\n"
            "2024-01-01T00:02:00,300\n"
        )
        tr = load_ci_csv(path, iso=True)
        assert tr.times_s.tolist() == [0.0, 60.0, 120.0]

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("header,only\n")
        with pytest.raises(ValueError, match="no .* rows"):
            load_ci_csv(path)

    def test_malformed_rows_ignored(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("0,100\nnot,a,row\n60,abc\n120,300\n")
        tr = load_ci_csv(path)
        assert tr.values.tolist() == [100.0, 300.0]

    def test_loaded_trace_is_fully_functional(self, tmp_path):
        path = tmp_path / "f.csv"
        path.write_text("0,100\n60,200\n")
        tr = load_ci_csv(path)
        assert tr.integrate(0.0, 120.0) == pytest.approx(60 * 100 + 60 * 200)
