"""Grid aggregation helpers: pivoting sweeps into % vs reference tables."""

import pytest

from repro.analysis.grid import (
    grid_gap_rows,
    grid_gap_table,
    grid_points,
    mean_margins,
    pairwise_gap,
    worst_margins,
)


class FakeResult:
    """Duck-typed stand-in for SimulationResult / ResultSummary."""

    def __init__(self, carbon, service, warm=0.5):
        self.total_carbon_g = carbon
        self.mean_service_s = service
        self.warm_ratio = warm


@pytest.fixture
def by_scenario():
    return {
        "scen-a": {
            "oracle": FakeResult(100.0, 1.0),
            "ecolife": FakeResult(110.0, 1.05),
            "new-only": FakeResult(150.0, 1.20),
        },
        "scen-b": {
            "oracle": FakeResult(200.0, 2.0),
            "ecolife": FakeResult(210.0, 2.2),
            "new-only": FakeResult(260.0, 2.2),
        },
    }


class TestGridPoints:
    def test_reference_at_origin(self, by_scenario):
        points = grid_points(by_scenario)
        for label in by_scenario:
            assert points[label]["oracle"].carbon_pct == pytest.approx(0.0)
            assert points[label]["oracle"].service_pct == pytest.approx(0.0)

    def test_percentages(self, by_scenario):
        points = grid_points(by_scenario)
        assert points["scen-a"]["ecolife"].carbon_pct == pytest.approx(10.0)
        assert points["scen-a"]["ecolife"].service_pct == pytest.approx(5.0)

    def test_missing_reference_raises(self, by_scenario):
        del by_scenario["scen-a"]["oracle"]
        with pytest.raises(KeyError):
            grid_points(by_scenario)


class TestGapRows:
    def test_excludes_reference(self, by_scenario):
        rows = grid_gap_rows(by_scenario)
        assert len(rows) == 4
        assert all(r.scheduler != "oracle" for r in rows)

    def test_mean_margins(self, by_scenario):
        rows = grid_gap_rows(by_scenario)
        svc, co2 = mean_margins(rows, "ecolife")
        assert co2 == pytest.approx((10.0 + 5.0) / 2)
        assert svc == pytest.approx((5.0 + 10.0) / 2)

    def test_worst_margins(self, by_scenario):
        rows = grid_gap_rows(by_scenario)
        svc, co2 = worst_margins(rows, "new-only")
        assert co2 == pytest.approx(50.0)
        assert svc == pytest.approx(20.0)

    def test_unknown_scheduler_raises(self, by_scenario):
        rows = grid_gap_rows(by_scenario)
        with pytest.raises(KeyError):
            mean_margins(rows, "nope")
        with pytest.raises(KeyError):
            worst_margins(rows, "nope")


class TestRendering:
    def test_table_mentions_every_cell(self, by_scenario):
        table = grid_gap_table(by_scenario, title="test sweep")
        assert "test sweep" in table
        assert "scen-a" in table and "scen-b" in table
        assert "ecolife" in table and "new-only" in table
        assert "oracle" not in table.splitlines()[-1]


class TestPairwiseGap:
    def test_gap(self, by_scenario):
        svc, co2 = pairwise_gap(by_scenario["scen-a"], "new-only", "ecolife")
        assert co2 == pytest.approx((150.0 / 110.0 - 1.0) * 100.0)
        assert svc == pytest.approx((1.20 / 1.05 - 1.0) * 100.0)
