"""Cross-tick decision batching on continuous traces
(``EcoLifeConfig.decision_quantum_s``).

Default off (quantum 0) must leave replays untouched. With any quantum
the bucketed replay is *bit-identical* to the sequential one:
placements still run one arrival at a time against drained pool state,
every decision is evaluated at its own ``t_end``, and the
completion-bounded flush (a group closes before any arrival reaches the
earliest staged ``t_end``) guarantees keep-alive activations enter the
event heap before the drain that pops them -- the engine's event order,
and therefore every warm hit and adjustment, matches the sequential
replay exactly. ``benchmarks/bench_swarm.py`` measures the (zero)
objective error alongside the continuous-trace speedup.
"""

import numpy as np
import pytest

from repro.carbon import CarbonIntensityTrace
from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.hardware import PAIR_A
from repro.simulator import SimulationConfig, SimulationEngine
from repro.workloads import FunctionProfile, InvocationTrace


def continuous_trace(n_funcs=10, horizon_s=900.0, seed=5, mean_iat=12.0):
    """Strictly continuous arrivals: no two invocations share an instant."""
    rng = np.random.default_rng(seed)
    funcs = [
        FunctionProfile(
            name=f"f{i}",
            mem_gb=0.4 + 0.1 * (i % 4),
            exec_ref_s=1.0 + 0.25 * (i % 5),
            cold_ref_s=0.8,
        )
        for i in range(n_funcs)
    ]
    events = []
    for f in funcs:
        t = float(rng.exponential(mean_iat))
        while t < horizon_s:
            events.append((t, f))
            t += float(rng.exponential(mean_iat))
    trace = InvocationTrace.from_events(events)
    assert len(set(trace.times_s)) == len(trace), "arrivals must be distinct"
    return trace


class RecordingScheduler(EcoLifeScheduler):
    """EcoLife that records the keep-alive batch sizes it was handed."""

    def __init__(self, config):
        super().__init__(config)
        self.batch_sizes = []

    def keepalive(self, req):
        self.batch_sizes.append(1)
        return super().keepalive(req)

    def keepalive_batch(self, reqs):
        self.batch_sizes.append(len(reqs))
        return super().keepalive_batch(reqs)


def replay(trace, config, scheduler_cls=EcoLifeScheduler):
    engine = SimulationEngine(
        pair=PAIR_A,
        trace=trace,
        ci_trace=CarbonIntensityTrace.constant(250.0),
        config=SimulationConfig(measure_decision_overhead=False),
    )
    scheduler = scheduler_cls(config)
    return engine.run(scheduler), scheduler


def assert_records_identical(a, b):
    assert len(a.records) == len(b.records)
    assert a.total_carbon_g == b.total_carbon_g
    assert a.total_service_s == b.total_service_s
    for ra, rb in zip(a.records, b.records):
        assert ra.cold == rb.cold
        assert ra.location is rb.location
        assert ra.keepalive_decision == rb.keepalive_decision
        assert ra.keepalive_s == rb.keepalive_s
        assert ra.keepalive_carbon == rb.keepalive_carbon


def min_service_s(trace):
    return min(
        f.service_time_s(PAIR_A.server(g), cold=False, setup_s=0.05)
        for f in trace.functions.values()
        for g in (PAIR_A.old.generation, PAIR_A.new.generation)
    )


class TestQuantumOff:
    def test_zero_quantum_never_groups_distinct_instants(self):
        trace = continuous_trace()
        off, sched = replay(trace, EcoLifeConfig(), RecordingScheduler)
        if sched.supports_keepalive_batch:
            assert max(sched.batch_sizes) == 1
        assert len(off.records) == len(trace)

    def test_scheduler_without_batch_support_ignores_quantum(self):
        cfg = EcoLifeConfig(batch_swarms=False, decision_quantum_s=30.0)
        sched = EcoLifeScheduler(cfg)
        assert sched.decision_quantum_s == 0.0
        trace = continuous_trace(n_funcs=4, horizon_s=300.0)
        quantum, _ = replay(trace, cfg)
        plain, _ = replay(trace, EcoLifeConfig(batch_swarms=False))
        assert_records_identical(quantum, plain)


class TestQuantumOn:
    def test_groups_form_on_continuous_traces(self):
        trace = continuous_trace()
        cfg = EcoLifeConfig(decision_quantum_s=1.0)
        if not EcoLifeScheduler(cfg).supports_keepalive_batch:
            pytest.skip("fleet disabled via ECOLIFE_BATCH_SWARMS")
        _, sched = replay(trace, cfg, RecordingScheduler)
        assert max(sched.batch_sizes) > 1  # batching actually engaged

    def test_small_quantum_is_bit_identical(self):
        """Quantum below the minimum service time reorders nothing."""
        trace = continuous_trace()
        q = 0.5 * min_service_s(trace)
        on, _ = replay(trace, EcoLifeConfig(decision_quantum_s=q))
        off, _ = replay(trace, EcoLifeConfig())
        assert_records_identical(on, off)

    def test_repeated_function_splits_bucket(self):
        """Back-to-back arrivals of one function inside a bucket must
        decide in order (the second depends on the first)."""
        f = FunctionProfile(name="hot", mem_gb=0.5, exec_ref_s=2.0, cold_ref_s=0.5)
        g = FunctionProfile(name="other", mem_gb=0.5, exec_ref_s=2.0, cold_ref_s=0.5)
        events = []
        for k in range(12):
            base = 10.0 * k
            events += [(base, f), (base + 0.25, g), (base + 0.5, f)]
        trace = InvocationTrace.from_events(events)
        on, _ = replay(trace, EcoLifeConfig(decision_quantum_s=1.0))
        off, _ = replay(trace, EcoLifeConfig())
        assert_records_identical(on, off)

    @pytest.mark.parametrize("quantum", [5.0, 30.0, 300.0])
    def test_wide_quantum_is_still_bit_identical(self, quantum):
        """The completion-bounded flush keeps event ordering sequential
        no matter how wide the bucket is."""
        trace = continuous_trace(n_funcs=12, horizon_s=1200.0, mean_iat=8.0)
        on, _ = replay(trace, EcoLifeConfig(decision_quantum_s=quantum))
        off, _ = replay(trace, EcoLifeConfig())
        assert_records_identical(on, off)

    def test_quantum_under_memory_pressure_bit_identical(self):
        """Adjustment/spill/eviction ordering survives bucketing."""
        trace = continuous_trace(n_funcs=12, horizon_s=900.0, mean_iat=6.0)

        def tight(config):
            engine = SimulationEngine(
                pair=PAIR_A,
                trace=trace,
                ci_trace=CarbonIntensityTrace.constant(250.0),
                config=SimulationConfig(
                    measure_decision_overhead=False,
                    pool_capacity_old_gb=1.5,
                    pool_capacity_new_gb=1.5,
                ),
            )
            return engine.run(EcoLifeScheduler(config))

        on = tight(EcoLifeConfig(decision_quantum_s=20.0))
        off = tight(EcoLifeConfig())
        assert off.evicted_count + off.spilled_count > 0  # pressure is real
        assert_records_identical(on, off)
        assert on.evicted_count == off.evicted_count
        assert on.spilled_count == off.spilled_count
        assert on.dropped_count == off.dropped_count

    def test_config_validation(self):
        with pytest.raises(ValueError, match="decision_quantum_s"):
            EcoLifeConfig(decision_quantum_s=-1.0)


class TestAdaptiveQuantum:
    """``adaptive_decision_quantum``: the engine clamps the tick to the
    observed minimum service time. Pure look-ahead heuristic -- replays
    must be bit-identical to the static setting (and to quantum off),
    even though the effective width varies as the running min tightens.
    """

    def test_adaptive_matches_static_bit_identical(self):
        trace = continuous_trace()
        q = 2.0 * min_service_s(trace)  # wider than the clamp target
        adaptive, _ = replay(
            trace,
            EcoLifeConfig(decision_quantum_s=q, adaptive_decision_quantum=True),
        )
        static, _ = replay(trace, EcoLifeConfig(decision_quantum_s=q))
        assert_records_identical(adaptive, static)

    def test_adaptive_without_static_width_matches_off(self):
        """quantum=0 + adaptive: the observed min alone drives the
        width; results still match the sequential replay exactly."""
        trace = continuous_trace(n_funcs=12, horizon_s=1200.0, mean_iat=8.0)
        adaptive, _ = replay(
            trace, EcoLifeConfig(adaptive_decision_quantum=True)
        )
        off, _ = replay(trace, EcoLifeConfig())
        assert_records_identical(adaptive, off)

    def test_adaptive_engages_batching_without_tuning(self):
        """Self-tuning: with no hand-picked quantum, groups still form
        on a dense continuous trace once a service time is observed."""
        cfg = EcoLifeConfig(adaptive_decision_quantum=True)
        if not EcoLifeScheduler(cfg).supports_keepalive_batch:
            pytest.skip("fleet disabled via ECOLIFE_BATCH_SWARMS")
        trace = continuous_trace(n_funcs=12, horizon_s=1200.0, mean_iat=2.0)
        _, sched = replay(trace, cfg, RecordingScheduler)
        assert max(sched.batch_sizes) > 1

    def test_adaptive_requires_batch_support(self):
        cfg = EcoLifeConfig(batch_swarms=False, adaptive_decision_quantum=True)
        sched = EcoLifeScheduler(cfg)
        assert sched.adaptive_decision_quantum is False
        trace = continuous_trace(n_funcs=4, horizon_s=300.0)
        on, _ = replay(trace, cfg)
        plain, _ = replay(trace, EcoLifeConfig(batch_swarms=False))
        assert_records_identical(on, plain)

    def test_adaptive_under_memory_pressure_bit_identical(self):
        trace = continuous_trace(n_funcs=12, horizon_s=900.0, mean_iat=6.0)

        def tight(config):
            engine = SimulationEngine(
                pair=PAIR_A,
                trace=trace,
                ci_trace=CarbonIntensityTrace.constant(250.0),
                config=SimulationConfig(
                    measure_decision_overhead=False,
                    pool_capacity_old_gb=1.5,
                    pool_capacity_new_gb=1.5,
                ),
            )
            return engine.run(EcoLifeScheduler(config))

        on = tight(
            EcoLifeConfig(decision_quantum_s=20.0, adaptive_decision_quantum=True)
        )
        off = tight(EcoLifeConfig())
        assert off.evicted_count + off.spilled_count > 0
        assert_records_identical(on, off)
