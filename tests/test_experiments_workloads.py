"""Workload-shape sensitivity driver: grid wiring, records, rendering."""

import pytest

from repro.experiments.runner import ResultCache
from repro.experiments.sens_workloads import (
    DEFAULT_WORKLOADS,
    run_workload_sensitivity,
)

WORKLOADS = ("azure", "mmpp", "churn:inner=mmpp")


@pytest.fixture(scope="module")
def quick_result():
    # Scale down through a tiny pre-built scenario (the --quick path).
    from repro.experiments.runner import ScenarioSpec

    scenario = ScenarioSpec(n_functions=6, hours=0.5, seed=3).build()
    return run_workload_sensitivity(
        scenario, workloads=WORKLOADS, seed=3, n_workers=1
    )


class TestDriver:
    def test_default_axis_mixes_families(self):
        assert "azure" in DEFAULT_WORKLOADS
        assert any(w.startswith("churn") for w in DEFAULT_WORKLOADS)
        assert len(DEFAULT_WORKLOADS) >= 4

    def test_one_point_per_workload(self, quick_result):
        assert [p.workload for p in quick_result.points] == [
            "azure", "mmpp", "churn[inner=mmpp]",
        ]
        for p in quick_result.points:
            assert p.n_invocations > 0
            assert 0.0 <= p.warm_ratio <= 1.0

    def test_parallel_matches_serial(self):
        from repro.experiments.runner import ScenarioSpec

        scenario = ScenarioSpec(n_functions=6, hours=0.5, seed=3).build()
        serial = run_workload_sensitivity(
            scenario, workloads=WORKLOADS, seed=3, n_workers=1
        )
        parallel = run_workload_sensitivity(
            scenario, workloads=WORKLOADS, seed=3, n_workers=2
        )
        assert serial.points == parallel.points

    def test_render(self, quick_result):
        text = quick_result.render()
        assert "Workload-shape sensitivity" in text
        assert "churn[inner=mmpp]" in text
        assert "worst margins" in text

    def test_get_and_margins(self, quick_result):
        point = quick_result.get("mmpp")
        assert point.workload == "mmpp"
        assert quick_result.max_carbon_margin_pct >= point.carbon_pct_vs_oracle
        with pytest.raises(KeyError):
            quick_result.get("nope")

    def test_get_accepts_cli_syntax_and_specs(self, quick_result):
        from repro.workloads.generators import WorkloadSpec

        # The exact string callers passed in (CLI syntax), the canonical
        # label, and the spec must all resolve to the same point.
        by_cli = quick_result.get("churn:inner=mmpp")
        by_label = quick_result.get("churn[inner=mmpp]")
        by_spec = quick_result.get(WorkloadSpec.make("churn", inner="mmpp"))
        assert by_cli == by_label == by_spec

    def test_record_persisting_cache_adds_p95(self, tmp_path):
        from repro.experiments.runner import ScenarioSpec

        scenario = ScenarioSpec(n_functions=6, hours=0.5, seed=3).build()
        cache = ResultCache(tmp_path, store_records=True)
        result = run_workload_sensitivity(
            scenario, workloads=("azure", "mmpp"), seed=3, cache=cache
        )
        assert all(p.p95_service_s is not None for p in result.points)
        assert all(p.p95_service_s > 0.0 for p in result.points)
        assert "svc p95" in result.render()
