"""SwarmFleet equivalence: batched stepping must be bit-identical to
independent per-function optimizers seeded with the same RNG streams.

This is the contract that lets the KDM route decisions through the fleet
(``EcoLifeConfig.batch_swarms``) without changing a single simulation
number -- see ``docs/optimizers.md``.
"""

import numpy as np
import pytest

from repro.carbon import CarbonIntensityTrace
from repro.core import ArrivalEstimator, EcoLifeConfig, ObjectiveBuilder
from repro.core.arrival import ArrivalRegistry
from repro.core.kdm import KeepAliveDecisionMaker
from repro.core.scheduler import EcoLifeScheduler
from repro.hardware import PAIR_A
from repro.optimizers import DPSOParams, DynamicPSO, ParticleSwarm, SwarmFleet
from repro.simulator import SimulationConfig, SimulationEngine
from repro.workloads import FunctionProfile, InvocationTrace
from tests.test_core_objective import make_env

N_SWARMS = 6
N_PARTICLES = 15


def sphere_at(target):
    return lambda x: ((x - target) ** 2).sum(axis=1)


def batch_spheres(targets):
    """Batched landscape: row i is a sphere centred at targets[i]."""
    targets = np.asarray(targets)

    def fn(x):
        return ((x - targets[: len(x), None, None]) ** 2).sum(axis=2)

    return fn


def seeded_rngs(n, base=77):
    return [np.random.default_rng(base + i) for i in range(n)]


def make_pairing(dynamic=True):
    """N independent optimizers and a fleet sharing their seed streams."""
    targets = np.linspace(0.05, 0.95, N_SWARMS)
    if dynamic:
        solos = [
            DynamicPSO(dim=2, rng=rng, n_particles=N_PARTICLES)
            for rng in seeded_rngs(N_SWARMS)
        ]
        fleet = SwarmFleet(dim=2, n_particles=N_PARTICLES, params=DPSOParams())
    else:
        solos = [
            ParticleSwarm(dim=2, rng=rng, n_particles=N_PARTICLES)
            for rng in seeded_rngs(N_SWARMS)
        ]
        fleet = SwarmFleet(dim=2, n_particles=N_PARTICLES)
    for rng in seeded_rngs(N_SWARMS):
        fleet.add_swarm(rng)
    return solos, fleet, targets


def assert_swarm_equal(solo, fleet, i):
    assert np.array_equal(solo.positions, fleet.positions[i])
    assert np.array_equal(solo.velocities, fleet.velocities[i])
    assert np.array_equal(solo.pbest_positions, fleet.pbest_positions[i])
    assert np.array_equal(solo.pbest_scores, fleet.pbest_scores[i])
    assert np.array_equal(solo.gbest_position, fleet.gbest_position(i))
    assert solo.best_fitness == fleet.best_scores[i]


class TestFleetEquivalence:
    def test_initial_state_matches(self):
        solos, fleet, _ = make_pairing()
        for i, solo in enumerate(solos):
            assert_swarm_equal(solo, fleet, i)

    def test_dynamic_stepping_bit_identical(self):
        """N fleet-stepped DPSO swarms == N independent DynamicPSO
        instances, including perceive-triggered redistribution."""
        solos, fleet, targets = make_pairing(dynamic=True)
        idx = np.arange(N_SWARMS)
        # Deltas chosen so some rounds redistribute and some do not.
        deltas = [(0.0, 0.0), (3.0, 40.0), (0.01, 0.1), (5.0, 10.0)]
        for df, dci in deltas:
            for i, solo in enumerate(solos):
                solo.perceive(df, dci)
                solo.step(sphere_at(targets[i]), iterations=3)
            fired = [fleet.perceive(i, df, dci) for i in range(N_SWARMS)]
            fleet.step(idx, batch_spheres(targets), iterations=3)
            for i, solo in enumerate(solos):
                assert_swarm_equal(solo, fleet, i)
            assert fired == [
                s.last_perception > s.params.perception_threshold for s in solos
            ]

    def test_vanilla_stepping_bit_identical(self):
        solos, fleet, targets = make_pairing(dynamic=False)
        assert not fleet.rescore_bests
        idx = np.arange(N_SWARMS)
        for _ in range(5):
            for i, solo in enumerate(solos):
                solo.step(sphere_at(targets[i]), iterations=2)
            fleet.step(idx, batch_spheres(targets), iterations=2)
        for i, solo in enumerate(solos):
            assert_swarm_equal(solo, fleet, i)

    def test_partial_subset_stepping(self):
        """Stepping a masked subset advances exactly those swarms."""
        solos, fleet, targets = make_pairing()
        subset = np.array([0, 2, 5])
        for i in subset:
            solos[i].perceive(1.0, 1.0)
            solos[i].step(sphere_at(targets[i]), iterations=4)
            fleet.perceive(int(i), 1.0, 1.0)
        fleet.step(subset, batch_spheres(targets[subset]), iterations=4)
        for i, solo in enumerate(solos):
            assert_swarm_equal(solo, fleet, i)  # untouched swarms too

    def test_step_one_interleaves_with_batched_steps(self):
        """The single-swarm fast path shares state and RNG streams with
        the fused kernels, so mixing the two stays equivalent."""
        solos, fleet, targets = make_pairing()
        idx = np.arange(N_SWARMS)
        for i, solo in enumerate(solos):
            solo.step(sphere_at(targets[i]), iterations=2)
        fleet.step(idx, batch_spheres(targets), iterations=2)
        for i, solo in enumerate(solos):
            solo.perceive(2.0, 9.0)
            solo.step(sphere_at(targets[i]), iterations=3)
            fleet.perceive(i, 2.0, 9.0)
            fleet.step_one(i, sphere_at(targets[i]), iterations=3)
        for i, solo in enumerate(solos):
            assert_swarm_equal(solo, fleet, i)

    def test_perceive_batch_matches_scalar_perceive(self):
        """The vectorised perception pass (the KDM's fused path) is
        bit-identical to per-swarm perceive(), including stream-mode
        redistribution draw order."""
        _, batched, targets = make_pairing()
        _, scalar, _ = make_pairing()
        idx = np.arange(N_SWARMS)
        deltas = [(0.0, 0.0), (3.0, 40.0), (0.01, 0.1), (5.0, 10.0)]
        for df, dci in deltas:
            fired = batched.perceive_batch(
                idx, np.full(N_SWARMS, df), np.full(N_SWARMS, dci)
            )
            solo_fired = [scalar.perceive(i, df, dci) for i in range(N_SWARMS)]
            assert fired.tolist() == solo_fired
            batched.step(idx, batch_spheres(targets), iterations=2)
            scalar.step(idx, batch_spheres(targets), iterations=2)
        for i in range(N_SWARMS):
            assert np.array_equal(batched.positions[i], scalar.positions[i])
            assert np.array_equal(batched.omega[i], scalar.omega[i])
            assert np.array_equal(batched.c1[i], scalar.c1[i])
            assert np.array_equal(
                batched.last_perception[i], scalar.last_perception[i]
            )

    def test_perceive_batch_validation(self):
        _, fleet, _ = make_pairing()
        with pytest.raises(ValueError, match="distinct"):
            fleet.perceive_batch(np.array([1, 1]), [0.0, 0.0], [0.0, 0.0])
        vanilla = SwarmFleet(dim=2, n_particles=5)
        vanilla.add_swarm(np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="DPSOParams"):
            vanilla.perceive_batch([0], [0.0], [0.0])
        assert fleet.perceive_batch([], [], []).tolist() == []

    def test_growth_preserves_state(self):
        """Adding swarms past the initial capacity must not disturb the
        stacked state of existing swarms."""
        fleet = SwarmFleet(dim=2, n_particles=5, params=DPSOParams())
        rngs = seeded_rngs(12, base=5)
        first = fleet.add_swarm(rngs[0])
        fleet.step_one(first, sphere_at(0.3), iterations=2)
        snapshot = fleet.positions[first].copy()
        for rng in rngs[1:]:
            fleet.add_swarm(rng)
        assert fleet.n_swarms == 12
        assert np.array_equal(fleet.positions[first], snapshot)


class TestRetirement:
    """Slot retirement/compaction extends the equivalence contract: a
    retired-then-rehydrated swarm continues its stream bit-identically
    to a never-retired one, across slot reuse and compaction remaps."""

    def test_retire_rehydrate_bit_identical(self):
        solos, fleet, targets = make_pairing()
        slot = {i: i for i in range(N_SWARMS)}

        def step_all(df, dci, iters):
            order = sorted(range(N_SWARMS), key=lambda i: slot[i])
            for i, solo in enumerate(solos):
                solo.perceive(df, dci)
                solo.step(sphere_at(targets[i]), iterations=iters)
            for i in order:
                fleet.perceive(slot[i], df, dci)
            fleet.step(
                [slot[i] for i in order],
                batch_spheres(targets[order]),
                iterations=iters,
            )

        step_all(1.0, 5.0, 3)
        archives = {i: fleet.retire(slot.pop(i)) for i in (1, 4)}
        assert fleet.n_swarms == N_SWARMS - 2

        # Survivors keep stepping while 1 and 4 sit archived (their solo
        # twins idle too -- a retired function receives no decisions).
        rest = sorted(slot)
        for i in rest:
            solos[i].perceive(0.2, 0.4)
            solos[i].step(sphere_at(targets[i]), iterations=2)
            fleet.perceive(slot[i], 0.2, 0.4)
        fleet.step(
            [slot[i] for i in rest], batch_spheres(targets[rest]), iterations=2
        )

        for i in (1, 4):
            slot[i] = fleet.rehydrate(archives[i])
        assert fleet.n_swarms == N_SWARMS
        for i in (1, 4):
            assert_swarm_equal(solos[i], fleet, slot[i])

        step_all(3.0, 40.0, 3)  # redistribution round after rehydration
        for i, solo in enumerate(solos):
            assert_swarm_equal(solo, fleet, slot[i])

    def test_retire_frees_slot_for_reuse(self):
        _, fleet, _ = make_pairing()
        cap = fleet.capacity
        fleet.retire(2)
        assert fleet.n_swarms == N_SWARMS - 1
        assert not fleet.is_live(2)
        new = fleet.add_swarm(np.random.default_rng(123))
        assert new == 2  # freed slot reused, no growth
        assert fleet.capacity == cap
        assert fleet.n_swarms == N_SWARMS

    def test_compact_remaps_and_shrinks(self):
        rngs = seeded_rngs(16, base=9)
        solos = [
            DynamicPSO(dim=2, rng=rng, n_particles=N_PARTICLES) for rng in rngs
        ]
        fleet = SwarmFleet(dim=2, n_particles=N_PARTICLES, params=DPSOParams())
        for rng in seeded_rngs(16, base=9):
            fleet.add_swarm(rng)
        targets = np.linspace(0.1, 0.9, 16)
        for i, solo in enumerate(solos):
            solo.step(sphere_at(targets[i]), iterations=2)
        fleet.step(np.arange(16), batch_spheres(targets), iterations=2)
        assert fleet.capacity == 16

        keep = [12, 13, 14, 15]
        for i in range(12):
            fleet.retire(i)
        remap = fleet.compact()
        slot = {i: remap.get(i, i) for i in keep}
        assert sorted(slot.values()) == [0, 1, 2, 3]
        assert fleet.capacity < 16  # occupancy watermark shrank the arrays
        assert fleet.n_swarms == 4
        for i in keep:
            assert_swarm_equal(solos[i], fleet, slot[i])
        # Moved swarms keep stepping bit-identically after the remap.
        for i in keep:
            solos[i].perceive(2.0, 9.0)
            solos[i].step(sphere_at(targets[i]), iterations=3)
            fleet.perceive(slot[i], 2.0, 9.0)
        fleet.step(
            [slot[i] for i in keep],
            batch_spheres(targets[keep]),
            iterations=3,
        )
        for i in keep:
            assert_swarm_equal(solos[i], fleet, slot[i])

    def test_compact_without_free_slots_is_noop(self):
        _, fleet, _ = make_pairing()
        assert fleet.compact() == {}
        assert fleet.n_swarms == N_SWARMS

    def test_archive_is_a_snapshot(self):
        """Stepping other swarms (or reusing the slot) must not leak into
        an existing archive."""
        solos, fleet, targets = make_pairing()
        archive = fleet.retire(0)
        frozen = archive.positions.copy()
        fleet.add_swarm(np.random.default_rng(999))  # reuses slot 0
        fleet.step_one(0, sphere_at(0.5), iterations=2)
        assert np.array_equal(archive.positions, frozen)

    def test_retired_slot_guards(self):
        _, fleet, targets = make_pairing()
        fleet.retire(3)
        with pytest.raises(IndexError, match="live"):
            fleet.retire(3)
        with pytest.raises(IndexError, match="live"):
            fleet.perceive(3, 1.0, 1.0)
        with pytest.raises(IndexError, match="live"):
            fleet.step_one(3, sphere_at(0.5))
        with pytest.raises(IndexError, match="live"):
            fleet.step(np.array([0, 3]), batch_spheres(targets))
        with pytest.raises(IndexError, match="live"):
            fleet.gbest_position(3)
        with pytest.raises(IndexError, match="live"):
            fleet.rng_of(3)

    def test_rehydrate_shape_mismatch_rejected(self):
        _, fleet, _ = make_pairing()
        archive = fleet.retire(0)
        other = SwarmFleet(dim=2, n_particles=5, params=DPSOParams())
        with pytest.raises(ValueError, match="does not match"):
            other.rehydrate(archive)


class TestFleetValidation:
    def test_duplicate_indices_rejected(self):
        _, fleet, targets = make_pairing()
        with pytest.raises(ValueError, match="distinct"):
            fleet.step(np.array([1, 1]), batch_spheres(targets), iterations=1)

    def test_bad_fitness_shape_rejected(self):
        _, fleet, _ = make_pairing()
        with pytest.raises(ValueError, match="shape"):
            fleet.step(np.array([0, 1]), lambda x: np.zeros((2, 3)))

    def test_perceive_requires_dynamic(self):
        fleet = SwarmFleet(dim=2, n_particles=5)
        fleet.add_swarm(np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="DPSOParams"):
            fleet.perceive(0, 1.0, 1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SwarmFleet(dim=0)
        with pytest.raises(ValueError):
            SwarmFleet(dim=2, n_particles=1)
        with pytest.raises(ValueError):
            SwarmFleet(dim=2, vmax=0.0)

    def test_empty_step_is_noop(self):
        _, fleet, _ = make_pairing()
        # Compare only live rows: the backing arrays are np.empty-allocated
        # to capacity, and uninitialized tail rows can hold NaN garbage
        # (NaN != NaN would flakily fail an equality over the full array).
        live = fleet.n_swarms
        before = fleet.positions[:live].copy()
        fleet.step(np.array([], dtype=int), lambda x: x.sum(axis=2))
        assert np.array_equal(before, fleet.positions[:live])


class TestBatchFitness:
    """ObjectiveBuilder.batch_fitness row i == the per-function closure."""

    def _arrivals(self, n):
        out = []
        for i in range(n):
            est = ArrivalEstimator(history=16)
            for j in range(i + 2):
                est.observe(60.0 * j * (i + 1))
            out.append(est)
        return out

    def test_rows_match_per_function_closures(self):
        env = make_env()
        cfg = EcoLifeConfig()
        builder = ObjectiveBuilder(env, cfg)
        funcs = [
            FunctionProfile(
                name=f"f{i}",
                mem_gb=0.3 + 0.2 * i,
                exec_ref_s=1.0 + i,
                cold_ref_s=0.5 + 0.3 * i,
            )
            for i in range(4)
        ]
        ts = [100.0, 260.0, 500.0, 771.0]
        arrivals = self._arrivals(4)

        rng = np.random.default_rng(11)
        x = rng.uniform(size=(4, 30, 2))
        batched = builder.batch_fitness(funcs, ts, arrivals)(x)
        assert batched.shape == (4, 30)
        for i, (func, t, arr) in enumerate(zip(funcs, ts, arrivals)):
            solo = builder.fitness(func, t, arr)(x[i])
            assert np.array_equal(batched[i], solo)

    def test_length_mismatch_rejected(self):
        env = make_env()
        builder = ObjectiveBuilder(env, EcoLifeConfig())
        func = FunctionProfile(name="f", mem_gb=0.5, exec_ref_s=1.0, cold_ref_s=0.5)
        with pytest.raises(ValueError, match="equal length"):
            builder.batch_fitness([func], [1.0, 2.0], [ArrivalEstimator()])

    @pytest.mark.parametrize(
        "expectation",
        ["full_k", "expected_min"],
    )
    def test_vectorised_arrivals_match_reference_loop(self, expectation):
        """The ArrivalBatch fast path == the per-function query loop,
        bit for bit, including empty and saturated histories."""
        from repro.core.config import KeepAliveExpectation

        env = make_env()
        cfg = EcoLifeConfig(
            keepalive_expectation=KeepAliveExpectation(expectation)
        )
        builder = ObjectiveBuilder(env, cfg)
        funcs = [
            FunctionProfile(
                name=f"f{i}",
                mem_gb=0.3 + 0.2 * i,
                exec_ref_s=1.0 + i,
                cold_ref_s=0.5 + 0.3 * i,
            )
            for i in range(5)
        ]
        ts = [100.0, 260.0, 500.0, 771.0, 912.0]
        arrivals = []
        for i, n_obs in enumerate((0, 1, 2, 9, 20)):  # empty/short/full
            est = ArrivalEstimator(history=16)
            for j in range(n_obs):
                est.observe(45.0 * j * (i + 1))
            arrivals.append(est)

        x = np.random.default_rng(5).uniform(size=(5, 30, 2))
        fast = builder.batch_fitness(funcs, ts, arrivals)(x)
        loop = builder.batch_fitness(
            funcs, ts, arrivals, vectorise_arrivals=False
        )(x)
        assert np.array_equal(fast, loop)


class TestKDMBatchDecisions:
    def _kdm(self, batch: bool, dynamic: bool = True):
        env = make_env()
        # Pinned to the stream RNG: this class asserts bit-identity
        # against the sequential per-function path, which only the
        # stream contract provides (counter mode is self-consistent but
        # intentionally different; see tests/test_rng_counter.py).
        cfg = EcoLifeConfig(
            batch_swarms=batch, use_dynamic_pso=dynamic, rng_mode="stream"
        )
        arrivals = ArrivalRegistry()
        return KeepAliveDecisionMaker(env, cfg, arrivals), arrivals

    def _funcs(self, n=4):
        return [
            FunctionProfile(
                name=f"f{i}", mem_gb=0.5, exec_ref_s=1.5 + i, cold_ref_s=0.8
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("dynamic", [True, False])
    def test_decide_batch_matches_sequential_decides(self, dynamic):
        """Same-tick fleet decisions == per-function decisions, decoded."""
        funcs = self._funcs()
        fleet_kdm, fa = self._kdm(batch=True, dynamic=dynamic)
        solo_kdm, fb = self._kdm(batch=False, dynamic=dynamic)
        for t0 in (0.0, 120.0, 240.0):
            for f in funcs:
                fa.observe(f.name, t0)
                fb.observe(f.name, t0)
            batched = fleet_kdm.decide_batch([(f, t0 + 2.0) for f in funcs])
            solo = [solo_kdm.decide(f, t0 + 2.0) for f in funcs]
            assert batched == solo
        assert fleet_kdm.decisions == solo_kdm.decisions
        assert fleet_kdm.optimizer_count == solo_kdm.optimizer_count == len(funcs)
        assert fleet_kdm.redistributions == solo_kdm.redistributions

    def test_repeated_function_splits_batch(self):
        """A duplicate name forces ordered sub-batches (its second
        decision depends on its first)."""
        f = self._funcs(1)[0]
        fleet_kdm, fa = self._kdm(batch=True)
        solo_kdm, fb = self._kdm(batch=False)
        assert fleet_kdm.config.rng_mode == "stream"
        fa.observe(f.name, 0.0)
        fb.observe(f.name, 0.0)
        batched = fleet_kdm.decide_batch([(f, 1.0), (f, 1.0), (f, 1.0)])
        solo = [solo_kdm.decide(f, 1.0) for _ in range(3)]
        assert batched == solo

    def test_ga_backend_falls_back_to_sequential(self):
        from repro.core.config import OptimizerKind

        env = make_env()
        cfg = EcoLifeConfig(batch_swarms=True, optimizer=OptimizerKind.GENETIC)
        kdm = KeepAliveDecisionMaker(env, cfg, ArrivalRegistry())
        assert not kdm.use_fleet
        funcs = self._funcs(2)
        decisions = kdm.decide_batch([(f, 5.0) for f in funcs])
        assert len(decisions) == 2
        assert kdm.optimizer_count == 2


class TestEngineGrouping:
    """Same-tick grouped replay == sequential replay, bit for bit."""

    def _quantized_events(self, n_funcs=8, n_ticks=12, tick=90.0):
        funcs = [
            FunctionProfile(
                name=f"f{i}",
                mem_gb=0.8 + 0.4 * (i % 3),
                exec_ref_s=1.0 + 0.5 * i,
                cold_ref_s=0.8,
            )
            for i in range(n_funcs)
        ]
        events = []
        for k in range(n_ticks):
            for f in funcs:
                events.append((k * tick, f))
        return events

    def _run(self, batch: bool, **cfg_kw):
        engine = SimulationEngine(
            pair=PAIR_A,
            trace=InvocationTrace.from_events(self._quantized_events()),
            ci_trace=CarbonIntensityTrace.constant(250.0),
            config=SimulationConfig(**cfg_kw),
        )
        # Stream RNG pinned: grouped-vs-sequential bit-identity is the
        # stream contract (counter mode is covered by test_rng_counter).
        sched = EcoLifeScheduler(
            EcoLifeConfig(batch_swarms=batch, rng_mode="stream")
        )
        assert sched.supports_keepalive_batch is batch
        return engine.run(sched)

    def test_grouped_replay_bit_identical(self):
        on, off = self._run(True), self._run(False)
        assert on.total_carbon_g == off.total_carbon_g
        assert on.total_service_s == off.total_service_s
        for a, b in zip(on.records, off.records):
            assert a.cold == b.cold
            assert a.location is b.location
            assert a.keepalive_decision == b.keepalive_decision
            assert a.keepalive_s == b.keepalive_s
            assert a.keepalive_carbon == b.keepalive_carbon

    def test_grouped_replay_under_memory_pressure(self):
        """Adjustment/spill/eviction bookkeeping survives grouping."""
        on = self._run(True, pool_capacity_old_gb=2.0, pool_capacity_new_gb=2.0)
        off = self._run(False, pool_capacity_old_gb=2.0, pool_capacity_new_gb=2.0)
        assert on.evicted_count + on.spilled_count > 0  # pressure is real
        assert on.total_carbon_g == off.total_carbon_g
        assert on.evicted_count == off.evicted_count
        assert on.spilled_count == off.spilled_count
        assert on.dropped_count == off.dropped_count
