"""Experiment plumbing: scenarios, runners, scheme registry."""

import math

import pytest

from repro.baselines import new_only, oracle
from repro.carbon import CarbonIntensityTrace
from repro.experiments import (
    default_scenario,
    paper_schemes,
    quick_scenario,
    run_scheduler,
    run_suite,
)
from repro.hardware import Generation, get_pair


class TestScenarioBuilders:
    def test_default_scenario_composition(self):
        sc = default_scenario(n_functions=10, hours=0.5, seed=4)
        assert len(sc.trace.functions) == 10
        assert sc.trace.duration_s <= 0.5 * 3600.0
        assert sc.ci_trace.duration_s >= sc.trace.duration_s
        assert sc.pair.name == "A"
        assert "pairA" in sc.label

    def test_quick_scenario_is_small(self):
        sc = quick_scenario(seed=1)
        assert len(sc.trace.functions) <= 30

    def test_with_pair(self):
        sc = default_scenario(n_functions=5, hours=0.25)
        sc2 = sc.with_pair(get_pair("C"))
        assert sc2.pair.name == "C"
        assert sc.pair.name == "A"  # original untouched

    def test_with_ci(self):
        sc = default_scenario(n_functions=5, hours=0.25)
        flat = CarbonIntensityTrace.constant(123.0)
        sc2 = sc.with_ci(flat)
        assert sc2.ci_trace.at(0.0) == 123.0

    def test_with_capacity(self):
        sc = default_scenario(n_functions=5, hours=0.25)
        sc2 = sc.with_capacity(3.0, 5.0)
        assert sc2.sim_config.pool_capacity_old_gb == 3.0
        assert sc2.sim_config.pool_capacity_new_gb == 5.0

    def test_scenario_reusable_across_runs(self):
        """Scenarios are immutable; engines are created per run."""
        sc = default_scenario(n_functions=5, hours=0.25, seed=2)
        a = run_scheduler(new_only, sc)
        b = run_scheduler(new_only, sc)
        assert a.total_carbon_g == b.total_carbon_g


class TestRunners:
    def test_run_scheduler_accepts_factory_and_instance(self):
        sc = default_scenario(n_functions=5, hours=0.25, seed=2)
        by_factory = run_scheduler(new_only, sc)
        by_instance = run_scheduler(new_only(), sc)
        assert by_factory.total_carbon_g == by_instance.total_carbon_g

    def test_oracle_gets_uncapped_memory(self):
        sc = default_scenario(n_functions=5, hours=0.25, seed=2).with_capacity(
            0.0, 0.0
        )
        res = run_scheduler(oracle, sc)  # zero capacity would break non-oracles
        assert len(res) > 0

    def test_run_suite_keys(self):
        sc = quick_scenario(seed=5)
        import dataclasses

        small = dataclasses.replace(sc, trace=sc.trace.subset(
            list(sc.trace.functions)[:4]
        ))
        results = run_suite({"new-only": new_only}, small)
        assert set(results) == {"new-only"}
        assert results["new-only"].meta["scenario"] == small.label

    def test_paper_schemes_registry(self):
        schemes = paper_schemes()
        assert set(schemes) == {
            "co2-opt",
            "service-time-opt",
            "energy-opt",
            "oracle",
            "new-only",
            "old-only",
            "ecolife",
        }
        # Factories produce fresh instances each call.
        assert schemes["ecolife"]() is not schemes["ecolife"]()


class TestPackageLevelHelpers:
    def test_lazy_wrappers(self):
        import repro

        sc = repro.quick_scenario(seed=3)
        assert len(sc.trace) > 0
        res = repro.run_scheduler(new_only, sc)
        assert res.total_carbon_g > 0.0
