"""Analysis helpers: CDFs, relative comparisons, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    CDF,
    ascii_table,
    gap_pp,
    pct_increase,
    per_invocation_pct_increase,
    relative_to_opts,
    relative_to_oracle,
    scatter_table,
)
from repro.carbon.footprint import CarbonBreakdown
from repro.hardware import Generation
from repro.simulator import InvocationRecord, SimulationResult


def _result(name, service_s=1.0, carbon_g=1.0, n=4):
    records = []
    for i in range(n):
        records.append(
            InvocationRecord(
                index=i,
                t=float(i),
                func_name="f",
                mem_gb=0.5,
                location=Generation.NEW,
                cold=False,
                setup_s=0.0,
                cold_overhead_s=0.0,
                exec_s=service_s,
                service_carbon=CarbonBreakdown(op_cpu=carbon_g),
                service_energy_wh=0.1,
            )
        )
    return SimulationResult(scheduler_name=name, records=records, horizon_s=10.0)


class TestCDF:
    def test_of_sorted(self):
        cdf = CDF.of([3.0, 1.0, 2.0])
        assert cdf.values.tolist() == [1.0, 2.0, 3.0]
        assert cdf.probs[-1] == 1.0

    def test_percentile_and_prob(self):
        cdf = CDF.of(np.arange(100))
        assert cdf.percentile(50) == pytest.approx(49.5)
        assert cdf.prob_at(49.0) == pytest.approx(0.5)

    def test_series_downsamples(self):
        cdf = CDF.of(np.arange(1000))
        s = cdf.series(points=20)
        assert len(s) == 20
        assert s[-1][1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CDF.of([])


class TestPctIncrease:
    def test_basic(self):
        assert pct_increase(1.1, 1.0) == pytest.approx(10.0)
        assert pct_increase(1.0, 0.0) == 0.0

    def test_per_invocation(self):
        out = per_invocation_pct_increase([2.0, 1.0, 3.0], [1.0, 1.0, 0.0])
        assert out.tolist() == [100.0, 0.0, 0.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            per_invocation_pct_increase([1.0], [1.0, 2.0])


class TestComparisons:
    def _results(self):
        return {
            "co2-opt": _result("co2-opt", service_s=2.0, carbon_g=1.0),
            "service-time-opt": _result("st", service_s=1.0, carbon_g=2.0),
            "oracle": _result("oracle", service_s=1.1, carbon_g=1.2),
            "ecolife": _result("ecolife", service_s=1.2, carbon_g=1.3),
        }

    def test_relative_to_opts(self):
        pts = relative_to_opts(self._results())
        assert pts["co2-opt"].carbon_pct == 0.0
        assert pts["service-time-opt"].service_pct == 0.0
        assert pts["oracle"].carbon_pct == pytest.approx(20.0)
        assert pts["oracle"].service_pct == pytest.approx(10.0)

    def test_relative_to_oracle(self):
        pts = relative_to_oracle(self._results())
        assert pts["oracle"].carbon_pct == 0.0
        assert pts["ecolife"].carbon_pct == pytest.approx(100 * (1.3 / 1.2 - 1))

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            relative_to_opts({"a": _result("a")})

    def test_gap_pp(self):
        pts = relative_to_opts(self._results())
        svc, co2 = gap_pp(pts, "ecolife", "oracle")
        assert svc == pytest.approx(pts["ecolife"].service_pct - 10.0)
        assert co2 == pytest.approx(pts["ecolife"].carbon_pct - 20.0)


class TestReporting:
    def test_ascii_table_renders(self):
        out = ascii_table(["a", "b"], [[1.5, "x"], [2.25, "y"]], title="T")
        assert "T" in out
        assert "1.50" in out
        assert out.count("\n") >= 4

    def test_scatter_table(self):
        pts = relative_to_opts(
            {
                "co2-opt": _result("co2-opt"),
                "service-time-opt": _result("st"),
            }
        )
        out = scatter_table(pts, title="S")
        assert "co2-opt" in out and "warm %" in out

    def test_scatter_table_order(self):
        pts = relative_to_opts(
            {
                "co2-opt": _result("co2-opt"),
                "service-time-opt": _result("st"),
            }
        )
        out = scatter_table(pts, title="S", order=["service-time-opt", "co2-opt"])
        lines = out.splitlines()
        assert lines[-2].strip().startswith("service-time-opt")
