"""Workload-generator registry: families, WorkloadSpec, properties, churn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.azure import AzureTraceConfig, generate_azure_trace
from repro.workloads.generators import (
    GENERATORS,
    WorkloadSpec,
    build_trace,
    generator_names,
    make_generator,
)

DURATION_S = 2.0 * 3600.0

#: The synthesizer families: everything except ``file``, which replays
#: a compiled trace from disk (seed and sizes are ignored by design, so
#: the shared synthesizer contracts below don't apply; it gets its own
#: coverage in test_workloads_tracefile.py).
SYNTH_FAMILIES = tuple(sorted(set(GENERATORS) - {"file"}))

#: Strategy over (family, n_functions, duration_s, seed) for the shared
#: property tests. Small sizes keep hypothesis rounds fast.
family_runs = st.tuples(
    st.sampled_from(SYNTH_FAMILIES),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=600.0, max_value=4.0 * 3600.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)


class TestRegistry:
    def test_expected_families_registered(self):
        assert {"azure", "poisson", "diurnal", "mmpp", "pareto", "churn"} <= set(
            generator_names()
        )

    def test_make_generator_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload generator"):
            make_generator("nope")

    def test_make_generator_unknown_param(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_generator(WorkloadSpec.make("poisson", warp_factor=9))

    def test_all_synth_names_instantiate_and_generate(self):
        for name in SYNTH_FAMILIES:
            trace, specs = make_generator(name).generate(4, 1800.0, seed=1)
            assert len(specs) == 4
            assert set(trace.functions) == {s.profile.name for s in specs}

    def test_file_family_requires_path(self):
        with pytest.raises(ValueError, match="path"):
            make_generator("file")

    def test_azure_family_identical_to_legacy_synthesizer(self):
        legacy, _ = generate_azure_trace(
            AzureTraceConfig(n_functions=10, duration_s=DURATION_S, seed=5)
        )
        new, _ = make_generator("azure").generate(10, DURATION_S, seed=5)
        assert np.array_equal(legacy.times_s, new.times_s)
        assert legacy.func_names == new.func_names


class TestWorkloadSpec:
    def test_parse_bare_name(self):
        assert WorkloadSpec.parse("mmpp") == WorkloadSpec("mmpp")

    def test_parse_params_coerce_types(self):
        spec = WorkloadSpec.parse("mmpp:burst_rate_mult=8,on_duration_s=120.5")
        params = dict(spec.params)
        assert params["burst_rate_mult"] == 8
        assert isinstance(params["burst_rate_mult"], int)
        assert params["on_duration_s"] == 120.5

    def test_parse_string_param(self):
        spec = WorkloadSpec.parse("churn:inner=mmpp,cohorts=3")
        assert dict(spec.params) == {"inner": "mmpp", "cohorts": 3}

    def test_parse_malformed(self):
        with pytest.raises(ValueError, match="key=value"):
            WorkloadSpec.parse("mmpp:oops")
        with pytest.raises(ValueError, match="empty generator name"):
            WorkloadSpec.parse(":a=1")

    def test_label_is_param_order_insensitive(self):
        a = WorkloadSpec.make("mmpp", burst_rate_mult=8, on_duration_s=60)
        b = WorkloadSpec.make("mmpp", on_duration_s=60, burst_rate_mult=8)
        assert a == b
        assert a.label == b.label == "mmpp[burst_rate_mult=8,on_duration_s=60]"

    def test_default_azure_label_is_bare_name(self):
        # Cache-identity compatibility: the default workload must label
        # as plain "azure" (pre-PR ScenarioSpec labels started with it).
        assert WorkloadSpec().label == "azure"

    def test_duplicate_params_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec("mmpp", params=(("a", 1), ("a", 2)))

    def test_specs_are_hashable_and_picklable(self):
        import pickle

        spec = WorkloadSpec.parse("churn:inner=mmpp")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, WorkloadSpec.parse("churn:inner=mmpp")}) == 1


class TestGeneratorProperties:
    @given(run=family_runs)
    @settings(max_examples=30, deadline=None)
    def test_times_sorted_and_in_range(self, run):
        family, n, duration, seed = run
        trace, _ = make_generator(family).generate(n, duration, seed)
        t = trace.times_s
        assert np.all(np.diff(t) >= 0.0)
        if t.size:
            assert t[0] >= 0.0
            assert t[-1] <= duration

    @given(run=family_runs)
    @settings(max_examples=30, deadline=None)
    def test_same_seed_identical_trace(self, run):
        family, n, duration, seed = run
        a, _ = make_generator(family).generate(n, duration, seed)
        b, _ = make_generator(family).generate(n, duration, seed)
        assert np.array_equal(a.times_s, b.times_s)
        assert a.func_names == b.func_names

    @given(run=family_runs)
    @settings(max_examples=30, deadline=None)
    def test_sampled_rates_within_configured_bounds(self, run):
        family, n, duration, seed = run
        gen = make_generator(family)
        _, specs = gen.generate(n, duration, seed)
        assert len(specs) == n
        lo = getattr(gen, "min_interarrival_s", None)
        hi = getattr(gen, "max_interarrival_s", None)
        for spec in specs:
            assert spec.mean_interarrival_s > 0.0
            if lo is not None and not spec.active_window_s:
                # azure's periodic class uses its fixed timer periods;
                # all popularity-sampled families respect the clip bounds.
                if family != "azure":
                    assert lo <= spec.mean_interarrival_s <= hi

    def test_different_seeds_differ(self):
        # Not a strict guarantee family-by-family for tiny traces, but at
        # workload scale two seeds colliding exactly would indicate a
        # seeding bug.
        for family in SYNTH_FAMILIES:
            a, _ = make_generator(family).generate(20, DURATION_S, seed=1)
            b, _ = make_generator(family).generate(20, DURATION_S, seed=2)
            assert not (
                len(a) == len(b) and np.array_equal(a.times_s, b.times_s)
            ), family


class TestDiurnal:
    def test_amplitude_validated(self):
        with pytest.raises(ValueError, match="amplitude"):
            make_generator(WorkloadSpec.make("diurnal", amplitude=1.5))

    def test_rate_modulation_follows_phase(self):
        """More arrivals near the configured peak than the trough."""
        gen = make_generator(
            WorkloadSpec.make(
                "diurnal",
                amplitude=0.9,
                period_s=7200.0,
                phase=0.0,
                phase_jitter=0.0,
                median_interarrival_s=20.0,
                interarrival_sigma=0.0,
                min_interarrival_s=15.0,
            )
        )
        trace, _ = gen.generate(20, 7200.0, seed=3)
        t = trace.times_s
        # sin peaks in the first half-period, troughs in the second.
        peak = np.sum(t < 3600.0)
        trough = np.sum(t >= 3600.0)
        assert peak > trough * 1.5


class TestMMPP:
    def test_burstiness_exceeds_poisson(self):
        """The MMPP's inter-arrival CV must clearly exceed Poisson's ~1."""

        def mean_cv(family, **params):
            gen = make_generator(WorkloadSpec.make(
                family, median_interarrival_s=60.0, interarrival_sigma=0.0,
                min_interarrival_s=15.0, **params,
            ))
            trace, specs = gen.generate(10, 8.0 * 3600.0, seed=11)
            cvs = []
            for s in specs:
                gaps = trace.interarrival_s(s.profile.name)
                if gaps.size >= 10:
                    cvs.append(gaps.std() / gaps.mean())
            return np.mean(cvs)

        assert mean_cv("mmpp", burst_rate_mult=10.0, idle_rate_mult=0.05) > (
            mean_cv("poisson") + 0.5
        )


class TestPareto:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError, match="alpha"):
            make_generator(WorkloadSpec.make("pareto", alpha=0.9))

    def test_mean_gap_tracks_configured_iat(self):
        gen = make_generator(
            WorkloadSpec.make(
                "pareto", alpha=2.5, median_interarrival_s=60.0,
                interarrival_sigma=0.0, min_interarrival_s=15.0,
            )
        )
        trace, specs = gen.generate(5, 24.0 * 3600.0, seed=2)
        gaps = np.concatenate(
            [trace.interarrival_s(s.profile.name) for s in specs]
        )
        # Mean gap within 25% of the configured 60 s (heavy tail => loose).
        assert 45.0 < gaps.mean() < 75.0


class TestChurn:
    def test_windows_cover_and_bound_arrivals(self):
        gen = make_generator(WorkloadSpec.make("churn", inner="poisson", cohorts=3))
        trace, specs = gen.generate(9, DURATION_S, seed=4)
        assert len(trace) > 0
        for spec in specs:
            lo, hi = spec.active_window_s
            ts = trace.times_of(spec.profile.name)
            assert np.all((ts >= lo) & (ts < hi))

    def test_produces_function_turnover(self):
        """Some functions must stop arriving well before the trace ends
        (the slot-retirement regime for long multi-tenant runs)."""
        gen = make_generator(WorkloadSpec.make("churn", cohorts=4, overlap=0.0))
        trace, specs = gen.generate(12, DURATION_S, seed=9)
        last = {
            s.profile.name: (ts[-1] if (ts := trace.times_of(s.profile.name)).size
                             else 0.0)
            for s in specs
        }
        assert min(last.values()) < 0.5 * trace.duration_s

    def test_rejects_recursive_inner(self):
        with pytest.raises(ValueError, match="wrap itself"):
            make_generator(WorkloadSpec.make("churn", inner="churn"))

    def test_unknown_inner_raises(self):
        with pytest.raises(KeyError, match="unknown inner"):
            make_generator(WorkloadSpec.make("churn", inner="nope")).generate(
                2, 600.0, seed=1
            )


class TestFleetEquivalenceOnGeneratedTraces:
    def test_batch_on_off_identical_on_bursty_trace(self):
        """Fleet-vs-solo equivalence on a generated bursty (MMPP) trace:
        the batched SwarmFleet path must reproduce the sequential
        per-function DPSO results bit-for-bit on the new workload shapes,
        including churned functions that stop arriving mid-trace."""
        from repro.core import EcoLifeConfig, EcoLifeScheduler
        from repro.experiments.common import workload_scenario, run_scheduler

        for workload in ("mmpp", "churn:inner=mmpp"):
            scenario = workload_scenario(
                workload=workload, n_functions=8, hours=0.5, seed=3
            )
            results = {}
            for flag in (True, False):
                # Stream RNG pinned: fleet-vs-solo bit-identity is the
                # stream contract (counter mode intentionally differs).
                cfg = EcoLifeConfig(batch_swarms=flag, rng_mode="stream")
                results[flag] = run_scheduler(
                    lambda: EcoLifeScheduler(cfg), scenario
                )
            on, off = results[True], results[False]
            assert on.total_carbon_g == off.total_carbon_g, workload
            assert on.total_service_s == off.total_service_s, workload
            assert np.array_equal(
                on.service_times(), off.service_times()
            ), workload


class TestBuildTrace:
    def test_build_trace_convenience(self):
        trace = build_trace("poisson", 4, 1800.0, seed=1)
        assert set(trace.invocation_counts()) == set(trace.functions)
