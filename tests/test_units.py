"""Unit-conversion helpers."""

import pytest

from repro import units


def test_minute_hour_day_year_chain():
    assert units.minutes(1) == 60.0
    assert units.hours(1) == 3600.0
    assert units.days(1) == 86400.0
    assert units.years(1) == 365 * 86400.0
    assert units.hours(2.5) == units.minutes(150)


def test_energy_wh_basic():
    # 1000 W for one hour is 1 kWh = 1000 Wh.
    assert units.energy_wh(1000.0, 3600.0) == pytest.approx(1000.0)
    # 60 W for one minute is 1 Wh.
    assert units.energy_wh(60.0, 60.0) == pytest.approx(1.0)


def test_watt_seconds_to_wh():
    assert units.watt_seconds_to_wh(3600.0) == pytest.approx(1.0)


def test_operational_carbon_g():
    # 1 kWh at 250 g/kWh is 250 g.
    assert units.operational_carbon_g(1000.0, 250.0) == pytest.approx(250.0)
    assert units.operational_carbon_g(0.0, 250.0) == 0.0


def test_mb_constant():
    assert 512 * units.MB == pytest.approx(0.5)


def test_require_positive_accepts_and_rejects():
    assert units.require_positive(1.5, "x") == 1.5
    with pytest.raises(ValueError, match="x must be > 0"):
        units.require_positive(0.0, "x")
    with pytest.raises(ValueError):
        units.require_positive(-2.0, "x")


def test_require_non_negative():
    assert units.require_non_negative(0.0, "y") == 0.0
    with pytest.raises(ValueError, match="y must be >= 0"):
        units.require_non_negative(-0.1, "y")
