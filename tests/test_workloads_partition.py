"""Property tests for ``InvocationTrace.partition`` (ISSUE 9 satellite).

The partition is the sharded replay's ownership map, so three properties
are load-bearing: the shards are a *disjoint cover* of the trace, each
shard preserves the original arrival order, and the hash assignment is
independent of ``PYTHONHASHSEED`` (it is crc32, not ``hash()``) -- a
function must land on the same shard in every process of a run.
"""

import zlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.workloads import FunctionProfile, InvocationTrace
from repro.workloads.trace import shard_of

names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=20,
    unique=True,
)


def trace_of(func_names, seed=0, mean_events=6):
    rng = np.random.default_rng(seed)
    funcs = [
        FunctionProfile(name=n, mem_gb=0.5, exec_ref_s=1.0, cold_ref_s=0.5)
        for n in func_names
    ]
    events = []
    t = 0.0
    for _ in range(mean_events * len(funcs)):
        t += float(rng.exponential(5.0))
        events.append((t, funcs[int(rng.integers(len(funcs)))]))
    return InvocationTrace.from_events(events)


@given(names=names, n_shards=st.integers(min_value=1, max_value=7))
@settings(max_examples=50, deadline=None)
def test_partition_names_is_a_disjoint_cover(names, n_shards):
    trace = trace_of(names)
    buckets = trace.partition_names(n_shards, by="hash")
    assert len(buckets) == n_shards
    union = set().union(*buckets)
    # Every function -- including any with zero invocations -- is owned
    # by exactly one shard.
    assert union == set(trace.functions)
    assert sum(len(b) for b in buckets) == len(union)


@given(names=names, n_shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_partition_preserves_arrival_order(names, n_shards):
    trace = trace_of(names)
    shards = trace.partition(n_shards, by="hash")
    for shard in shards:
        times = shard.times_s
        assert np.all(np.diff(times) >= 0.0)
        # A shard's events are exactly the original events of its
        # functions, in the original order.
        own = set(shard.functions)
        expected = [
            (t, f) for t, f in zip(trace.times_s, trace.func_names) if f in own
        ]
        got = list(zip(shard.times_s, shard.func_names))
        assert got == expected
    # Cover: all events accounted for.
    assert sum(len(s) for s in shards) == len(trace)


@given(names=names, n_shards=st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_hash_assignment_matches_crc32(names, n_shards):
    for name in names:
        assert shard_of(name, n_shards) == zlib.crc32(name.encode("utf-8")) % n_shards


def test_shard_of_is_hashseed_independent():
    # Pinned constants: crc32 is a wire-stable checksum, so these values
    # hold on every platform and under every PYTHONHASHSEED -- unlike
    # builtin hash(), whose str salt changes per process.
    assert zlib.crc32(b"video-processing") == 2927974575
    assert shard_of("video-processing", 4) == 3
    assert shard_of("graph-bfs", 4) == zlib.crc32(b"graph-bfs") % 4
    assert shard_of("f0", 1) == 0
    with pytest.raises(ValueError):
        shard_of("f0", 0)


@given(names=names)
@settings(max_examples=30, deadline=None)
def test_load_partition_balances_invocation_counts(names):
    trace = trace_of(names, mean_events=8)
    buckets = trace.partition_names(3, by="load")
    assert set().union(*buckets) == set(trace.functions)
    counts = {}
    for f in trace.func_names:
        counts[f] = counts.get(f, 0) + 1
    loads = [sum(counts.get(n, 0) for n in b) for b in buckets]
    # Greedy longest-processing-time bound: no bucket exceeds the ideal
    # share by more than the largest single function.
    if counts:
        assert max(loads) - min(loads) <= max(counts.values())


def test_partition_rejects_bad_arguments():
    trace = trace_of(["a", "b"])
    with pytest.raises(ValueError):
        trace.partition_names(0)
    with pytest.raises(ValueError):
        trace.partition_names(2, by="alphabetical")
