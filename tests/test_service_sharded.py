"""Multi-worker serving: hash-routed per-shard decision services.

The sharded front door must be a pure router: every decision it returns
is bit-identical to what a standalone :class:`DecisionService` holding
only that shard's arrival stream would have produced, and responses come
back in the input batch order regardless of how the batch interleaves
shards.
"""

import pytest

from repro.carbon import TraceProvider
from repro.core import EcoLifeConfig
from repro.experiments import workload_scenario
from repro.service import DecisionService, ShardedDecisionService
from repro.workloads.trace import shard_of


def scenario():
    return workload_scenario(workload="azure", n_functions=18, hours=1.0, seed=13)


def build(scn, n_shards, **kwargs):
    functions = {inv.func.name: inv.func for inv in scn.trace}
    return ShardedDecisionService(
        TraceProvider(scn.ci_trace),
        n_shards=n_shards,
        pair=scn.pair,
        config=EcoLifeConfig(),
        sim_config=scn.sim_config,
        functions=functions,
        **kwargs,
    )


def arrivals_of(scn):
    return [(inv.t, inv.func.name) for inv in scn.trace]


class TestRouting:
    def test_decisions_match_standalone_per_shard_services(self):
        scn = scenario()
        arrivals = arrivals_of(scn)
        sharded = build(scn, 3)
        got = sharded.decide(arrivals)

        functions = {inv.func.name: inv.func for inv in scn.trace}
        for shard_id in range(3):
            solo = DecisionService(
                TraceProvider(scn.ci_trace),
                pair=scn.pair,
                config=EcoLifeConfig(),
                sim_config=scn.sim_config,
                functions=functions,
            )
            own = [(t, n) for t, n in arrivals if shard_of(n, 3) == shard_id]
            expected = solo.decide(own)
            mine = [d for d in got if d["shard"] == shard_id]
            assert len(mine) == len(expected)
            for d, e in zip(mine, expected):
                stripped = {k: v for k, v in d.items() if k != "shard"}
                assert stripped == e

    def test_responses_preserve_input_order(self):
        scn = scenario()
        arrivals = arrivals_of(scn)
        sharded = build(scn, 4)
        got = sharded.decide(arrivals)
        assert [(d["t_s"], d["function"]) for d in got] == [
            (t, n) for t, n in arrivals
        ]
        for d in got:
            assert d["shard"] == shard_of(str(d["function"]), 4)

    def test_one_shard_degenerates_to_single_service(self):
        scn = scenario()
        arrivals = arrivals_of(scn)[:50]
        functions = {inv.func.name: inv.func for inv in scn.trace}
        solo = DecisionService(
            TraceProvider(scn.ci_trace),
            pair=scn.pair,
            config=EcoLifeConfig(),
            sim_config=scn.sim_config,
            functions=functions,
        )
        sharded = build(scn, 1)
        expected = solo.decide(arrivals)
        got = sharded.decide(arrivals)
        assert [{k: v for k, v in d.items() if k != "shard"} for d in got] == expected

    def test_empty_batch_and_validation(self):
        scn = scenario()
        sharded = build(scn, 2)
        assert sharded.decide([]) == []
        with pytest.raises(ValueError):
            sharded.decide([(1.0, "no-such-function")])
        with pytest.raises(ValueError):
            ShardedDecisionService(TraceProvider(scn.ci_trace), n_shards=0)


class TestFacade:
    def test_metrics_aggregate_across_shards(self):
        scn = scenario()
        sharded = build(scn, 2)
        arrivals = arrivals_of(scn)[:40]
        sharded.decide(arrivals)
        snap = sharded.metrics_snapshot()
        assert snap["n_shards"] == 2
        assert snap["decisions_total"] == 40
        assert len(snap["shards"]) == 2
        assert snap["scheduler"].endswith("@2shards")
        per_shard = sum(s["decisions_total"] for s in snap["shards"])
        assert per_shard == 40

    def test_checkpoint_restore_round_trip(self, tmp_path):
        scn = scenario()
        arrivals = arrivals_of(scn)
        half = len(arrivals) // 2
        sharded = build(scn, 2)
        first = sharded.decide(arrivals[:half])
        info = sharded.checkpoint(str(tmp_path / "ckpt"))
        assert info["n_shards"] == 2
        assert info["records"] == half

        functions = {inv.func.name: inv.func for inv in scn.trace}
        restored = ShardedDecisionService.restore(
            str(tmp_path / "ckpt"),
            provider=TraceProvider(scn.ci_trace),
            n_shards=2,
            pair=scn.pair,
            config=EcoLifeConfig(),
            sim_config=scn.sim_config,
            functions=functions,
        )
        assert restored.last_t == sharded.last_t
        rest = sharded.decide(arrivals[half:])
        rest_restored = restored.decide(arrivals[half:])
        assert rest == rest_restored
        assert len(first) == half
