"""ecolint rule-regression suite + live archive-completeness contracts.

Two layers:

1. **Rule regressions** -- one synthetic violation per ECO rule is fed
   through the linter and must be flagged (and a clean variant must
   not). This is what makes the CI lint gate *demonstrably* sensitive:
   a refactor that silently breaks a rule's detection fails here.
2. **Live contracts** -- the real repo must lint clean, and the ECO005
   cross-checks are re-asserted directly against the live
   ``SwarmFleet``/``SwarmArchive`` objects under both ``rng_mode`` legs,
   so the AST-level check and the runtime behaviour cannot drift apart.
"""

import dataclasses
import sys
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
# ``tools`` is repo tooling, deliberately outside the installed
# ``repro`` package (PYTHONPATH=src); import it from the repo root.
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.ecolint import lint_paths, lint_source  # noqa: E402
from tools.ecolint.contracts import (  # noqa: E402
    check_estimator_shelf,
    check_kdm_archive_paths,
    check_shard_state_plan,
    check_swarm_archive,
)

from repro.optimizers.batch import SwarmArchive, SwarmFleet  # noqa: E402

HOT = "src/repro/core/module.py"  # inside every rule's scope


def codes(violations):
    return [v.code for v in violations]


# -- ECO001: ambient RNG ------------------------------------------------------


class TestEco001:
    def test_np_random_draw_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert "ECO001" in codes(lint_source(src, "tests/any.py"))

    def test_np_random_seed_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert "ECO001" in codes(lint_source(src, HOT))

    def test_aliased_import_resolved(self):
        src = "from numpy import random as nr\nx = nr.normal()\n"
        assert "ECO001" in codes(lint_source(src, HOT))

    def test_stdlib_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert "ECO001" in codes(lint_source(src, HOT))

    def test_from_random_import_flagged(self):
        src = "from random import shuffle\n"
        assert "ECO001" in codes(lint_source(src, HOT))

    def test_default_rng_allowed(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "gen = np.random.Generator(np.random.Philox(3))\n"
        )
        assert lint_source(src, HOT) == []


# -- ECO002: ambient nondeterminism in hot paths ------------------------------


class TestEco002:
    def test_wall_clock_flagged_in_hot_path(self):
        src = "import time\nt = time.time()\n"
        assert "ECO002" in codes(lint_source(src, HOT))

    def test_datetime_now_flagged(self):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        assert "ECO002" in codes(lint_source(src, HOT))

    def test_environ_read_flagged(self):
        src = "import os\nv = os.environ['X']\n"
        assert "ECO002" in codes(lint_source(src, HOT))

    def test_out_of_scope_not_flagged(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, "tests/test_x.py") == []
        assert lint_source(src, "src/repro/analysis/plots.py") == []


# -- ECO003: paired float ledgers ---------------------------------------------


class TestEco003:
    def test_paired_accumulator_flagged(self):
        src = (
            "class Pool:\n"
            "    def add(self, gb):\n"
            "        self.used_gb += gb\n"
            "    def drop(self, gb):\n"
            "        self.used_gb -= gb\n"
        )
        found = lint_source(src, "tests/any.py")
        assert codes(found) == ["ECO003", "ECO003"]  # both sites

    def test_accumulate_only_allowed(self):
        src = (
            "class Meter:\n"
            "    def add(self, x):\n"
            "        self.total += x\n"
        )
        assert lint_source(src, HOT) == []

    def test_local_variables_not_flagged(self):
        src = (
            "class C:\n"
            "    def f(self, items):\n"
            "        free = 0.0\n"
            "        free += 1.0\n"
            "        free -= 0.5\n"
            "        return free\n"
        )
        assert lint_source(src, HOT) == []


# -- ECO004: unordered iteration ----------------------------------------------


class TestEco004:
    def test_set_iteration_flagged(self):
        src = "names = {'a', 'b'}\nfor n in names:\n    print(n)\n"
        assert "ECO004" in codes(lint_source(src, HOT))

    def test_set_literal_comprehension_flagged(self):
        src = "out = [n for n in {'a', 'b'}]\n"
        assert "ECO004" in codes(lint_source(src, HOT))

    def test_set_difference_materialised_flagged(self):
        src = "missing = set(a) - set(b)\nrows = list(missing)\n"
        assert "ECO004" in codes(lint_source(src, HOT))

    def test_sorted_wrapper_allowed(self):
        src = "names = {'a', 'b'}\nfor n in sorted(names):\n    print(n)\n"
        assert lint_source(src, HOT) == []

    def test_membership_and_len_allowed(self):
        src = "names = {'a', 'b'}\nok = 'a' in names\nn = len(names)\n"
        assert lint_source(src, HOT) == []

    def test_out_of_scope_not_flagged(self):
        src = "names = {'a', 'b'}\nfor n in names:\n    print(n)\n"
        assert lint_source(src, "tests/test_x.py") == []


# -- ECO006: scheduler protocol conformance -----------------------------------

_SCHED_PRELUDE = "from repro.simulator.scheduler import BaseScheduler\n"


class TestEco006:
    def test_declared_batch_without_hook_flagged(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    supports_keepalive_batch = True\n"
        )
        assert "ECO006" in codes(lint_source(src, HOT))

    def test_instance_attr_declaration_detected(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    def __init__(self):\n"
            "        self.wants_expiry_events = True\n"
        )
        assert "ECO006" in codes(lint_source(src, HOT))

    def test_quantum_without_batch_flag_flagged(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    decision_quantum_s = 60.0\n"
            "    def keepalive_batch(self, reqs):\n"
            "        return []\n"
        )
        assert "ECO006" in codes(lint_source(src, HOT))

    def test_foreign_batch_safe_without_hook_flagged(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    foreign_batch_safe = True\n"
        )
        assert "ECO006" in codes(lint_source(src, HOT))

    def test_foreign_batch_safe_with_hook_clean(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    foreign_batch_safe = True\n"
            "    def observe_foreign_run(self, groups):\n"
            "        pass\n"
        )
        assert lint_source(src, HOT) == []

    def test_conforming_subclass_clean(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    supports_keepalive_batch = True\n"
            "    wants_expiry_events = True\n"
            "    def keepalive_batch(self, reqs):\n"
            "        return []\n"
            "    def on_container_expired(self, name, generation, t):\n"
            "        pass\n"
        )
        assert lint_source(src, HOT) == []

    def test_protocol_defaults_are_not_declarations(self):
        src = _SCHED_PRELUDE + (
            "class S(BaseScheduler):\n"
            "    supports_keepalive_batch = False\n"
            "    decision_quantum_s = 0.0\n"
        )
        assert lint_source(src, HOT) == []


# -- ECO005: synthetic contract violations ------------------------------------

_GOOD_FLEET = '''
class SwarmArchive:
    positions: object
    bit_generator_state: dict

class SwarmFleet:
    _STACKED_STATE = {"positions": None}
    _ARCHIVE_PLAN = {"positions": "positions"}

    def retire(self, index):
        archive = SwarmArchive(
            positions=self.positions[index].copy(),
            bit_generator_state=self._rngs[index].bit_generator.state,
        )
        return archive

    def rehydrate(self, archive):
        state = archive.bit_generator_state
        self.positions[0] = archive.positions
        return 0
'''


class TestEco005Synthetic:
    def test_clean_fleet_passes(self):
        assert check_swarm_archive(_GOOD_FLEET) == []

    def test_new_stacked_field_without_plan_entry_flagged(self):
        src = _GOOD_FLEET.replace(
            '_STACKED_STATE = {"positions": None}',
            '_STACKED_STATE = {"positions": None, "velocities": None}',
        )
        found = check_swarm_archive(src)
        assert found and "velocities" in found[0].message

    def test_planned_field_missing_from_retire_flagged(self):
        src = _GOOD_FLEET.replace(
            "            positions=self.positions[index].copy(),\n", ""
        )
        found = check_swarm_archive(src)
        assert any("retire() does not snapshot" in v.message for v in found)

    def test_planned_field_missing_from_rehydrate_flagged(self):
        src = _GOOD_FLEET.replace(
            "        self.positions[0] = archive.positions\n", ""
        )
        found = check_swarm_archive(src)
        assert any("rehydrate() never" in v.message for v in found)

    def test_rng_state_must_round_trip(self):
        src = _GOOD_FLEET.replace(
            "        state = archive.bit_generator_state\n", ""
        )
        found = check_swarm_archive(src)
        assert any("bit_generator_state" in v.message for v in found)

    def test_registry_peek_must_consult_shelf(self):
        src = (
            "class ArrivalRegistry:\n"
            "    def __init__(self):\n"
            "        self._spill = None\n"
            "    def get(self, name):\n"
            "        return self._by_name[name]\n"
            "    def revive(self, name):\n"
            "        self._by_name[name] = self._archived.pop(name)\n"
            "        self._spill.take(name)\n"
        )
        found = check_estimator_shelf(src)
        assert len(found) == 2  # get() misses both tiers
        assert all(v.code == "ECO005" for v in found)

    def test_kdm_probe_must_consult_both_tiers(self):
        src = (
            "class KeepAliveDecisionMaker:\n"
            "    def _has_archive(self, name):\n"
            "        return name in self._archives\n"
            "    def _rehydrate(self, name):\n"
            "        rec = self._archives.pop(name, None)\n"
            "        if rec is None:\n"
            "            rec = self._spill.take(name)\n"
            "        return rec\n"
        )
        found = check_kdm_archive_paths(src)
        assert len(found) == 1
        assert "_has_archive" in found[0].message


_GOOD_SHARD_ENGINE = """
class ShardEngine:
    _SHARD_STATE_PLAN = {
        "shard_id": "replicated",
        "_outbox": "exchanged",
        "_by_index": "shard-local",
    }

    def __init__(self, shard_id, transport):
        self.shard_id = shard_id
        self._outbox = []
        self._by_index = {}
"""


class TestEco005ShardPlan:
    def test_clean_engine_passes(self):
        assert check_shard_state_plan(_GOOD_SHARD_ENGINE) == []

    def test_undeclared_init_field_flagged(self):
        src = _GOOD_SHARD_ENGINE.replace(
            "        self._by_index = {}\n",
            "        self._by_index = {}\n        self._peers = set()\n",
        )
        found = check_shard_state_plan(src)
        assert len(found) == 1
        assert "_peers" in found[0].message
        assert "cross-shard leak" in found[0].message

    def test_stale_plan_entry_flagged(self):
        src = _GOOD_SHARD_ENGINE.replace(
            "        self._outbox = []\n", ""
        )
        found = check_shard_state_plan(src)
        assert any("stale entry" in v.message for v in found)

    def test_unknown_ownership_class_flagged(self):
        src = _GOOD_SHARD_ENGINE.replace('"shard-local"', '"borrowed"')
        found = check_shard_state_plan(src)
        assert any("must be one of" in v.message for v in found)

    def test_missing_plan_is_one_violation(self):
        src = (
            "class ShardEngine:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        )
        found = check_shard_state_plan(src)
        assert len(found) == 1
        assert "_SHARD_STATE_PLAN" in found[0].message

    def test_real_shard_module_is_clean(self):
        from pathlib import Path

        source = Path("src/repro/simulator/shard.py").read_text()
        assert check_shard_state_plan(source) == []


# -- ECO000: suppression policy -----------------------------------------------


class TestSuppressions:
    def test_suppression_with_reason_silences(self):
        src = (
            "import time\n"
            "t = time.time()  # ecolint: disable=ECO002 -- telemetry only\n"
        )
        assert lint_source(src, HOT) == []

    def test_standalone_directive_covers_next_line(self):
        src = (
            "import time\n"
            "# ecolint: disable=ECO002 -- telemetry only\n"
            "t = time.time()\n"
        )
        assert lint_source(src, HOT) == []

    def test_missing_reason_does_not_suppress(self):
        src = "import time\nt = time.time()  # ecolint: disable=ECO002\n"
        found = codes(lint_source(src, HOT))
        assert "ECO002" in found and "ECO000" in found

    def test_unused_directive_reported(self):
        src = "x = 1  # ecolint: disable=ECO001 -- stale\n"
        assert codes(lint_source(src, HOT)) == ["ECO000"]

    def test_meta_rule_not_suppressible(self):
        src = "x = 1  # ecolint: disable=ECO000, ECO001 -- nice try\n"
        assert "ECO000" in codes(lint_source(src, HOT))


# -- the repo itself ----------------------------------------------------------


class TestRepoIsClean:
    def test_repo_lints_clean(self):
        """The committed tree has zero unsuppressed violations.

        This is the tier-1 enforcement of the gate: a PR that introduces
        an ambient RNG draw, a hot-path clock read, a drifting ledger,
        an unordered iteration, an un-archived fleet field, or a stale
        suppression fails here even without the CI lint job.
        """
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        assert report.ok, "\n" + report.human_summary()
        assert report.files_checked > 50


# -- live ECO005: archive coverage equals mutable state inventory --------------


class TestLiveArchiveCoverage:
    @pytest.mark.parametrize("rng_mode", ["stream", "counter"])
    def test_plan_covers_stacked_state_exactly(self, rng_mode):
        fleet = SwarmFleet(dim=2, rng_mode=rng_mode)
        assert set(fleet._ARCHIVE_PLAN) == set(fleet._STACKED_STATE)
        planned = {v for v in fleet._ARCHIVE_PLAN.values() if v is not None}
        archive_fields = {f.name for f in dataclasses.fields(SwarmArchive)}
        assert planned == archive_fields - {"bit_generator_state"}

    @pytest.mark.parametrize("rng_mode", ["stream", "counter"])
    def test_retire_snapshots_every_planned_field(self, rng_mode):
        fleet = SwarmFleet(dim=2, rng_mode=rng_mode)
        i = fleet.add_swarm(np.random.default_rng(3))
        before = {
            name: np.array(getattr(fleet, name)[i], copy=True)
            for name, field in fleet._ARCHIVE_PLAN.items()
            if field is not None
        }
        archive = fleet.retire(i)
        for name, field in fleet._ARCHIVE_PLAN.items():
            if field is None:
                continue
            np.testing.assert_array_equal(
                np.asarray(getattr(archive, field)),
                before[name],
                err_msg=f"{name} -> SwarmArchive.{field}",
            )
        j = fleet.rehydrate(archive)
        for name in before:
            np.testing.assert_array_equal(
                np.asarray(getattr(fleet, name)[j]), before[name]
            )
