"""Table I catalog invariants -- the orderings EcoLife's motivation rests on."""

import pytest

from repro.hardware import (
    PAIRS,
    Generation,
    get_pair,
    single_generation_pair,
)


def test_all_three_pairs_present():
    assert sorted(PAIRS) == ["A", "B", "C"]


def test_get_pair_case_insensitive():
    assert get_pair("a") is PAIRS["A"]
    assert get_pair(" B ") is PAIRS["B"]


def test_get_pair_unknown():
    with pytest.raises(KeyError, match="unknown hardware pair"):
        get_pair("Z")


@pytest.mark.parametrize("name", ["A", "B", "C"])
class TestPairOrderings:
    """The catalog must encode the paper's old-vs-new trade-off."""

    def test_old_is_older(self, name):
        pair = get_pair(name)
        assert pair.old.cpu.year < pair.new.cpu.year

    def test_old_is_slower(self, name):
        pair = get_pair(name)
        assert pair.old.perf_index < pair.new.perf_index

    def test_old_has_lower_percore_embodied(self, name):
        """Old hardware: lower embodied carbon per keep-alive core."""
        pair = get_pair(name)
        assert (
            pair.old.cpu.embodied_per_core_g < pair.new.cpu.embodied_per_core_g
        )

    def test_old_has_lower_percore_keepalive_power(self, name):
        pair = get_pair(name)
        assert (
            pair.old.cpu.keepalive_core_power_w
            < pair.new.cpu.keepalive_core_power_w
        )

    def test_generation_labels(self, name):
        pair = get_pair(name)
        assert pair.old.generation is Generation.OLD
        assert pair.new.generation is Generation.NEW

    def test_four_year_lifetime_default(self, name):
        pair = get_pair(name)
        assert pair.old.lifetime_years == 4.0
        assert pair.new.lifetime_years == 4.0


def test_older_dram_has_higher_embodied_per_gb():
    """Lower-density (older) DRAM costs more wafer area per GB."""
    pair = get_pair("A")
    assert pair.old.dram.embodied_kg_per_gb > pair.new.dram.embodied_kg_per_gb


def test_single_generation_pair_old():
    base = get_pair("A")
    degenerate = single_generation_pair(base, Generation.OLD)
    assert degenerate.old.cpu == base.old.cpu
    assert degenerate.new.cpu == base.old.cpu
    assert degenerate.old.generation is Generation.OLD
    assert degenerate.new.generation is Generation.NEW


def test_single_generation_pair_new():
    base = get_pair("C")
    degenerate = single_generation_pair(base, Generation.NEW)
    assert degenerate.old.cpu == base.new.cpu
    assert degenerate.new.dram == base.new.dram
