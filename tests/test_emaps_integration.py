"""Opt-in live integration test for :class:`ElectricityMapsProvider`.

Skipped unless ``ECOLIFE_EMAPS_TOKEN`` is set (a real Electricity Maps
API token): the default test run must stay hermetic -- no network, no
secrets. CI exercises this through the manual
``emaps-integration`` workflow (``workflow_dispatch``), which injects
the token from the repository secrets; locally::

    ECOLIFE_EMAPS_TOKEN=... ECOLIFE_EMAPS_ZONE=DE \
        python -m pytest tests/test_emaps_integration.py -v

Everything the hermetic suite can check (retry/backoff schedule, stale
fallback, ring semantics, rebasing) lives in ``tests/test_providers.py``
against an injected fetch; this file only proves the real endpoint +
auth + payload parsing still line up with those assumptions.
"""

from __future__ import annotations

import os
import time

import pytest

TOKEN = os.environ.get("ECOLIFE_EMAPS_TOKEN", "")
ZONE = os.environ.get("ECOLIFE_EMAPS_ZONE", "DE")

pytestmark = pytest.mark.skipif(
    not TOKEN,
    reason="set ECOLIFE_EMAPS_TOKEN to run the live Electricity Maps test",
)


@pytest.fixture(scope="module")
def provider():
    from repro.carbon.providers import ElectricityMapsProvider

    t0 = time.time()
    p = ElectricityMapsProvider(
        zone=ZONE,
        token=TOKEN,
        t0_epoch_s=t0,
        max_retries=2,
        backoff_base_s=1.0,
        backoff_cap_s=4.0,
    )
    refreshed = p.poll(0.0)
    assert refreshed, f"live poll failed: {p.last_error}"
    return p


class TestLiveForecast:
    def test_poll_marks_provider_healthy(self, provider):
        assert provider.healthy(0.0)
        assert provider.staleness_s(0.0) == 0.0
        assert provider.last_error is None

    def test_forecast_spans_a_usable_horizon(self, provider):
        trace = provider.trace()
        # The forecast is rebased onto the service timeline (t0 = poll
        # time), so a usable horizon extends hours past "now".
        assert trace.duration_s >= 3600.0

    def test_intensities_are_physical(self, provider):
        trace = provider.trace()
        horizon = trace.duration_s
        samples = [trace.at(frac * horizon) for frac in (0.0, 0.25, 0.5, 0.75)]
        # gCO2/kWh: positive, and below any grid ever observed.
        assert all(0.0 < s < 2000.0 for s in samples)

    def test_decision_service_accepts_the_live_trace(self, provider):
        # The real consumer: a DecisionService boots on the live
        # forecast and answers a decision without raising.
        from repro.core import EcoLifeConfig
        from repro.service import DecisionService

        service = DecisionService(
            provider=provider, config=EcoLifeConfig(seed=7)
        )
        name = next(iter(service.functions))
        decisions = service.decide([(0.0, name)])
        assert len(decisions) == 1
