"""Azure-shaped trace synthesizer: determinism and workload shape."""

import numpy as np
import pytest

from repro import units
from repro.workloads import AzureTraceConfig, generate_azure_trace
from repro.workloads.sebs import SEBS_FUNCTIONS


@pytest.fixture(scope="module")
def default_trace():
    cfg = AzureTraceConfig(
        n_functions=50, duration_s=4 * units.SECONDS_PER_HOUR, seed=11
    )
    return generate_azure_trace(cfg)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        cfg = AzureTraceConfig(n_functions=10, duration_s=1800.0, seed=3)
        t1, _ = generate_azure_trace(cfg)
        t2, _ = generate_azure_trace(cfg)
        assert np.array_equal(t1.times_s, t2.times_s)
        assert t1.func_names == t2.func_names

    def test_different_seed_differs(self):
        t1, _ = generate_azure_trace(AzureTraceConfig(n_functions=10, seed=3))
        t2, _ = generate_azure_trace(AzureTraceConfig(n_functions=10, seed=4))
        assert not np.array_equal(t1.times_s, t2.times_s)


class TestShape:
    def test_function_count(self, default_trace):
        trace, specs = default_trace
        assert len(specs) == 50
        assert len(trace.functions) == 50

    def test_all_times_within_duration(self, default_trace):
        trace, _ = default_trace
        assert trace.times_s.min() >= 0.0
        assert trace.times_s.max() <= 4 * units.SECONDS_PER_HOUR

    def test_profiles_are_sebs_clones(self, default_trace):
        _, specs = default_trace
        for spec in specs:
            assert spec.base_profile in SEBS_FUNCTIONS
            base = SEBS_FUNCTIONS[spec.base_profile]
            assert spec.profile.name.endswith(base.name)
            # perturbations stay within the configured bands
            assert 0.69 * base.mem_gb <= spec.profile.mem_gb <= 1.31 * base.mem_gb

    def test_popularity_is_heavy_tailed(self, default_trace):
        """A few hot functions dominate: top 20% >= ~45% of invocations."""
        trace, _ = default_trace
        counts = np.sort(np.array(list(trace.invocation_counts().values())))[::-1]
        top = counts[: max(len(counts) // 5, 1)].sum()
        assert top / counts.sum() >= 0.4

    def test_periodic_functions_have_regular_iats(self, default_trace):
        trace, specs = default_trace
        periodic = [
            s for s in specs if s.periodic and not s.bursty and s.period_s <= 900
        ]
        checked = 0
        for s in periodic:
            iat = trace.interarrival_s(s.profile.name)
            if iat.size < 3:
                continue
            # Median IAT within 10% of the configured period.
            assert abs(np.median(iat) - s.period_s) / s.period_s < 0.1
            checked += 1
        assert checked >= 1

    def test_mixture_contains_both_kinds(self, default_trace):
        _, specs = default_trace
        kinds = {s.periodic for s in specs}
        assert kinds == {True, False}

    def test_bursts_marked(self, default_trace):
        _, specs = default_trace
        assert any(s.bursty for s in specs)


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(n_functions=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(periodic_fraction=1.5)
        with pytest.raises(ValueError):
            AzureTraceConfig(periods_s=(60.0,), period_weights=(0.5, 0.5))

    def test_tiny_trace_works(self):
        trace, specs = generate_azure_trace(
            AzureTraceConfig(n_functions=2, duration_s=120.0, seed=0)
        )
        assert len(specs) == 2
