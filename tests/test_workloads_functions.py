"""Function profile timing model."""

import pytest

from repro.hardware import PAIR_A
from repro.workloads import FunctionProfile


@pytest.fixture
def func():
    return FunctionProfile(
        name="f", mem_gb=0.5, exec_ref_s=2.0, cold_ref_s=1.0,
        perf_sensitivity=0.5, cold_sensitivity=0.5,
    )


class TestTiming:
    def test_exec_on_reference_hardware(self, func):
        assert func.exec_time_s(PAIR_A.new) == pytest.approx(2.0)

    def test_exec_slowdown_scaling(self, func):
        # perf 0.75 -> slowdown 1/0.75; sensitivity halves the effect.
        expected = 2.0 * (1 + 0.5 * (1 / 0.75 - 1))
        assert func.exec_time_s(PAIR_A.old) == pytest.approx(expected)

    def test_zero_sensitivity_is_hardware_invariant(self):
        f = FunctionProfile(
            name="io", mem_gb=0.1, exec_ref_s=1.0, cold_ref_s=0.5,
            perf_sensitivity=0.0, cold_sensitivity=0.0,
        )
        assert f.exec_time_s(PAIR_A.old) == f.exec_time_s(PAIR_A.new) == 1.0
        assert f.cold_overhead_s(PAIR_A.old) == f.cold_overhead_s(PAIR_A.new)

    def test_unit_sensitivity_tracks_perf_index(self):
        f = FunctionProfile(
            name="cpu", mem_gb=0.1, exec_ref_s=1.0, cold_ref_s=0.5,
            perf_sensitivity=1.0,
        )
        assert f.exec_time_s(PAIR_A.old) == pytest.approx(1.0 / 0.75)

    def test_service_time_composition(self, func):
        warm = func.service_time_s(PAIR_A.new, cold=False, setup_s=0.1)
        cold = func.service_time_s(PAIR_A.new, cold=True, setup_s=0.1)
        assert warm == pytest.approx(0.1 + 2.0)
        assert cold == pytest.approx(0.1 + 2.0 + 1.0)

    def test_old_is_never_faster(self, func):
        assert func.exec_time_s(PAIR_A.old) >= func.exec_time_s(PAIR_A.new)


class TestValidationAndClone:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FunctionProfile(name="x", mem_gb=0.0, exec_ref_s=1.0, cold_ref_s=1.0)
        with pytest.raises(ValueError):
            FunctionProfile(name="x", mem_gb=1.0, exec_ref_s=-1.0, cold_ref_s=1.0)

    def test_clone_scales(self, func):
        c = func.clone("f2", mem_scale=2.0, exec_scale=0.5, cold_scale=3.0)
        assert c.name == "f2"
        assert c.mem_gb == pytest.approx(1.0)
        assert c.exec_ref_s == pytest.approx(1.0)
        assert c.cold_ref_s == pytest.approx(3.0)
        # Sensitivities carry over.
        assert c.perf_sensitivity == func.perf_sensitivity

    def test_clone_rejects_bad_scale(self, func):
        with pytest.raises(ValueError):
            func.clone("bad", mem_scale=0.0)

    def test_frozen(self, func):
        with pytest.raises(AttributeError):
            func.mem_gb = 2.0
