"""Carbon-intensity trace: lookup, integration, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon import CarbonIntensityTrace


@pytest.fixture
def step_trace():
    """100 g/kWh for the first minute, 300 for the second, 200 after."""
    return CarbonIntensityTrace(
        times_s=np.array([0.0, 60.0, 120.0]),
        values=np.array([100.0, 300.0, 200.0]),
    )


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CarbonIntensityTrace(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError, match="non-negative"):
            CarbonIntensityTrace(np.array([0.0, 1.0]), np.array([1.0, -2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(np.array([0.0, 1.0]), np.array([1.0]))

    def test_constant(self):
        tr = CarbonIntensityTrace.constant(250.0)
        assert tr.at(-5.0) == 250.0
        assert tr.at(1e9) == 250.0

    def test_from_minute_values(self):
        tr = CarbonIntensityTrace.from_minute_values([10, 20, 30])
        assert tr.at(0.0) == 10
        assert tr.at(61.0) == 20
        assert tr.times_s[-1] == 120.0


class TestLookup:
    def test_step_values(self, step_trace):
        assert step_trace.at(0.0) == 100.0
        assert step_trace.at(59.999) == 100.0
        assert step_trace.at(60.0) == 300.0
        assert step_trace.at(119.0) == 300.0
        assert step_trace.at(500.0) == 200.0

    def test_clamps_left(self, step_trace):
        assert step_trace.at(-10.0) == 100.0

    def test_at_many_matches_at(self, step_trace):
        ts = np.array([-5.0, 0.0, 30.0, 60.0, 90.0, 120.0, 1e6])
        many = step_trace.at_many(ts)
        assert many.tolist() == [step_trace.at(t) for t in ts]


class TestIntegration:
    def test_within_one_segment(self, step_trace):
        assert step_trace.integrate(10.0, 20.0) == pytest.approx(1000.0)

    def test_across_segments(self, step_trace):
        # 30 s at 100 + 60 s at 300 + 10 s at 200.
        expected = 30 * 100 + 60 * 300 + 10 * 200
        assert step_trace.integrate(30.0, 130.0) == pytest.approx(expected)

    def test_beyond_last_knot_extends(self, step_trace):
        assert step_trace.integrate(120.0, 180.0) == pytest.approx(60 * 200)

    def test_reversed_interval_raises(self, step_trace):
        with pytest.raises(ValueError, match="reversed"):
            step_trace.integrate(10.0, 5.0)

    def test_mean(self, step_trace):
        assert step_trace.mean(0.0, 120.0) == pytest.approx(200.0)
        # Empty interval falls back to the point value.
        assert step_trace.mean(70.0, 70.0) == 300.0

    def test_energy_to_carbon(self, step_trace):
        # 1 kW for the first minute at 100 g/kWh: (1/60) h * 100 g/kWh.
        g = step_trace.energy_to_carbon_g(1000.0, 0.0, 60.0)
        assert g == pytest.approx(100.0 / 60.0)


class TestLeftBoundary:
    """Pre-first-knot extension contract (see the class docstring).

    The trace extends flat at ``values[0]`` to the left; point queries,
    integration, and means must all agree on that extension.
    """

    @pytest.fixture
    def offset_trace(self):
        """First knot at t=100 s, so there is room to query left of it."""
        return CarbonIntensityTrace(
            times_s=np.array([100.0, 160.0, 220.0]),
            values=np.array([100.0, 300.0, 200.0]),
        )

    def test_point_queries_before_first_knot(self, offset_trace):
        assert offset_trace.at(-50.0) == 100.0
        assert offset_trace.at(0.0) == 100.0
        assert offset_trace.at(99.999) == 100.0
        assert offset_trace.at_many(np.array([-50.0, 0.0, 99.0])).tolist() == [
            100.0, 100.0, 100.0,
        ]

    def test_point_query_at_first_knot(self, offset_trace):
        assert offset_trace.at(100.0) == 100.0
        assert offset_trace._cum_at(100.0) == 0.0

    def test_interval_fully_left_of_trace(self, offset_trace):
        # Flat extension at values[0]: integral is width * values[0].
        assert offset_trace.integrate(0.0, 50.0) == pytest.approx(50.0 * 100.0)
        assert offset_trace.mean(0.0, 50.0) == pytest.approx(100.0)

    def test_interval_straddling_first_knot(self, offset_trace):
        # 40 s of left-extension at 100 plus 60 s of segment 0 at 100.
        assert offset_trace.integrate(60.0, 160.0) == pytest.approx(100.0 * 100.0)
        assert offset_trace.mean(60.0, 160.0) == pytest.approx(100.0)

    def test_interval_ending_exactly_at_first_knot(self, offset_trace):
        assert offset_trace.integrate(80.0, 100.0) == pytest.approx(20.0 * 100.0)

    def test_cum_at_is_signed_left_of_first_knot(self, offset_trace):
        # The signed ramp is what makes integrate() additive across t0.
        assert offset_trace._cum_at(90.0) == pytest.approx(-10.0 * 100.0)
        left = offset_trace.integrate(0.0, 100.0)
        right = offset_trace.integrate(100.0, 200.0)
        assert left + right == pytest.approx(offset_trace.integrate(0.0, 200.0))

    def test_mean_left_agrees_with_clamped_point_value(self, offset_trace):
        for t0, t1 in [(-100.0, -10.0), (0.0, 100.0), (-5.0, 5.0)]:
            assert offset_trace.mean(t0, t1) == pytest.approx(offset_trace.at(t0))


class TestStats:
    def test_hourly_series_constant(self):
        tr = CarbonIntensityTrace.from_minute_values([100.0] * 180)
        assert np.allclose(tr.hourly_series(), 100.0)
        assert tr.hourly_fluctuation_pct() == 0.0

    def test_hourly_series_includes_trailing_partial_hour(self):
        """A 90-minute trace must yield the full hour plus the remainder."""
        vals = [100.0] * 60 + [300.0] * 30
        tr = CarbonIntensityTrace.from_minute_values(vals)
        h = tr.hourly_series()
        assert h.shape == (2,)
        assert h[0] == pytest.approx(100.0)
        assert h[1] == pytest.approx(300.0)
        assert tr.hourly_fluctuation_pct() == pytest.approx(200.0)

    def test_hourly_series_subhour_trace(self):
        """A trace shorter than an hour averages over its real span only."""
        tr = CarbonIntensityTrace.from_minute_values([100.0, 200.0, 300.0])
        h = tr.hourly_series()
        assert h.shape == (1,)
        assert h[0] == pytest.approx(tr.mean(0.0, 120.0))

    def test_hourly_series_single_knot(self):
        tr = CarbonIntensityTrace.constant(250.0)
        assert tr.hourly_series().tolist() == [250.0]

    def test_hourly_series_exact_hours_unchanged(self):
        """Integer-hour spans keep exactly one bucket per hour."""
        tr = CarbonIntensityTrace.from_minute_values([100.0] * 121)
        assert tr.hourly_series().shape == (2,)

    def test_fluctuation_positive_for_varying(self):
        vals = 100 + 50 * np.sin(np.arange(240) / 10.0)
        tr = CarbonIntensityTrace.from_minute_values(vals)
        assert tr.hourly_fluctuation_pct() > 0.0

    def test_shifted(self, step_trace):
        sh = step_trace.shifted(1000.0)
        assert sh.at(1000.0) == step_trace.at(0.0)
        assert sh.integrate(1000.0, 1060.0) == step_trace.integrate(0.0, 60.0)


# -- property-based invariants -------------------------------------------------


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    gaps = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=600.0),
            min_size=n, max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0),
            min_size=n, max_size=n,
        )
    )
    t = np.cumsum(np.asarray(gaps))
    return CarbonIntensityTrace(times_s=t, values=np.asarray(values))


@given(traces(), st.floats(0.0, 5000.0), st.floats(0.0, 5000.0), st.floats(0.0, 5000.0))
@settings(max_examples=60, deadline=None)
def test_integral_is_additive(trace, a, b, c):
    """integrate(a,c) == integrate(a,b) + integrate(b,c) for a <= b <= c."""
    a, b, c = sorted((a, b, c))
    whole = trace.integrate(a, c)
    parts = trace.integrate(a, b) + trace.integrate(b, c)
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-6)


@given(traces(), st.floats(0.0, 5000.0), st.floats(0.1, 5000.0))
@settings(max_examples=60, deadline=None)
def test_mean_within_value_range(trace, a, width):
    """The interval mean never escapes [min(values), max(values)].

    Tolerance must scale with the cumulative-integral magnitude over the
    window width: mean() computes (cum(b) - cum(a)) / width, so its
    rounding error is ~eps * |cum| / width -- a flat 1e-9 is too tight
    for narrow windows far into the trace.
    """
    b = a + width
    m = trace.mean(a, b)
    vmax = float(trace.values.max())
    tol = 1e-9 + 8.0 * np.finfo(float).eps * vmax * max(b, 1.0) / width
    assert trace.values.min() - tol <= m <= vmax + tol


@given(traces(), st.floats(0.0, 5000.0), st.floats(0.0, 5000.0))
@settings(max_examples=60, deadline=None)
def test_integral_monotone_in_upper_limit(trace, a, b):
    a, b = min(a, b), max(a, b)
    assert trace.integrate(a, b) >= -1e-9
