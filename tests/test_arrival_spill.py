"""Arrival-estimator shelf spill: disk tier + peek-without-revive reads.

The registry's retirement shelf overflows least-recently-shelved
estimators to an :class:`ArchiveSpill` store. The contract mirrors the
KDM archives: spilling is invisible -- every read path (the adjuster's
``get`` peek, the KDM-driven ``revive``) sees bit-identical histories
whether the estimator sat in memory, on disk, or never retired at all.
"""

import numpy as np
import pytest

from repro.core import EcoLifeConfig
from repro.core.arrival import ArrivalRegistry
from repro.core.spill import ArchiveSpill
from tests.test_retirement import (
    _churn_trace,
    _replay,
    assert_records_identical,
)


def _filled_registry(tmp_path, spill_after=2, n=5):
    """A registry with ``n`` observed-then-retired estimators."""
    reg = ArrivalRegistry(
        history=8, spill=ArchiveSpill(tmp_path), spill_after=spill_after
    )
    for i in range(n):
        name = f"f{i}"
        for k in range(4):
            reg.observe(name, 100.0 * i + 30.0 * k + 7.0 * (k % 2))
    for i in range(n):
        reg.retire(f"f{i}")
    return reg


class TestShelfSpill:
    def test_overflow_spills_oldest_first(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=2, n=5)
        assert len(reg) == 0
        assert reg.archived_count == 5
        assert reg.spilled_count == 3
        # Oldest-shelved went to disk; the two most recent stayed resident.
        assert sorted(reg._archived) == ["f3", "f4"]
        assert all(f"f{i}" in reg._spill for i in range(3))

    def test_peek_reads_through_spill_without_reviving(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=2, n=5)
        reference = _filled_registry(tmp_path / "ref", spill_after=10**6, n=5)
        k = np.array([10.0, 60.0, 240.0])
        est = reg.get("f0")  # spilled -> read through disk
        ref = reference.get("f0")  # never left memory
        np.testing.assert_array_equal(est.p_warm(k), ref.p_warm(k))
        np.testing.assert_array_equal(
            est.expected_keepalive_s(k), ref.expected_keepalive_s(k)
        )
        # Still archived, not revived; shelf cap maintained.
        assert len(reg) == 0
        assert reg.archived_count == 5
        assert len(reg._archived) == 2

    def test_peeked_estimator_parks_resident(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=2, n=5)
        loaded_before = reg._spill.loaded
        reg.get("f1")
        assert reg._spill.loaded == loaded_before + 1
        # Second peek is served from the in-memory shelf, not disk.
        reg.get("f1")
        assert reg._spill.loaded == loaded_before + 1

    def test_revive_from_disk(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=2, n=5)
        reg.revive("f0")  # disk tier
        reg.revive("f4")  # memory tier
        assert len(reg) == 2
        assert reg.archived_count == 3
        # Revived estimators keep observing where they left off.
        reg.observe("f0", 10_000.0)
        assert reg.get("f0").n_samples == 4

    def test_unknown_name_gets_fresh_estimator(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=2, n=3)
        est = reg.get("never-seen")
        assert est.n_samples == 0
        assert len(reg) == 1  # fresh estimators are live, not archived

    def test_spill_after_zero_spills_everything(self, tmp_path):
        reg = _filled_registry(tmp_path, spill_after=0, n=3)
        assert reg.spilled_count == 3
        assert len(reg._archived) == 0
        assert reg.get("f0").n_samples == 3

    def test_no_spill_store_is_memory_only(self):
        reg = ArrivalRegistry()
        reg.observe("f", 1.0)
        reg.retire("f")
        assert reg.spilled_count == 0
        assert reg.archived_count == 1

    def test_spill_after_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ArrivalRegistry(spill=ArchiveSpill(tmp_path), spill_after=-1)


class TestChurnReplayWithEstimatorSpill:
    def test_replay_bit_identical_and_spill_engaged(self, tmp_path):
        """End to end: estimator-shelf spill never changes a decision.

        ``spill_archives_after=1`` forces heavy spill/peek traffic on a
        churned trace (the warm-pool adjuster peeks at retired
        functions' histories); the replay must stay bit-identical to a
        never-retired run.
        """
        trace = _churn_trace(n_functions=24, hours=2.0)
        base, _ = _replay(
            trace, EcoLifeConfig(), pool_capacity_old_gb=4.0, pool_capacity_new_gb=4.0
        )
        cfg = EcoLifeConfig(
            retire_after_s=600.0,
            spill_dir=str(tmp_path / "spill"),
            spill_archives_after=1,
        )
        spilled, sched = _replay(
            trace, cfg, pool_capacity_old_gb=4.0, pool_capacity_new_gb=4.0
        )
        assert_records_identical(base, spilled)
        assert sched.arrivals._spill is not None
        assert sched.arrivals._spill.spilled > 0
