"""The DESIGN.md calibration targets, checked via repro.validation."""

import pytest

from repro import validation


@pytest.fixture(scope="module")
def checks():
    return validation.run_all_checks()


def test_all_calibration_targets_hold(checks):
    failures = [c.render() for c in checks if not c.ok]
    assert not failures, "calibration drift:\n" + "\n".join(failures)


def test_report_renders(checks):
    report = validation.render_report(checks)
    assert "calibration targets hold" in report
    assert report.count("PASS") == len(checks)


def test_check_maths():
    c = validation.Check("x", "d", measured=0.5, low=0.0, high=1.0)
    assert c.ok
    assert "PASS" in c.render()
    bad = validation.Check("x", "d", measured=2.0, low=0.0, high=1.0)
    assert not bad.ok
    assert "FAIL" in bad.render()


def test_individual_check_groups_nonempty():
    assert len(validation.check_fig1_keepalive_fractions()) == 2
    assert len(validation.check_fig2_pair_a_tradeoff()) == 2
    assert len(validation.check_fig3_inversion()) == 3
    assert len(validation.check_catalog_orderings()) == 6
    assert len(validation.check_region_statistics()) == 2
