"""SeBS catalog contents and calibration-relevant properties."""

import pytest

from repro.hardware import PAIR_A
from repro.workloads import MOTIVATION_FUNCTIONS, SEBS_FUNCTIONS, get_function


def test_catalog_size_and_uniqueness():
    assert len(SEBS_FUNCTIONS) == 10
    assert len({f.name for f in SEBS_FUNCTIONS.values()}) == 10


def test_motivation_functions_are_the_papers():
    names = [f.name for f in MOTIVATION_FUNCTIONS]
    assert names == ["video-processing", "graph-bfs", "dna-visualization"]


def test_get_function():
    assert get_function("graph-bfs").name == "graph-bfs"
    with pytest.raises(KeyError, match="unknown SeBS function"):
        get_function("nope")


def test_video_processing_slowdown_matches_paper():
    """Paper Sec. III: video-processing ~15.9% slower on A_OLD."""
    v = get_function("video-processing")
    ratio = v.exec_time_s(PAIR_A.old) / v.exec_time_s(PAIR_A.new)
    assert 1.10 <= ratio <= 1.25


def test_catalog_spans_paper_magnitudes():
    execs = [f.exec_ref_s for f in SEBS_FUNCTIONS.values()]
    colds = [f.cold_ref_s for f in SEBS_FUNCTIONS.values()]
    mems = [f.mem_gb for f in SEBS_FUNCTIONS.values()]
    assert min(execs) < 0.5 and max(execs) > 5.0
    assert min(colds) < 1.0 and max(colds) > 3.0
    assert min(mems) <= 0.2 and max(mems) >= 1.5


def test_dna_visualization_service_time_on_old():
    """Fig. 2: DNA-visualization reaches ~15 s service on A_OLD with cold."""
    d = get_function("dna-visualization")
    s = d.service_time_s(PAIR_A.old, cold=True)
    assert 12.0 <= s <= 20.0


def test_cold_starts_comparable_to_exec():
    """The paper stresses cold starts are comparable to execution times."""
    comparable = [
        f for f in SEBS_FUNCTIONS.values() if f.cold_ref_s >= 0.5 * f.exec_ref_s
    ]
    assert len(comparable) >= 5
