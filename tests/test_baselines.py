"""Fixed baselines, Eco-Old/Eco-New, GA/SA schedulers."""

import pytest

from repro.baselines import (
    eco_new,
    eco_old,
    ga_scheduler,
    new_only,
    old_only,
    sa_scheduler,
)
from repro.carbon import CarbonIntensityTrace
from repro.hardware import PAIR_A, Generation
from repro.simulator import SimulationConfig, SimulationEngine
from repro.workloads import FunctionProfile, InvocationTrace


def _func(name="f", mem=0.5):
    return FunctionProfile(name=name, mem_gb=mem, exec_ref_s=2.0, cold_ref_s=1.5)


def run(events, scheduler, **cfg_kw):
    engine = SimulationEngine(
        pair=PAIR_A,
        trace=InvocationTrace.from_events(events),
        ci_trace=CarbonIntensityTrace.constant(250.0),
        config=SimulationConfig(**cfg_kw),
    )
    return engine.run(scheduler)


class TestFixedBaselines:
    def test_new_only_uses_new_everywhere(self):
        f = _func()
        res = run([(i * 100.0, f) for i in range(10)], new_only())
        assert all(r.location is Generation.NEW for r in res.records)
        assert res.scheduler_name == "new-only"

    def test_old_only_uses_old_everywhere(self):
        f = _func()
        res = run([(i * 100.0, f) for i in range(10)], old_only())
        assert all(r.location is Generation.OLD for r in res.records)

    def test_ten_minute_policy(self):
        """Warm within 10 min of completion, cold after."""
        f = _func()
        res = run([(0.0, f), (500.0, f), (1500.0, f)], new_only())
        assert res.records[0].cold
        assert not res.records[1].cold
        assert res.records[2].cold  # 500+svc -> expired by 1500? 500+2.05+600 ~ 1102

    def test_old_only_slower_than_new_only(self):
        f = _func()
        events = [(i * 100.0, f) for i in range(10)]
        slow = run(events, old_only())
        fast = run(events, new_only())
        assert slow.mean_service_s > fast.mean_service_s

    def test_custom_keepalive(self):
        f = _func()
        res = run([(0.0, f), (120.0, f)], new_only(keepalive_s=60.0))
        assert res.records[1].cold

    def test_rejects_negative_keepalive(self):
        with pytest.raises(ValueError):
            new_only(keepalive_s=-1.0)

    def test_no_spill(self):
        assert new_only().allow_spill is False


class TestStaticEco:
    def test_names(self):
        assert eco_old().name == "eco-old"
        assert eco_new().name == "eco-new"

    def test_eco_old_stays_old(self):
        f = _func()
        res = run([(i * 120.0, f) for i in range(8)], eco_old())
        assert all(r.location is Generation.OLD for r in res.records)

    def test_eco_new_stays_new(self):
        f = _func()
        res = run([(i * 120.0, f) for i in range(8)], eco_new())
        assert all(r.location is Generation.NEW for r in res.records)


class TestHeuristicSchedulers:
    @pytest.mark.parametrize("factory,name", [
        (ga_scheduler, "ecolife-ga"),
        (sa_scheduler, "ecolife-sa"),
    ])
    def test_runs_and_named(self, factory, name):
        f = _func()
        sched = factory()
        res = run([(i * 150.0, f) for i in range(8)], sched)
        assert res.scheduler_name == name
        assert len(res) == 8
