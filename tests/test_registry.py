"""Scheduler registry, ``ResultCache.fetch_or_run``, and the Executor
seam's local backend (ISSUE 8 satellites).

The registry replaces the old hard-coded ``_make_*`` dict in
``experiments/runner.py``: jobs still reference schedulers by name (the
picklable cross-process/machine currency), but out-of-tree code can now
add names via ``@register_scheduler`` without editing runner code.
"""

import pytest

from repro.core import EcoLifeConfig
from repro.experiments.registry import (
    REGISTRY,
    create_scheduler,
    is_registered,
    list_schedulers,
    register_scheduler,
    scheduler_factory,
    unregister_scheduler,
)
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    SCHEDULERS,
    LocalPoolExecutor,
    ResultCache,
    RunnerJob,
    ScenarioSpec,
    execute_job,
    execute_job_with_records,
    make_scheduler,
    unpack_outcome,
)
from repro.simulator import BaseScheduler

BUILTINS = {
    "ecolife",
    "ecolife-no-dpso",
    "ecolife-no-adjust",
    "eco-old",
    "eco-new",
    "ecolife-ga",
    "ecolife-sa",
    "co2-opt",
    "service-time-opt",
    "energy-opt",
    "oracle",
    "new-only",
    "old-only",
}


@pytest.fixture
def scratch_name():
    """A registry slot that is guaranteed clean before and after."""
    name = "test-scratch-scheduler"
    unregister_scheduler(name)
    yield name
    unregister_scheduler(name)


class TestBuiltinRegistrations:
    def test_all_13_builtins_registered(self):
        assert BUILTINS <= set(list_schedulers())
        assert len(BUILTINS) == 13

    def test_list_is_sorted(self):
        names = list_schedulers()
        assert list(names) == sorted(names)

    def test_scheduler_names_alias_preserves_historical_order(self):
        # SCHEDULER_NAMES keeps the pre-registry tuple shape for
        # back-compat callers; same membership as the registry builtins.
        assert set(SCHEDULER_NAMES) == BUILTINS

    def test_schedulers_mapping_is_live_and_readonly(self, scratch_name):
        assert SCHEDULERS is REGISTRY
        with pytest.raises(TypeError):
            SCHEDULERS[scratch_name] = lambda config: None  # type: ignore[index]
        register_scheduler(scratch_name)(
            lambda config: make_scheduler("new-only")
        )
        assert scratch_name in SCHEDULERS  # live view, not a copy

    def test_every_builtin_constructs(self):
        for name in BUILTINS:
            assert isinstance(create_scheduler(name), BaseScheduler)

    def test_make_scheduler_back_compat(self):
        sched = make_scheduler("ecolife", EcoLifeConfig(seed=3))
        assert sched.name == "ecolife"
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("nope")


class TestRegisterScheduler:
    def test_register_and_resolve(self, scratch_name):
        calls = []

        @register_scheduler(scratch_name)
        def factory(config):
            calls.append(config)
            return make_scheduler("new-only")

        assert is_registered(scratch_name)
        assert scheduler_factory(scratch_name) is factory
        create_scheduler(scratch_name, EcoLifeConfig(seed=1))
        assert len(calls) == 1

    def test_duplicate_registration_is_loud(self, scratch_name):
        @register_scheduler(scratch_name)
        def factory(config):
            return make_scheduler("new-only")

        with pytest.raises(ValueError, match="already registered"):
            register_scheduler(scratch_name)(
                lambda config: make_scheduler("old-only")
            )

    def test_same_factory_reregistration_is_idempotent(self, scratch_name):
        # Module re-imports re-run decorators with the same object; that
        # must not explode.
        def factory(config):
            return make_scheduler("new-only")

        register_scheduler(scratch_name)(factory)
        register_scheduler(scratch_name)(factory)
        assert is_registered(scratch_name)

    def test_replace_opt_in(self, scratch_name):
        register_scheduler(scratch_name)(
            lambda config: make_scheduler("new-only")
        )

        @register_scheduler(scratch_name, replace=True)
        def newer(config):
            return make_scheduler("old-only")

        assert scheduler_factory(scratch_name) is newer

    def test_bad_names_rejected(self):
        for bad in ("", "  ", "name "):
            with pytest.raises(ValueError, match="non-empty token"):
                register_scheduler(bad)

    def test_unknown_lookup_lists_options(self):
        with pytest.raises(KeyError, match="registered:"):
            scheduler_factory("definitely-not-registered")

    def test_runner_job_validates_against_registry(self, scratch_name):
        spec = ScenarioSpec(n_functions=4, hours=0.5)
        with pytest.raises(KeyError, match="unknown scheduler"):
            RunnerJob(scheduler=scratch_name, spec=spec)
        register_scheduler(scratch_name)(
            lambda config: make_scheduler("new-only")
        )
        job = RunnerJob(scheduler=scratch_name, spec=spec)
        # A registered plugin name executes like a builtin.
        summary = execute_job(job)
        assert summary.scenario_label == spec.label


class TestFetchOrRun:
    """One primitive behind every get/execute/put dance."""

    def job(self, seed=1):
        return RunnerJob(
            scheduler="new-only",
            spec=ScenarioSpec(n_functions=4, hours=0.5, seed=seed),
        )

    def test_miss_runs_and_commits(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = self.job()
        summary = cache.fetch_or_run(job)
        assert (cache.hits, cache.misses) == (0, 1)
        # Second call is a pure hit -- and must not re-execute.
        def explode(_job):
            raise AssertionError("must not run on a hit")

        again = cache.fetch_or_run(job, explode)
        assert (cache.hits, cache.misses) == (1, 1)
        assert again == summary

    def test_matches_direct_execute(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = self.job(seed=2)
        via_cache = cache.fetch_or_run(job)
        direct = execute_job(job)
        assert via_cache.deterministic_dict() == direct.deterministic_dict()

    def test_records_cache_persists_records(self, tmp_path):
        cache = ResultCache(tmp_path, store_records=True)
        job = self.job(seed=3)
        cache.fetch_or_run(job)  # default run picks the records entry
        assert cache.record_count() == 1
        records = cache.get_records(job)
        assert records is not None and len(records.service_s) > 0

    def test_custom_runner_callable(self, tmp_path):
        cache = ResultCache(tmp_path, store_records=True)
        job = self.job(seed=4)
        seen = []

        def run(j):
            seen.append(j)
            return execute_job_with_records(j)

        summary = cache.fetch_or_run(job, run)
        assert seen == [job]
        expected, _ = unpack_outcome(execute_job_with_records(job))
        assert summary.deterministic_dict() == expected.deterministic_dict()


class TestLocalPoolExecutor:
    def jobs(self):
        return [
            RunnerJob(
                scheduler="new-only",
                spec=ScenarioSpec(n_functions=4, hours=0.5, seed=s),
            )
            for s in (1, 2)
        ]

    def test_capability_flags(self):
        ex = LocalPoolExecutor(2)
        assert ex.commits_results is False
        assert ex.retries_jobs is False

    def test_submit_and_as_completed_round_trip(self):
        jobs = self.jobs()
        expected = {
            job.scenario_label: execute_job(job).deterministic_dict()
            for job in jobs
        }
        ex = LocalPoolExecutor(2)
        try:
            futures = {ex.submit(job): job for job in jobs}
            done = list(ex.as_completed())
            assert set(done) == set(futures)
            for fut in done:
                summary, records = unpack_outcome(fut.result())
                assert records is None
                label = futures[fut].scenario_label
                assert summary.deterministic_dict() == expected[label]
        finally:
            ex.shutdown()

    def test_with_records_ships_record_arrays(self):
        [job] = self.jobs()[:1]
        ex = LocalPoolExecutor(1)
        try:
            fut = ex.submit(job, with_records=True)
            [done] = list(ex.as_completed())
            assert done is fut
            summary, records = unpack_outcome(fut.result())
            assert records is not None and len(records.service_s) > 0
        finally:
            ex.shutdown()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            LocalPoolExecutor(0)
