"""Sweep runner: grid expansion, determinism, caching, registry."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import EcoLifeConfig, EcoLifeScheduler
from repro.experiments import quick_scenario, run_suite
from repro.experiments.runner import (
    SCHEDULER_NAMES,
    ParallelRunner,
    ResultCache,
    ResultSummary,
    RunnerJob,
    ScenarioGrid,
    ScenarioSpec,
    SummarySchemaError,
    WorkerCrashError,
    execute_job,
    execute_job_with_records,
    make_scheduler,
)
from repro.workloads.generators import WorkloadSpec


def tiny_grid(**overrides):
    """A grid small enough for per-test full replays (~100 invocations)."""
    kwargs = dict(
        regions=("CAL",), seeds=(3,), n_functions=6, hours=0.5
    )
    kwargs.update(overrides)
    return ScenarioGrid(**kwargs)


class TestScenarioSpec:
    def test_label_covers_all_axes(self):
        spec = ScenarioSpec(
            n_functions=5, hours=1.0, seed=9, region="TEN", pair="B",
            pool_gb=16.0, kmax_minutes=20.0,
        )
        label = spec.label
        for token in ("n5", "h1", "s9", "TEN", "pairB", "p16", "k20", "sh8"):
            assert token in label

    def test_labels_distinct_across_every_axis(self):
        """Labels double as cache identity: any parameter change must
        produce a distinct label."""
        base = ScenarioSpec()
        variants = [
            dataclasses.replace(base, n_functions=61),
            dataclasses.replace(base, hours=5.5),
            dataclasses.replace(base, seed=8),
            dataclasses.replace(base, region="TEN"),
            dataclasses.replace(base, pair="B"),
            dataclasses.replace(base, pool_gb=16.0),
            dataclasses.replace(base, kmax_minutes=20.0),
            dataclasses.replace(base, start_hour=0.0),
        ]
        labels = {base.label, *(v.label for v in variants)}
        assert len(labels) == len(variants) + 1

    def test_build_produces_labelled_scenario(self):
        spec = ScenarioSpec(n_functions=5, hours=0.5, seed=1)
        scenario = spec.build()
        assert scenario.label == spec.label
        assert len(scenario.trace) > 0
        assert scenario.sim_config.pool_capacity_old_gb == spec.pool_gb

    def test_build_is_deterministic(self):
        a = ScenarioSpec(n_functions=5, hours=0.5, seed=1).build()
        b = ScenarioSpec(n_functions=5, hours=0.5, seed=1).build()
        assert a.trace.times_s.tolist() == b.trace.times_s.tolist()
        assert a.ci_trace.values.tolist() == b.ci_trace.values.tolist()


class TestScenarioGrid:
    def test_cross_product_size_and_order(self):
        g = ScenarioGrid(
            regions=("CAL", "TEN"), pairs=("A", "B"), seeds=(1, 2),
            pool_gbs=(16.0, 32.0),
        )
        specs = g.specs()
        assert len(g) == 16 and len(specs) == 16
        # Region is the outermost axis, pool the innermost.
        assert specs[0].region == "CAL" and specs[0].pool_gb == 16.0
        assert specs[1].pool_gb == 32.0
        assert specs[-1].region == "TEN" and specs[-1].pair == "B"

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioGrid(regions=())

    def test_runner_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match=">= 1"):
            ParallelRunner(n_workers=0)
        with pytest.raises(ValueError, match=">= 1"):
            ParallelRunner(n_workers=-2)

    def test_jobs_are_scenario_major(self):
        g = tiny_grid(regions=("CAL", "TEN"))
        jobs = g.jobs(["oracle", "ecolife"])
        assert [j.scheduler for j in jobs[:2]] == ["oracle", "ecolife"]
        assert jobs[0].spec == jobs[1].spec


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in SCHEDULER_NAMES:
            sched = make_scheduler(name)
            assert hasattr(sched, "place")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("nope")

    def test_config_reaches_ecolife(self):
        sched = make_scheduler("ecolife", EcoLifeConfig(seed=99))
        assert isinstance(sched, EcoLifeScheduler)
        assert sched.config.seed == 99


class TestRunnerJob:
    def test_requires_exactly_one_source(self):
        spec = ScenarioSpec(n_functions=5, hours=0.5)
        with pytest.raises(ValueError, match="exactly one"):
            RunnerJob(scheduler="oracle")
        with pytest.raises(ValueError, match="exactly one"):
            RunnerJob(
                scheduler="oracle", spec=spec, scenario=quick_scenario(),
            )

    def test_rejects_unregistered_scheduler(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            RunnerJob(scheduler="nope", spec=ScenarioSpec())

    def test_execute_job_summary(self):
        job = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        summary = execute_job(job)
        assert isinstance(summary, ResultSummary)
        assert summary.scenario_label == job.scenario_label
        assert summary.n_invocations > 0
        assert summary.total_carbon_g > 0.0


class TestDeterminism:
    def test_parallel_matches_serial(self):
        """The acceptance criterion: n_workers > 1 must reproduce the
        serial aggregates byte-for-byte (wall time excluded)."""
        g = tiny_grid(regions=("CAL", "TEN"))
        schedulers = ["oracle", "ecolife"]
        serial = ParallelRunner(n_workers=1).run_grid(g, schedulers)
        parallel = ParallelRunner(n_workers=2).run_grid(g, schedulers)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial.summaries, parallel.summaries):
            assert a.deterministic_dict() == b.deterministic_dict()

    def test_repeat_runs_identical(self):
        job = RunnerJob(
            scheduler="ecolife", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        a, b = execute_job(job), execute_job(job)
        assert a.deterministic_dict() == b.deterministic_dict()


class TestBatchedSwarmEquivalence:
    """Batched fleet replays must be indistinguishable from the
    per-function DPSO path in every deterministic aggregate."""

    def test_batch_on_off_identical_cached_summaries(self, tmp_path):
        """A short two-function replay, batching on vs off, through the
        full runner + ResultCache pipeline."""
        g = tiny_grid(n_functions=2, hours=0.5)
        results = {}
        for flag in (True, False):
            cache = ResultCache(tmp_path / f"batch-{flag}")
            runner = ParallelRunner(n_workers=1, cache=cache)
            # Stream RNG pinned: on/off bit-identity is the stream
            # contract (counter mode intentionally differs).
            config = EcoLifeConfig(batch_swarms=flag, rng_mode="stream")
            grid_result = runner.run_grid(
                g, ["ecolife", "ecolife-no-dpso"], config=config
            )
            # What landed in the cache is what we compare.
            cached = [cache.get(job) for job in grid_result.jobs]
            assert all(c is not None for c in cached)
            results[flag] = [c.deterministic_dict() for c in cached]
        assert results[True] == results[False]

    def test_batch_flag_changes_cache_key_not_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec(n_functions=2, hours=0.5)
        on = RunnerJob(
            scheduler="ecolife",
            spec=spec,
            config=EcoLifeConfig(batch_swarms=True, rng_mode="stream"),
        )
        off = RunnerJob(
            scheduler="ecolife",
            spec=spec,
            config=EcoLifeConfig(batch_swarms=False, rng_mode="stream"),
        )
        assert cache.key(on) != cache.key(off)
        assert (
            execute_job(on).deterministic_dict()
            == execute_job(off).deterministic_dict()
        )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        assert cache.get(job) is None
        summary = execute_job(job)
        cache.put(job, summary)
        assert cache.get(job) == summary
        assert cache.hits == 1 and cache.misses == 1

    def test_key_varies_by_scheduler_scenario_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec(n_functions=6, hours=0.5)
        base = RunnerJob(scheduler="ecolife", spec=spec)
        assert cache.key(base) != cache.key(
            RunnerJob(scheduler="oracle", spec=spec)
        )
        assert cache.key(base) != cache.key(
            RunnerJob(scheduler="ecolife", spec=dataclasses.replace(spec, seed=8))
        )
        assert cache.key(base) != cache.key(
            RunnerJob(scheduler="ecolife", spec=spec, config=EcoLifeConfig(seed=1))
        )

    def test_runner_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        g = tiny_grid()
        runner = ParallelRunner(n_workers=1, cache=cache)
        first = runner.run_grid(g, ["new-only"])
        assert cache.misses == 1 and cache.hits == 0
        second = runner.run_grid(g, ["new-only"])
        assert cache.hits == 1
        assert (
            first.summaries[0].deterministic_dict()
            == second.summaries[0].deterministic_dict()
        )

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        cache.put(job, execute_job(job))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestSummarySchemaTolerance:
    """Stale cache JSON must miss, never crash the sweep (ISSUE 7)."""

    def _summary_dict(self):
        job = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        return job, dataclasses.asdict(execute_job(job))

    def test_unknown_keys_are_tolerated(self):
        _, data = self._summary_dict()
        data["a_future_field"] = 123.0
        summary = ResultSummary.from_json(json.dumps(data))
        assert summary.scheduler_name == data["scheduler_name"]

    def test_missing_required_field_raises_schema_error(self):
        _, data = self._summary_dict()
        del data["total_carbon_g"]
        with pytest.raises(SummarySchemaError, match="total_carbon_g"):
            ResultSummary.from_json(json.dumps(data))

    def test_malformed_json_raises_schema_error(self):
        with pytest.raises(SummarySchemaError):
            ResultSummary.from_json("{not json")
        with pytest.raises(SummarySchemaError):
            ResultSummary.from_json("[1, 2, 3]")

    def test_stale_cache_entry_is_a_miss_not_a_crash(self, tmp_path):
        """Hand-written stale JSON (pre-rename schema) under the current
        key must read as a miss and be overwritten by a re-run."""
        cache = ResultCache(tmp_path)
        job, data = self._summary_dict()
        # Simulate an entry written before a field was renamed.
        stale = dict(data)
        stale["total_co2_g"] = stale.pop("total_carbon_g")
        cache._path(cache.key(job)).write_text(json.dumps(stale))
        assert cache.get(job) is None
        assert cache.misses == 1
        # The runner then re-simulates and repairs the entry in place.
        runner = ParallelRunner(n_workers=1, cache=cache)
        [summary] = runner.run([job])
        assert summary.total_carbon_g == data["total_carbon_g"]
        assert cache.get(job) == summary

    def test_schema_token_is_part_of_the_key(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        job = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        before = cache.key(job)
        monkeypatch.setattr(
            ResultSummary, "schema_token", classmethod(lambda cls: "fields:other")
        )
        assert cache.key(job) != before


class _PoisonTrace:
    """Pickles fine in the parent; kills the worker during unpickling."""

    def __reduce__(self):
        import os

        return (os._exit, (13,))


def _poison_job(scheduler: str) -> RunnerJob:
    scenario = quick_scenario(seed=3)
    scenario = dataclasses.replace(
        scenario, trace=_PoisonTrace(), label=f"poison-{scheduler}"
    )
    return RunnerJob(scheduler=scheduler, scenario=scenario)


class TestWorkerCrash:
    """A worker death surfaces as WorkerCrashError naming the lost jobs,
    and completed results stay resumable from the cache (ISSUE 7)."""

    def test_crash_names_failed_jobs_and_cache_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = RunnerJob(
            scheduler="new-only", spec=ScenarioSpec(n_functions=6, hours=0.5)
        )
        # Pre-complete the good job so it is a cache hit; both pending
        # jobs are poison, so the pool path (>= 2 pending) is exercised
        # deterministically and nothing runs in-process.
        cache.put(good, execute_job(good))
        poison = [_poison_job("new-only"), _poison_job("oracle")]
        runner = ParallelRunner(n_workers=2, cache=cache)
        with pytest.raises(WorkerCrashError) as excinfo:
            runner.run([good, *poison])
        err = excinfo.value
        assert err.completed == 1
        assert set(err.failed_labels) == {
            "new-only @ poison-new-only", "oracle @ poison-oracle"
        }
        assert "re-run to resume" in str(err)
        # Resume: the completed job is served from the cache untouched.
        hits_before = cache.hits
        [resumed] = runner.run([good])
        assert cache.hits == hits_before + 1
        assert resumed.scheduler_name == "new-only"


class TestGridResult:
    def test_by_scenario_pivot(self):
        g = tiny_grid(regions=("CAL", "TEN"))
        result = ParallelRunner().run_grid(g, ["oracle", "new-only"])
        pivot = result.by_scenario()
        assert set(pivot) == set(result.scenario_labels)
        for label, schemes in pivot.items():
            assert set(schemes) == {"oracle", "new-only"}
            assert schemes["oracle"].scenario_label == label


class TestDriverParallelWiring:
    """fig11 / sens_* drivers through ParallelRunner: parallel == serial."""

    @pytest.fixture(scope="class")
    def tiny_scenario(self):
        return ScenarioSpec(n_functions=6, hours=0.5, seed=3).build()

    def test_fig11_parallel_matches_serial(self, tiny_scenario):
        from repro.experiments.fig11_warmpool import run_fig11

        serial = run_fig11(tiny_scenario, n_workers=1)
        parallel = run_fig11(tiny_scenario, n_workers=2)
        assert len(serial.points) == len(parallel.points) == 6
        for a, b in zip(serial.points, parallel.points):
            assert a == b

    def test_optimizer_comparison_parallel_matches_serial(self, tiny_scenario):
        from repro.experiments.sens_optimizers import run_optimizer_comparison

        serial = run_optimizer_comparison(tiny_scenario, n_workers=1)
        parallel = run_optimizer_comparison(tiny_scenario, n_workers=2)
        assert serial.service_s == parallel.service_s
        assert serial.carbon_g == parallel.carbon_g
        assert set(serial.carbon_g) == {"ecolife", "ecolife-ga", "ecolife-sa"}

    def test_embodied_sensitivity_parallel_matches_serial(self, tiny_scenario):
        from repro.experiments.sens_embodied import run_embodied_sensitivity

        serial = run_embodied_sensitivity(tiny_scenario, n_workers=1)
        parallel = run_embodied_sensitivity(tiny_scenario, n_workers=3)
        assert serial.points == parallel.points
        assert len(serial.points) == 3

    def test_component_sensitivity_parallel_matches_serial(self, tiny_scenario):
        from repro.experiments.sens_embodied import run_component_sensitivity

        serial = run_component_sensitivity(tiny_scenario, n_workers=1)
        parallel = run_component_sensitivity(tiny_scenario, n_workers=2)
        assert serial.points == parallel.points

    def test_ga_sa_registry_names(self):
        from repro.core.config import OptimizerKind

        assert make_scheduler("ecolife-ga").config.optimizer is OptimizerKind.GENETIC
        assert (
            make_scheduler("ecolife-sa").config.optimizer is OptimizerKind.ANNEALING
        )


class TestWorkloadAxes:
    def test_spec_workload_in_label(self):
        spec = ScenarioSpec(n_functions=5, hours=0.5, workload="mmpp")
        assert spec.label.startswith("mmpp-n5")
        with_params = ScenarioSpec(
            n_functions=5,
            hours=0.5,
            workload=WorkloadSpec.make("mmpp", burst_rate_mult=8),
        )
        assert with_params.label != spec.label

    def test_spec_accepts_string_workload(self):
        spec = ScenarioSpec(workload="churn:inner=mmpp")
        assert spec.workload == WorkloadSpec.make("churn", inner="mmpp")

    def test_default_labels_unchanged(self):
        # Cache-identity compatibility: the default (azure) spec must
        # produce the exact pre-workload-axis label format.
        assert ScenarioSpec().label == "azure-n60-h6-s7-CAL-pairA-p32-k30-sh8"

    def test_spec_build_uses_generator(self):
        spec = ScenarioSpec(n_functions=5, hours=0.5, seed=3, workload="poisson")
        scenario = spec.build()
        assert scenario.label == spec.label
        assert len(scenario.trace.functions) == 5

    def test_grid_workload_axis_outermost(self):
        g = tiny_grid(workloads=("azure", "mmpp"), pool_gbs=(16.0, 32.0))
        specs = g.specs()
        assert len(g) == len(specs) == 4
        assert specs[0].workload.generator == "azure"
        assert specs[1].pool_gb == 32.0
        assert specs[2].workload.generator == "mmpp"

    def test_grid_scalar_axes_normalised(self):
        g = ScenarioGrid(n_functions=6, hours=0.5, kmax_minutes=20.0)
        assert g.n_functions == (6,)
        assert g.hours == (0.5,)
        assert g.kmax_minutes == (20.0,)
        assert len(g) == 1

    def test_grid_list_axes_coerced_to_tuples(self):
        # A list must expand as an axis, not be wrapped whole.
        g = ScenarioGrid(n_functions=[4, 6], hours=[0.5], kmax_minutes=[20.0])
        assert g.n_functions == (4, 6)
        assert len(g) == 2

    def test_grid_bare_string_workload_is_one_workload(self):
        # Not four per-character specs ("m", "m", "p", "p").
        g = ScenarioGrid(workloads="mmpp")
        assert g.workloads == (WorkloadSpec("mmpp"),)
        single = ScenarioGrid(workloads=WorkloadSpec("mmpp"))
        assert single.workloads == g.workloads

    def test_grid_new_scalar_axes_expand(self):
        g = tiny_grid(n_functions=(4, 6), hours=(0.5, 1.0), kmax_minutes=(20.0,))
        assert len(g) == 4
        labels = [s.label for s in g.specs()]
        assert len(set(labels)) == 4
        # n_functions expands outside hours (axis-order contract).
        assert "n4-h0.5" in labels[0] and "n4-h1" in labels[1]

    def test_mixed_workload_grid_parallel_matches_serial(self):
        """Acceptance: Azure + generated families through the pool, with
        byte-identical serial/parallel aggregates."""
        g = tiny_grid(workloads=("azure", "mmpp", "pareto"))
        schedulers = ["oracle", "ecolife"]
        serial = ParallelRunner(n_workers=1).run_grid(g, schedulers)
        parallel = ParallelRunner(n_workers=2).run_grid(g, schedulers)
        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial.summaries, parallel.summaries):
            assert a.deterministic_dict() == b.deterministic_dict()


class TestRecordPersistence:
    def make_job(self, **spec_kw):
        kw = dict(n_functions=6, hours=0.5, seed=3)
        kw.update(spec_kw)
        return RunnerJob(scheduler="new-only", spec=ScenarioSpec(**kw))

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, store_records=True)
        job = self.make_job()
        summary, records = execute_job_with_records(job)
        cache.put(job, summary, records=records)
        loaded = cache.get_records(job)
        assert loaded is not None and len(loaded) == summary.n_invocations
        for field in ("t", "service_s", "carbon_g", "energy_wh",
                      "keepalive_s", "cold", "location", "func_name"):
            assert np.array_equal(getattr(loaded, field), getattr(records, field))

    def test_arrays_consistent_with_summary(self):
        job = self.make_job()
        summary, records = execute_job_with_records(job)
        assert np.isclose(records.carbon_g.sum(), summary.total_carbon_g)
        assert np.isclose(records.service_s.mean(), summary.mean_service_s)
        assert np.isclose(records.energy_wh.sum(), summary.total_energy_wh)
        warm = 1.0 - records.cold.mean()
        assert np.isclose(warm, summary.warm_ratio)

    def test_runner_persists_records_serial_and_parallel(self, tmp_path):
        g = tiny_grid(workloads=("mmpp",))
        loaded = {}
        for workers in (1, 2):
            cache = ResultCache(tmp_path / str(workers), store_records=True)
            runner = ParallelRunner(n_workers=workers, cache=cache)
            result = runner.run_grid(g, ["oracle", "ecolife"])
            recs = [cache.get_records(job) for job in result.jobs]
            assert all(r is not None for r in recs)
            loaded[workers] = recs
        for a, b in zip(loaded[1], loaded[2]):
            assert np.array_equal(a.service_s, b.service_s)
            assert np.array_equal(a.carbon_g, b.carbon_g)

    def test_summary_without_records_is_a_miss_for_recording_cache(
        self, tmp_path
    ):
        plain = ResultCache(tmp_path)
        job = self.make_job()
        plain.put(job, execute_job(job))
        recording = ResultCache(tmp_path, store_records=True)
        assert recording.get(job) is None  # summary alone is not enough
        assert plain.get(job) is not None

    def test_record_count_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path, store_records=True)
        job = self.make_job()
        summary, records = execute_job_with_records(job)
        cache.put(job, summary, records=records)
        assert cache.record_count() == 1
        assert cache.clear() == 1
        assert cache.record_count() == 0

    def test_grid_record_cdfs(self, tmp_path):
        from repro.analysis import grid_record_cdfs, record_cdf_table

        g = tiny_grid(workloads=("azure", "mmpp"))
        cache = ResultCache(tmp_path, store_records=True)
        result = ParallelRunner(n_workers=1, cache=cache).run_grid(
            g, ["oracle", "ecolife"]
        )
        cdfs = grid_record_cdfs(cache, result.jobs)
        assert set(cdfs) == {"oracle", "ecolife"}
        total = sum(s.n_invocations for s in result.summaries) // 2
        assert cdfs["ecolife"]["service_s"].values.size == total
        assert cdfs["ecolife"]["service_s"].percentile(95) > 0.0
        table = record_cdf_table(cdfs)
        assert "svc p95" in table and "ecolife" in table

    def test_grid_record_cdfs_omits_empty_schedulers(self, tmp_path):
        from repro.analysis import grid_record_cdfs

        cache = ResultCache(tmp_path, store_records=True)
        # A workload so sparse the trace is (almost surely) empty.
        spec = ScenarioSpec(
            n_functions=2,
            hours=0.1,
            seed=3,
            workload=WorkloadSpec.make(
                "poisson",
                median_interarrival_s=7200.0,
                max_interarrival_s=7200.0,
                interarrival_sigma=0.0,
            ),
        )
        job = RunnerJob(scheduler="new-only", spec=spec)
        summary, records = execute_job_with_records(job)
        cache.put(job, summary, records=records)
        cdfs = grid_record_cdfs(cache, [job])
        if summary.n_invocations == 0:
            assert cdfs == {}
        else:  # pragma: no cover - seed-dependent fallback
            assert "new-only" in cdfs

    def test_grid_record_cdfs_missing_records_raise(self, tmp_path):
        from repro.analysis import grid_record_cdfs

        cache = ResultCache(tmp_path)  # summaries only
        job = self.make_job()
        cache.put(job, execute_job(job))
        with pytest.raises(KeyError, match="no persisted records"):
            grid_record_cdfs(cache, [job])


class TestBatchSwarmsEnvKnob:
    def test_default_reads_env(self, monkeypatch):
        from repro.core.config import batch_swarms_default

        monkeypatch.delenv("ECOLIFE_BATCH_SWARMS", raising=False)
        assert batch_swarms_default() is True
        for off in ("0", "false", "OFF", " False "):
            monkeypatch.setenv("ECOLIFE_BATCH_SWARMS", off)
            assert batch_swarms_default() is False
            assert EcoLifeConfig().batch_swarms is False
        monkeypatch.setenv("ECOLIFE_BATCH_SWARMS", "1")
        assert EcoLifeConfig().batch_swarms is True

    def test_fixture_reflects_knob(self, batch_swarms_default):
        assert batch_swarms_default == EcoLifeConfig().batch_swarms


class TestRunSuiteIntegration:
    def test_registry_names_serial(self):
        scenario = ScenarioSpec(n_functions=6, hours=0.5).build()
        res = run_suite({"new-only": "new-only"}, scenario)
        assert res["new-only"].total_carbon_g > 0.0

    def test_parallel_requires_names(self):
        scenario = ScenarioSpec(n_functions=6, hours=0.5).build()
        with pytest.raises(ValueError, match="registry scheduler names"):
            run_suite({"x": lambda: None}, scenario, n_workers=2)

    def test_parallel_matches_serial_suite(self):
        scenario = ScenarioSpec(n_functions=6, hours=0.5).build()
        schedulers = {"oracle": "oracle", "new-only": "new-only"}
        serial = run_suite(schedulers, scenario)
        parallel = run_suite(schedulers, scenario, n_workers=2)
        for name in schedulers:
            assert parallel[name].total_carbon_g == serial[name].total_carbon_g
            assert parallel[name].mean_service_s == serial[name].mean_service_s
